"""Policy tournament: cross-worker determinism and report content."""

import json

import pytest

from repro.experiments.tournament import (
    HAND_DESIGNED,
    SCENARIOS,
    format_tournament,
    run_tournament,
    tournament_json,
)
from repro.experiments.tournament import main as tournament_main


@pytest.fixture(scope="module")
def small_results():
    """The same tiny tournament at one and two workers (self-trained)."""
    kwargs = dict(seeds=[0], scale=1.0, cache=None, trace_cache=None)
    return (
        run_tournament(jobs=1, **kwargs),
        run_tournament(jobs=2, **kwargs),
    )


def test_reports_identical_across_worker_counts(small_results):
    one, two = small_results
    assert format_tournament(one) == format_tournament(two)
    assert tournament_json(one) == tournament_json(two)


def test_self_training_is_reproducible(small_results):
    one, two = small_results
    assert one.self_trained and two.self_trained
    assert one.model.sha256 == two.model.sha256


def test_report_covers_the_full_bracket(small_results):
    result, _ = small_results
    report = format_tournament(result)
    assert "Figure 9" in report
    for label in ("fixed:20", "saio:0.10"):
        assert label in report
    for name in HAND_DESIGNED:
        assert f"saga:0.15:{name}" in report
    assert f"learned@{result.model.sha256[:12]}" in report
    # The deployed artifact lives in a temp dir; its path must never leak
    # into the report (the model is referenced by content hash only).
    assert "repro-tournament-" not in report
    assert ".json" not in report


def test_json_document_shape(small_results):
    result, _ = small_results
    document = json.loads(tournament_json(result))
    scenarios = {name for name, _profiles in SCENARIOS}
    assert {cell["scenario"] for cell in document["cells"]} == scenarios
    assert {r["scenario"] for r in document["rankings"]} == scenarios
    for ranking in document["rankings"]:
        assert isinstance(ranking["learned_wins"], bool)
        assert ranking["learned_mae"] is not None
    assert document["model"]["sha256"] == result.model.sha256
    assert document["model"]["self_trained"] is True
    # Every cell completed; the estimator column is populated for SAGA cells.
    assert all(cell["failures"] == 0 for cell in document["cells"])
    saga_cells = [c for c in document["cells"] if c["estimator"]]
    assert all(c["estimator_mae"] is not None for c in saga_cells)


def test_pretrained_model_deploys_by_path(small_results, tmp_path):
    result, _ = small_results
    path = result.model.save(tmp_path / "model.json")
    again = run_tournament(
        seeds=[0],
        scale=1.0,
        model_path=str(path),
        jobs=2,
        cache=None,
        trace_cache=None,
    )
    assert again.self_trained is False
    assert again.model.sha256 == result.model.sha256
    # Same model, same seeds/scale → the grid outcome is identical (only
    # the report's provenance line may differ: self- vs pre-trained).
    assert again.cells == result.cells
    assert again.rankings == result.rankings


def test_cli_writes_report_and_json(tmp_path, capsys):
    out = tmp_path / "figure9.txt"
    doc = tmp_path / "figure9.json"
    assert (
        tournament_main(
            [
                "--seeds",
                "0",
                "--scale",
                "0.3",
                "--jobs",
                "2",
                "--no-cache",
                "--out",
                str(out),
                "--json",
                str(doc),
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "Figure 9" in captured.out
    assert out.read_text().strip() in captured.out
    document = json.loads(doc.read_text())
    assert document["format"] == 1
