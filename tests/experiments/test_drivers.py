"""Tests for the experiment drivers, on reduced grids for speed.

These verify the drivers' mechanics (structure, formatting, parameters),
not the paper's quantitative claims — those are asserted by the benchmark
harness on full workloads.
"""

import pytest

from repro.experiments.ablations import (
    format_fixed_heuristic,
    format_saio_history,
    format_selection_ablation,
    format_weight_ablation,
    run_fixed_heuristic_ablation,
    run_saio_history_ablation,
    run_selection_ablation,
    run_weight_ablation,
)
from repro.experiments.common import SweepPoint, full_scale
from repro.experiments.figure1 import format_figure1, run_figure1
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure5 import format_figure5, run_figure5
from repro.experiments.figure6 import format_figure6, run_figure6
from repro.experiments.figure7 import format_figure7, run_figure7
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.experiments.table1 import format_table1, run_table1
from repro.oo7.config import TINY, OO7Config

# A small-but-collectable OO7 variant for driver tests.
DRIVER_CONFIG = OO7Config(
    num_atomic_per_comp=10,
    num_comp_per_module=40,
    num_assm_levels=3,
    manual_size=16 * 1024,
    document_size=800,
)
SEEDS = [0]


def test_full_scale_env(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    assert not full_scale()
    monkeypatch.setenv("REPRO_FULL", "1")
    assert full_scale()
    monkeypatch.setenv("REPRO_FULL", "0")
    assert not full_scale()


def test_sweep_point_error():
    point = SweepPoint(requested=0.1, mean=0.12, minimum=0.11, maximum=0.13)
    assert point.error == pytest.approx(0.02)


def test_table1_driver():
    result = run_table1(connectivities=(3,))
    assert result.generated[0].connectivity == 3
    report = format_table1(result)
    assert "NumCompPerModule" in report
    assert "Small'" in report


def test_figure1_driver():
    result = run_figure1(rates=(50, 400), seeds=SEEDS, config=DRIVER_CONFIG)
    assert [r.rate for r in result.rows] == [50, 400]
    assert result.rows[0].collections_mean > result.rows[1].collections_mean
    report = format_figure1(result)
    assert "Figure 1a" in report and "Figure 1b" in report


def test_figure4_driver():
    result = run_figure4(fractions=(0.10, 0.30), seeds=SEEDS, config=DRIVER_CONFIG)
    assert [p.requested for p in result.points] == [0.10, 0.30]
    for point in result.points:
        assert 0.0 <= point.minimum <= point.mean <= point.maximum <= 1.0
    assert "Figure 4" in format_figure4(result)


def test_figure5_driver():
    result = run_figure5(
        fractions=(0.15,),
        seeds=SEEDS,
        estimators=("oracle",),
        config=DRIVER_CONFIG,
    )
    assert set(result.sweeps) == {"oracle"}
    assert "Figure 5 (oracle)" in format_figure5(result)


def test_figure6_driver():
    result = run_figure6(seed=0, config=DRIVER_CONFIG)
    assert set(result.series) == {"cgs-cb", "fgs-hb"}
    for series in result.series.values():
        assert series.records
        assert len(series.actual) == len(series.estimated) == len(series.target)
    report = format_figure6(result)
    assert "Figure 6a" in report and "Figure 6b" in report


def test_figure7_driver():
    result = run_figure7(histories=(0.5, 0.8), seed=0, config=DRIVER_CONFIG)
    assert set(result.runs) == {0.5, 0.8}
    run = result.runs[0.8]
    assert len(run.intervals) == len(run.records) - 1
    report = format_figure7(result)
    assert "Figure 7a" in report and "Figure 7b" in report


def test_figure8_driver():
    result = run_figure8(
        fractions=(0.15,),
        seeds=SEEDS,
        connectivities=(6,),
        estimators=("oracle",),
        config=DRIVER_CONFIG,
    )
    assert set(result.saio) == {6}
    assert set(result.saga) == {("oracle", 6)}
    assert "connectivity 6" in format_figure8(result)


def test_fixed_heuristic_ablation_driver():
    result = run_fixed_heuristic_ablation(seeds=SEEDS, config=DRIVER_CONFIG)
    assert result.heuristic_rate > 0
    assert result.measured_gpo > 0
    assert "§2.1" in format_fixed_heuristic(result)


def test_saio_history_ablation_driver():
    result = run_saio_history_ablation(
        fractions=(0.2,), histories=(0, 2), seeds=SEEDS, config=DRIVER_CONFIG
    )
    assert len(result.rows) == 2
    assert "c_hist" in format_saio_history(result)


def test_selection_ablation_driver():
    result = run_selection_ablation(seeds=SEEDS, config=DRIVER_CONFIG)
    assert [row[0] for row in result.rows] == ["updated-pointer", "random"]
    assert "selection" in format_selection_ablation(result)


def test_weight_ablation_driver():
    result = run_weight_ablation(weights=(0.7,), seeds=SEEDS, config=DRIVER_CONFIG)
    assert len(result.rows) == 1
    assert "Weight" in format_weight_ablation(result)


def test_drivers_are_deterministic():
    first = run_figure4(fractions=(0.2,), seeds=[3], config=DRIVER_CONFIG)
    second = run_figure4(fractions=(0.2,), seeds=[3], config=DRIVER_CONFIG)
    assert first.points == second.points


def test_tiny_config_also_works_end_to_end():
    """Even the test-scale TINY config flows through a driver."""
    result = run_figure1(rates=(30,), seeds=[0], config=TINY)
    assert result.rows[0].collections_mean >= 0


def test_every_driver_survives_all_runs_failing():
    """Partial-results guarantee: an always-crashing fault plan must never
    kill a driver's report formatting — every formatter degrades gracefully
    when zero runs survive."""
    from repro.cli import main as cli_main
    import json

    plan = {"faults": [{"site": "io.write", "at": 1}]}
    import tempfile, pathlib

    with tempfile.TemporaryDirectory() as tmp:
        plan_path = pathlib.Path(tmp) / "plan.json"
        plan_path.write_text(json.dumps(plan))
        for name in ("figure6", "figure7", "ablation-clock", "ablation-selection"):
            assert (
                cli_main(
                    [
                        name,
                        "--seeds",
                        "0",
                        "--no-cache",
                        "--jobs",
                        "1",
                        "--faults",
                        str(plan_path),
                    ]
                )
                == 0
            ), name
