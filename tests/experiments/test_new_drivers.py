"""Driver tests for the estimator-space and clustering experiments."""

from repro.experiments.clustering_exp import (
    format_clustering_experiment,
    run_clustering_experiment,
)
from repro.experiments.estimator_space import (
    format_estimator_space,
    run_estimator_space,
)
from repro.oo7.config import OO7Config

DRIVER_CONFIG = OO7Config(
    num_atomic_per_comp=10,
    num_comp_per_module=40,
    num_assm_levels=3,
    manual_size=16 * 1024,
    document_size=800,
)


def test_estimator_space_driver():
    result = run_estimator_space(
        requested=0.15,
        seeds=[0],
        config=DRIVER_CONFIG,
        estimators=("oracle", "fgs-hb"),
    )
    names = [row.estimator for row in result.rows]
    assert names == ["oracle", "fgs-hb"]
    oracle = result.rows[0]
    assert oracle.estimate_abs_error == 0.0
    report = format_estimator_space(result)
    assert "design space" in report
    assert "fgs-hb" in report


def test_estimator_space_is_deterministic():
    kwargs = dict(requested=0.15, seeds=[1], config=DRIVER_CONFIG, estimators=("fgs-hb",))
    assert run_estimator_space(**kwargs).rows == run_estimator_space(**kwargs).rows


def test_clustering_driver():
    result = run_clustering_experiment(seeds=[0], config=DRIVER_CONFIG)
    states = [row.state for row in result.rows]
    assert states == [
        "after GenDB",
        "after Reorg1",
        "after Reorg2",
        "Reorg2 + full GC",
    ]
    for row in result.rows:
        assert row.mean_spread >= 1.0
        assert 0.0 <= row.clustered_fraction <= 1.0
        assert 0.0 <= row.hit_rate <= 1.0
        assert row.footprint_pages > 0
    report = format_clustering_experiment(result)
    assert "reclustering" in report
