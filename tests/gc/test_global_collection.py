"""Tests for global (whole-database) collection — the cyclic-garbage fallback."""


from repro.gc.collector import CopyingCollector
from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.validation import validate_store

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=4)


def _cross_partition_cycle(store):
    """Build a dead two-object cycle spanning two partitions."""
    root = store.create(size=10)
    store.register_root(root)
    a = store.create(size=1000)  # partition 1
    b = store.create(size=1000)  # partition 2
    assert store.partition_of(a) != store.partition_of(b)
    store.write_pointer(a, "b", b)
    store.write_pointer(b, "a", a)
    store.write_pointer(root, "a", a)
    store.write_pointer(root, "a", None, dies=[a, b])
    return root, a, b


def test_partitioned_collection_cannot_reclaim_cross_partition_cycle():
    store = ObjectStore(CFG)
    root, a, b = _cross_partition_cycle(store)
    collector = CopyingCollector(store)
    for _round in range(4):
        for pid in range(store.partition_count):
            collector.collect(pid)
    # The dead cycle floats forever under per-partition collection.
    assert a in store.objects
    assert b in store.objects
    assert store.actual_garbage_bytes == 2000


def test_global_collection_reclaims_the_cycle():
    store = ObjectStore(CFG)
    root, a, b = _cross_partition_cycle(store)
    collector = CopyingCollector(store)
    results = collector.collect_global()
    assert a not in store.objects
    assert b not in store.objects
    assert store.actual_garbage_bytes == 0
    assert root in store.objects
    assert sum(r.reclaimed_bytes for r in results) == 2000
    assert validate_store(store).ok


def test_global_collection_preserves_all_reachable():
    from repro.oo7.builder import build_database
    from repro.oo7.config import TINY

    db = build_database(TINY, store_config=StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4))
    store = db.store
    before = set(store.objects)
    collector = CopyingCollector(store)
    results = collector.collect_global()
    assert set(store.objects) == before  # fresh DB: nothing to reclaim
    assert sum(r.reclaimed_bytes for r in results) == 0
    assert validate_store(store).ok


def test_global_collection_counts_io_and_collections():
    store = ObjectStore(CFG)
    _cross_partition_cycle(store)
    collector = CopyingCollector(store)
    results = collector.collect_global()
    assert collector.collections_performed == len(results) == store.partition_count
    assert store.iostats.collector_total > 0
    assert all(r.gc_io == r.gc_reads + r.gc_writes for r in results)


def test_global_collection_resets_fgs_counters():
    store = ObjectStore(CFG)
    _cross_partition_cycle(store)
    collector = CopyingCollector(store)
    assert any(p.pointer_overwrites for p in store.partitions)
    collector.collect_global()
    assert all(p.pointer_overwrites == 0 for p in store.partitions)


def test_global_then_partitioned_interoperate():
    store = ObjectStore(CFG)
    root, _a, _b = _cross_partition_cycle(store)
    collector = CopyingCollector(store)
    collector.collect_global()
    # New garbage after the global pass is handled by normal collection.
    victim = store.create(size=100)
    store.write_pointer(root, "v", victim)
    store.write_pointer(root, "v", None, dies=[victim])
    result = collector.collect(store.partition_of(victim))
    assert result.reclaimed_bytes == 100
    assert validate_store(store).ok
