"""The partition-parallel collector must be invisible.

``repro.gc.parallel`` pre-traces likely victim partitions during the
trigger's margin window and validates each speculation against the
store's trace epochs before use; these tests pin the contract that makes
``collection="parallel"`` safe to enable at any worker count:
byte-identical ``SimulationSummary`` pickles and identical committed
store state versus the serial collector — across selection policies,
worker counts, interpreters (scalar and batched replay), transactional
rollback, crash/recovery drills and service mode — with no effect on
result-cache fingerprints and no mutation of policy state by victim
prediction.
"""

import dataclasses
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fixed import FixedRatePolicy
from repro.events import (
    CreateEvent,
    PointerWriteEvent,
    RootEvent,
)
from repro.faults.drill import state_digest
from repro.faults.injector import FaultInjector, SimulatedCrash
from repro.faults.plan import FaultPlan, FaultSpec
from repro.gc.parallel import (
    COLLECTION_MODES,
    DEFAULT_GC_MARGIN,
    ParallelCollectionScheduler,
    peek_selection,
)
from repro.gc.selection import (
    PartitionSelectionPolicy,
    RandomSelection,
    RoundRobinSelection,
    make_selection_policy,
)
from repro.oo7.config import TINY
from repro.sim.cache import spec_fingerprint
from repro.sim.simulator import Simulation, SimulationConfig
from repro.sim.spec import (
    ExperimentSpec,
    PolicySpec,
    WorkloadSpec,
    build_policy,
    build_selection,
    build_workload,
)
from repro.storage.heap import ObjectStore, StoreConfig
from repro.tx.recovery import RedoLog, recover
from repro.workload.compiled import compile_trace
from repro.workload.presets import PresetWorkload
from repro.workload.transactional import TransactionalSpec, TransactionalWorkload

STORE = StoreConfig(page_size=2048, partition_pages=8, buffer_pages=8)

# ---------------------------------------------------------------- helpers


def _config(**overrides) -> SimulationConfig:
    defaults = dict(store=STORE, preamble_collections=0, replay="scalar")
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _run(workload_events, *, selection="updated-pointer", rate=40.0, seed=7,
         **overrides):
    sim = Simulation(
        policy=FixedRatePolicy(rate),
        selection=make_selection_policy(selection, seed=seed),
        config=_config(**overrides),
    )
    result = sim.run(workload_events)
    return sim, result


def _preset_events(seed=7):
    return list(PresetWorkload("steady-churn", scale=0.4, seed=seed).events())


def _outcome(sim, result):
    return pickle.dumps(result.summary), state_digest(sim.store)


# ------------------------------------------------- serial equivalence


@pytest.mark.parametrize("selection", ["updated-pointer", "round-robin", "random"])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_matches_serial_across_policies_and_workers(selection, workers):
    events = _preset_events()
    serial = _outcome(*_run(events, selection=selection))
    sim_p, res_p = _run(
        events, selection=selection, collection="parallel", gc_workers=workers
    )
    assert _outcome(sim_p, res_p) == serial
    assert res_p.summary.collections > 0, "the workload must trigger GC"


def test_speculation_actually_engages():
    """The equivalence tests are vacuous if every snapshot goes stale."""
    events = _preset_events()
    sim, res = _run(events, collection="parallel")
    stats = sim._par.stats()
    assert stats["pumps"] > 0
    assert stats["speculation_hits"] > 0, stats
    assert (
        stats["speculation_hits"]
        + stats["speculation_stale"]
        + stats["speculation_misses"]
        == res.summary.collections
    )


def test_parallel_matches_serial_full_reachability():
    """Speculation must respect the full-scan frontier mode too."""
    events = _preset_events()
    serial = _outcome(*_run(events, reachability="full"))
    parallel = _outcome(
        *_run(events, reachability="full", collection="parallel", gc_workers=2)
    )
    assert parallel == serial


def test_parallel_matches_serial_under_batched_replay():
    """Parallel sims take the guarded per-event interpreter; results match
    the scalar serial loop over the same compiled trace."""
    events = _preset_events()
    trace = compile_trace(events)
    serial = _outcome(*_run(events, replay="scalar"))
    parallel = _outcome(
        *_run(trace, replay="auto", collection="parallel", gc_workers=4)
    )
    assert parallel == serial


def test_parallel_matches_serial_transactional_rollback():
    """Aborted transactions undo pointer writes and expunge creations —
    both bump trace epochs, so speculation over rolled-back state must
    still validate correctly."""
    spec = TransactionalSpec(transactions=60, abort_probability=0.4)
    events = list(TransactionalWorkload(spec, seed=3, initial_clusters=20).events())
    serial = _outcome(*_run(events, rate=25.0))
    for workers in (1, 4):
        parallel = _outcome(
            *_run(events, rate=25.0, collection="parallel", gc_workers=workers)
        )
        assert parallel == serial


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    workers=st.sampled_from([1, 2, 4]),
    selection=st.sampled_from(["updated-pointer", "round-robin", "random"]),
)
@settings(max_examples=20, deadline=None)
def test_property_summaries_pickle_equal(seed, workers, selection):
    events = list(PresetWorkload("steady-churn", scale=0.25, seed=seed).events())
    serial = _outcome(*_run(events, selection=selection, seed=seed))
    parallel = _outcome(
        *_run(
            events,
            selection=selection,
            seed=seed,
            collection="parallel",
            gc_workers=workers,
        )
    )
    assert parallel == serial


# ------------------------------------------------- crash drills


@pytest.mark.parametrize("workers", [1, 4])
def test_crash_drill_matches_serial(workers):
    """Fault-injected crash–recover–continue runs must be identical:
    same resume indices, same committed state, same summary."""
    spec = ExperimentSpec(
        policy=PolicySpec("fixed", {"overwrites_per_collection": 30.0}),
        workload=WorkloadSpec("oo7", {"config": TINY}),
        sim=_config(enable_redo_log=True),
        label="parallel-drill",
    )
    events = list(build_workload(spec.workload, 0))
    plan = FaultPlan(faults=(FaultSpec(site="gc.collect", at=2),))

    def drilled(collection, gc_workers):
        injector = FaultInjector(plan)
        log = RedoLog()
        config = dataclasses.replace(
            spec.sim, collection=collection, gc_workers=gc_workers
        )
        sim = Simulation(
            policy=build_policy(spec.policy, 0),
            selection=build_selection(spec.selection, 0),
            config=config,
            faults=injector,
            redo_log=log,
        )
        start = 0
        resumes = []
        while True:
            try:
                sim.run(events, start_index=start)
                break
            except SimulatedCrash as crash:
                assert len(resumes) < 10, "unexpectedly many crashes"
                recovered = recover(log, store_config=config.store)
                log.truncate_uncommitted()
                start = crash.resume_index
                resumes.append(start)
                sim = Simulation(
                    policy=build_policy(spec.policy, 0),
                    selection=build_selection(spec.selection, 0),
                    config=config,
                    faults=injector,
                    store=recovered,
                    redo_log=log,
                )
        summary = sim.sampler.summary(sim.store, sim.store.iostats)
        return resumes, state_digest(sim.store), pickle.dumps(summary)

    serial = drilled("serial", 1)
    assert serial[0], "the plan must actually crash the run"
    assert drilled("parallel", gc_workers=workers) == serial


# ------------------------------------------------- victim prediction


def test_peek_selection_predicts_without_consuming_rng():
    store = ObjectStore(STORE)
    root = store.create(size=64)
    store.register_root(root)
    for _ in range(40):
        store.create(size=400)
    policy = RandomSelection(seed=13)
    state_before = policy._rng.getstate()
    predicted = peek_selection(policy, store)
    assert policy._rng.getstate() == state_before
    assert policy.select(store) == predicted


def test_peek_selection_preserves_round_robin_cursor():
    store = ObjectStore(STORE)
    root = store.create(size=64)
    store.register_root(root)
    for _ in range(40):
        store.create(size=400)
    policy = RoundRobinSelection()
    predicted = peek_selection(policy, store)
    assert policy._last == -1, "peek must not advance the cursor"
    assert policy.select(store) == predicted
    # After the real draw advanced the cursor, peek tracks the next victim.
    assert peek_selection(policy, store) == policy.select(store)


def test_peek_selection_unknown_policy_declines():
    class CustomSelection(PartitionSelectionPolicy):
        def select(self, store):  # pragma: no cover - never called
            return 0

        def describe(self):
            return "custom"

    store = ObjectStore(STORE)
    assert peek_selection(CustomSelection(), store) is None


def test_unknown_policy_runs_serial_path_inline():
    """No prediction → every collection is a speculation miss, but the
    run still completes with serial-identical results."""

    class EveryOther(PartitionSelectionPolicy):
        """Deterministic custom policy the scheduler cannot peek."""

        def __init__(self):
            self._flip = 0

        def select(self, store):
            candidates = [p.pid for p in store.partitions if p.residents]
            self._flip += 1
            return candidates[self._flip % len(candidates)]

        def describe(self):
            return "every-other"

    events = _preset_events()

    def run(collection, workers):
        sim = Simulation(
            policy=FixedRatePolicy(40.0),
            selection=EveryOther(),
            config=_config(collection=collection, gc_workers=workers),
        )
        result = sim.run(events)
        return sim, result

    serial = _outcome(*run("serial", 1))
    sim_p, res_p = run("parallel", 4)
    assert _outcome(sim_p, res_p) == serial
    stats = sim_p._par.stats()
    assert stats["speculation_hits"] == 0
    assert stats["speculation_misses"] == res_p.summary.collections


# ------------------------------------------------- trace epochs


def test_mutations_bump_trace_epochs():
    store = ObjectStore(STORE)
    a = store.create(size=64)
    pid = store.placements.part_of(a)
    before = store.trace_epochs[pid]
    store.register_root(a)
    assert store.trace_epochs[pid] > before

    before = store.trace_epochs[pid]
    b = store.create(size=64)
    store.write_pointer(a, "x", b)
    assert store.trace_epochs[pid] > before

    # Declaring garbage does not affect the trace (the dead flag is not
    # part of reachability), so it must not invalidate speculation.
    before = list(store.trace_epochs)
    store.write_pointer(a, "x", None, dies=[b])
    after_write = list(store.trace_epochs)
    assert after_write != before  # the overwrite itself bumps

    before_ep = store.compaction_epoch
    from repro.gc.collector import CopyingCollector

    CopyingCollector(store).collect(pid)
    assert store.compaction_epoch > before_ep


def test_stale_speculation_is_discarded():
    """Mutating the victim between snapshot and apply forces the serial
    fallback — and the collection is still correct."""
    store = ObjectStore(STORE)
    from repro.gc.collector import CopyingCollector
    from repro.gc.selection import UpdatedPointerSelection

    root = store.create(size=50)
    store.register_root(root)
    doomed = store.create(size=200)
    store.write_pointer(root, "x", doomed)
    collector = CopyingCollector(store)
    scheduler = ParallelCollectionScheduler(
        store, collector, UpdatedPointerSelection(), workers=1
    )
    scheduler.pump()
    # Invalidate: sever the pointer, making `doomed` garbage.
    store.write_pointer(root, "x", None, dies=[doomed])
    result = scheduler.collect(0)
    assert scheduler.speculation_stale == 1
    assert result.reclaimed_objects == 1
    assert doomed not in store.objects


# ------------------------------------------------- config plumbing


def test_invalid_collection_mode_rejected():
    with pytest.raises(ValueError, match="collection"):
        Simulation(
            policy=FixedRatePolicy(10),
            config=_config(collection="concurrent"),
        )


def test_gc_workers_without_parallel_rejected():
    with pytest.raises(ValueError, match="gc_workers"):
        Simulation(
            policy=FixedRatePolicy(10),
            config=_config(collection="serial", gc_workers=2),
        )


def test_scheduler_validates_arguments():
    store = ObjectStore(STORE)
    from repro.gc.collector import CopyingCollector
    from repro.gc.selection import UpdatedPointerSelection

    collector = CopyingCollector(store)
    with pytest.raises(ValueError, match="gc_workers"):
        ParallelCollectionScheduler(
            store, collector, UpdatedPointerSelection(), workers=0
        )
    with pytest.raises(ValueError, match="margin"):
        ParallelCollectionScheduler(
            store, collector, UpdatedPointerSelection(), margin=1.0
        )
    assert "serial" in COLLECTION_MODES and "parallel" in COLLECTION_MODES
    assert 0.0 <= DEFAULT_GC_MARGIN < 1.0


def test_collection_choice_does_not_change_fingerprint():
    """Execution strategy is not an experiment input."""
    spec = ExperimentSpec(
        policy=PolicySpec("fixed", {"overwrites_per_collection": 50.0}),
        workload=WorkloadSpec("oo7", {"config": TINY}),
        sim=_config(),
        label="fingerprint-invariance",
    )
    prints = {
        spec_fingerprint(
            dataclasses.replace(
                spec,
                sim=dataclasses.replace(
                    spec.sim, collection=collection, gc_workers=workers
                ),
            ),
            seed=0,
        )
        for collection, workers in [
            ("serial", 1),
            ("parallel", 1),
            ("parallel", 4),
        ]
    }
    assert len(prints) == 1
