"""Unit tests for partition-selection policies."""

import pytest

from repro.gc.selection import (
    MostGarbageOracleSelection,
    RandomSelection,
    RoundRobinSelection,
    UpdatedPointerSelection,
    make_selection_policy,
)
from repro.storage.heap import ObjectStore, StoreConfig

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=4)


@pytest.fixture
def store() -> ObjectStore:
    """Three populated partitions with distinct FGS counters and garbage."""
    store = ObjectStore(CFG)
    root = store.create(size=10)
    store.register_root(root)
    occupants = [store.create(size=1020) for _ in range(3)]  # partitions 1..3
    assert store.partition_count == 4
    store.partitions[1].pointer_overwrites = 5
    store.partitions[2].pointer_overwrites = 9
    store.partitions[3].pointer_overwrites = 1
    # Oracle garbage: most in partition 3.
    victim = occupants[2]
    store.write_pointer(root, "v", victim)
    store.write_pointer(root, "v", None, dies=[victim])
    return store


def test_updated_pointer_selects_max_overwrites(store):
    assert UpdatedPointerSelection().select(store) == 2


def test_updated_pointer_breaks_ties_by_lowest_pid(store):
    store.partitions[1].pointer_overwrites = 9  # tie with partition 2
    assert UpdatedPointerSelection().select(store) == 1


def test_updated_pointer_none_when_all_partitions_empty():
    store = ObjectStore(CFG)
    assert UpdatedPointerSelection().select(store) is None


def test_random_selection_is_seeded_and_in_range(store):
    first = RandomSelection(seed=7)
    second = RandomSelection(seed=7)
    picks_a = [first.select(store) for _ in range(10)]
    picks_b = [second.select(store) for _ in range(10)]
    assert picks_a == picks_b
    assert all(pick in range(4) for pick in picks_a)


def test_random_selection_skips_empty_partitions():
    store = ObjectStore(CFG)
    root = store.create(size=10)
    store.register_root(root)
    filler = store.create(size=1020)  # partition 1
    store.write_pointer(root, "x", filler)
    store.write_pointer(root, "x", None, dies=[filler])
    store.compact_partition(1, [])  # partition 1 now empty
    policy = RandomSelection(seed=0)
    assert all(policy.select(store) == 0 for _ in range(10))


def test_round_robin_cycles(store):
    policy = RoundRobinSelection()
    picks = [policy.select(store) for _ in range(6)]
    assert picks == [0, 1, 2, 3, 0, 1]


def test_most_garbage_oracle_selects_richest_partition(store):
    assert MostGarbageOracleSelection().select(store) == 3


def test_factory_constructs_each_policy():
    for name, cls in [
        ("updated-pointer", UpdatedPointerSelection),
        ("random", RandomSelection),
        ("round-robin", RoundRobinSelection),
        ("most-garbage-oracle", MostGarbageOracleSelection),
    ]:
        assert isinstance(make_selection_policy(name), cls)


def test_factory_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown partition selection"):
        make_selection_policy("nope")
