"""Unit tests for the partitioned copying collector."""

import pytest

from repro.gc.collector import CopyingCollector
from repro.storage.heap import ObjectStore, StoreConfig

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=4)


@pytest.fixture
def store() -> ObjectStore:
    return ObjectStore(CFG)


@pytest.fixture
def collector(store) -> CopyingCollector:
    return CopyingCollector(store)


def _build_simple_db(store):
    """root → a → b, plus garbage g (declared dead), all in partition 0."""
    root = store.create(size=50)
    store.register_root(root)
    a = store.create(size=60)
    b = store.create(size=70)
    g = store.create(size=80)
    store.write_pointer(root, "a", a)
    store.write_pointer(a, "b", b)
    store.write_pointer(root, "g", g)
    store.write_pointer(root, "g", None, dies=[g])
    return root, a, b, g


def test_collect_reclaims_unreachable_and_keeps_live(store, collector):
    root, a, b, g = _build_simple_db(store)
    result = collector.collect(0)
    assert result.reclaimed_bytes == 80
    assert result.reclaimed_objects == 1
    assert result.live_objects == 3
    assert g not in store.objects
    assert {root, a, b} <= set(store.objects)


def test_collect_compacts_survivors_contiguously(store, collector):
    root, a, b, _g = _build_simple_db(store)
    collector.collect(0)
    placements = sorted(
        (store.placement_of(oid) for oid in (root, a, b)),
        key=lambda placement: placement.offset,
    )
    cursor = 0
    for placement in placements:
        assert placement.offset == cursor
        cursor += placement.size
    assert store.partitions[0].fill == 50 + 60 + 70


def test_collect_copies_in_breadth_first_order(store, collector):
    """Cheney order: roots first, then their targets level by level."""
    root = store.create(size=10)
    store.register_root(root)
    a = store.create(size=10)
    b = store.create(size=10)
    c = store.create(size=10)
    store.write_pointer(root, "x", a)
    store.write_pointer(root, "y", b)
    store.write_pointer(a, "z", c)
    collector.collect(0)
    offsets = {oid: store.placement_of(oid).offset for oid in (root, a, b, c)}
    assert offsets[root] < offsets[a] < offsets[b] < offsets[c]


def test_collect_resets_fgs_counter(store, collector):
    root, a, b, _g = _build_simple_db(store)
    other = store.create(size=900)  # partition 1
    store.write_pointer(a, "far", other)
    store.write_pointer(a, "far", None)  # overwrite into partition 1
    store.write_pointer(root, "a", a)  # overwrite into partition 0
    po_before = store.partitions[0].pointer_overwrites
    assert po_before >= 1
    result = collector.collect(0)
    assert result.pointer_overwrites_at_selection == po_before
    assert store.partitions[0].pointer_overwrites == 0
    assert store.partitions[1].pointer_overwrites == 1  # untouched


def test_collect_counts_gc_io(store, collector):
    _build_simple_db(store)
    result = collector.collect(0)
    # 1 used page read + 2 survivor pages written (50+60+70=180 bytes → 1 page)
    assert result.gc_reads >= 1
    assert result.gc_writes >= 1
    assert result.gc_io == result.gc_reads + result.gc_writes
    assert store.iostats.collector_total == result.gc_io
    # Application I/O must not be charged for collection work.
    app_before = store.iostats.application_total
    collector.collect(0)
    assert store.iostats.application_total == app_before


def test_external_reference_keeps_object_alive(store, collector):
    """A resident referenced only from another partition must survive."""
    a = store.create(size=900)  # partition 0
    b = store.create(size=900)  # partition 1
    store.register_root(a)
    store.write_pointer(a, "x", b)
    result = collector.collect(1)
    assert b in store.objects
    assert result.live_objects == 1


def test_floating_garbage_survives_until_referrer_reclaimed(store, collector):
    """Dead object referenced by a dead external object floats, then drains."""
    root = store.create(size=50)
    store.register_root(root)
    a = store.create(size=900)  # partition 0 (with root)
    b = store.create(size=900)  # partition 1
    store.write_pointer(root, "a", a)
    store.write_pointer(a, "b", b)
    # Kill the whole chain a→b with one overwrite.
    store.write_pointer(root, "a", None, dies=[a, b])

    # Collect b's partition first: b floats (dead a still references it).
    collector.collect(1)
    assert b in store.objects
    # Collect a's partition: a reclaimed, its reference to b dropped.
    collector.collect(0)
    assert a not in store.objects
    # Now b is collectable.
    collector.collect(1)
    assert b not in store.objects
    assert store.actual_garbage_bytes == 0


def test_pointers_leaving_partition_not_traversed(store, collector):
    """An out-pointer to another partition is not followed (and the target
    partition is untouched by this collection)."""
    a = store.create(size=900)  # partition 0
    b = store.create(size=900)  # partition 1
    store.register_root(a)
    store.write_pointer(a, "x", b)
    fill_before = store.partitions[1].fill
    collector.collect(0)
    assert store.partitions[1].fill == fill_before
    assert b in store.objects


def test_collect_invalidates_buffered_victim_pages(store, collector):
    root = store.create(size=50)
    store.register_root(root)
    assert any(page[0] == 0 for page in store.buffer.resident_pages())
    collector.collect(0)
    assert not any(page[0] == 0 for page in store.buffer.resident_pages())


def test_collection_numbers_increment(store, collector):
    store.register_root(store.create(size=10))
    first = collector.collect(0)
    second = collector.collect(0)
    assert first.collection_number == 0
    assert second.collection_number == 1
    assert collector.collections_performed == 2


def test_yield_per_overwrite(store, collector):
    root = store.create(size=50)
    store.register_root(root)
    g = store.create(size=100)
    store.write_pointer(root, "g", g)
    store.write_pointer(root, "g", None, dies=[g])
    result = collector.collect(0)
    assert result.pointer_overwrites_at_selection == 1
    assert result.yield_per_overwrite == pytest.approx(100.0)


def test_yield_per_overwrite_zero_without_overwrites(store, collector):
    store.register_root(store.create(size=10))
    result = collector.collect(0)
    assert result.yield_per_overwrite == 0.0


def test_empty_partition_collection_is_noop(store, collector):
    root = store.create(size=50)
    store.register_root(root)
    other = store.create(size=990)  # partition 1
    store.register_root(other)
    store.compact_partition(1, [other])
    # Manually empty partition 1 by reclaiming its resident.
    store.compact_partition(1, [])
    result = collector.collect(1)
    assert result.reclaimed_bytes == 0
    assert result.live_objects == 0


def test_total_reclaimed_accumulates(store, collector):
    _build_simple_db(store)
    collector.collect(0)
    assert collector.total_reclaimed_bytes == 80
