"""Property-based tests: collector correctness on random object graphs.

The fundamental GC safety/liveness contract, checked against an independent
full-database reachability oracle:

* **safety** — no globally reachable object is ever reclaimed;
* **partitioned liveness** — after collecting every partition repeatedly
  until a fixed point, no unreachable object remains (floating garbage
  drains, because death cascades in our workloads are acyclic; random graphs
  here may contain cross-partition dead *cycles*, which partitioned
  collection legitimately cannot reclaim — the test accounts for them).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gc.collector import CopyingCollector
from repro.storage.heap import ObjectStore, StoreConfig

CFG = StoreConfig(page_size=128, partition_pages=4, buffer_pages=3)


@st.composite
def object_graphs(draw):
    """A random store: objects, random pointers, random subset of roots."""
    count = draw(st.integers(min_value=1, max_value=40))
    sizes = draw(
        st.lists(
            st.integers(min_value=10, max_value=300),
            min_size=count,
            max_size=count,
        )
    )
    store = ObjectStore(CFG)
    oids = [store.create(size=size) for size in sizes]
    edge_count = draw(st.integers(min_value=0, max_value=3 * count))
    for index in range(edge_count):
        src = draw(st.sampled_from(oids))
        target = draw(st.sampled_from(oids))
        store.write_pointer(src, f"slot{index % 4}", target)
    root_count = draw(st.integers(min_value=0, max_value=max(1, count // 4)))
    for oid in draw(
        st.lists(st.sampled_from(oids), min_size=root_count, max_size=root_count)
    ):
        store.register_root(oid)
    return store


def _collect_to_fixpoint(store: ObjectStore, collector: CopyingCollector) -> None:
    """Collect every partition until no collection reclaims anything.

    Floating garbage drains one "layer" per round, so a chain of N objects
    needs at most N rounds; bound by the object count for safety.
    """
    for _round in range(len(store.objects) + 2):
        reclaimed = 0
        for pid in range(len(store.partitions)):
            reclaimed += collector.collect(pid).reclaimed_bytes
        if reclaimed == 0:
            return


def _live_oracle(store: ObjectStore) -> set[int]:
    """What must survive: transitively reachable from roots and unlinked pins."""
    return store.reachable_from(store.roots | store.unlinked)


def _expected_fixpoint_survivors(store: ObjectStore) -> set[int]:
    """Greatest fixed point of partitioned collection on the current graph.

    An object survives iff it is reachable *within its partition* from that
    partition's conservative roots: global roots, unlinked pins, and objects
    referenced from surviving objects in other partitions. Iterating from
    "everything survives" downward converges to exactly what repeated
    partition collections leave behind (objects never move between
    partitions and pointers are not mutated by collection)."""
    pointers = {
        oid: [t for t in obj.targets() if t in store.objects]
        for oid, obj in store.objects.items()
    }
    partition_of = {oid: store.placements[oid].partition for oid in store.objects}
    pinned = (store.roots | store.unlinked) & set(store.objects)

    kept = set(store.objects)
    while True:
        new_kept: set[int] = set()
        for partition in store.partitions:
            residents = partition.residents & kept
            if not residents:
                continue
            roots = pinned & residents
            for src in kept:
                if partition_of[src] != partition.pid:
                    roots.update(
                        t for t in pointers[src] if partition_of[t] == partition.pid
                    )
            stack = [oid for oid in roots if oid in residents]
            seen = set(stack)
            while stack:
                oid = stack.pop()
                new_kept.add(oid)
                for target in pointers[oid]:
                    if (
                        target not in seen
                        and partition_of[target] == partition.pid
                        and target in residents
                    ):
                        seen.add(target)
                        stack.append(target)
        if new_kept == kept:
            return kept
        kept = new_kept


@settings(max_examples=40, deadline=None)
@given(object_graphs())
def test_collector_never_reclaims_reachable_objects(store):
    collector = CopyingCollector(store)
    reachable_before = _live_oracle(store)
    _collect_to_fixpoint(store, collector)
    assert reachable_before <= set(store.objects)


@settings(max_examples=40, deadline=None)
@given(object_graphs())
def test_collector_converges_to_exact_partitioned_fixpoint(store):
    """Repeated collection leaves exactly the greatest-fixpoint survivor set:
    all drainable garbage is reclaimed; cross-partition cyclic garbage (the
    documented limitation of partitioned collection) is all that remains."""
    collector = CopyingCollector(store)
    expected = _expected_fixpoint_survivors(store)
    _collect_to_fixpoint(store, collector)
    assert set(store.objects) == expected
    # Sanity: everything globally reachable is part of the fixpoint.
    assert _live_oracle(store) <= expected


@settings(max_examples=40, deadline=None)
@given(object_graphs())
def test_pointers_remain_valid_after_collections(store):
    """After collection, every surviving pointer targets a surviving object
    placed inside its partition's allocated extent."""
    collector = CopyingCollector(store)
    _collect_to_fixpoint(store, collector)
    for oid, obj in store.objects.items():
        placement = store.placements[oid]
        partition = store.partitions[placement.partition]
        assert oid in partition.residents
        assert placement.offset + placement.size <= partition.fill
        for target in obj.targets():
            # Dangling pointers to reclaimed garbage are permitted only from
            # unreachable (dead) sources; live objects never dangle.
            if target not in store.objects:
                assert oid not in _live_oracle(store)


@settings(max_examples=30, deadline=None)
@given(object_graphs())
def test_garbage_accounting_identity(store):
    """TotGarb - TotColl == ActGarb == sum of declared-dead resident bytes."""
    collector = CopyingCollector(store)
    _collect_to_fixpoint(store, collector)
    dead_bytes = sum(obj.size for obj in store.objects.values() if obj.dead)
    assert store.actual_garbage_bytes == dead_bytes
    assert (
        store.garbage.total_generated - store.garbage.total_collected
        == store.actual_garbage_bytes
    )


@settings(max_examples=40, deadline=None)
@given(object_graphs())
def test_global_collection_leaves_exactly_the_reachable_set(store):
    """collect_global reclaims ALL garbage — including cross-partition
    cycles — leaving exactly the globally reachable objects."""
    collector = CopyingCollector(store)
    expected = _live_oracle(store)
    collector.collect_global()
    assert set(store.objects) == expected
