"""Learned estimator: training purity, artifact integrity, registry specs."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import make_estimator
from repro.gc.learned import (
    FEATURE_NAMES,
    FeatureTracker,
    LearnedEstimator,
    LearnedModel,
    ModelError,
    TrainingRow,
    _squash,
    estimator_from_spec,
    model_spec,
    parse_model_spec,
    train_model,
)
from repro.oo7.config import TINY
from repro.sim.cache import spec_fingerprint
from repro.sim.spec import ExperimentSpec, PolicySpec, SimulationConfig, WorkloadSpec
from repro.storage.heap import StoreConfig

WIDTH = len(FEATURE_NAMES)

feature_values = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


@st.composite
def training_rows(draw):
    count = draw(st.integers(min_value=1, max_value=10))
    rows = []
    for _ in range(count):
        features = draw(
            st.lists(feature_values, min_size=WIDTH, max_size=WIDTH)
        )
        target = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        rows.append(TrainingRow(features=tuple(features), target=target))
    return rows


def _simple_rows(count=12):
    rows = []
    for i in range(count):
        features = [1.0] + [0.05 * ((i + j) % 7) for j in range(WIDTH - 1)]
        rows.append(TrainingRow(features=tuple(features), target=0.1 + 0.02 * (i % 5)))
    return rows


# ------------------------------------------------------------- training purity


@settings(deadline=None, max_examples=25)
@given(rows=training_rows(), seed=st.integers(min_value=0, max_value=2**16))
def test_training_is_pure_function_of_rows_and_seed(rows, seed):
    """Same (rows, seed, hyperparameters) → bit-identical model."""
    first, _ = train_model(rows, seed=seed, epochs=5)
    second, _ = train_model(rows, seed=seed, epochs=5)
    assert first.weights == second.weights
    assert first.sha256 == second.sha256


def test_different_seed_changes_initialisation():
    rows = _simple_rows()
    a, _ = train_model(rows, seed=0, epochs=0)
    b, _ = train_model(rows, seed=1, epochs=0)
    assert a.weights != b.weights


def test_training_rejects_empty_rows():
    with pytest.raises(ValueError):
        train_model([])


def test_training_beats_predict_the_mean_on_learnable_data():
    """A linear target must be fit far better than the mean baseline."""
    rows = []
    for i in range(40):
        x = (i % 11) / 10.0
        features = [1.0, x] + [0.0] * (WIDTH - 2)
        rows.append(TrainingRow(features=tuple(features), target=0.1 + 0.6 * x))
    model, report = train_model(rows)
    assert report.mae < report.baseline_mae / 4
    assert model.train_mae == report.mae


# ------------------------------------------------------------- model artifacts


def test_artifact_round_trip(tmp_path):
    model, _ = train_model(_simple_rows(), epochs=10, files=3)
    path = model.save(tmp_path / "m.json")
    loaded = LearnedModel.load(path)
    assert loaded == model
    assert loaded.sha256 == model.sha256


def test_artifact_bytes_are_stable(tmp_path):
    model, _ = train_model(_simple_rows(), epochs=10)
    a = model.save(tmp_path / "a.json").read_bytes()
    b = model.save(tmp_path / "b.json").read_bytes()
    assert a == b


def test_tampered_artifact_raises(tmp_path):
    model, _ = train_model(_simple_rows(), epochs=10)
    path = model.save(tmp_path / "m.json")
    document = json.loads(path.read_text())
    document["weights"][0] += 0.5
    path.write_text(json.dumps(document))
    with pytest.raises(ModelError, match="corrupt"):
        LearnedModel.load(path)


def test_unknown_format_raises(tmp_path):
    path = tmp_path / "m.json"
    path.write_text(json.dumps({"format": 99, "kind": "learned-linear"}))
    with pytest.raises(ModelError, match="format"):
        LearnedModel.load(path)


def test_missing_artifact_raises(tmp_path):
    with pytest.raises(ModelError, match="cannot read"):
        LearnedModel.load(tmp_path / "nope.json")


def test_predict_clips_to_unit_interval():
    big = LearnedModel(weights=tuple([10.0] * WIDTH))
    small = LearnedModel(weights=tuple([-10.0] * WIDTH))
    features = [1.0] * WIDTH
    assert big.predict(features) == 1.0
    assert small.predict(features) == 0.0


# ------------------------------------------------------------------- features


@settings(deadline=None, max_examples=50)
@given(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False))
def test_squash_is_bounded_and_sign_preserving(value):
    squashed = _squash(value)
    assert abs(squashed) < 1.0
    assert squashed == 0.0 or (squashed > 0) == (value > 0)


def test_feature_vector_matches_names_and_stays_finite():
    tracker = FeatureTracker()
    for i in range(1, 6):
        features = tracker.observe(
            overwrite_clock=1000.0 * i,
            reclaimed_bytes=400.0 * i,
            live_bytes=1200.0,
            db_size=50000.0 + 100.0 * i,
            pending_overwrites=30.0,
            partition_count=8.0,
        )
        assert len(features) == WIDTH
        assert all(math.isfinite(x) for x in features)
    assert tracker.count == 5


def test_feature_tracker_is_deterministic():
    def trace():
        tracker = FeatureTracker()
        return [
            tracker.observe(
                overwrite_clock=500.0 * i,
                reclaimed_bytes=100.0 * i,
                live_bytes=900.0,
                db_size=20000.0,
            )
            for i in range(1, 5)
        ]

    assert trace() == trace()


# ------------------------------------------------------------- registry specs


def test_model_spec_round_trips_through_registry(tmp_path):
    model, _ = train_model(_simple_rows(), epochs=10)
    path = model.save(tmp_path / "m.json")
    spec = model_spec(path)
    assert spec == f"learned:{path}@{model.sha256[:12]}"
    parsed_path, digest = parse_model_spec(spec)
    assert parsed_path == str(path)
    assert model.sha256.startswith(digest)
    estimator = make_estimator(spec)
    assert isinstance(estimator, LearnedEstimator)
    assert estimator.model.sha256 == model.sha256


def test_hash_pin_mismatch_raises(tmp_path):
    model, _ = train_model(_simple_rows(), epochs=10)
    path = model.save(tmp_path / "m.json")
    with pytest.raises(ModelError, match="pins"):
        estimator_from_spec(f"learned:{path}@deadbeefdead")


def test_parse_model_spec_errors():
    with pytest.raises(ValueError):
        parse_model_spec("fgs-hb")
    with pytest.raises(ValueError):
        parse_model_spec("learned:")
    assert parse_model_spec("learned:m.json") == ("m.json", None)
    assert parse_model_spec("learned:m.json@abcd") == ("m.json", "abcd")


# ----------------------------------------------------------- cache fingerprints

_TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def _saga_spec(estimator):
    return ExperimentSpec(
        label="fp-check",
        policy=PolicySpec(
            "saga", {"garbage_fraction": 0.15, "estimator": estimator}
        ),
        workload=WorkloadSpec("oo7", {"config": TINY}),
        sim=SimulationConfig(store=_TINY_STORE, preamble_collections=0),
    )


def test_learned_spec_participates_in_fingerprint(tmp_path):
    """Different model content → different fingerprint; same spec → same."""
    model_a, _ = train_model(_simple_rows(), seed=0, epochs=10)
    model_b, _ = train_model(_simple_rows(), seed=1, epochs=10)
    spec_a = model_spec(model_a.save(tmp_path / "a.json"))
    spec_b = model_spec(model_b.save(tmp_path / "b.json"))
    assert spec_fingerprint(_saga_spec(spec_a), seed=0) == spec_fingerprint(
        _saga_spec(spec_a), seed=0
    )
    assert spec_fingerprint(_saga_spec(spec_a), seed=0) != spec_fingerprint(
        _saga_spec(spec_b), seed=0
    )


def test_learned_machinery_does_not_perturb_other_fingerprints(tmp_path):
    """Loading/building learned estimators leaves hand-designed specs alone."""
    before = spec_fingerprint(_saga_spec("fgs-hb"), seed=0)
    model, _ = train_model(_simple_rows(), epochs=10)
    path = model.save(tmp_path / "m.json")
    make_estimator(model_spec(path))
    assert spec_fingerprint(_saga_spec("fgs-hb"), seed=0) == before


# ------------------------------------------------------------- online updates


def _model(seed=0):
    model, _report = train_model(_simple_rows(), seed=seed)
    return model


def _store_with_garbage():
    from repro.storage.heap import ObjectStore

    store = ObjectStore(StoreConfig(page_size=2048, partition_pages=4,
                                    buffer_pages=4))
    root = store.create(size=64)
    store.register_root(root)
    for _ in range(8):
        obj = store.create(size=300)
        store.write_pointer(root, "x", obj)
        store.write_pointer(root, "x", None, dies=[obj])
    return store


def _result(n, reclaimed=900, clock=40):
    from repro.gc.collector import CollectionResult

    return CollectionResult(
        collection_number=n, partition=0, reclaimed_bytes=reclaimed,
        reclaimed_objects=3, live_bytes=600, live_objects=2, gc_reads=4,
        gc_writes=2, pointer_overwrites_at_selection=10,
        overwrite_clock=clock,
    )


def test_online_rate_zero_never_touches_weights():
    store = _store_with_garbage()
    estimator = LearnedEstimator(_model(), online_rate=0.0)
    frozen = estimator.weights
    for n in range(4):
        estimator.observe_collection(_result(n, clock=40 * (n + 1)), store)
    assert estimator.weights == frozen == list(estimator.model.weights)


def test_online_rate_fine_tunes_after_second_observation():
    """The first observation only seeds the feature vector; the SGD step
    needs a (previous features, fresh label) pair."""
    store = _store_with_garbage()
    estimator = LearnedEstimator(_model(), online_rate=0.05)
    initial = estimator.weights
    estimator.observe_collection(_result(0, clock=40), store)
    assert estimator.weights == initial, "no previous features yet"
    estimator.observe_collection(_result(1, clock=80), store)
    assert estimator.weights != initial
    assert list(estimator.model.weights) == initial, (
        "online tuning must not write back into the artifact's weights"
    )


def test_online_updates_are_deterministic():
    def tuned_weights():
        store = _store_with_garbage()
        estimator = LearnedEstimator(_model(), online_rate=0.1)
        for n in range(5):
            estimator.observe_collection(
                _result(n, reclaimed=700 + 50 * n, clock=40 * (n + 1)), store
            )
        return estimator.weights

    assert tuned_weights() == tuned_weights()


def test_online_update_moves_prediction_toward_observed_target():
    store = _store_with_garbage()
    estimator = LearnedEstimator(_model(), online_rate=0.05)
    estimator.observe_collection(_result(0, clock=40), store)
    features = estimator._features
    db = max(store.db_size, 1)
    result = _result(1, clock=80)
    observed = min(
        max(result.reclaimed_bytes * store.partition_count / db, 0.0), 1.0
    )
    before = sum(w * x for w, x in zip(estimator.weights, features))
    estimator.observe_collection(result, store)
    after = sum(w * x for w, x in zip(estimator.weights, features))
    assert abs(after - observed) < abs(before - observed) or before == after


def test_estimate_stays_clipped_under_aggressive_online_rate():
    store = _store_with_garbage()
    estimator = LearnedEstimator(_model(), online_rate=5.0)
    assert estimator.estimate(store) == 0.0, "nothing observed yet"
    for n in range(6):
        estimator.observe_collection(_result(n, clock=40 * (n + 1)), store)
        assert 0.0 <= estimator.estimate(store) <= store.db_size


def test_describe_names_the_online_rate():
    assert LearnedEstimator(_model()).describe().startswith("learned@")
    described = LearnedEstimator(_model(), online_rate=0.25).describe()
    assert described.endswith("+online(0.25)")
