"""Property-based tests: incremental remembered sets vs from-scratch scans.

The contract of :mod:`repro.gc.remembered`: after *any* sequence of store
mutations, the incrementally maintained per-partition frontier (roots,
allocation pins, distinct boundary sources) equals what a full heap scan
recomputes from scratch — and therefore both reachability modes trace the
identical survivor set. Plus the documented conservatism caveat: a
cross-partition garbage cycle is retained by partition collection under
*both* modes and reclaimed only by ``collect_global``.
"""

import pickle
from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gc.collector import CopyingCollector
from repro.gc.remembered import full_scan_frontier
from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.validation import validate_store

CFG = StoreConfig(page_size=128, partition_pages=4, buffer_pages=3)


# ---------------------------------------------------------------------------
# Random mutation sequences
#
# Ops are drawn as abstract (kind, raw indices) tuples and resolved against
# the live object population at application time (modular indexing), so a
# drawn sequence is always applicable regardless of what earlier ops
# created, reclaimed or expunged.
# ---------------------------------------------------------------------------

_IDX = st.integers(min_value=0, max_value=10**6)


@st.composite
def op_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for _ in range(n):
        kind = draw(
            st.sampled_from(
                ("create", "create", "write", "write", "write",
                 "root", "collect", "expunge")
            )
        )
        if kind == "create":
            size = draw(st.integers(min_value=10, max_value=300))
            ops.append(("create", size, draw(_IDX)))
        elif kind == "write":
            target = draw(st.one_of(st.none(), _IDX))
            ops.append(("write", draw(_IDX), draw(st.integers(0, 3)), target))
        else:
            ops.append((kind, draw(_IDX)))
    return ops


def _apply_ops(store, collector, ops):
    """Interpret one abstract op sequence; yields after every applied op."""
    for op in ops:
        kind = op[0]
        live = sorted(store.objects)
        if kind == "create":
            _, size, raw = op
            pointers = None
            if live and raw % 3 == 0:  # sometimes link at birth
                pointers = {"slot0": live[raw % len(live)]}
            store.create(size=size, pointers=pointers)
        elif kind == "write":
            _, raw_src, slot, raw_target = op
            if not live:
                continue
            src = live[raw_src % len(live)]
            target = None if raw_target is None else live[raw_target % len(live)]
            store.write_pointer(src, f"slot{slot}", target)
        elif kind == "root":
            if not live:
                continue
            store.register_root(live[op[1] % len(live)])
        elif kind == "collect":
            if not store.partitions:
                continue
            collector.collect(op[1] % len(store.partitions))
        else:  # expunge: only creation rollbacks, i.e. still-unlinked objects
            pinned = sorted(store.unlinked)
            if not pinned:
                continue
            store.expunge(pinned[op[1] % len(pinned)])
        yield


def _partition_survivor_oracle(store, pid, roots):
    """Independent within-partition reachability (plain DFS, no shared code)."""
    residents = store.partitions[pid].residents
    seen = set()
    stack = [oid for oid in roots if oid in residents]
    while stack:
        oid = stack.pop()
        if oid in seen:
            continue
        seen.add(oid)
        for target in store.objects[oid].targets():
            if target in residents and target not in seen:
                stack.append(target)
    return seen


@settings(max_examples=40, deadline=None)
@given(op_sequences())
def test_incremental_frontier_matches_full_scan_after_every_op(ops):
    """After *every* mutation, the remembered-set frontier (roots and fix-up
    pages) of every partition equals the O(heap) from-scratch recomputation,
    and both frontiers trace the same survivor set."""
    store = ObjectStore(CFG)
    collector = CopyingCollector(store)
    for _ in _apply_ops(store, collector, ops):
        for pid in range(len(store.partitions)):
            scan_roots, scan_pages = full_scan_frontier(store, pid)
            incr_roots = store.partition_roots(pid)
            assert incr_roots == scan_roots
            assert store.external_source_pages(pid) == scan_pages
            assert _partition_survivor_oracle(
                store, pid, incr_roots
            ) == _partition_survivor_oracle(store, pid, scan_roots)


@settings(max_examples=40, deadline=None)
@given(op_sequences())
def test_remembered_index_equals_brute_force_boundary(ops):
    """The index holds exactly the live boundary edges: per partition, each
    external source mapped to its precise count of inward pointer slots —
    no stale entries, no missed edges, and churn totals that reconcile."""
    store = ObjectStore(CFG)
    collector = CopyingCollector(store)
    for _ in _apply_ops(store, collector, ops):
        pass

    expected: dict[int, dict[int, int]] = {}
    for src, obj in store.objects.items():
        src_pid = store.placements[src].partition
        for target in obj.targets():
            placement = store.placements.get(target)
            if placement is None or placement.partition == src_pid:
                continue
            per = expected.setdefault(placement.partition, {})
            per[src] = per.get(src, 0) + 1

    index = store.remembered
    for pid in range(len(store.partitions)):
        assert dict(index.sources_in(pid)) == expected.get(pid, {})
        placed_roots = {
            oid for oid in store.roots
            if store.placements[oid].partition == pid
        }
        placed_pins = {
            oid for oid in store.unlinked
            if store.placements[oid].partition == pid
        }
        assert set(index.roots_in(pid)) == placed_roots
        assert set(index.pins_in(pid)) == placed_pins

    assert index.edges == sum(
        count for per in expected.values() for count in per.values()
    )
    assert index.remembers_total - index.forgets_total == index.edges
    # The validator's remembered-index invariant agrees.
    assert validate_store(store).ok


@settings(max_examples=25, deadline=None)
@given(op_sequences())
def test_both_reachability_modes_reclaim_identically(ops):
    """Replaying one mutation sequence against a ``remembered`` store and a
    ``full`` store — collecting the same partitions at the same points —
    leaves byte-identical heaps and identical garbage accounting."""
    stores = []
    for mode in ("remembered", "full"):
        store = ObjectStore(CFG)
        runner = _apply_ops(store, CopyingCollector(store, reachability=mode), ops)
        for _ in runner:
            pass
        stores.append(store)
    remembered, full = stores
    assert set(remembered.objects) == set(full.objects)
    assert remembered.placements == full.placements
    assert remembered.garbage == full.garbage
    assert remembered.actual_garbage_bytes == full.actual_garbage_bytes


# ---------------------------------------------------------------------------
# The conservatism caveat, pinned down exactly
# ---------------------------------------------------------------------------


def _cyclic_cross_partition_store():
    """Root → A (partition 0) ⇄ B (partition 1), then unlink the cycle.

    300-byte objects in 512-byte partitions force A and B apart; after the
    disconnecting write, A⇄B is a garbage cycle spanning the boundary.
    """
    store = ObjectStore(CFG)
    root = store.create(size=20)
    store.register_root(root)
    a = store.create(size=300)
    b = store.create(size=300)
    assert store.placements[a].partition != store.placements[b].partition
    store.write_pointer(root, "ref", a)
    store.write_pointer(a, "peer", b)
    store.write_pointer(b, "peer", a)
    store.write_pointer(root, "ref", None, dies=(a, b))
    return store, root, a, b


def test_cross_partition_cycle_is_retained_by_both_modes():
    """Partition collection never reclaims a cross-partition garbage cycle:
    each member is remembered-in from the other partition, so it is a
    conservative root there — under the incremental index and under the
    full-scan baseline alike. This is the documented cost of O(partition)
    collection, not a remembered-set defect."""
    for mode in ("remembered", "full"):
        store, root, a, b = _cyclic_cross_partition_store()
        collector = CopyingCollector(store, reachability=mode)
        for _round in range(3):
            for pid in range(len(store.partitions)):
                collector.collect(pid)
        assert set(store.objects) == {root, a, b}, mode
        # The oracle agrees the cycle is garbage — it is *uncollected*, not
        # live: actual garbage stays on the books until a global pass.
        assert store.actual_garbage_bytes == 600
        assert validate_store(store).ok


def test_collect_global_reclaims_the_cycle():
    """The whole-database marking pass is the escape hatch: it sees the
    cycle is unreachable from the true root set and reclaims it."""
    store, root, a, b = _cyclic_cross_partition_store()
    CopyingCollector(store).collect_global()
    assert set(store.objects) == {root}
    assert store.actual_garbage_bytes == 0
    assert validate_store(store).ok


# ---------------------------------------------------------------------------
# Mode A/B on a real experiment cell
# ---------------------------------------------------------------------------


def _run_cell(reachability: str) -> bytes:
    from repro.experiments.common import oo7_spec
    from repro.oo7.config import TINY
    from repro.sim.spec import PolicySpec, build_workload
    from repro.sim.simulator import Simulation

    spec = oo7_spec(PolicySpec("fixed", {"overwrites_per_collection": 40.0}), TINY, 2)
    spec = replace(spec, sim=replace(spec.sim, reachability=reachability))
    policy, _, selection = spec.resolve(0)
    sim = Simulation(policy=policy, selection=selection, config=spec.sim)
    return pickle.dumps(sim.run(build_workload(spec.workload, 0)).summary)


def test_modes_produce_pickle_identical_summaries():
    assert _run_cell("remembered") == _run_cell("full")


def test_reachability_mode_does_not_perturb_fingerprints():
    """The switch is a pure implementation A/B: cached results must be
    shared across modes, so the spec fingerprint ignores ``reachability``."""
    from repro.experiments.common import oo7_spec
    from repro.oo7.config import TINY
    from repro.sim.cache import spec_fingerprint
    from repro.sim.spec import PolicySpec

    spec = oo7_spec(PolicySpec("fixed", {"overwrites_per_collection": 40.0}), TINY, 2)
    prints = {
        spec_fingerprint(replace(spec, sim=replace(spec.sim, reachability=mode)), 0)
        for mode in ("remembered", "full")
    }
    assert len(prints) == 1


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


def test_run_telemetry_carries_remembered_gauges(tmp_path):
    from repro.experiments.common import oo7_spec
    from repro.obs.telemetry import load_telemetry
    from repro.oo7.config import TINY
    from repro.sim.engine import run_experiment
    from repro.sim.spec import PolicySpec

    spec = oo7_spec(PolicySpec("fixed", {"overwrites_per_collection": 40.0}), TINY, 2)
    agg = run_experiment(spec, seeds=[1], jobs=1, telemetry=tmp_path)
    records = load_telemetry(agg.telemetry_paths[0])
    gauges = next(r for r in records if r["type"] == "metrics")["gauges"]
    for key in (
        "gc.remembered.edges",
        "gc.remembered.sources",
        "gc.remembered.roots",
        "gc.remembered.pins",
        "gc.remembered.remembers_total",
        "gc.remembered.forgets_total",
        "gc.remembered.traced_objects_total",
        "gc.remembered.heap_objects_total",
        "gc.remembered.traced_vs_heap",
    ):
        assert key in gauges, key
    assert gauges["gc.remembered.remembers_total"] >= gauges["gc.remembered.edges"]
    assert 0.0 < gauges["gc.remembered.traced_vs_heap"] <= 1.0
