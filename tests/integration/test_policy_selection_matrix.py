"""Integration matrix: every rate policy × every selection policy runs clean.

A cheap but broad safety net: any combination must complete a full OO7 run
with consistent garbage accounting and a valid store — no combination is
allowed to deadlock, thrash to the max_collections guard, or corrupt state.
"""

import pytest

from repro.core.estimators import FgsHbEstimator, OracleEstimator
from repro.core.extensions import CoupledSaioSagaPolicy
from repro.core.fixed import AllocationRatePolicy, FixedRatePolicy
from repro.core.saga import SagaPolicy
from repro.core.saio import UNLIMITED_HISTORY, SaioPolicy
from repro.gc.selection import (
    MostGarbageOracleSelection,
    RandomSelection,
    RoundRobinSelection,
    UpdatedPointerSelection,
)
from repro.oo7.config import TINY
from repro.sim.simulator import Simulation, SimulationConfig
from repro.storage.heap import StoreConfig
from repro.storage.validation import validate_store
from repro.workload.application import Oo7Application

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)

POLICIES = {
    "fixed": lambda: FixedRatePolicy(20),
    "allocation": lambda: AllocationRatePolicy(16 * 1024),
    "saio": lambda: SaioPolicy(io_fraction=0.15, initial_interval=60),
    "saio-hist": lambda: SaioPolicy(
        io_fraction=0.15, c_hist=UNLIMITED_HISTORY, initial_interval=60
    ),
    "saga-oracle": lambda: SagaPolicy(
        garbage_fraction=0.15, estimator=OracleEstimator(), initial_interval=25
    ),
    "saga-fgshb": lambda: SagaPolicy(
        garbage_fraction=0.15, estimator=FgsHbEstimator(0.8), initial_interval=25
    ),
    "coupled": lambda: CoupledSaioSagaPolicy(
        io_fraction=0.15,
        garbage_fraction=0.15,
        estimator=FgsHbEstimator(0.8),
        initial_interval=60,
    ),
}

SELECTIONS = {
    "updated-pointer": lambda: UpdatedPointerSelection(),
    "random": lambda: RandomSelection(seed=3),
    "round-robin": lambda: RoundRobinSelection(),
    "most-garbage": lambda: MostGarbageOracleSelection(),
}


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("selection_name", sorted(SELECTIONS))
def test_combination_runs_clean(policy_name, selection_name):
    sim = Simulation(
        policy=POLICIES[policy_name](),
        selection=SELECTIONS[selection_name](),
        config=SimulationConfig(store=TINY_STORE, preamble_collections=0),
    )
    result = sim.run(Oo7Application(TINY, seed=0).events())
    store = result.store

    assert result.summary.events > 0
    assert store.garbage.undeclared == 0
    assert store.check_death_annotations() == set()
    assert validate_store(store, strict=False).ok
    # Live application state is intact regardless of the combination.
    live = sum(1 for o in store.objects.values() if not o.dead)
    assert live == TINY.expected_object_count
