"""The shipped examples must run clean — they are executable documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_three():
    assert len(EXAMPLES) >= 3


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must produce output"
