"""Integration tests: full trace-driven runs on the tiny OO7 database."""

import pytest

from repro.core.estimators import FgsHbEstimator, OracleEstimator
from repro.core.fixed import FixedRatePolicy
from repro.core.saga import SagaPolicy
from repro.core.saio import SaioPolicy
from repro.gc.selection import RandomSelection, UpdatedPointerSelection
from repro.oo7.config import TINY
from repro.sim.simulator import Simulation, SimulationConfig
from repro.storage.heap import StoreConfig
from repro.workload.application import Oo7Application

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def _run(policy, seed=0, selection=None, **config_kwargs):
    defaults = dict(store=TINY_STORE, preamble_collections=0)
    defaults.update(config_kwargs)
    sim = Simulation(
        policy=policy,
        selection=selection,
        config=SimulationConfig(**defaults),
    )
    return sim.run(Oo7Application(TINY, seed=seed).events())


def test_full_run_preserves_live_database():
    """After a GC-heavy run, the live OO7 structure is fully intact."""
    result = _run(FixedRatePolicy(10))
    store = result.store
    assert result.summary.collections > 10
    # All currently alive application objects are reachable; the only
    # resident unreachable objects are declared garbage awaiting collection.
    reachable = store.reachable_from_roots()
    for oid, obj in store.objects.items():
        assert obj.dead == (oid not in reachable)
    assert store.garbage.undeclared == 0


def test_full_run_live_object_population_is_stationary():
    result = _run(FixedRatePolicy(25))
    expected_live = TINY.expected_object_count
    live = sum(1 for o in result.store.objects.values() if not o.dead)
    assert live == expected_live


def test_more_frequent_collection_leaves_less_garbage():
    frequent = _run(FixedRatePolicy(10)).summary
    sparse = _run(FixedRatePolicy(400)).summary
    assert frequent.final_garbage_fraction < sparse.final_garbage_fraction
    assert frequent.gc_io_total > sparse.gc_io_total


def test_more_frequent_collection_collects_more_garbage():
    """Figure 1b: total garbage collected falls as the rate coarsens."""
    frequent = _run(FixedRatePolicy(20)).summary
    sparse = _run(FixedRatePolicy(500)).summary
    assert frequent.total_reclaimed_bytes > sparse.total_reclaimed_bytes


def test_saio_achieves_requested_io_fraction():
    result = _run(SaioPolicy(io_fraction=0.15, initial_interval=100))
    achieved = result.summary.gc_io_fraction
    assert achieved == pytest.approx(0.15, abs=0.05)


def test_saga_oracle_achieves_requested_garbage_fraction():
    policy = SagaPolicy(garbage_fraction=0.15, estimator=OracleEstimator(), initial_interval=30)
    result = _run(policy, preamble_collections=5)
    achieved = result.summary.garbage_fraction_mean
    assert achieved == pytest.approx(0.15, abs=0.06)


def test_saga_oracle_tracks_target_on_steady_synthetic_workload():
    """On a steady-state workload the oracle-driven SAGA is near-exact
    (sawtooth offset aside) — Figure 5's 'difficult to distinguish from
    perfect accuracy'."""
    from repro.workload.synthetic import SyntheticPhase, SyntheticWorkload

    phase = SyntheticPhase(
        name="steady",
        operations=6000,
        create_weight=1,
        delete_weight=1,
        access_weight=2,
        cluster_size=6,
        object_size=120,
    )
    workload = SyntheticWorkload([phase], seed=0, initial_clusters=250)
    policy = SagaPolicy(garbage_fraction=0.15, estimator=OracleEstimator(), initial_interval=20)
    sim = Simulation(
        policy=policy,
        config=SimulationConfig(store=TINY_STORE, preamble_collections=10),
    )
    result = sim.run(workload.events())
    assert result.summary.garbage_fraction_mean == pytest.approx(0.15, abs=0.02)


@pytest.mark.slow
def test_saga_estimator_quality_ordering_on_oo7():
    """Figure 5's headline ordering on the paper's own workload:
    oracle ≈ target, FGS/HB close with a small systematic bump, CGS/CB far
    off and insensitive to the request."""
    from repro.core.estimators import CgsCbEstimator
    from repro.oo7.config import SMALL_PRIME

    target = 0.10

    def achieved(estimator):
        policy = SagaPolicy(garbage_fraction=target, estimator=estimator)
        sim = Simulation(policy=policy, config=SimulationConfig(preamble_collections=10))
        return sim.run(
            Oo7Application(SMALL_PRIME, seed=1).events()
        ).summary.garbage_fraction_mean

    oracle_error = abs(achieved(OracleEstimator()) - target)
    fgs_error = abs(achieved(FgsHbEstimator(history=0.8)) - target)
    cgs_error = abs(achieved(CgsCbEstimator()) - target)

    assert oracle_error < 0.02
    assert fgs_error < 0.10
    assert oracle_error <= fgs_error < cgs_error


def test_selection_policy_changes_behaviour():
    updated = _run(FixedRatePolicy(25), selection=UpdatedPointerSelection()).summary
    randomised = _run(FixedRatePolicy(25), selection=RandomSelection(seed=1)).summary
    # UPDATEDPOINTER hunts garbage-rich partitions → reclaims at least as much.
    assert updated.total_reclaimed_bytes >= randomised.total_reclaimed_bytes


def test_no_collections_during_traverse():
    """Overwrite-based time stands still through the read-only phase."""
    result = _run(FixedRatePolicy(25), keep_event_series=True)
    boundaries = result.sampler.phase_boundaries
    traverse_start = boundaries["Traverse"]
    reorg2_start = boundaries["Reorg2"]
    in_traverse = [
        r
        for r in result.collections
        if traverse_start < r.event_index <= reorg2_start
    ]
    assert in_traverse == []


def test_determinism_full_pipeline():
    a = _run(SaioPolicy(io_fraction=0.2, initial_interval=60), seed=5)
    b = _run(SaioPolicy(io_fraction=0.2, initial_interval=60), seed=5)
    assert a.summary == b.summary
    assert [r.partition for r in a.collections] == [r.partition for r in b.collections]


def test_gc_io_charged_separately_from_app_io():
    result = _run(FixedRatePolicy(25))
    summary = result.summary
    assert summary.gc_io_total > 0
    assert summary.app_io_total > 0
    iostats = result.store.iostats
    assert iostats.application_total == summary.app_io_total
    assert iostats.collector_total == summary.gc_io_total
