"""Replayable streams: resume exactness and bounded generator state."""

import itertools

import pytest

from repro.events import CreateEvent, PointerWriteEvent
from repro.service.stream import (
    ReplayableStream,
    finite_stream,
    grammar_stream,
    tenant_stream,
)
from repro.workload.grammar import GrammarWorkload
from repro.workload.tenants import make_profile, tenant_mix


def take(stream, n, start=0):
    return list(itertools.islice(stream.events_from(start), n))


def test_finite_stream_replays_identically():
    events = take(grammar_stream(make_profile("oltp-churn"), seed=1), 500)
    stream = finite_stream(events, label="t")
    assert take(stream, 500) == events
    assert take(stream, 500) == events  # factory restarts, not one-shot


def test_events_from_negative_rejected():
    stream = finite_stream([], label="t")
    with pytest.raises(ValueError):
        stream.events_from(-1)


@pytest.mark.parametrize("start", [0, 1, 997, 5000])
def test_grammar_stream_resumes_at_exact_index(start):
    stream = grammar_stream(make_profile("oltp-churn"), seed=9)
    full = take(stream, start + 300)
    resumed = take(stream, 300, start=start)
    assert resumed == full[start:]


def test_tenant_stream_resumes_at_exact_index():
    config = tenant_mix(["oltp-churn", "read-browse"], scale=0.5)
    stream = tenant_stream(config, seed=4)
    full = take(stream, 4000)
    assert take(stream, 1500, start=2500) == full[2500:]


def test_grammar_stream_bounds_generator_state():
    workload = GrammarWorkload(make_profile("oltp-churn"), seed=3)
    consumed = 0
    for _event in workload.stream(max_live_clusters=16):
        consumed += 1
        if consumed >= 30_000:
            break
    # Live clusters capped, per-oid size tracking off: O(1) in the stream.
    assert len(workload.clusters) <= 16
    assert workload.object_sizes == {}


def test_grammar_stream_recycles_registry_slots():
    """Unbounded streams must not mint one registry slot per cluster ever.

    Slot reuse keeps the registry object's pointer dictionary (and hence
    the modelled store) bounded: after tens of thousands of events the
    slot counter must stay within the live-cluster cap plus setup slack,
    not grow linearly with churn.
    """
    workload = GrammarWorkload(make_profile("oltp-churn"), seed=3)
    creates = 0
    for event in workload.stream(max_live_clusters=16):
        if isinstance(event, CreateEvent):
            creates += 1
        if creates >= 10_000:
            break
    assert workload._next_slot <= 16 + workload.config.initial_clusters + 1
    assert len(workload._free_slots) <= workload._next_slot


def test_finite_mode_does_not_recycle_slots():
    """The one-shot trace keeps its historical slot naming (A/B stability)."""
    workload = GrammarWorkload(make_profile("oltp-churn"), seed=3)
    events = list(workload.events())
    slots = {
        e.slot
        for e in events
        if isinstance(e, PointerWriteEvent) and e.target is not None
    }
    assert workload._free_slots == []
    assert workload._next_slot >= len(slots) - 1  # registry link slots


def test_replayable_stream_material_is_plain_data():
    stream = grammar_stream(make_profile("read-browse"), seed=2)
    assert stream.material["kind"] == "grammar"
    assert stream.material["seed"] == 2
    assert stream.label == "read-browse"
    assert ReplayableStream(factory=list, label="x").material == {}
