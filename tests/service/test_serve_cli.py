"""``python -m repro serve`` end-to-end, including the soak posture."""

import json

from repro.cli import main
from repro.faults.plan import FaultPlan, FaultSpec


def _plan_file(tmp_path):
    plan = FaultPlan(
        faults=(
            FaultSpec(site="tx.commit", at=900),
            FaultSpec(site="io.write", at=4000),
            FaultSpec(site="gc.collect", at=4),
        ),
        seed=11,
    )
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    return path


def test_serve_bounded_run(capsys):
    rc = main([
        "serve", "--workload", "oltp-churn", "--policy", "fixed:200",
        "--max-events", "5000", "--checkpoint-every", "2000", "--seed", "5",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "stopped: max-events after 5000 events" in out
    assert "state digest:" in out
    assert "resume index: 5000" in out


def test_serve_json_report(capsys):
    rc = main([
        "serve", "--workload", "read-browse", "--policy", "saga:0.3",
        "--max-events", "4000", "--json", "--seed", "2",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["events_seen"] == 4000
    assert payload["stopped"] == "max-events"
    assert len(payload["final_digest"]) == 64


def test_serve_multi_tenant_with_backpressure(capsys):
    rc = main([
        "serve", "--tenants", "oltp-churn,read-browse", "--scale", "0.5",
        "--policy", "fixed:200", "--max-events", "8000",
        "--max-heap-bytes", "12000", "--backpressure", "shed",
        "--json", "--seed", "3",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["heap_peak_bytes"] <= 12_000
    assert payload["backpressure"]["engaged"] > 0


def test_soak_cli_round_trips_through_metrics(tmp_path, capsys):
    telemetry = tmp_path / "soak.jsonl"
    rc = main([
        "serve", "--workload", "oltp-churn", "--policy", "fixed:200",
        "--soak", "--faults", str(_plan_file(tmp_path)),
        "--max-events", "20000", "--checkpoint-every", "4000",
        "--telemetry", str(telemetry), "--seed", "5", "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["crashes"] == 3
    assert payload["matches_reference"] is True
    assert payload["suffix_only"] is True

    # The telemetry written by the soak must round-trip through the
    # metrics CLI (the ISSUE's `repro metrics` acceptance check).
    rc = main(["metrics", str(telemetry)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "soak" in out
    assert "crash" in out


def test_soak_requires_faults_and_bounds(capsys):
    assert main(["serve", "--soak", "--max-events", "100"]) == 2
    assert "requires --faults" in capsys.readouterr().err
    assert main(["serve", "--soak", "--faults", "x.json"]) == 2
    assert "requires --max-events" in capsys.readouterr().err
