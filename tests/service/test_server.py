"""GcService: parity with plain simulation, checkpoints, graceful shutdown."""

import dataclasses
import itertools

import pytest

from repro.faults.drill import state_digest
from repro.service.config import ServiceConfig
from repro.service.server import GcService
from repro.service.stream import ReplayableStream, finite_stream, grammar_stream
from repro.sim.simulator import Simulation, SimulationConfig
from repro.sim.spec import PolicySpec, build_policy
from repro.workload.tenants import make_profile

POLICY = PolicySpec("fixed", {"overwrites_per_collection": 200.0})


def _events(n=8000, seed=7):
    stream = grammar_stream(make_profile("oltp-churn"), seed=seed)
    return list(itertools.islice(stream.events_from(), n))


def _service(stream, **knobs):
    defaults = dict(max_events=8000, checkpoint_every_events=2000)
    defaults.update(knobs)
    return GcService(
        policy=build_policy(POLICY, 7),
        stream=stream,
        service=ServiceConfig(**defaults),
    )


def test_service_matches_plain_simulation():
    """The service loop is the simulation loop plus durability plumbing.

    Over the same finite event sequence (backpressure off), the committed
    reachable state must be byte-identical to a redo-logging Simulation's.
    """
    events = _events()
    service = _service(finite_stream(events))
    report = service.run()

    sim = Simulation(
        policy=build_policy(POLICY, 7),
        config=SimulationConfig(enable_redo_log=True, enable_wal=True),
    )
    sim.run(events)

    assert report.events_applied == len(events)
    assert report.final_digest == state_digest(sim.store)


def test_checkpoints_truncate_the_log():
    events = _events()
    service = _service(finite_stream(events))
    report = service.run()
    # 8000 events / 2000 cadence = 3 interior checkpoints + 1 final.
    assert report.checkpoints >= 4
    assert report.log_suffix_length == 0  # final checkpoint flushed
    assert report.log_truncated_total > 0
    assert report.wal["checkpoints"] == report.checkpoints
    log = service.sim.redo_log
    assert log.checkpoints_installed == report.checkpoints
    assert log.last_checkpoint() is not None


def test_max_log_records_forces_early_checkpoint():
    events = _events(4000)
    service = _service(
        finite_stream(events),
        max_events=4000,
        checkpoint_every_events=1_000_000,  # cadence never fires
        max_log_records=500,
    )
    report = service.run()
    assert report.checkpoints > 1  # backlog bound forced interior ones
    assert service.sim.redo_log.suffix_length == 0


def test_graceful_shutdown_drains_and_resumes():
    """Shutdown stops at a quiescent point; a successor resumes exactly."""
    events = _events()
    trigger_at = 3111
    holder = {}

    def factory():
        def gen():
            for index, event in enumerate(events):
                if index == trigger_at:
                    holder["svc"].request_shutdown()
                yield event

        return gen()

    stream = ReplayableStream(factory=factory, label="shutdown-test")
    first = _service(stream, max_events=None)
    holder["svc"] = first
    report = first.run()
    assert report.stopped == "shutdown"
    assert trigger_at <= report.events_seen < len(events)
    assert report.log_suffix_length == 0  # final checkpoint covered it all

    # A fresh service resumes from next_index over the same underlying
    # events and must land on the full-run digest.
    rest = finite_stream(events, label="rest")
    second = GcService(
        policy=build_policy(POLICY, 7),
        stream=rest,
        service=ServiceConfig(max_events=None),
        store=None,
        redo_log=first.sim.redo_log,
    )
    # Recover exactly as a restart would: from the final checkpoint.
    from repro.tx.recovery import recover_with_info

    recovered, info = recover_with_info(first.sim.redo_log)
    assert info.from_checkpoint
    assert info.records_replayed == 0  # nothing after the final checkpoint
    second = GcService(
        policy=build_policy(POLICY, 7),
        stream=rest,
        service=ServiceConfig(max_events=None),
        store=recovered,
        redo_log=first.sim.redo_log,
    )
    second.run(start_index=report.next_index)

    reference = _service(finite_stream(events))
    ref_report = reference.run()
    assert state_digest(second.sim.store) == ref_report.final_digest


def test_pacing_is_wall_clock_only():
    events = _events(600)
    paced = _service(
        finite_stream(events), max_events=600, target_ops_per_s=20_000.0
    )
    unpaced = _service(finite_stream(events), max_events=600)
    paced_report = paced.run()
    unpaced_report = unpaced.run()
    assert paced_report.final_digest == unpaced_report.final_digest
    assert paced_report.paced_sleep_s > 0.0


def test_service_forces_redo_and_wal_on():
    service = GcService(
        policy=build_policy(POLICY, 7),
        stream=finite_stream([]),
        sim_config=SimulationConfig(enable_redo_log=False, enable_wal=False),
    )
    assert service.sim.redo_log is not None
    assert service.sim.tx.wal is not None


def test_service_config_validation():
    with pytest.raises(ValueError):
        ServiceConfig(target_ops_per_s=0.0)
    with pytest.raises(ValueError):
        ServiceConfig(checkpoint_every_events=0)
    with pytest.raises(ValueError):
        ServiceConfig(max_log_records=0)
    with pytest.raises(ValueError):
        ServiceConfig(max_heap_bytes=0)
    with pytest.raises(ValueError):
        ServiceConfig(backpressure="drop")
    with pytest.raises(ValueError):
        ServiceConfig(max_events=-1)
    frozen = ServiceConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        frozen.backpressure = "shed"
