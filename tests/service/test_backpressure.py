"""Backpressure: the heap bound is an invariant, degradation is observable."""

import json

import pytest

from repro.service.backpressure import AdmissionController, BackpressureStats
from repro.service.config import ServiceConfig
from repro.service.server import GcService
from repro.service.stream import grammar_stream
from repro.sim.spec import PolicySpec, build_policy
from repro.storage.heap import ObjectStore, StoreConfig
from repro.workload.tenants import make_profile

POLICY = PolicySpec("fixed", {"overwrites_per_collection": 200.0})


def _store_with(nbytes):
    store = ObjectStore(StoreConfig())
    if nbytes:
        store.create(size=nbytes)
    return store


class TestAdmissionController:
    def test_admits_when_it_fits(self):
        store = _store_with(0)
        controller = AdmissionController(10_000, "shed", lambda: False)
        assert controller.admit(store, 512)
        assert controller.stats == BackpressureStats()

    def test_forces_collections_until_it_fits(self):
        store = ObjectStore(StoreConfig())
        oid = store.create(size=800)
        freed = []

        def collect_once():
            # Model a collection that reclaims the pre-existing object.
            if not freed:
                store.declare_dead(oid)
                pid = store.placements[oid].partition
                survivors = sorted(
                    o for o in store.partitions[pid].residents if o != oid
                )
                store.compact_partition(pid, survivors)
                freed.append(True)
                return True
            return False

        controller = AdmissionController(1000, "shed", collect_once)
        assert controller.admit(store, 900)
        assert controller.stats.engaged == 1
        assert controller.stats.forced_collections == 1

    def test_sheds_when_collection_stops_reclaiming(self):
        store = _store_with(900)
        controller = AdmissionController(1000, "shed", lambda: False)
        assert not controller.admit(store, 900)
        assert controller.stats.engaged == 1
        assert controller.stats.forced_collections == 1  # stopped at no-gain

    def test_delay_mode_counts_delays(self):
        store = _store_with(900)
        controller = AdmissionController(
            1000, "delay", lambda: False, max_forced_collections=3
        )
        assert not controller.admit(store, 900)
        assert controller.stats.delays == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(0, "shed", lambda: False)
        with pytest.raises(ValueError):
            AdmissionController(100, "off", lambda: False)


def _overloaded_service(bound, telemetry=None, mode="shed"):
    obs = None
    if telemetry is not None:
        from repro.obs.telemetry import RunTelemetry

        obs = RunTelemetry(telemetry, kind="service", label="overload")
    return GcService(
        policy=build_policy(POLICY, 3),
        stream=grammar_stream(make_profile("oltp-churn"), seed=3),
        service=ServiceConfig(
            max_events=15_000,
            checkpoint_every_events=5_000,
            max_heap_bytes=bound,
            backpressure=mode,
        ),
        obs=obs,
    ), obs


def test_overload_never_exceeds_heap_bound():
    """The acceptance property: bounded heap, visible shed counters."""
    bound = 12_000  # far below the workload's natural live set
    service, _ = _overloaded_service(bound)
    report = service.run()
    assert report.heap_peak_bytes <= bound
    assert report.backpressure.engaged > 0
    assert report.backpressure.shed_events > 0
    assert report.backpressure.shed_objects > 0
    assert report.backpressure.forced_collections > 0
    # Shed work is skipped, not applied: seen > applied.
    assert report.events_applied < report.events_seen


def test_generous_bound_forces_collections_without_shedding():
    service, _ = _overloaded_service(60_000)
    report = service.run()
    assert report.heap_peak_bytes <= 60_000
    assert report.backpressure.shed_events == 0
    assert report.events_applied == report.events_seen


def test_degradation_counters_surface_in_telemetry(tmp_path):
    path = tmp_path / "svc.jsonl"
    service, obs = _overloaded_service(12_000, telemetry=path)
    service.run()
    obs.close()
    metrics = {}
    for line in path.read_text().splitlines():
        record = json.loads(line)
        if record.get("type") == "metrics":
            metrics = {**record.get("counters", {}), **record.get("gauges", {})}
    assert metrics["service.backpressure.shed_events"] > 0
    assert metrics["service.backpressure.engaged"] > 0
    assert metrics["service.checkpoints"] > 0
    assert metrics["service.heap_peak_bytes"] <= 12_000


def test_shed_cascade_keeps_stream_coherent():
    """Events referencing shed objects are skipped, never applied.

    If the cascade leaked, the store would fault on a pointer write whose
    source or target was never created — completing the run is the proof.
    """
    service, _ = _overloaded_service(8_000)
    report = service.run()
    assert report.backpressure.shed_events > report.backpressure.shed_objects
    # The ledger prunes on death annotations; it must not grow unboundedly.
    assert len(service._shed_oids) < 5_000
