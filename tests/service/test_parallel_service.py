"""Service mode with the partition-parallel collector.

The service admits stream events one at a time, pumping speculative
traces between events and falling back to stop-the-world collections
under backpressure (``_forced_collect`` bypasses the pump). Every
shedding decision, counter and checkpoint must be identical to the
serial collector's.
"""

import dataclasses

import pytest

from repro.service.server import GcService, ServiceConfig
from repro.service.stream import grammar_stream
from repro.sim.simulator import SimulationConfig
from repro.sim.spec import PolicySpec, build_policy
from repro.workload.tenants import make_profile


def _report(collection, gc_workers, *, backpressure=None):
    service_kwargs = dict(max_events=15_000, checkpoint_every_events=5_000)
    if backpressure:
        service_kwargs.update(max_heap_bytes=12_000, backpressure=backpressure)
    service = GcService(
        policy=build_policy(
            PolicySpec("fixed", {"overwrites_per_collection": 200.0}), 3
        ),
        stream=grammar_stream(make_profile("oltp-churn"), seed=3),
        sim_config=SimulationConfig(
            collection=collection, gc_workers=gc_workers
        ),
        service=ServiceConfig(**service_kwargs),
    )
    report = service.run()
    fields = dataclasses.asdict(report)
    fields.pop("wall_s")
    fields.pop("paced_sleep_s")
    return fields


@pytest.mark.parametrize("workers", [1, 4])
def test_service_report_identical_to_serial(workers):
    assert _report("parallel", workers) == _report("serial", 1)


@pytest.mark.parametrize("workers", [1, 4])
def test_service_backpressure_identical_to_serial(workers):
    """Forced collections run stop-the-world immediately — shedding
    decisions must not shift by a single event."""
    serial = _report("serial", 1, backpressure="shed")
    assert serial["backpressure"]["shed_events"] > 0, "the drill must shed"
    assert _report("parallel", workers, backpressure="shed") == serial
