"""Crash-soak drills: byte-identity across repeated crash/recover cycles."""

import json
import os

import pytest

from repro.faults.plan import FaultPlan, FaultSpec
from repro.service.config import ServiceConfig
from repro.service.soak import run_soak_drill
from repro.service.stream import grammar_stream, tenant_stream
from repro.sim.spec import PolicySpec
from repro.workload.tenants import make_profile, tenant_mix

FIXED = PolicySpec("fixed", {"overwrites_per_collection": 200.0})
SAGA = PolicySpec("saga", {"garbage_fraction": 0.3})

#: Three crash sites spread across the event loop: a commit force, a raw
#: page write, and a collection — the plan used by the standard small soak.
PLAN = FaultPlan(
    faults=(
        FaultSpec(site="tx.commit", at=1500),
        FaultSpec(site="io.write", at=6000),
        FaultSpec(site="gc.collect", at=5),
    ),
    seed=3,
)


def _stream(seed=7):
    return grammar_stream(
        make_profile("oltp-churn"), seed=seed, max_live_clusters=64
    )


def test_soak_recovers_byte_identical():
    report = run_soak_drill(
        _stream(),
        FIXED,
        seed=7,
        service=ServiceConfig(max_events=20_000, checkpoint_every_events=4_000),
        plan=PLAN,
    )
    assert report.crashes == 3
    assert report.matches_reference
    assert report.suffix_only
    assert report.checkpoints >= 3
    assert report.final_segment is not None
    assert report.final_segment.next_index == 20_000
    assert {r.site for r in report.recoveries} == {f.site for f in PLAN.faults}


def test_post_checkpoint_recovery_replays_only_the_suffix():
    report = run_soak_drill(
        _stream(),
        FIXED,
        seed=7,
        service=ServiceConfig(max_events=20_000, checkpoint_every_events=4_000),
        plan=PLAN,
    )
    checkpointed = [r for r in report.recoveries if r.from_checkpoint]
    assert checkpointed, "at least one crash must land after a checkpoint"
    for recovery in checkpointed:
        assert recovery.records_replayed < recovery.log_appended_total
        assert recovery.checkpoint_event_index > 0
        assert recovery.resume_index >= recovery.checkpoint_event_index


def test_soak_over_multi_tenant_stream():
    stream = tenant_stream(
        tenant_mix(["oltp-churn", "read-browse"], scale=0.5),
        seed=11,
        max_live_clusters=64,
    )
    report = run_soak_drill(
        stream,
        SAGA,
        seed=11,
        service=ServiceConfig(max_events=15_000, checkpoint_every_events=3_000),
        plan=FaultPlan(
            # Thresholds sized to the stream: the buffer cache absorbs most
            # reads (~66 io.read hits over 15k events) and most writes go
            # through the WAL, not page write-back (~47 page.write hits).
            faults=(
                FaultSpec(site="io.read", at=40),
                FaultSpec(site="tx.begin", at=2000),
                FaultSpec(site="page.write", at=30),
            ),
            seed=5,
        ),
    )
    assert report.crashes == 3
    assert report.matches_reference
    assert report.suffix_only


def test_soak_with_repeating_probabilistic_crashes():
    report = run_soak_drill(
        _stream(seed=13),
        FIXED,
        seed=13,
        service=ServiceConfig(max_events=12_000, checkpoint_every_events=2_500),
        plan=FaultPlan(
            faults=(
                FaultSpec(site="tx.commit", probability=0.002, repeat=True),
            ),
            seed=29,
        ),
        max_crashes=64,
    )
    assert report.crashes >= 3
    assert report.matches_reference
    assert report.suffix_only


def test_soak_telemetry_records_the_timeline(tmp_path):
    path = tmp_path / "soak.jsonl"
    report = run_soak_drill(
        _stream(),
        FIXED,
        seed=7,
        service=ServiceConfig(max_events=20_000, checkpoint_every_events=4_000),
        plan=PLAN,
        telemetry=path,
    )
    assert report.matches_reference
    kinds = [json.loads(line).get("type") for line in path.read_text().splitlines()]
    names = [
        json.loads(line).get("name")
        for line in path.read_text().splitlines()
        if json.loads(line).get("type") == "event"
    ]
    assert "metrics" in kinds
    assert names.count("crash") == 3
    assert names.count("recovered") == 3
    assert "soak_complete" in names


def test_soak_validation():
    with pytest.raises(ValueError, match="FaultPlan"):
        run_soak_drill(_stream(), FIXED)
    with pytest.raises(ValueError, match="max_events"):
        run_soak_drill(
            _stream(),
            FIXED,
            service=ServiceConfig(max_events=None),
            plan=PLAN,
        )
    with pytest.raises(ValueError, match="backpressure"):
        run_soak_drill(
            _stream(),
            FIXED,
            service=ServiceConfig(
                max_events=1000,
                max_heap_bytes=10_000,
                backpressure="shed",
            ),
            plan=PLAN,
        )


def test_unbounded_crash_plan_is_rejected():
    with pytest.raises(RuntimeError, match="max_crashes"):
        run_soak_drill(
            _stream(),
            FIXED,
            seed=7,
            service=ServiceConfig(max_events=8_000),
            plan=FaultPlan(
                faults=(FaultSpec(site="tx.commit", at=50, repeat=True),),
            ),
            max_crashes=4,
        )


@pytest.mark.skipif(
    not os.environ.get("REPRO_SOAK_1M"),
    reason="million-event soak: set REPRO_SOAK_1M=1 (takes ~2-4 min)",
)
def test_million_event_soak():
    """The acceptance-criteria soak: >=1M events, >=3 mid-stream crashes."""
    report = run_soak_drill(
        _stream(seed=1),
        FIXED,
        seed=1,
        service=ServiceConfig(
            max_events=1_000_000, checkpoint_every_events=100_000
        ),
        plan=FaultPlan(
            # ~0.31 io.writes per event: at=250k fires around event 800k.
            faults=(
                FaultSpec(site="tx.commit", at=150_000),
                FaultSpec(site="io.write", at=250_000),
                FaultSpec(site="gc.collect", at=400),
            ),
            seed=3,
        ),
    )
    assert report.crashes >= 3
    assert report.matches_reference
    assert report.suffix_only
    checkpointed = [r for r in report.recoveries if r.from_checkpoint]
    assert checkpointed
    for recovery in checkpointed:
        assert recovery.records_replayed < recovery.log_appended_total
