"""The observability layer's core contract: telemetry only observes.

With telemetry on or off, run summaries must be pickle-equal, result-cache
fingerprints must be unchanged, and cached results must be byte-identical —
including under a fault-injected crash-recovery drill.
"""

import pickle

import pytest

from repro.sim.cache import ResultCache, spec_fingerprint
from repro.sim.engine import run_experiment

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    HAVE_HYPOTHESIS = False

from obs_helpers import make_tiny_spec


def _summaries(spec, seeds, **kwargs):
    agg = run_experiment(spec, seeds=seeds, jobs=1, **kwargs)
    assert agg.summaries, "tiny spec must simulate successfully"
    return agg


def test_summaries_pickle_equal_with_telemetry_on_and_off(tmp_path):
    spec = make_tiny_spec()
    plain = _summaries(spec, [1, 2])
    observed = _summaries(spec, [1, 2], telemetry=tmp_path)
    assert pickle.dumps(plain.summaries) == pickle.dumps(observed.summaries)
    assert plain.stats.failures == observed.stats.failures
    # Only the observed run carries telemetry paths.
    assert plain.telemetry_paths == []
    assert len(observed.telemetry_paths) == 2


def test_fingerprints_do_not_mention_telemetry():
    spec = make_tiny_spec()
    # spec_fingerprint is a pure function of (spec, seed); the telemetry
    # destination is engine state, not spec state, so the same spec always
    # fingerprints identically. Guard against future regressions where a
    # telemetry field leaks into the spec material.
    assert spec_fingerprint(spec, 1) == spec_fingerprint(make_tiny_spec(), 1)
    from repro.sim.spec import spec_material

    assert "telemetry" not in str(spec_material(spec, seed=1))


def test_cache_entries_identical_with_telemetry_on_and_off(tmp_path):
    spec = make_tiny_spec()
    cache_off = ResultCache(tmp_path / "off")
    cache_on = ResultCache(tmp_path / "on")
    _summaries(spec, [3], cache=cache_off)
    _summaries(spec, [3], cache=cache_on, telemetry=tmp_path / "tel")
    key = spec_fingerprint(spec, 3)
    entry_off = cache_off.get(key)
    entry_on = cache_on.get(key)
    assert entry_off is not None and entry_on is not None
    assert pickle.dumps(entry_off.summary) == pickle.dumps(entry_on.summary)


def test_cache_hits_skip_telemetry_files(tmp_path):
    spec = make_tiny_spec()
    cache = ResultCache(tmp_path / "cache")
    tel = tmp_path / "tel"
    _summaries(spec, [4], cache=cache, telemetry=tel)
    first_runs = {p.name for p in tel.glob("run_*.jsonl")}
    assert len(first_runs) == 1
    # Second invocation: answered from the cache; no new run file, only a
    # new engine batch file.
    again = _summaries(spec, [4], cache=cache, telemetry=tel)
    assert {p.name for p in tel.glob("run_*.jsonl")} == first_runs
    assert again.telemetry_paths == []
    assert len(list(tel.glob("engine_*.jsonl"))) == 2


def test_drill_reports_identical_with_telemetry_on_and_off(tmp_path):
    from repro.experiments.drill_exp import run_drill

    plain = run_drill(seeds=[0])
    observed = run_drill(seeds=[0], telemetry=tmp_path)
    report_plain = plain.reports[0]
    report_observed = observed.reports[0]
    assert pickle.dumps(report_plain) == pickle.dumps(report_observed)
    assert report_observed.matches_reference
    assert list(tmp_path.glob("run_000_drill_s0.jsonl"))


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        rate=st.sampled_from([20.0, 40.0, 80.0]),
    )
    def test_property_observed_run_matches_plain_run(tmp_path, seed, rate):
        spec = make_tiny_spec(label="obs-prop", rate=rate)
        plain = _summaries(spec, [seed])
        observed = _summaries(spec, [seed], telemetry=tmp_path / str(seed))
        assert pickle.dumps(plain.summaries) == pickle.dumps(
            observed.summaries
        )
        assert spec_fingerprint(spec, seed) == spec_fingerprint(
            make_tiny_spec(label="obs-prop", rate=rate), seed
        )

else:  # pragma: no cover

    @pytest.mark.skip(reason="hypothesis not installed")
    def test_property_observed_run_matches_plain_run():
        pass
