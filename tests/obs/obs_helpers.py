"""Spec factory shared by the observability tests (importable by name)."""

from repro.oo7.config import TINY
from repro.sim.spec import ExperimentSpec, PolicySpec, SimulationConfig, WorkloadSpec
from repro.storage.heap import StoreConfig

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def make_tiny_spec(label: str = "obs-tiny", rate: float = 40.0) -> ExperimentSpec:
    return ExperimentSpec(
        label=label,
        policy=PolicySpec("fixed", {"overwrites_per_collection": rate}),
        workload=WorkloadSpec("oo7", {"config": TINY}),
        sim=SimulationConfig(store=TINY_STORE, preamble_collections=0),
    )
