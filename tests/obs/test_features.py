"""Telemetry → feature-matrix reader, and the train/serve skew contract."""

import json

import pytest

from repro.core.saga import SagaPolicy
from repro.gc.learned import (
    FEATURE_NAMES,
    FeatureTracker,
    LearnedEstimator,
    LearnedModel,
)
from repro.obs.features import collection_rows, load_training_rows
from repro.obs.telemetry import TelemetryError
from repro.oo7.config import TINY
from repro.sim.engine import run_experiment_batch
from repro.sim.simulator import Simulation, SimulationConfig
from repro.storage.heap import StoreConfig
from repro.workload.application import Oo7Application

from obs_helpers import make_tiny_spec


def _record(number=1, **overrides):
    base = {
        "type": "collection",
        "number": number,
        "overwrite_clock": 100.0 * number,
        "reclaimed_bytes": 500,
        "live_bytes": 1500,
        "db_size": 10000,
        "pending_overwrites": 40,
        "partition_count": 8,
        "actual_garbage_fraction": 0.25,
    }
    base.update(overrides)
    return base


def test_collection_rows_skips_non_collection_and_unlabelled():
    records = [
        {"type": "meta", "format": 1},
        _record(1),
        _record(2, actual_garbage_fraction=None),
        {"type": "metrics"},
        _record(3),
    ]
    rows = collection_rows(records, source="t.jsonl")
    assert [row.collection for row in rows] == [1, 3]
    assert all(row.source == "t.jsonl" for row in rows)
    assert all(len(row.features) == len(FEATURE_NAMES) for row in rows)
    assert all(row.target == 0.25 for row in rows)


def test_collection_rows_matches_a_directly_driven_tracker():
    records = [_record(i, reclaimed_bytes=120 * i) for i in range(1, 6)]
    rows = collection_rows(records)
    tracker = FeatureTracker()
    for record, row in zip(records, rows):
        expected = tracker.observe(
            overwrite_clock=float(record["overwrite_clock"]),
            reclaimed_bytes=float(record["reclaimed_bytes"]),
            live_bytes=float(record["live_bytes"]),
            db_size=float(record["db_size"]),
            pending_overwrites=float(record["pending_overwrites"]),
            partition_count=float(record["partition_count"]),
        )
        assert list(row.features) == expected


def test_pre_format_records_default_new_fields_to_zero():
    record = _record(1)
    del record["pending_overwrites"]
    del record["partition_count"]
    (row,) = collection_rows([record])
    assert len(row.features) == len(FEATURE_NAMES)


def test_non_numeric_field_raises():
    with pytest.raises(TelemetryError, match="db_size"):
        collection_rows([_record(1, db_size="big")])


def test_live_features_match_telemetry_replay():
    """The skew contract: the deployed estimator's per-collection feature
    vectors are bitwise equal to what the telemetry reader reconstructs
    from that run's collection records (via a JSON round-trip, as the
    training pipeline would see them)."""
    # A constant bias weight makes the deployed model predict a steady 30%
    # garbage fraction, so SAGA keeps scheduling collections to observe.
    model = LearnedModel(
        weights=tuple([0.3] + [0.0] * (len(FEATURE_NAMES) - 1))
    )
    estimator = LearnedEstimator(model, keep_trace=True)
    policy = SagaPolicy(
        garbage_fraction=0.15, estimator=estimator, initial_interval=20
    )
    store = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)
    sim = Simulation(
        policy=policy,
        config=SimulationConfig(store=store, preamble_collections=0),
    )
    result = sim.run(Oo7Application(TINY, seed=0).events())
    records = result.collections
    assert len(records) >= 3

    telemetry_style = [
        json.loads(
            json.dumps(
                {
                    "type": "collection",
                    "number": r.number,
                    "overwrite_clock": r.overwrite_clock,
                    "reclaimed_bytes": r.reclaimed_bytes,
                    "live_bytes": r.live_bytes,
                    "db_size": r.db_size,
                    "pending_overwrites": r.pending_overwrites,
                    "partition_count": r.partition_count,
                    "actual_garbage_fraction": r.actual_garbage_fraction,
                }
            )
        )
        for r in records
    ]
    rows = collection_rows(telemetry_style)
    assert len(rows) == len(estimator.feature_trace)
    for row, live in zip(rows, estimator.feature_trace):
        assert list(row.features) == live


def test_load_training_rows_from_engine_telemetry(tmp_path):
    """End to end: engine telemetry → deterministic feature matrix."""
    tel = tmp_path / "tel"
    run_experiment_batch(
        [make_tiny_spec(label="features-e2e")],
        seeds=[0],
        jobs=1,
        cache=None,
        telemetry=tel,
    )
    matrix = load_training_rows([tel])
    assert matrix.rows
    assert matrix.files  # the run_*.jsonl file contributed
    assert matrix.skipped  # the engine_*.jsonl file has no GC timeline
    again = load_training_rows([tel, tel])  # duplicates are dropped
    assert again.rows == matrix.rows
    assert again.files == matrix.files


def test_load_training_rows_raises_on_malformed_file(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("{not json\n")
    with pytest.raises(TelemetryError):
        load_training_rows([bad])
