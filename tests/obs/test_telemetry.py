"""RunTelemetry files: schema, atomic writes, loading, integration."""

import json

import pytest

from repro.obs.telemetry import (
    TELEMETRY_FORMAT,
    RunTelemetry,
    TelemetryError,
    iter_telemetry_files,
    load_telemetry,
    run_telemetry_path,
)


def test_run_telemetry_path_slugs_labels(tmp_path):
    path = run_telemetry_path(tmp_path, 7, "SAGA w=0.5 / CB", 3)
    assert path.parent == tmp_path
    assert path.name == "run_007_SAGA-w-0.5---CB_s3.jsonl"
    # Degenerate labels still produce a usable name.
    assert run_telemetry_path(tmp_path, 0, "///", 0).name == "run_000_run_s0.jsonl"


def test_meta_is_first_line_with_format_and_attrs(tmp_path):
    tel = RunTelemetry(
        tmp_path / "t.jsonl", kind="run", label="cell", seed=5, jobs=2
    )
    tel.close()
    records = load_telemetry(tmp_path / "t.jsonl")
    assert records[0] == {
        "type": "meta",
        "format": TELEMETRY_FORMAT,
        "kind": "run",
        "label": "cell",
        "seed": 5,
        "attrs": {"jobs": 2},
    }


def test_records_spans_events_and_metrics_round_trip(tmp_path):
    tel = RunTelemetry(tmp_path / "t.jsonl", kind="drill", label="d")
    tel.event("crash", site="tx.commit", event_index=40)
    with tel.span("segment", start=0):
        tel.metrics.counter("drill.recoveries").inc()
    tel.record("custom", value=1)
    path = tel.close()
    records = load_telemetry(path)
    types = [r["type"] for r in records]
    assert types == ["meta", "event", "span", "custom", "metrics"]
    assert records[1]["name"] == "crash"
    assert records[1]["site"] == "tx.commit"
    assert records[2]["name"] == "segment"
    assert records[-1]["counters"] == {"drill.recoveries": 1}


def test_summary_stays_last_after_metrics_insertion(tmp_path):
    tel = RunTelemetry(tmp_path / "t.jsonl")
    tel.metrics.counter("c").inc()
    tel.record("summary", events=10)
    records = load_telemetry(tel.close())
    assert [r["type"] for r in records] == ["meta", "metrics", "summary"]


def test_close_is_idempotent_and_atomic(tmp_path):
    tel = RunTelemetry(tmp_path / "sub" / "t.jsonl")
    first = tel.close()
    tel.event("late", name_conflict=False)
    assert tel.close() == first
    # No temp files left behind; the one real file parses.
    assert [p.name for p in tmp_path.rglob("*")
            if p.is_file()] == ["t.jsonl"]
    # The late event (after close) was dropped, not half-written.
    assert [r["type"] for r in load_telemetry(first)] == ["meta"]


def test_load_rejects_malformed_files(tmp_path):
    bad_json = tmp_path / "bad.jsonl"
    bad_json.write_text('{"type": "meta"\n')
    with pytest.raises(TelemetryError, match="malformed JSON"):
        load_telemetry(bad_json)

    no_meta = tmp_path / "no_meta.jsonl"
    no_meta.write_text('{"type": "span", "name": "x"}\n')
    with pytest.raises(TelemetryError, match="missing leading 'meta'"):
        load_telemetry(no_meta)

    not_record = tmp_path / "not_record.jsonl"
    not_record.write_text("[1, 2, 3]\n")
    with pytest.raises(TelemetryError, match="not a telemetry record"):
        load_telemetry(not_record)

    alien = tmp_path / "alien.jsonl"
    alien.write_text(json.dumps({"type": "meta", "format": 999}) + "\n")
    with pytest.raises(TelemetryError, match="format 999"):
        load_telemetry(alien)

    empty = tmp_path / "empty.jsonl"
    empty.write_text("\n\n")
    with pytest.raises(TelemetryError, match="missing leading 'meta'"):
        load_telemetry(empty)


def test_iter_telemetry_files_sorted_and_single_file(tmp_path):
    for name in ("b.jsonl", "a.jsonl", "ignored.txt"):
        (tmp_path / name).write_text("")
    assert [p.name for p in iter_telemetry_files(tmp_path)] == [
        "a.jsonl",
        "b.jsonl",
    ]
    single = tmp_path / "b.jsonl"
    assert list(iter_telemetry_files(single)) == [single]


# ----------------------------------------------------------------------
# Integration with a real simulation run
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def simulated_telemetry(tmp_path_factory, tiny_spec):
    from repro.sim.engine import run_experiment

    root = tmp_path_factory.mktemp("telemetry")
    agg = run_experiment(tiny_spec, seeds=[1], jobs=1, telemetry=root)
    return root, agg


def test_engine_run_writes_run_and_engine_files(simulated_telemetry):
    root, agg = simulated_telemetry
    names = [p.name for p in iter_telemetry_files(root)]
    assert "engine_000.jsonl" in names
    assert any(n.startswith("run_000_") for n in names)
    assert len(agg.telemetry_paths) == 1


def test_collection_records_carry_the_gc_timeline(simulated_telemetry):
    root, agg = simulated_telemetry
    records = load_telemetry(agg.telemetry_paths[0])
    collections = [r for r in records if r["type"] == "collection"]
    assert collections, "expected at least one collection in the tiny run"
    required = {
        "number",
        "phase",
        "event_index",
        "overwrite_clock",
        "partition",
        "reclaimed_bytes",
        "reclaimed_objects",
        "live_bytes",
        "survivors",
        "gc_reads",
        "gc_writes",
        "interval_next",
        "actual_garbage_fraction",
        "estimated_garbage_fraction",
        "target_garbage_fraction",
        "estimator_error",
        "db_size",
        "wall_s",
    }
    for record in collections:
        assert required <= set(record)
    numbers = [r["number"] for r in collections]
    assert numbers == sorted(numbers)


def test_run_file_ends_with_metrics_then_summary(simulated_telemetry):
    root, agg = simulated_telemetry
    records = load_telemetry(agg.telemetry_paths[0])
    assert records[-1]["type"] == "summary"
    assert records[-2]["type"] == "metrics"
    counters = records[-2]["counters"]
    collections = [r for r in records if r["type"] == "collection"]
    assert counters["gc.collections"] == len(collections)
    gauges = records[-2]["gauges"]
    assert "io.gc.reads" in gauges
    assert "buffer.hit_rate" in gauges
    assert "sim.events" in gauges
