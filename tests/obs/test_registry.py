"""The metrics registry: instruments, snapshots, and the disabled path."""

import pytest

from repro.obs.registry import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
    metrics_or_null,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


def test_counter_accumulates_and_rejects_decrease(registry):
    c = registry.counter("gc.collections")
    c.inc()
    c.inc(2)
    assert c.value == 3
    with pytest.raises(ValueError):
        c.inc(-1)


def test_instruments_are_lazy_singletons(registry):
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")
    # Different families never alias, even under the same name.
    assert registry.counter("x") is not registry.gauge("x")


def test_gauge_set_and_add(registry):
    g = registry.gauge("sim.db_size")
    g.set(10.0)
    g.add(-3.0)
    assert g.value == 7.0


def test_histogram_tracks_shape(registry):
    h = registry.histogram("latency")
    for value in (1, 3, 3, 100):
        h.observe(value)
    d = h.as_dict()
    assert d["count"] == 4
    assert d["min"] == 1
    assert d["max"] == 100
    assert d["total"] == 107
    assert d["mean"] == pytest.approx(26.75)
    # Power-of-two buckets: 1, 4 (for the 3s), 128 (for 100).
    assert d["buckets"] == {"1": 1, "4": 2, "128": 1}


def test_histogram_zero_and_negative_share_bucket(registry):
    h = registry.histogram("deltas")
    h.observe(0)
    h.observe(-5)
    assert h.as_dict()["buckets"] == {"0": 2}


def test_empty_histogram_renders_zeroes(registry):
    d = registry.histogram("empty").as_dict()
    assert d == {
        "count": 0,
        "total": 0,
        "min": 0,
        "max": 0,
        "mean": 0.0,
        "buckets": {},
    }


def test_snapshot_is_sorted_and_integral_floats_render_as_ints(registry):
    registry.counter("b").inc(4)
    registry.counter("a").inc(2.5)
    registry.gauge("z").set(3.0)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["counters"]["b"] == 4
    assert isinstance(snap["counters"]["b"], int)
    assert snap["counters"]["a"] == 2.5
    assert snap["gauges"]["z"] == 3
    assert isinstance(snap["gauges"]["z"], int)


def test_set_many_prefixes_gauges(registry):
    registry.set_many({"reads": 10, "writes": 5}, prefix="io.")
    assert registry.gauge("io.reads").value == 10.0
    assert registry.gauge("io.writes").value == 5.0


def test_iteration_yields_counters_then_gauges(registry):
    registry.gauge("g").set(1.0)
    registry.counter("c").inc()
    assert list(registry) == [("c", 1.0), ("g", 1.0)]


def test_null_registry_is_inert():
    null = NullMetricsRegistry()
    assert null.enabled is False
    null.counter("c").inc(100)
    null.gauge("g").set(5.0)
    null.histogram("h").observe(1.0)
    null.set_many({"reads": 1}, prefix="io.")
    assert null.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    # Shared singletons: no per-name allocation on the disabled path.
    assert null.counter("a") is null.counter("b")


def test_metrics_or_null():
    real = MetricsRegistry()
    assert metrics_or_null(real) is real
    assert metrics_or_null(None) is NULL_METRICS
    assert NULL_METRICS.enabled is False
    assert MetricsRegistry.enabled is True
