"""Span tracing: nesting, sinks, external timings, the disabled tracer."""

import pytest

from repro.obs.spans import NULL_TRACER, NullTracer, SpanRecord, Tracer


def test_span_times_and_accumulates():
    tracer = Tracer()
    with tracer.span("phase", partition=3) as span:
        pass
    assert tracer.spans == [span]
    assert span.name == "phase"
    assert span.wall_s >= 0.0
    assert span.start_s >= 0.0
    assert span.attrs == {"partition": 3}


def test_nested_spans_record_depth_in_completion_order():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    assert [s.name for s in tracer.spans] == ["inner", "outer"]
    assert [s.depth for s in tracer.spans] == [1, 0]


def test_sink_streams_finished_spans():
    seen = []
    tracer = Tracer(sink=seen.append)
    with tracer.span("a"):
        pass
    tracer.record("b", 0.5)
    assert [s.name for s in seen] == ["a", "b"]


def test_span_recorded_even_when_body_raises():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("simulated crash")
    assert [s.name for s in tracer.spans] == ["doomed"]
    # Depth unwinds, so later spans are top-level again.
    with tracer.span("after"):
        pass
    assert tracer.spans[-1].depth == 0


def test_record_external_timing():
    tracer = Tracer()
    span = tracer.record("load", 0.25, file_bytes=1024)
    assert span.wall_s == 0.25
    assert span.attrs == {"file_bytes": 1024}
    assert tracer.spans == [span]


def test_as_dict_rounds_and_omits_empty_attrs():
    d = SpanRecord(name="p", start_s=0.12345678, wall_s=1.9999999, depth=2).as_dict()
    assert d == {"name": "p", "start_s": 0.123457, "wall_s": 2.0, "depth": 2}
    with_attrs = SpanRecord(name="p", start_s=0, wall_s=0, attrs={"k": 1}).as_dict()
    assert with_attrs["attrs"] == {"k": 1}


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    with tracer.span("ignored") as record:
        assert record.name == "null"
    assert tracer.record("also-ignored", 1.0).name == "null"
    assert tracer.spans == []
    # The shared instance reuses one context manager object.
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
