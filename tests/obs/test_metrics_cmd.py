"""The ``repro metrics`` subcommand: report shape, JSON mode, exit codes."""

import json

import pytest

from obs_helpers import make_tiny_spec
from repro.cli import main as cli_main
from repro.obs.report import aggregate, digest_file, main as metrics_main
from repro.obs.telemetry import RunTelemetry


@pytest.fixture(scope="module")
def telemetry_dir(tmp_path_factory):
    from repro.sim.engine import run_experiment

    root = tmp_path_factory.mktemp("metrics_cmd")
    run_experiment(make_tiny_spec(), seeds=[1, 2], jobs=1, telemetry=root)
    return root


def test_missing_path_exits_2(tmp_path, capsys):
    assert metrics_main([str(tmp_path / "nope")]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_no_readable_files_exits_1(tmp_path, capsys):
    (tmp_path / "garbage.jsonl").write_text("not json\n")
    assert metrics_main([str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "skipping garbage.jsonl" in captured.err
    assert "no readable telemetry files" in captured.err


def test_pretty_report_lists_every_file(telemetry_dir, capsys):
    assert metrics_main([str(telemetry_dir)]) == 0
    out = capsys.readouterr().out
    assert "engine_000.jsonl" in out
    assert "run_000_obs-tiny_s1.jsonl" in out
    assert "run_001_obs-tiny_s2.jsonl" in out
    assert "gc timeline:" in out
    assert "telemetry file(s)" in out


def test_json_mode_emits_aggregate_document(telemetry_dir, capsys):
    assert metrics_main([str(telemetry_dir), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["files"] == 3
    assert doc["runs"] == 2
    assert doc["collections"] > 0
    assert set(doc["kinds"]) == {"engine", "run"}


def test_single_file_argument(telemetry_dir, capsys):
    run_file = sorted(telemetry_dir.glob("run_*.jsonl"))[0]
    assert metrics_main([str(run_file)]) == 0
    assert run_file.name in capsys.readouterr().out


def test_cli_routes_metrics_subcommand(telemetry_dir, capsys):
    assert cli_main(["metrics", str(telemetry_dir)]) == 0
    assert "telemetry file(s)" in capsys.readouterr().out


def test_digest_captures_estimator_error(tmp_path):
    tel = RunTelemetry(tmp_path / "t.jsonl", kind="run", label="x", seed=0)
    tel.record(
        "collection",
        number=1,
        reclaimed_bytes=100,
        gc_reads=2,
        gc_writes=3,
        estimator_error=-0.25,
        event_index=10,
    )
    tel.record(
        "collection",
        number=2,
        reclaimed_bytes=50,
        gc_reads=1,
        gc_writes=1,
        estimator_error=0.75,
        event_index=20,
    )
    digest = digest_file(tel.close())
    assert digest.reclaimed_bytes == 150
    assert digest.gc_io == 7
    assert digest.mean_abs_estimator_error == pytest.approx(0.5)
    agg = aggregate([digest])
    assert agg["mean_abs_estimator_error"] == pytest.approx(0.5)
