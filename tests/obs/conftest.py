"""Shared fixtures for the observability tests: a tiny, cheap spec."""

import pytest

from obs_helpers import make_tiny_spec


@pytest.fixture(scope="session")
def tiny_spec():
    return make_tiny_spec()
