"""Tests for the [YNY94]-style allocation-triggered baseline policy."""

import pytest

from repro.core.fixed import AllocationRatePolicy
from repro.core.rate_policy import TimeBase
from repro.events import CreateEvent, PhaseMarkerEvent, PointerWriteEvent, RootEvent
from repro.sim.simulator import Simulation, SimulationConfig
from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.iostats import IOStats

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def test_validates_positive_rate():
    with pytest.raises(ValueError):
        AllocationRatePolicy(0)


def test_time_base_is_allocation():
    assert AllocationRatePolicy(1000).time_base is TimeBase.ALLOCATED


def test_triggers_are_constant():
    policy = AllocationRatePolicy(4096)
    first = policy.first_trigger(ObjectStore(), IOStats())
    assert first.base is TimeBase.ALLOCATED
    assert first.interval == 4096


def test_store_tracks_monotone_allocation_clock():
    store = ObjectStore(TINY_STORE)
    root = store.create(size=100)
    store.register_root(root)
    assert store.bytes_allocated_total == 100
    victim = store.create(size=50)
    store.write_pointer(root, "x", victim)
    store.write_pointer(root, "x", None, dies=[victim])
    store.compact_partition(0, [root])
    # Reclamation/compaction must NOT rewind the allocation clock.
    assert store.bytes_allocated_total == 150


def test_allocation_clock_triggers_collections_without_overwrites():
    """A pure-allocation trace (no overwrites at all) still triggers the
    allocation-rate policy — the exact failure mode §2 warns about."""

    def allocation_only():
        yield PhaseMarkerEvent("load")
        yield CreateEvent(1, 64)
        yield RootEvent(1)
        for index in range(200):
            oid = 2 + index
            yield CreateEvent(oid, 512)
            yield PointerWriteEvent(1, f"s{index}", oid)

    sim = Simulation(
        policy=AllocationRatePolicy(8 * 1024),
        config=SimulationConfig(store=TINY_STORE, preamble_collections=0),
    )
    result = sim.run(allocation_only())
    assert result.store.pointer_overwrites == 0
    assert result.summary.collections >= 10
    # Every one of those collections reclaimed nothing.
    assert result.summary.total_reclaimed_bytes == 0


def test_describe():
    assert "allocation-rate" in AllocationRatePolicy(1000).describe()
