"""Unit and property tests for the SAIO policy algebra (§2.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rate_policy import TimeBase
from repro.core.saio import UNLIMITED_HISTORY, SaioPolicy
from repro.storage.heap import ObjectStore
from repro.storage.iostats import IOCategory, IOStats


def _stats_with_history(intervals: list[tuple[int, int]]) -> IOStats:
    """Build IOStats with closed (app, gc) intervals."""
    stats = IOStats()
    for app, gc in intervals:
        stats.record_read(IOCategory.APPLICATION, app)
        stats.record_read(IOCategory.COLLECTOR, gc)
        stats.mark_collection()
    return stats


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------


def test_validates_fraction():
    with pytest.raises(ValueError):
        SaioPolicy(io_fraction=0.0)
    with pytest.raises(ValueError):
        SaioPolicy(io_fraction=1.0)


def test_validates_history():
    with pytest.raises(ValueError):
        SaioPolicy(io_fraction=0.1, c_hist=-1)
    with pytest.raises(ValueError):
        SaioPolicy(io_fraction=0.1, c_hist=2.5)
    SaioPolicy(io_fraction=0.1, c_hist=UNLIMITED_HISTORY)  # allowed


def test_time_base_is_app_io():
    assert SaioPolicy(io_fraction=0.1).time_base is TimeBase.APP_IO


def test_first_trigger_uses_initial_interval():
    policy = SaioPolicy(io_fraction=0.1, initial_interval=321.0)
    trigger = policy.first_trigger(ObjectStore(), IOStats())
    assert trigger.base is TimeBase.APP_IO
    assert trigger.interval == 321.0


# ----------------------------------------------------------------------
# The §2.2 equation, c_hist = 0
# ----------------------------------------------------------------------


def test_interval_no_history_basic():
    """ΔAppIO = CurrGCIO · (1 - f) / f."""
    policy = SaioPolicy(io_fraction=0.10, c_hist=0)
    interval = policy.compute_interval(current_gc_io=50, iostats=IOStats())
    assert interval == pytest.approx(50 * 0.9 / 0.1)  # 450


def test_interval_no_history_half():
    policy = SaioPolicy(io_fraction=0.5, c_hist=0)
    assert policy.compute_interval(100, IOStats()) == pytest.approx(100.0)


def test_interval_clamped_to_minimum():
    policy = SaioPolicy(io_fraction=0.99, c_hist=0, min_interval=1.0)
    assert policy.compute_interval(1, IOStats()) == 1.0


def test_achieving_target_exactly():
    """If every collection costs G and we wait the computed interval, the
    achieved fraction equals the requested one."""
    frac = 0.2
    policy = SaioPolicy(io_fraction=frac, c_hist=0)
    gc_per_collection = 80
    interval = policy.compute_interval(gc_per_collection, IOStats())
    achieved = gc_per_collection / (gc_per_collection + interval)
    assert achieved == pytest.approx(frac)


@given(
    st.floats(min_value=0.01, max_value=0.95),
    st.integers(min_value=1, max_value=10_000),
)
def test_interval_inverts_fraction_formula(frac, gc_io):
    """Property: the computed interval solves GCIO/(GCIO+ΔAppIO) = frac
    (when the minimum clamp is not engaged)."""
    policy = SaioPolicy(io_fraction=frac, c_hist=0)
    interval = policy.compute_interval(gc_io, IOStats())
    if interval > policy.min_interval:
        assert gc_io / (gc_io + interval) == pytest.approx(frac, rel=1e-9)


# ----------------------------------------------------------------------
# History windows
# ----------------------------------------------------------------------


def test_history_window_includes_recent_intervals():
    """With history, past error feeds back into the next interval."""
    # One closed interval that overshot GC I/O: app=100, gc=100 (50% GC).
    stats = _stats_with_history([(100, 100)])
    policy = SaioPolicy(io_fraction=0.5, c_hist=1)
    # Window: app_hist=100, gc_hist=100. Predicted = 100+100=200.
    # ΔAppIO = 200·(0.5/0.5) − 100 = 100.
    assert policy.compute_interval(100, stats) == pytest.approx(100.0)


def test_history_damps_past_overshoot():
    """A GC-heavy past interval shrinks the GC budget going forward..."""
    # Past interval was far too GC-heavy for a 10% target.
    stats = _stats_with_history([(10, 90)])
    with_history = SaioPolicy(io_fraction=0.10, c_hist=1)
    without = SaioPolicy(io_fraction=0.10, c_hist=0)
    assert with_history.compute_interval(90, stats) > without.compute_interval(
        90, stats
    )


def test_history_credits_past_undershoot():
    """...and a GC-light past interval allows collecting sooner."""
    stats = _stats_with_history([(1000, 10)])
    with_history = SaioPolicy(io_fraction=0.10, c_hist=1)
    without = SaioPolicy(io_fraction=0.10, c_hist=0)
    assert with_history.compute_interval(10, stats) < without.compute_interval(
        10, stats
    )


def test_unlimited_history_uses_all_intervals():
    stats = _stats_with_history([(100, 10), (100, 10), (100, 10)])
    policy = SaioPolicy(io_fraction=0.10, c_hist=UNLIMITED_HISTORY)
    # gc_hist=30, app_hist=300, predicted = 30+10=40:
    # ΔAppIO = 40·9 − 300 = 60.
    assert policy.compute_interval(10, stats) == pytest.approx(60.0)


def test_windowed_history_uses_only_recent():
    stats = _stats_with_history([(1_000_000, 1), (100, 10)])
    policy = SaioPolicy(io_fraction=0.10, c_hist=1)
    # Only the last interval counts: gc=10+10=20, ΔAppIO = 20·9 − 100 = 80.
    assert policy.compute_interval(10, stats) == pytest.approx(80.0)


@given(
    st.floats(min_value=0.02, max_value=0.9),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=1, max_value=1000),
        ),
        min_size=1,
        max_size=10,
    ),
    st.integers(min_value=1, max_value=1000),
)
def test_history_equation_solved_exactly(frac, intervals, curr_gc):
    """Property: unclamped, the solution satisfies the windowed equation."""
    stats = _stats_with_history(intervals)
    policy = SaioPolicy(io_fraction=frac, c_hist=UNLIMITED_HISTORY)
    interval = policy.compute_interval(curr_gc, stats)
    if interval > policy.min_interval:
        app_hist = sum(a for a, _g in intervals)
        gc_hist = sum(g for _a, g in intervals)
        predicted_gc = gc_hist + curr_gc
        achieved = predicted_gc / (predicted_gc + app_hist + interval)
        assert achieved == pytest.approx(frac, rel=1e-9)


def test_describe_mentions_parameters():
    text = SaioPolicy(io_fraction=0.25, c_hist=3).describe()
    assert "25.0%" in text
    assert "c_hist=3" in text
    assert "inf" in SaioPolicy(io_fraction=0.1, c_hist=UNLIMITED_HISTORY).describe()
