"""Unit tests for the §5 extension policies (opportunism and coupling)."""

import pytest

from repro.core.estimators import OracleEstimator
from repro.core.extensions import CoupledSaioSagaPolicy, OpportunisticPolicy
from repro.core.fixed import FixedRatePolicy
from repro.core.rate_policy import PolicyContext, TimeBase
from repro.gc.collector import CollectionResult
from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.iostats import IOStats

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=4)


def _store_with_garbage(garbage_bytes: int) -> ObjectStore:
    store = ObjectStore(CFG)
    root = store.create(size=10)
    store.register_root(root)
    if garbage_bytes:
        victim = store.create(size=garbage_bytes)
        store.write_pointer(root, "x", victim)
        store.write_pointer(root, "x", None, dies=[victim])
    return store


def _ctx(store: ObjectStore, gc_io: int = 10) -> PolicyContext:
    result = CollectionResult(
        collection_number=0,
        partition=0,
        reclaimed_bytes=100,
        reclaimed_objects=1,
        live_bytes=0,
        live_objects=0,
        gc_reads=gc_io,
        gc_writes=0,
        pointer_overwrites_at_selection=3,
        overwrite_clock=50,
    )
    return PolicyContext(result=result, store=store, iostats=IOStats())


# ----------------------------------------------------------------------
# OpportunisticPolicy
# ----------------------------------------------------------------------


def test_opportunistic_delegates_triggers():
    inner = FixedRatePolicy(100)
    policy = OpportunisticPolicy(inner, OracleEstimator())
    store = _store_with_garbage(0)
    assert policy.time_base is inner.time_base
    assert policy.first_trigger(store, IOStats()).interval == 100
    assert policy.next_trigger(_ctx(store)).interval == 100


def test_opportunism_requires_sustained_idleness():
    policy = OpportunisticPolicy(
        FixedRatePolicy(100), OracleEstimator(), idle_threshold=3, min_garbage_bytes=10
    )
    store = _store_with_garbage(500)
    assert not policy.note_idle(store)
    assert not policy.note_idle(store)
    assert policy.note_idle(store)  # third consecutive idle tick fires
    assert policy.opportunistic_collections == 1


def test_activity_resets_idle_counter():
    policy = OpportunisticPolicy(
        FixedRatePolicy(100), OracleEstimator(), idle_threshold=2, min_garbage_bytes=10
    )
    store = _store_with_garbage(500)
    assert not policy.note_idle(store)
    policy.note_activity()
    assert not policy.note_idle(store)  # counter restarted
    assert policy.note_idle(store)


def test_opportunism_skips_when_little_garbage():
    policy = OpportunisticPolicy(
        FixedRatePolicy(100), OracleEstimator(), idle_threshold=1, min_garbage_bytes=1000
    )
    store = _store_with_garbage(50)
    assert not policy.note_idle(store)
    assert policy.opportunistic_collections == 0


def test_opportunism_rearms_after_firing():
    policy = OpportunisticPolicy(
        FixedRatePolicy(100), OracleEstimator(), idle_threshold=2, min_garbage_bytes=10
    )
    store = _store_with_garbage(500)
    policy.note_idle(store)
    assert policy.note_idle(store)
    assert not policy.note_idle(store)  # needs another full quiet stretch
    assert policy.note_idle(store)


def test_opportunistic_validates_args():
    with pytest.raises(ValueError):
        OpportunisticPolicy(FixedRatePolicy(1), OracleEstimator(), idle_threshold=0)
    with pytest.raises(ValueError):
        OpportunisticPolicy(
            FixedRatePolicy(1), OracleEstimator(), min_garbage_bytes=-1
        )


# ----------------------------------------------------------------------
# CoupledSaioSagaPolicy
# ----------------------------------------------------------------------


def test_coupled_validates_args():
    with pytest.raises(ValueError):
        CoupledSaioSagaPolicy(0.1, 1.0, OracleEstimator())
    with pytest.raises(ValueError):
        CoupledSaioSagaPolicy(0.1, 0.1, OracleEstimator(), max_scale=0.5)


def test_coupled_time_base_is_app_io():
    policy = CoupledSaioSagaPolicy(0.1, 0.1, OracleEstimator())
    assert policy.time_base is TimeBase.APP_IO


def test_coupled_stretches_interval_when_garbage_scarce():
    """Little garbage → collections are not cost-effective → longer interval."""
    estimator = OracleEstimator()
    plain = CoupledSaioSagaPolicy(0.1, 0.1, estimator, max_scale=1.0)
    coupled = CoupledSaioSagaPolicy(0.1, 0.1, estimator, max_scale=4.0)
    store = _store_with_garbage(0)  # zero garbage, far below 10% target
    store.create(size=500)  # give the DB some size
    base = plain.next_trigger(_ctx(store)).interval
    stretched = coupled.next_trigger(_ctx(store)).interval
    assert stretched == pytest.approx(base * 4.0)


def test_coupled_shrinks_interval_when_garbage_abundant():
    estimator = OracleEstimator()
    plain = CoupledSaioSagaPolicy(0.1, 0.1, estimator, max_scale=1.0)
    coupled = CoupledSaioSagaPolicy(0.1, 0.1, estimator, max_scale=4.0)
    store = _store_with_garbage(800)  # ~99% garbage, far above 10% target
    base = plain.next_trigger(_ctx(store)).interval
    shrunk = coupled.next_trigger(_ctx(store)).interval
    assert shrunk < base


def test_coupled_neutral_at_target_level():
    """Estimated garbage exactly at target → scale 1 → plain SAIO interval."""
    estimator = OracleEstimator()
    store = _store_with_garbage(100)
    filler = 100 * 9 - 10  # make garbage exactly 10% of db_size
    store.create(size=filler)
    assert store.garbage_fraction == pytest.approx(0.10)
    coupled = CoupledSaioSagaPolicy(0.1, 0.1, estimator, max_scale=4.0)
    plain = CoupledSaioSagaPolicy(0.1, 0.1, estimator, max_scale=1.0)
    assert coupled.next_trigger(_ctx(store)).interval == pytest.approx(
        plain.next_trigger(_ctx(store)).interval
    )


def test_coupled_scale_is_bounded():
    estimator = OracleEstimator()
    policy = CoupledSaioSagaPolicy(0.1, 0.1, estimator, max_scale=3.0)
    assert policy._cost_effectiveness_scale(_store_with_garbage(0)) == 3.0
    heavy = _store_with_garbage(100_000)
    assert policy._cost_effectiveness_scale(heavy) == pytest.approx(1 / 3.0)


def test_describe_strings():
    opportunistic = OpportunisticPolicy(FixedRatePolicy(100), OracleEstimator())
    assert "opportunistic" in opportunistic.describe()
    coupled = CoupledSaioSagaPolicy(0.1, 0.2, OracleEstimator())
    assert "saio+saga" in coupled.describe()
