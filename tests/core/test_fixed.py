"""Unit tests for the fixed-rate baseline policies (§2.1)."""

import pytest

from repro.core.fixed import FixedRatePolicy, PartitionHeuristicPolicy
from repro.core.rate_policy import PolicyContext, TimeBase
from repro.gc.collector import CollectionResult
from repro.storage.heap import ObjectStore
from repro.storage.iostats import IOStats


def _ctx() -> PolicyContext:
    result = CollectionResult(
        collection_number=0,
        partition=0,
        reclaimed_bytes=100,
        reclaimed_objects=1,
        live_bytes=0,
        live_objects=0,
        gc_reads=4,
        gc_writes=1,
        pointer_overwrites_at_selection=3,
        overwrite_clock=50,
    )
    return PolicyContext(result=result, store=ObjectStore(), iostats=IOStats())


def test_fixed_rate_validates_positive():
    with pytest.raises(ValueError):
        FixedRatePolicy(0)
    with pytest.raises(ValueError):
        FixedRatePolicy(-10)


def test_fixed_rate_is_constant():
    policy = FixedRatePolicy(250)
    assert policy.time_base is TimeBase.OVERWRITES
    first = policy.first_trigger(ObjectStore(), IOStats())
    assert first.interval == 250
    assert policy.next_trigger(_ctx()).interval == 250
    assert policy.next_trigger(_ctx()).interval == 250  # never adapts


def test_partition_heuristic_reproduces_paper_number():
    """96 KB partitions, connectivity 4, 133-byte objects → 2956 overwrites."""
    policy = PartitionHeuristicPolicy(
        partition_size=96 * 1024, avg_connectivity=4.0, avg_object_size=133.0
    )
    assert policy.overwrites_per_collection == pytest.approx(2956.0, abs=1.0)


def test_partition_heuristic_scales_with_inputs():
    small = PartitionHeuristicPolicy(partition_size=1000, avg_connectivity=2, avg_object_size=100)
    assert small.overwrites_per_collection == pytest.approx(20.0)


def test_partition_heuristic_validates_inputs():
    with pytest.raises(ValueError):
        PartitionHeuristicPolicy(partition_size=0)
    with pytest.raises(ValueError):
        PartitionHeuristicPolicy(partition_size=100, avg_connectivity=0)
    with pytest.raises(ValueError):
        PartitionHeuristicPolicy(partition_size=100, avg_object_size=-1)


def test_describe_strings():
    assert "fixed(" in FixedRatePolicy(100).describe()
    assert "partition-heuristic" in PartitionHeuristicPolicy(96 * 1024).describe()
