"""Unit and property tests for the control-theory primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.control import ExponentialMean, SmoothedSlopeEstimator, clamp


# ----------------------------------------------------------------------
# clamp
# ----------------------------------------------------------------------


def test_clamp_basic():
    assert clamp(5.0, 0.0, 10.0) == 5.0
    assert clamp(-1.0, 0.0, 10.0) == 0.0
    assert clamp(11.0, 0.0, 10.0) == 10.0


def test_clamp_rejects_inverted_interval():
    with pytest.raises(ValueError):
        clamp(1.0, 5.0, 2.0)


@given(
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.floats(min_value=-1e6, max_value=1e6),
    st.floats(min_value=0.0, max_value=1e6),
)
def test_clamp_always_within_bounds(value, low, width):
    high = low + width
    result = clamp(value, low, high)
    assert low <= result <= high


# ----------------------------------------------------------------------
# ExponentialMean
# ----------------------------------------------------------------------


def test_exponential_mean_validates_history():
    with pytest.raises(ValueError):
        ExponentialMean(-0.1)
    with pytest.raises(ValueError):
        ExponentialMean(1.1)


def test_exponential_mean_first_sample_initialises_directly():
    mean = ExponentialMean(0.9)
    assert mean.value is None
    assert not mean.initialized
    assert mean.update(10.0) == 10.0
    assert mean.initialized


def test_exponential_mean_update_formula():
    mean = ExponentialMean(0.8)
    mean.update(10.0)
    # 0.8 * 10 + 0.2 * 20 = 12
    assert mean.update(20.0) == pytest.approx(12.0)


def test_history_one_ignores_new_samples():
    mean = ExponentialMean(1.0)
    mean.update(5.0)
    mean.update(100.0)
    assert mean.value == pytest.approx(5.0)


def test_history_zero_tracks_latest_sample():
    mean = ExponentialMean(0.0)
    mean.update(5.0)
    mean.update(100.0)
    assert mean.value == pytest.approx(100.0)


def test_reset_clears_state():
    mean = ExponentialMean(0.5)
    mean.update(5.0)
    mean.reset()
    assert mean.value is None


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=50),
)
def test_exponential_mean_stays_within_sample_range(history, samples):
    """The smoothed value is always within [min(samples), max(samples)]."""
    mean = ExponentialMean(history)
    for sample in samples:
        mean.update(sample)
        assert min(samples) - 1e-6 <= mean.value <= max(samples) + 1e-6


# ----------------------------------------------------------------------
# SmoothedSlopeEstimator
# ----------------------------------------------------------------------


def test_slope_validates_weight():
    with pytest.raises(ValueError):
        SmoothedSlopeEstimator(weight=1.5)


def test_slope_none_before_two_observations():
    estimator = SmoothedSlopeEstimator()
    assert estimator.observe(0.0, 0.0) is None
    assert estimator.slope is None


def test_slope_first_difference_initialises_directly():
    estimator = SmoothedSlopeEstimator(weight=0.7)
    estimator.observe(0.0, 0.0)
    assert estimator.observe(10.0, 50.0) == pytest.approx(5.0)


def test_slope_smoothing_formula():
    estimator = SmoothedSlopeEstimator(weight=0.7)
    estimator.observe(0.0, 0.0)
    estimator.observe(10.0, 50.0)  # slope 5
    # next instantaneous slope: (150-50)/10 = 10 → 0.7*5 + 0.3*10 = 6.5
    assert estimator.observe(20.0, 150.0) == pytest.approx(6.5)


def test_zero_dt_leaves_slope_unchanged():
    """Time frozen (read-only phase): the finite difference is undefined."""
    estimator = SmoothedSlopeEstimator(weight=0.7)
    estimator.observe(0.0, 0.0)
    estimator.observe(10.0, 50.0)
    assert estimator.observe(10.0, 70.0) == pytest.approx(5.0)
    # The frozen observation replaces the anchor point.
    assert estimator.observe(20.0, 80.0) == pytest.approx(0.7 * 5.0 + 0.3 * 1.0)


def test_negative_slope_is_representable():
    estimator = SmoothedSlopeEstimator(weight=0.0)
    estimator.observe(0.0, 100.0)
    assert estimator.observe(10.0, 50.0) == pytest.approx(-5.0)


def test_slope_reset():
    estimator = SmoothedSlopeEstimator()
    estimator.observe(0.0, 0.0)
    estimator.observe(1.0, 1.0)
    estimator.reset()
    assert estimator.slope is None
    assert estimator.observe(0.0, 0.0) is None


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.lists(
        st.tuples(
            # Times are integral in the policies' domain (overwrite counts);
            # subnormal float gaps would produce meaningless infinite slopes.
            st.integers(min_value=0, max_value=100),
            st.floats(min_value=-1e4, max_value=1e4),
        ),
        min_size=2,
        max_size=40,
    ),
)
def test_slope_bounded_by_extreme_instantaneous_slopes(weight, raw_points):
    """The smoothed slope lies within the observed instantaneous slope range."""
    points = sorted(raw_points, key=lambda p: p[0])
    diffs = []
    estimator = SmoothedSlopeEstimator(weight=weight)
    previous = None
    for time, value in points:
        estimator.observe(time, value)
        if previous is not None and time > previous[0]:
            diffs.append((value - previous[1]) / (time - previous[0]))
        previous = (time, value)
    if diffs and estimator.slope is not None:
        assert min(diffs) - 1e-6 <= estimator.slope <= max(diffs) + 1e-6
