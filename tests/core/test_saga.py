"""Unit and property tests for the SAGA policy algebra (§2.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.estimators import OracleEstimator
from repro.core.rate_policy import TimeBase
from repro.core.saga import DEFAULT_DT_MAX, DEFAULT_DT_MIN, SagaPolicy
from repro.storage.heap import ObjectStore
from repro.storage.iostats import IOStats


def _policy(frac=0.1, **kwargs) -> SagaPolicy:
    return SagaPolicy(garbage_fraction=frac, estimator=OracleEstimator(), **kwargs)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------


def test_validates_fraction():
    with pytest.raises(ValueError):
        _policy(frac=0.0)
    with pytest.raises(ValueError):
        _policy(frac=1.0)


def test_validates_clamps():
    with pytest.raises(ValueError):
        _policy(dt_min=0.0)
    with pytest.raises(ValueError):
        _policy(dt_min=10.0, dt_max=5.0)


def test_paper_defaults():
    policy = _policy()
    assert policy.weight == pytest.approx(0.7)
    assert policy.dt_min == DEFAULT_DT_MIN == 2.0
    assert policy.dt_max == DEFAULT_DT_MAX == 1000.0


def test_time_base_is_overwrites():
    assert _policy().time_base is TimeBase.OVERWRITES


def test_first_trigger_uses_initial_interval():
    policy = _policy(initial_interval=55.0)
    trigger = policy.first_trigger(ObjectStore(), IOStats())
    assert trigger.base is TimeBase.OVERWRITES
    assert trigger.interval == 55.0


# ----------------------------------------------------------------------
# The §2.3 balance equation
# ----------------------------------------------------------------------


def test_interval_balance_equation():
    """Δt = (CurrColl − GarbDiff) / TotGarb'."""
    policy = _policy(frac=0.10)
    # DB 10_000 → target 1000; actual 1200 → GarbDiff 200.
    # CurrColl 800, slope 10 bytes/overwrite → Δt = (800−200)/10 = 60.
    dt = policy.compute_interval(current_coll=800, act_garb=1200, db_size=10_000, slope=10.0)
    assert dt == pytest.approx(60.0)


def test_on_target_interval_is_replacement_time():
    """At the target level, wait exactly until CurrColl of new garbage exists."""
    policy = _policy(frac=0.10)
    dt = policy.compute_interval(current_coll=500, act_garb=1000, db_size=10_000, slope=5.0)
    assert dt == pytest.approx(100.0)  # 500 bytes at 5 bytes/overwrite


def test_excess_garbage_shortens_interval():
    policy = _policy(frac=0.10)
    on_target = policy.compute_interval(500, 1000, 10_000, 5.0)
    over = policy.compute_interval(500, 1400, 10_000, 5.0)
    assert over < on_target


def test_deficit_garbage_lengthens_interval():
    policy = _policy(frac=0.10)
    on_target = policy.compute_interval(500, 1000, 10_000, 5.0)
    under = policy.compute_interval(500, 600, 10_000, 5.0)
    assert under > on_target


def test_interval_clamped_to_minimum():
    policy = _policy(frac=0.05)
    # Massive excess garbage → raw Δt negative → clamp to dt_min.
    dt = policy.compute_interval(current_coll=10, act_garb=9000, db_size=10_000, slope=5.0)
    assert dt == policy.dt_min


def test_interval_clamped_to_maximum():
    policy = _policy(frac=0.50)
    # Huge deficit with tiny slope → raw Δt enormous → clamp to dt_max.
    dt = policy.compute_interval(current_coll=10, act_garb=0, db_size=1_000_000, slope=0.001)
    assert dt == policy.dt_max


def test_none_or_nonpositive_slope_defers_to_dt_max():
    policy = _policy()
    assert policy.compute_interval(100, 0, 1000, None) == policy.dt_max
    assert policy.compute_interval(100, 0, 1000, 0.0) == policy.dt_max
    assert policy.compute_interval(100, 0, 1000, -3.0) == policy.dt_max


@given(
    st.floats(min_value=0.01, max_value=0.9),
    st.floats(min_value=0.0, max_value=1e6),
    st.floats(min_value=0.0, max_value=1e6),
    st.floats(min_value=1.0, max_value=1e7),
    st.one_of(st.none(), st.floats(min_value=-100.0, max_value=100.0)),
)
def test_interval_always_within_clamps(frac, curr_coll, act_garb, db_size, slope):
    policy = _policy(frac=frac)
    dt = policy.compute_interval(curr_coll, act_garb, db_size, slope)
    assert policy.dt_min <= dt <= policy.dt_max


@given(
    st.floats(min_value=0.01, max_value=0.9),
    st.floats(min_value=1.0, max_value=1e5),
    st.floats(min_value=0.1, max_value=1e3),
    st.floats(min_value=1e3, max_value=1e7),
)
def test_unclamped_solution_satisfies_balance(frac, curr_coll, slope, db_size):
    """Property: when unclamped, garbage returns exactly to target at t+Δt.

    Garbage at t+Δt (just after the predicted collection) is
    ActGarb + slope·Δt − CurrColl, which must equal TargetGarb.
    """
    policy = _policy(frac=frac)
    act_garb = db_size * frac * 1.1  # slightly over target
    dt = policy.compute_interval(curr_coll, act_garb, db_size, slope)
    if policy.dt_min < dt < policy.dt_max:
        target = db_size * frac
        after = act_garb + slope * dt - curr_coll
        assert after == pytest.approx(target, rel=1e-6)


def test_describe_mentions_parameters():
    text = _policy(frac=0.15).describe()
    assert "15.0%" in text
    assert "oracle" in text
