"""Unit tests for the garbage estimators (§2.4)."""

import pytest

from repro.core.estimators import (
    CgsCbEstimator,
    CgsHbEstimator,
    DecayingOracleBlend,
    FgsCbEstimator,
    FgsHbEstimator,
    OracleEstimator,
    make_estimator,
)
from repro.gc.collector import CollectionResult
from repro.storage.heap import ObjectStore, StoreConfig

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=4)


def _result(reclaimed: int, po: int, number: int = 0) -> CollectionResult:
    return CollectionResult(
        collection_number=number,
        partition=0,
        reclaimed_bytes=reclaimed,
        reclaimed_objects=1,
        live_bytes=0,
        live_objects=0,
        gc_reads=4,
        gc_writes=1,
        pointer_overwrites_at_selection=po,
        overwrite_clock=100,
    )


@pytest.fixture
def store() -> ObjectStore:
    store = ObjectStore(CFG)
    root = store.create(size=10)
    store.register_root(root)
    # Force three extra partitions.
    for _ in range(3):
        store.create(size=1020)
    assert store.partition_count == 4
    return store


# ----------------------------------------------------------------------
# Oracle
# ----------------------------------------------------------------------


def test_oracle_reads_exact_garbage(store):
    estimator = OracleEstimator()
    assert estimator.estimate(store) == 0.0
    root = next(iter(store.roots))
    victim = store.create(size=100)
    store.write_pointer(root, "x", victim)
    store.write_pointer(root, "x", None, dies=[victim])
    assert estimator.estimate(store) == 100.0


# ----------------------------------------------------------------------
# CGS/CB — ActGarb = C · p
# ----------------------------------------------------------------------


def test_cgs_cb_estimate_is_yield_times_partitions(store):
    estimator = CgsCbEstimator()
    assert estimator.estimate(store) == 0.0
    estimator.observe_collection(_result(reclaimed=500, po=3), store)
    assert estimator.estimate(store) == 500.0 * 4


def test_cgs_cb_uses_only_latest_collection(store):
    estimator = CgsCbEstimator()
    estimator.observe_collection(_result(reclaimed=500, po=3), store)
    estimator.observe_collection(_result(reclaimed=100, po=3, number=1), store)
    assert estimator.estimate(store) == 100.0 * 4


# ----------------------------------------------------------------------
# CGS/HB — smoothed yield × partitions
# ----------------------------------------------------------------------


def test_cgs_hb_smooths_yields(store):
    estimator = CgsHbEstimator(history=0.5)
    estimator.observe_collection(_result(reclaimed=400, po=1), store)
    estimator.observe_collection(_result(reclaimed=0, po=1, number=1), store)
    # mean = 0.5*400 + 0.5*0 = 200 → estimate 200*4
    assert estimator.estimate(store) == pytest.approx(800.0)


def test_cgs_hb_zero_before_observations(store):
    assert CgsHbEstimator().estimate(store) == 0.0


# ----------------------------------------------------------------------
# FGS/HB — GPPO_h × Σ PO(p)
# ----------------------------------------------------------------------


def test_fgs_hb_estimate_formula(store):
    estimator = FgsHbEstimator(history=0.8)
    estimator.observe_collection(_result(reclaimed=300, po=3), store)  # GPPO 100
    store.partitions[0].pointer_overwrites = 2
    store.partitions[1].pointer_overwrites = 5
    assert estimator.estimate(store) == pytest.approx(100.0 * 7)


def test_fgs_hb_smooths_gppo_samples(store):
    estimator = FgsHbEstimator(history=0.5)
    estimator.observe_collection(_result(reclaimed=300, po=3), store)  # 100
    estimator.observe_collection(_result(reclaimed=600, po=3, number=1), store)  # 200
    assert estimator.gppo == pytest.approx(0.5 * 100 + 0.5 * 200)


def test_fgs_hb_skips_samples_without_overwrites(store):
    """Yield without overwrites gives no GPPO sample (behaviour undefined)."""
    estimator = FgsHbEstimator(history=0.8)
    estimator.observe_collection(_result(reclaimed=300, po=3), store)
    estimator.observe_collection(_result(reclaimed=999, po=0, number=1), store)
    assert estimator.gppo == pytest.approx(100.0)


def test_fgs_hb_zero_before_observations(store):
    estimator = FgsHbEstimator()
    store.partitions[0].pointer_overwrites = 50
    assert estimator.estimate(store) == 0.0


def test_fgs_cb_is_fgs_hb_with_zero_history(store):
    estimator = FgsCbEstimator()
    assert estimator.history == 0.0
    estimator.observe_collection(_result(reclaimed=300, po=3), store)
    estimator.observe_collection(_result(reclaimed=600, po=2, number=1), store)
    assert estimator.gppo == pytest.approx(300.0)  # tracks latest sample only


# ----------------------------------------------------------------------
# Decaying oracle blend (§3.2 preamble shortening)
# ----------------------------------------------------------------------


def test_blend_starts_at_oracle_and_decays(store):
    inner = CgsCbEstimator()
    blend = DecayingOracleBlend(inner, decay=0.5)
    root = next(iter(store.roots))
    victim = store.create(size=100)
    store.write_pointer(root, "x", victim)
    store.write_pointer(root, "x", None, dies=[victim])

    # Weight 1.0 before any collection: pure oracle.
    assert blend.estimate(store) == pytest.approx(100.0)

    blend.observe_collection(_result(reclaimed=50, po=1), store)
    # Weight 0.5: 0.5*oracle(100) + 0.5*inner(50*4=200) = 150.
    assert blend.oracle_weight == pytest.approx(0.5)
    assert blend.estimate(store) == pytest.approx(150.0)


def test_blend_validates_decay(store):
    with pytest.raises(ValueError):
        DecayingOracleBlend(CgsCbEstimator(), decay=1.0)


def test_blend_describe_mentions_inner():
    blend = DecayingOracleBlend(FgsHbEstimator(), decay=0.75)
    assert "fgs-hb" in blend.describe()


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------


def test_make_estimator_constructs_each_kind():
    assert isinstance(make_estimator("oracle"), OracleEstimator)
    assert isinstance(make_estimator("cgs-cb"), CgsCbEstimator)
    assert isinstance(make_estimator("cgs-hb"), CgsHbEstimator)
    assert isinstance(make_estimator("fgs-hb"), FgsHbEstimator)
    assert isinstance(make_estimator("fgs-cb"), FgsCbEstimator)


def test_make_estimator_passes_history():
    estimator = make_estimator("fgs-hb", history=0.95)
    assert estimator.history == pytest.approx(0.95)


def test_make_estimator_rejects_unknown():
    with pytest.raises(ValueError, match="unknown estimator"):
        make_estimator("magic")
