"""Focused tests for policy paths not covered elsewhere."""

import pytest

from repro.core.estimators import DecayingOracleBlend, FgsHbEstimator, OracleEstimator
from repro.core.rate_policy import TimeBase, Trigger
from repro.core.saga import SagaPolicy
from repro.core.saio import SaioPolicy
from repro.oo7.config import TINY
from repro.sim.simulator import Simulation, SimulationConfig
from repro.storage.heap import StoreConfig
from repro.workload.application import Oo7Application

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def _config(**kwargs) -> SimulationConfig:
    defaults = dict(store=TINY_STORE, preamble_collections=0)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def test_trigger_requires_positive_interval():
    with pytest.raises(ValueError):
        Trigger(TimeBase.OVERWRITES, 0.0)
    with pytest.raises(ValueError):
        Trigger(TimeBase.APP_IO, -5.0)


def test_saga_records_decision_trail():
    policy = SagaPolicy(
        garbage_fraction=0.15, estimator=OracleEstimator(), initial_interval=20
    )
    sim = Simulation(policy=policy, config=_config())
    result = sim.run(Oo7Application(TINY, seed=0).events())
    assert len(policy.decisions) == result.summary.collections
    for clock, act_garb, interval in policy.decisions:
        assert clock >= 0
        assert act_garb >= 0.0
        assert interval > 0.0


def test_saga_with_decaying_oracle_blend_in_simulation():
    """The §3.2 preamble trick runs end-to-end: early estimates lean on the
    oracle, then hand over to the practical estimator."""
    blend = DecayingOracleBlend(FgsHbEstimator(history=0.8), decay=0.5)
    policy = SagaPolicy(garbage_fraction=0.15, estimator=blend, initial_interval=20)
    sim = Simulation(policy=policy, config=_config())
    result = sim.run(Oo7Application(TINY, seed=0).events())
    assert result.summary.collections > 0
    # After k collections the oracle weight has decayed to 0.5^k.
    assert blend.oracle_weight == pytest.approx(
        0.5 ** result.summary.collections
    )


def test_saio_min_interval_enforced_in_compute():
    policy = SaioPolicy(io_fraction=0.5, c_hist=0, min_interval=25.0)
    from repro.storage.iostats import IOStats

    # Raw solution: 10 · (0.5/0.5) = 10 < min_interval.
    assert policy.compute_interval(10, IOStats()) == 25.0


def test_saio_initial_interval_validation():
    with pytest.raises(ValueError):
        SaioPolicy(io_fraction=0.1, initial_interval=0)
    with pytest.raises(ValueError):
        SaioPolicy(io_fraction=0.1, min_interval=0)


def test_saga_initial_interval_validation():
    with pytest.raises(ValueError):
        SagaPolicy(
            garbage_fraction=0.1, estimator=OracleEstimator(), initial_interval=0
        )


def test_policies_report_describe_through_simulation():
    """describe() strings survive into error messages and reports."""
    policy = SaioPolicy(io_fraction=0.10)
    assert "saio" in policy.describe()
    saga = SagaPolicy(garbage_fraction=0.10, estimator=OracleEstimator())
    description = saga.describe()
    assert "saga" in description and "oracle" in description


def test_saga_weight_property_reflects_slope_estimator():
    policy = SagaPolicy(
        garbage_fraction=0.1, estimator=OracleEstimator(), weight=0.42
    )
    assert policy.weight == pytest.approx(0.42)


def test_allocation_base_scheduling_in_simulation():
    """ALLOCATED time base schedules against bytes allocated."""
    from repro.core.fixed import AllocationRatePolicy
    from repro.events import CreateEvent, RootEvent

    def trace():
        yield CreateEvent(1, 64)
        yield RootEvent(1)
        for index in range(40):
            yield CreateEvent(2 + index, 512)

    sim = Simulation(policy=AllocationRatePolicy(4096), config=_config())
    result = sim.run(trace())
    # 40 × 512 = 20480 bytes at 4096 per collection → about 5 collections.
    assert 3 <= result.summary.collections <= 6
