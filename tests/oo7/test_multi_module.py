"""Tests for multi-module OO7 databases (NumModules > 1, Table 1)."""

import random


from repro.core.fixed import FixedRatePolicy
from repro.oo7.builder import build_database
from repro.oo7.config import TINY, OO7Config
from repro.oo7.schema import Oo7Graph
from repro.sim.simulator import Simulation, SimulationConfig
from repro.storage.heap import StoreConfig
from repro.workload.application import Oo7Application

MULTI = OO7Config(
    num_atomic_per_comp=5,
    num_comp_per_module=6,
    num_assm_levels=2,
    num_modules=3,
    manual_size=2048,
    document_size=300,
)
STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def test_generation_creates_every_module():
    graph = Oo7Graph(MULTI, rng=random.Random(0))
    list(graph.generate())
    assert len(graph.modules) == 3
    assert len(graph.composites) == 3 * MULTI.num_comp_per_module
    assert len(graph.assemblies) == 3 * MULTI.assemblies_per_module
    # Each module owns its share.
    for module in graph.modules:
        assert len(module.composites) == MULTI.num_comp_per_module
        assert len(module.assemblies) == MULTI.assemblies_per_module
        assert module.root_assembly is not None


def test_each_module_is_a_root():
    db = build_database(MULTI, store_config=STORE)
    assert len(db.store.roots) == 3
    assert db.store.roots == {m.oid for m in db.graph.modules}


def test_multi_module_database_fully_reachable():
    db = build_database(MULTI, store_config=STORE)
    assert db.store.reachable_from_roots() == set(db.store.objects)
    assert len(db.store.objects) == MULTI.expected_object_count
    assert db.store.db_size == MULTI.num_modules * MULTI.expected_bytes_per_module


def test_expected_counts_scale_with_modules():
    from dataclasses import replace

    single = replace(MULTI, num_modules=1)
    assert MULTI.expected_object_count == 3 * single.expected_object_count


def test_composites_wired_within_their_module():
    graph = Oo7Graph(MULTI, rng=random.Random(1))
    list(graph.generate())
    for module in graph.modules:
        own = set(map(id, module.composites))
        for base in module.base_assemblies():
            for composite in base.composites:
                assert id(composite) in own


def test_full_application_over_multi_module_database():
    app = Oo7Application(MULTI, seed=2)
    sim = Simulation(
        policy=FixedRatePolicy(25),
        config=SimulationConfig(store=STORE, preamble_collections=0),
    )
    result = sim.run(app.events())
    store = result.store
    assert result.summary.collections > 0
    assert store.check_death_annotations() == set()
    assert store.garbage.undeclared == 0


def test_traverse_visits_all_modules():
    from repro.events import AccessEvent
    from repro.workload.phases import gen_db_phase, traverse_phase

    graph = Oo7Graph(MULTI, rng=random.Random(3))
    list(gen_db_phase(graph))
    accessed = {e.oid for e in traverse_phase(graph) if isinstance(e, AccessEvent)}
    for module in graph.modules:
        assert module.oid in accessed
    part_oids = {p.oid for p in graph.alive_atomic_parts()}
    assert part_oids <= accessed


def test_single_module_accessors_still_work():
    graph = Oo7Graph(TINY, rng=random.Random(0))
    list(graph.generate())
    assert graph.module_oid == graph.modules[0].oid
    assert graph.manual_oid == graph.modules[0].manual_oid
    assert graph.root_assembly is graph.modules[0].root_assembly


def test_empty_graph_accessors():
    graph = Oo7Graph(TINY, rng=random.Random(0))
    assert graph.module_oid is None
    assert graph.manual_oid is None
    assert graph.root_assembly is None
