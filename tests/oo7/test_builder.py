"""Tests for OO7 database building: Table 1 verification on a real store."""

import pytest

from repro.oo7.builder import build_database
from repro.oo7.config import SMALL_PRIME, TINY
from repro.storage.heap import StoreConfig
from repro.storage.object_model import ObjectKind

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


@pytest.fixture(scope="module")
def tiny_db():
    return build_database(TINY, store_config=TINY_STORE)


def test_built_db_object_count(tiny_db):
    assert len(tiny_db.store.objects) == TINY.expected_object_count


def test_built_db_byte_total(tiny_db):
    assert tiny_db.store.db_size == TINY.expected_bytes_per_module


def test_built_db_is_fully_reachable(tiny_db):
    """A freshly generated database contains no garbage at all."""
    store = tiny_db.store
    assert store.reachable_from_roots() == set(store.objects)
    assert store.actual_garbage_bytes == 0
    assert store.check_death_annotations() == set()


def test_built_db_has_no_lingering_unlinked_pins(tiny_db):
    """Every created object ends up referenced (or rooted)."""
    assert tiny_db.store.unlinked == set()


def test_kind_counts(tiny_db):
    counts = tiny_db.kind_counts()
    assert counts[ObjectKind.ATOMIC_PART] == TINY.atomic_parts_per_module
    assert counts[ObjectKind.CONNECTION] == TINY.connections_per_module
    assert counts[ObjectKind.COMPOSITE_PART] == TINY.num_comp_per_module


def test_atomic_part_in_degree_matches_paper_connectivity(tiny_db):
    """§2.1: "average connectivity of four (i.e., each object has four
    pointers pointing to it)" — composite ref + NumConnPerAtomic in-conns."""
    assert tiny_db.atomic_part_in_degree() == pytest.approx(
        TINY.num_conn_per_atomic + 1
    )


def test_database_spans_multiple_partitions(tiny_db):
    assert tiny_db.store.partition_count > 3


@pytest.mark.slow
def test_small_prime_scale():
    """The paper's Small' database: 12,666 objects, ~1.5 MB of objects."""
    db = build_database(SMALL_PRIME)
    assert len(db.store.objects) == SMALL_PRIME.expected_object_count == 12666
    assert db.store.db_size == SMALL_PRIME.expected_bytes_per_module
    assert db.store.actual_garbage_bytes == 0
    assert db.atomic_part_in_degree() == pytest.approx(4.0)
