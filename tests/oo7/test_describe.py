"""Tests for the Figure 2/3 textual renderings."""

from repro.oo7.builder import build_database
from repro.oo7.config import SMALL_PRIME, TINY
from repro.oo7.describe import describe_phases, describe_structure
from repro.storage.heap import StoreConfig


def test_describe_phases_mentions_all_four():
    text = describe_phases()
    for phase in ("GenDB", "Reorg1", "Traverse", "Reorg2"):
        assert phase in text
    assert "Figure 2" in text


def test_describe_structure_uses_config_numbers():
    text = describe_structure(SMALL_PRIME)
    assert "Figure 3" in text
    assert "150" in text  # composites
    assert "2000 B" in text  # document size
    assert f"{SMALL_PRIME.expected_object_count:,}" in text


def test_describe_structure_with_generated_database():
    db = build_database(
        TINY, store_config=StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)
    )
    text = describe_structure(TINY, graph=db.graph, store=db.store)
    assert "Generated:" in text
    assert f"{TINY.num_comp_per_module} composites" in text
    assert "partitions" in text
