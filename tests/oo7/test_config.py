"""Unit tests for OO7 configuration (Table 1 parameters)."""

import pytest

from repro.oo7.config import SMALL, SMALL_PRIME, TINY, OO7Config


def test_small_prime_matches_table1():
    """Table 1, column Small'."""
    assert SMALL_PRIME.num_atomic_per_comp == 20
    assert SMALL_PRIME.num_conn_per_atomic == 3
    assert SMALL_PRIME.document_size == 2000
    assert SMALL_PRIME.manual_size == 100 * 1024
    assert SMALL_PRIME.num_comp_per_module == 150
    assert SMALL_PRIME.num_assm_per_assm == 3
    assert SMALL_PRIME.num_assm_levels == 6
    assert SMALL_PRIME.num_comp_per_assm == 3
    assert SMALL_PRIME.num_modules == 1


def test_small_matches_table1():
    """Table 1, column Small: 500 composites, 7 assembly levels."""
    assert SMALL.num_comp_per_module == 500
    assert SMALL.num_assm_levels == 7
    # All other parameters are shared with Small'.
    assert SMALL.num_atomic_per_comp == SMALL_PRIME.num_atomic_per_comp
    assert SMALL.num_conn_per_atomic == SMALL_PRIME.num_conn_per_atomic
    assert SMALL.document_size == SMALL_PRIME.document_size
    assert SMALL.manual_size == SMALL_PRIME.manual_size


def test_validation_rejects_nonpositive():
    with pytest.raises(ValueError):
        OO7Config(num_comp_per_module=0)
    with pytest.raises(ValueError):
        OO7Config(document_size=-1)


def test_needs_at_least_two_parts_per_composite():
    with pytest.raises(ValueError):
        OO7Config(num_atomic_per_comp=1)


def test_derived_assembly_counts():
    # Levels 6, fanout 3: 1+3+9+27+81+243 = 364 assemblies, 243 leaves.
    assert SMALL_PRIME.base_assemblies_per_module == 243
    assert SMALL_PRIME.assemblies_per_module == 364


def test_derived_part_and_connection_counts():
    assert SMALL_PRIME.atomic_parts_per_module == 150 * 20 == 3000
    assert SMALL_PRIME.connections_per_module == 3000 * 3 == 9000


def test_expected_object_count():
    expected = 2 + 364 + 2 * 150 + 3000 + 9000
    assert SMALL_PRIME.expected_object_count == expected


def test_expected_bytes_scale_with_connectivity():
    conn9 = SMALL_PRIME.with_connectivity(9)
    delta = conn9.expected_bytes_per_module - SMALL_PRIME.expected_bytes_per_module
    assert delta == 3000 * 6 * SMALL_PRIME.connection_size


def test_with_connectivity_copies():
    conn6 = SMALL_PRIME.with_connectivity(6)
    assert conn6.num_conn_per_atomic == 6
    assert SMALL_PRIME.num_conn_per_atomic == 3  # original untouched
    assert conn6.num_comp_per_module == SMALL_PRIME.num_comp_per_module


def test_with_seed_copies():
    reseeded = TINY.with_seed(99)
    assert reseeded.seed == 99
    assert reseeded.num_comp_per_module == TINY.num_comp_per_module


def test_configs_are_frozen():
    with pytest.raises(Exception):
        SMALL_PRIME.seed = 1  # type: ignore[misc]
