"""Unit tests for the OO7 logical graph: generation and mutation."""

import random

import pytest

from repro.events import CreateEvent, PointerWriteEvent, RootEvent
from repro.oo7.config import TINY
from repro.oo7.schema import Oo7Graph
from repro.storage.object_model import ObjectKind


@pytest.fixture
def graph() -> Oo7Graph:
    graph = Oo7Graph(TINY, rng=random.Random(42))
    list(graph.generate())  # materialise
    return graph


def _kind_counts(events):
    counts = {}
    for event in events:
        if isinstance(event, CreateEvent):
            counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def test_generation_object_counts_match_config():
    graph = Oo7Graph(TINY, rng=random.Random(0))
    events = list(graph.generate())
    counts = _kind_counts(events)
    assert counts[ObjectKind.MODULE] == 1
    assert counts[ObjectKind.MANUAL] == 1
    assert counts[ObjectKind.ASSEMBLY] == TINY.assemblies_per_module
    assert counts[ObjectKind.COMPOSITE_PART] == TINY.num_comp_per_module
    assert counts[ObjectKind.DOCUMENT] == TINY.num_comp_per_module
    assert counts[ObjectKind.ATOMIC_PART] == TINY.atomic_parts_per_module
    assert counts[ObjectKind.CONNECTION] == TINY.connections_per_module
    assert sum(counts.values()) == TINY.expected_object_count


def test_generation_roots_exactly_the_module():
    graph = Oo7Graph(TINY, rng=random.Random(0))
    events = list(graph.generate())
    roots = [e for e in events if isinstance(e, RootEvent)]
    assert len(roots) == 1
    assert roots[0].oid == graph.module_oid


def test_every_composite_has_a_base_assembly_reference(graph):
    referenced = {
        composite.oid
        for base in graph.base_assemblies()
        for composite in base.composites
    }
    assert referenced == {c.oid for c in graph.composites}


def test_base_assemblies_have_configured_composite_fanout(graph):
    for base in graph.base_assemblies():
        assert len(base.composites) == TINY.num_comp_per_assm


def test_each_part_has_configured_out_connections(graph):
    for composite in graph.composites:
        for part in composite.alive_parts():
            assert len(part.alive_out_conns()) == TINY.num_conn_per_atomic


def test_connections_stay_within_composite_and_avoid_self_loops(graph):
    for composite in graph.composites:
        part_oids = {p.oid for p in composite.alive_parts()}
        for part in composite.alive_parts():
            for conn in part.alive_out_conns():
                assert conn.dst.oid in part_oids
                assert conn.dst is not part


def test_in_and_out_connection_views_are_consistent(graph):
    for composite in graph.composites:
        for part in composite.alive_parts():
            for conn in part.alive_out_conns():
                assert conn in conn.dst.in_conns
            for conn in part.alive_in_conns():
                assert conn in conn.src.out_conns


def test_average_part_in_degree_is_connectivity_plus_one(graph):
    """Each part: 1 composite reference + NumConnPerAtomic in-connections on
    average — the paper's "connectivity of four" at NumConn 3."""
    parts = graph.alive_atomic_parts()
    total_in = sum(1 + len(p.alive_in_conns()) for p in parts)
    assert total_in / len(parts) == pytest.approx(TINY.num_conn_per_atomic + 1)


def test_generation_is_deterministic_for_equal_seeds():
    a = list(Oo7Graph(TINY, rng=random.Random(5)).generate())
    b = list(Oo7Graph(TINY, rng=random.Random(5)).generate())
    assert a == b


def test_generation_varies_with_seed():
    a = list(Oo7Graph(TINY, rng=random.Random(1)).generate())
    b = list(Oo7Graph(TINY, rng=random.Random(2)).generate())
    assert a != b


# ----------------------------------------------------------------------
# delete_part
# ----------------------------------------------------------------------


def test_delete_part_emits_disconnections_and_deaths(graph):
    composite = graph.composites[0]
    part = composite.deletable_parts()[0]
    in_conns = part.alive_in_conns()
    out_conns = part.alive_out_conns()
    events = graph.delete_part(part)

    # One retargeting overwrite per incoming connection + the composite clear.
    assert all(isinstance(e, PointerWriteEvent) for e in events)
    assert len(events) == len(in_conns) + 1

    # Each incoming connection is retargeted (no death), not destroyed.
    for event, conn in zip(events[:-1], in_conns):
        assert event.src == conn.oid
        assert event.slot == "to"
        assert event.target is not None
        assert event.dies == ()

    # The composite clear kills the part and its outgoing connections.
    final = events[-1]
    assert final.src == composite.oid
    assert final.target is None
    assert final.dies[0] == part.oid
    assert set(final.dies[1:]) == {c.oid for c in out_conns}


def test_delete_part_retargets_neighbour_connections(graph):
    """Incoming connections survive, pointing at another alive part, so the
    neighbours' out-degree is preserved and no extra objects are created."""
    composite = graph.composites[0]
    part = composite.deletable_parts()[0]
    in_conns = part.alive_in_conns()
    sources = [c.src for c in in_conns]
    degrees_before = [len(s.alive_out_conns()) for s in sources]
    events = graph.delete_part(part)

    degrees_after = [len(s.alive_out_conns()) for s in sources]
    assert degrees_after == degrees_before
    assert not any(isinstance(e, CreateEvent) for e in events)
    for conn in in_conns:
        assert not conn.dead
        assert conn.dst is not part
        assert not conn.dst.dead
        assert conn in conn.dst.in_conns


def test_connection_population_is_stationary_under_churn(graph):
    """Delete + reinsert leaves the connection count unchanged."""
    before = graph.alive_connection_count()
    composite = graph.composites[0]
    victims = composite.deletable_parts()[:2]
    for part in victims:
        graph.delete_part(part)
    for _ in victims:
        graph.insert_part(composite)
    assert graph.alive_connection_count() == before


def test_delete_part_updates_graph_state(graph):
    composite = graph.composites[0]
    before = len(composite.alive_parts())
    part = composite.deletable_parts()[0]
    graph.delete_part(part)
    assert part.dead
    assert len(composite.alive_parts()) == before - 1
    assert part.slot in composite.free_part_slots


def test_delete_part_rejects_root_part(graph):
    with pytest.raises(ValueError, match="root part"):
        graph.delete_part(graph.composites[0].root_part)


def test_delete_part_rejects_double_delete(graph):
    part = graph.composites[0].deletable_parts()[0]
    graph.delete_part(part)
    with pytest.raises(ValueError, match="already dead"):
        graph.delete_part(part)


def test_deleting_neighbour_first_shrinks_out_death_set(graph):
    """Connections killed by a neighbour's deletion must not die twice."""
    composite = graph.composites[0]
    part = composite.deletable_parts()[0]
    neighbours = {c.dst for c in part.alive_out_conns() if not c.dst.is_root_part}
    victim_neighbour = next(iter(neighbours), None)
    if victim_neighbour is None:
        pytest.skip("part only connects to the root part in this draw")
    graph.delete_part(victim_neighbour)
    events = graph.delete_part(part)
    all_deaths = [
        oid
        for e in events
        if isinstance(e, PointerWriteEvent)
        for oid in e.dies
    ]
    assert len(all_deaths) == len(set(all_deaths))
    assert victim_neighbour.oid not in all_deaths


# ----------------------------------------------------------------------
# insert_part
# ----------------------------------------------------------------------


def test_insert_part_reuses_freed_slot(graph):
    composite = graph.composites[0]
    part = composite.deletable_parts()[0]
    freed_slot = part.slot
    graph.delete_part(part)
    new_part, _events = graph.insert_part(composite)
    assert new_part.slot == freed_slot


def test_insert_part_creates_part_and_connections(graph):
    composite = graph.composites[0]
    new_part, events = graph.insert_part(composite)
    creates = [e for e in events if isinstance(e, CreateEvent)]
    assert creates[0].kind == ObjectKind.ATOMIC_PART
    assert len(creates) == 1 + TINY.num_conn_per_atomic
    assert len(new_part.alive_out_conns()) == TINY.num_conn_per_atomic
    assert not new_part.dead
    assert new_part in composite.alive_parts()


def test_insert_part_targets_are_preexisting_alive_parts(graph):
    composite = graph.composites[0]
    before = set(composite.alive_parts())
    new_part, _events = graph.insert_part(composite)
    for conn in new_part.alive_out_conns():
        assert conn.dst in before
