"""Property-based tests: OO7 graph invariants under random churn.

Random interleavings of part deletions and insertions must preserve the
structural invariants of the logical graph AND produce event streams whose
death annotations agree with true reachability when applied to a real
store. This is the contract the oracle garbage accounting rests on.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oo7.builder import apply_event
from repro.oo7.config import OO7Config
from repro.oo7.schema import Oo7Graph
from repro.storage.heap import ObjectStore, StoreConfig

SMALL_GRAPH = OO7Config(
    num_atomic_per_comp=5,
    num_conn_per_atomic=2,
    num_comp_per_module=4,
    num_assm_levels=2,
    manual_size=1024,
    document_size=200,
)
STORE_CFG = StoreConfig(page_size=512, partition_pages=4, buffer_pages=4)


def _churn(graph: Oo7Graph, store: ObjectStore, operations, rng: random.Random):
    """Apply a random churn sequence, returning events applied."""
    for op in operations:
        composite = graph.composites[op % len(graph.composites)]
        if op % 2 == 0:
            victims = composite.deletable_parts()
            if victims:
                victim = victims[op % len(victims)]
                for event in graph.delete_part(victim):
                    apply_event(store, event)
        else:
            _part, events = graph.insert_part(composite)
            for event in events:
                apply_event(store, event)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**16),
    st.lists(st.integers(min_value=0, max_value=1000), max_size=40),
)
def test_death_annotations_always_match_reachability(seed, operations):
    rng = random.Random(seed)
    graph = Oo7Graph(SMALL_GRAPH, rng=rng)
    store = ObjectStore(STORE_CFG)
    for event in graph.generate():
        apply_event(store, event)
    _churn(graph, store, operations, rng)
    assert store.check_death_annotations() == set()


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**16),
    st.lists(st.integers(min_value=0, max_value=1000), max_size=40),
)
def test_structural_invariants_under_churn(seed, operations):
    rng = random.Random(seed)
    graph = Oo7Graph(SMALL_GRAPH, rng=rng)
    store = ObjectStore(STORE_CFG)
    for event in graph.generate():
        apply_event(store, event)
    _churn(graph, store, operations, rng)

    for composite in graph.composites:
        alive = composite.alive_parts()
        # The root part is immortal.
        assert composite.root_part in alive
        for part in alive:
            if len(alive) >= 2:
                # Deletions retarget and insertions repair, so any composite
                # with at least two alive parts has full out-degree.
                assert len(part.alive_out_conns()) == SMALL_GRAPH.num_conn_per_atomic
            else:
                # A composite churned down to its lone root part may carry a
                # connectivity deficit until the next insertion repairs it.
                assert len(part.alive_out_conns()) <= SMALL_GRAPH.num_conn_per_atomic
            # Connection views are mutually consistent and alive ends only.
            for conn in part.alive_out_conns():
                assert not conn.dst.dead
                assert conn in conn.dst.in_conns
            for conn in part.alive_in_conns():
                assert not conn.src.dead
                assert conn in conn.src.out_conns
        # No alive connection targets or leaves a dead part.
        oids = {p.oid for p in alive}
        for part in alive:
            for conn in part.alive_out_conns():
                assert conn.dst.oid in oids


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**16),
    st.lists(st.integers(min_value=0, max_value=1000), max_size=30),
)
def test_store_graph_agreement_under_churn(seed, operations):
    """The store's pointer state mirrors the logical graph exactly."""
    rng = random.Random(seed)
    graph = Oo7Graph(SMALL_GRAPH, rng=rng)
    store = ObjectStore(STORE_CFG)
    for event in graph.generate():
        apply_event(store, event)
    _churn(graph, store, operations, rng)

    for composite in graph.composites:
        composite_obj = store.objects[composite.oid]
        for part in composite.alive_parts():
            assert composite_obj.pointers[part.slot] == part.oid
            part_obj = store.objects[part.oid]
            for conn in part.alive_out_conns():
                assert part_obj.pointers[conn.slot] == conn.oid
                assert store.objects[conn.oid].pointers["to"] == conn.dst.oid
