"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import (
    DEFAULT_CACHE_DIR,
    EXPERIMENTS,
    _build_parser,
    _resolve_cache,
    main,
)
from repro.sim.cache import ResultCache


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in output


def test_experiment_registry_is_complete():
    expected = {
        "table1",
        "figure1",
        "figure4",
        "figure5",
        "figure6",
        "figure7",
        "figure8",
        "figure9",
        "describe",
        "drill",
        "ablation-clock",
        "ablation-clustering",
        "ablation-estimators",
        "ablation-fixed",
        "ablation-history",
        "ablation-selection",
        "ablation-weight",
        "fleet-demo",
    }
    assert set(EXPERIMENTS) == expected


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["figure99"])


def test_run_single_experiment_with_seeds(capsys):
    assert main(["table1", "--seeds", "0"]) == 0
    output = capsys.readouterr().out
    assert "Table 1" in output
    assert "completed in" in output


def test_out_file_written(tmp_path, capsys):
    target = tmp_path / "report.txt"
    assert main(["table1", "--out", str(target)]) == 0
    assert target.exists()
    assert "Table 1" in target.read_text()


def test_out_dir_written(tmp_path, capsys):
    out_dir = tmp_path / "reports"
    assert main(["table1", "--out-dir", str(out_dir)]) == 0
    assert (out_dir / "table1.txt").exists()


# ---------------------------------------------------------------- engine flags


def test_engine_flags_parse(tmp_path):
    args = _build_parser().parse_args(
        [
            "figure4",
            "--seeds",
            "0",
            "1",
            "--jobs",
            "4",
            "--cache-dir",
            str(tmp_path),
            "--progress",
        ]
    )
    assert args.jobs == 4
    assert args.cache_dir == tmp_path
    assert args.progress is True
    assert args.no_cache is False
    assert args.seeds == [0, 1]


def test_jobs_defaults_to_auto():
    args = _build_parser().parse_args(["figure4"])
    assert args.jobs is None  # engine resolves to one worker per CPU


def test_jobs_rejects_nonpositive(capsys):
    with pytest.raises(SystemExit):
        _build_parser().parse_args(["figure4", "--jobs", "0"])
    assert "must be >= 1" in capsys.readouterr().err


def test_no_cache_flag_disables_cache(tmp_path):
    args = _build_parser().parse_args(
        ["figure4", "--no-cache", "--cache-dir", str(tmp_path)]
    )
    assert _resolve_cache(args) is None


def test_cache_dir_flag_wins(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    args = _build_parser().parse_args(["figure4", "--cache-dir", str(tmp_path / "flag")])
    cache = _resolve_cache(args)
    assert isinstance(cache, ResultCache)
    assert cache.root == tmp_path / "flag"


def test_cache_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    args = _build_parser().parse_args(["figure4"])
    assert _resolve_cache(args).root == tmp_path / "env"


def test_cache_dir_default(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.chdir(tmp_path)
    args = _build_parser().parse_args(["figure4"])
    assert str(_resolve_cache(args).root) == DEFAULT_CACHE_DIR


def test_run_with_engine_flags(tmp_path, capsys):
    """Flags flow end-to-end through a (non-engine) experiment unharmed."""
    assert (
        main(
            [
                "describe",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--progress",
            ]
        )
        == 0
    )
    assert "completed in" in capsys.readouterr().out


def test_fault_tolerance_flags_parse(tmp_path):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(
        '{"seed": 3, "faults": [{"site": "io.write", "at": 1}]}'
    )
    args = _build_parser().parse_args(
        [
            "figure4",
            "--retries",
            "2",
            "--run-timeout",
            "5.5",
            "--faults",
            str(plan_path),
        ]
    )
    assert args.retries == 2
    assert args.run_timeout == 5.5
    assert args.faults == plan_path


def test_fault_tolerance_flags_default_off():
    args = _build_parser().parse_args(["figure4"])
    assert args.retries == 0
    assert args.run_timeout is None
    assert args.faults is None


def test_retries_rejects_negative(capsys):
    with pytest.raises(SystemExit):
        _build_parser().parse_args(["figure4", "--retries", "-1"])
    assert "must be >= 0" in capsys.readouterr().err


def test_run_with_fault_plan_reports_failures(tmp_path, capsys):
    """An always-crashing plan still completes and reports partial results."""
    plan_path = tmp_path / "plan.json"
    plan_path.write_text('{"faults": [{"site": "io.write", "at": 1}]}')
    assert (
        main(
            [
                "figure1",
                "--seeds",
                "0",
                "--no-cache",
                "--jobs",
                "1",
                "--faults",
                str(plan_path),
                "--retries",
                "1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "FAILED" in out
    assert "completed in" in out


def test_drill_experiment_runs_via_cli(capsys):
    assert main(["drill", "--seeds", "0", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "IDENTICAL" in out
    assert "completed in" in out


def test_telemetry_flag_parses_and_defaults_off(tmp_path):
    args = _build_parser().parse_args(["figure4"])
    assert args.telemetry is None
    args = _build_parser().parse_args(
        ["figure4", "--telemetry", str(tmp_path / "tel")]
    )
    assert args.telemetry == tmp_path / "tel"


def test_run_with_telemetry_writes_files_and_hints(tmp_path, capsys):
    tel = tmp_path / "tel"
    assert (
        main(
            [
                "figure1",
                "--seeds",
                "0",
                "--no-cache",
                "--jobs",
                "1",
                "--telemetry",
                str(tel),
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "completed in" in captured.out
    assert "repro metrics" in captured.err
    assert list(tel.glob("engine_*.jsonl"))
    assert list(tel.glob("run_*.jsonl"))
    # The written telemetry is readable by the metrics subcommand.
    assert main(["metrics", str(tel)]) == 0
    assert "telemetry file(s)" in capsys.readouterr().out


def test_drill_with_telemetry_writes_drill_files(tmp_path, capsys):
    tel = tmp_path / "drill-tel"
    assert (
        main(
            ["drill", "--seeds", "0", "--no-cache", "--telemetry", str(tel)]
        )
        == 0
    )
    assert "IDENTICAL" in capsys.readouterr().out
    assert list(tel.glob("run_000_drill_s0.jsonl"))
