"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in output


def test_experiment_registry_is_complete():
    expected = {
        "table1",
        "figure1",
        "figure4",
        "figure5",
        "figure6",
        "figure7",
        "figure8",
        "describe",
        "ablation-clock",
        "ablation-clustering",
        "ablation-estimators",
        "ablation-fixed",
        "ablation-history",
        "ablation-selection",
        "ablation-weight",
    }
    assert set(EXPERIMENTS) == expected


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["figure99"])


def test_run_single_experiment_with_seeds(capsys):
    assert main(["table1", "--seeds", "0"]) == 0
    output = capsys.readouterr().out
    assert "Table 1" in output
    assert "completed in" in output


def test_out_file_written(tmp_path, capsys):
    target = tmp_path / "report.txt"
    assert main(["table1", "--out", str(target)]) == 0
    assert target.exists()
    assert "Table 1" in target.read_text()


def test_out_dir_written(tmp_path, capsys):
    out_dir = tmp_path / "reports"
    assert main(["table1", "--out-dir", str(out_dir)]) == 0
    assert (out_dir / "table1.txt").exists()
