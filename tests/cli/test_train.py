"""End-to-end tests for ``python -m repro train``."""

import json

import pytest

from repro.cli import main as cli_main
from repro.gc.learned import LearnedModel
from repro.train import main as train_main


@pytest.fixture(scope="module")
def telemetry_dir(tmp_path_factory):
    """A small live run's telemetry (cache off — hits emit no timelines)."""
    tel = tmp_path_factory.mktemp("train-tel")
    assert (
        cli_main(
            [
                "figure1",
                "--seeds",
                "0",
                "--no-cache",
                "--jobs",
                "1",
                "--telemetry",
                str(tel),
            ]
        )
        == 0
    )
    return tel


def test_train_end_to_end_json_summary(telemetry_dir, tmp_path, capsys):
    out = tmp_path / "model.json"
    assert train_main([str(telemetry_dir), "--out", str(out), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["rows"] > 0
    assert summary["files"] > 0
    assert summary["spec"] == f"learned:{out}@{summary['sha256'][:12]}"
    model = LearnedModel.load(out)
    assert model.sha256 == summary["sha256"]
    assert model.trained_rows == summary["rows"]


def test_repeat_training_is_bit_identical(telemetry_dir, tmp_path, capsys):
    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    assert train_main([str(telemetry_dir), "--out", str(out_a)]) == 0
    assert train_main([str(telemetry_dir), "--out", str(out_b)]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    text = capsys.readouterr().out
    assert "model sha256" in text
    assert "spec learned:" in text


def test_hyperparameters_change_the_artifact(telemetry_dir, tmp_path, capsys):
    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    assert train_main([str(telemetry_dir), "--out", str(out_a)]) == 0
    assert (
        train_main([str(telemetry_dir), "--out", str(out_b), "--seed", "7"]) == 0
    )
    assert out_a.read_bytes() != out_b.read_bytes()


def test_train_dispatches_through_repro_cli(telemetry_dir, tmp_path, capsys):
    out = tmp_path / "model.json"
    assert cli_main(["train", str(telemetry_dir), "--out", str(out)]) == 0
    assert out.exists()


def test_empty_directory_exits_2(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert train_main([str(empty)]) == 2
    assert "no labelled collection" in capsys.readouterr().err


def test_malformed_telemetry_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("{not json\n")
    assert train_main([str(bad)]) == 2
    assert "error:" in capsys.readouterr().err
