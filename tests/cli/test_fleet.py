"""The fleet driver: policy parsing, grid building, CLI end-to-end."""

import json

import pytest

from repro.cli import main as cli_main
from repro.fleet import (
    build_grid,
    load_scenario,
    main as fleet_main,
    parse_policy,
)
from repro.sim.spec import PolicySpec
from repro.workload.grammar import GrammarError, WorkloadConfig
from repro.workload.tenants import TenantMixConfig, make_profile, tenant_mix


# ----------------------------------------------------------------------
# Policy parsing
# ----------------------------------------------------------------------


def test_parse_policy_forms():
    assert parse_policy("fixed:60") == PolicySpec(
        "fixed", {"overwrites_per_collection": 60.0}
    )
    assert parse_policy("allocation:24576") == PolicySpec(
        "allocation", {"bytes_per_collection": 24576.0}
    )
    assert parse_policy("saio:0.1") == PolicySpec("saio", {"io_fraction": 0.1})
    assert parse_policy("saga:0.25") == PolicySpec(
        "saga", {"garbage_fraction": 0.25}
    )
    assert parse_policy("saga:0.25:cgs-hb") == PolicySpec(
        "saga", {"garbage_fraction": 0.25, "estimator": "cgs-hb"}
    )


@pytest.mark.parametrize("bad", ["bogus:1", "fixed", "fixed:abc", "saga:x"])
def test_parse_policy_rejects_malformed(bad):
    with pytest.raises(ValueError, match="accepted forms"):
        parse_policy(bad)


# ----------------------------------------------------------------------
# Grid building and scenario loading
# ----------------------------------------------------------------------


def test_build_grid_interleaved_mix():
    mix = tenant_mix(["oltp-churn", "read-browse"], scale=0.1)
    policies = [parse_policy("fixed:20"), parse_policy("saio:0.1")]
    specs = build_grid(mix, policies)
    assert len(specs) == 2
    assert all(s.workload.kind == "tenant-mix" for s in specs)
    assert {s.policy.kind for s in specs} == {"fixed", "saio"}
    assert all(mix.name in s.label for s in specs)


def test_build_grid_sharded_mix():
    mix = tenant_mix(["oltp-churn", "read-browse"], scale=0.1)
    specs = build_grid(mix, [parse_policy("fixed:20")], shard=True)
    assert len(specs) == 2
    assert all(s.workload.kind == "grammar" for s in specs)
    labels = {s.label.split(" × ")[0] for s in specs}
    assert labels == {f"{mix.name}/oltp-churn", f"{mix.name}/read-browse"}


def test_build_grid_single_grammar_config():
    config = make_profile("oltp-churn", scale=0.1)
    specs = build_grid(config, [parse_policy("fixed:20")])
    assert len(specs) == 1 and specs[0].workload.kind == "grammar"
    with pytest.raises(GrammarError, match="shard"):
        build_grid(config, [parse_policy("fixed:20")], shard=True)


def test_load_scenario_dispatches_by_shape(tmp_path):
    config = make_profile("oltp-churn", scale=0.1)
    mix = tenant_mix(["oltp-churn", "read-browse"], scale=0.1)

    grammar_json = tmp_path / "g.json"
    grammar_json.write_text(config.to_json())
    assert load_scenario(grammar_json) == config

    grammar_toml = tmp_path / "g.toml"
    grammar_toml.write_text(config.to_toml())
    assert load_scenario(grammar_toml) == config

    mix_json = tmp_path / "m.json"
    mix_json.write_text(mix.to_json())
    assert load_scenario(mix_json) == mix

    broken = tmp_path / "broken.json"
    broken.write_text("{nope")
    with pytest.raises(GrammarError):
        load_scenario(broken)


# ----------------------------------------------------------------------
# CLI end-to-end
# ----------------------------------------------------------------------

_BASE = ["--profiles", "oltp-churn", "read-browse", "--scale", "0.2", "--seeds", "0"]


def _run(tmp_path, *extra, out_name="report.txt"):
    out = tmp_path / out_name
    code = fleet_main(
        [*_BASE, "--cache-dir", str(tmp_path / "cache"), "--out", str(out), *extra]
    )
    return code, out


def test_fleet_runs_and_reports(tmp_path, capsys):
    code, out = _run(tmp_path)
    assert code == 0
    report = out.read_text()
    assert "Fleet sweep" in report and "seeds: 0" in report
    assert report in capsys.readouterr().out + report  # printed to stdout too


def test_fleet_reports_byte_identical_across_jobs(tmp_path):
    code1, out1 = _run(tmp_path, "--jobs", "1", out_name="jobs1.txt")
    code2, out2 = _run(
        tmp_path, "--jobs", "2", "--no-cache", out_name="jobs2.txt"
    )
    assert code1 == code2 == 0
    assert out1.read_text() == out2.read_text()


def test_fleet_second_run_is_fully_cached(tmp_path):
    code, _ = _run(tmp_path)
    assert code == 0
    code, _ = _run(tmp_path, "--expect-all-cached", out_name="second.txt")
    assert code == 0


def test_fleet_expect_all_cached_fails_cold(tmp_path):
    code, _ = _run(tmp_path, "--no-cache", "--expect-all-cached")
    assert code == 3


def test_fleet_emit_scenario_round_trips(tmp_path):
    scenario_file = tmp_path / "scenario.json"
    code, _ = _run(tmp_path, "--emit-scenario", str(scenario_file))
    assert code == 0
    payload = json.loads(scenario_file.read_text())
    assert TenantMixConfig.from_dict(payload).name == "oltp-churn+read-browse"

    out = tmp_path / "from-config.txt"
    code = fleet_main(
        [
            "--config", str(scenario_file),
            "--seeds", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out),
        ]
    )
    assert code == 0 and out.exists()


def test_fleet_shard_mode_reports_per_tenant(tmp_path):
    code, out = _run(tmp_path, "--shard", out_name="shard.txt")
    assert code == 0
    report = out.read_text()
    assert "sharded" in report
    assert "/oltp-churn" in report and "/read-browse" in report


def test_fleet_grammar_config_file(tmp_path):
    config_file = tmp_path / "one.toml"
    config_file.write_text(make_profile("read-browse", scale=0.1).to_toml())
    out = tmp_path / "one.txt"
    code = fleet_main(
        [
            "--config", str(config_file),
            "--seeds", "0",
            "--no-cache",
            "--out", str(out),
        ]
    )
    assert code == 0
    assert "read-browse" in out.read_text()


def test_fleet_telemetry_files(tmp_path):
    tel = tmp_path / "tel"
    code, _ = _run(tmp_path, "--no-cache", "--telemetry", str(tel))
    assert code == 0
    names = [p.name for p in tel.glob("*.jsonl")]
    assert any(n.startswith("engine_") for n in names)
    assert any(n.startswith("run_") for n in names)
    assert cli_main(["metrics", str(tel)]) == 0


def test_fleet_error_paths(tmp_path, capsys):
    assert fleet_main(["--profiles", "no-such-profile"]) == 2
    assert "no-such-profile" in capsys.readouterr().err
    assert fleet_main([*_BASE, "--policies", "bogus:1"]) == 2
    assert "accepted forms" in capsys.readouterr().err
    assert fleet_main(["--config", str(tmp_path / "missing.json")]) == 2


def test_cli_dispatches_fleet_subcommand(tmp_path):
    out = tmp_path / "via-cli.txt"
    code = cli_main(
        [
            "fleet",
            *_BASE,
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out),
        ]
    )
    assert code == 0 and out.exists()


def test_fleet_demo_experiment_runs(tmp_path, capsys):
    code = cli_main(
        ["fleet-demo", "--seeds", "0", "--cache-dir", str(tmp_path / "cache")]
    )
    assert code == 0
    assert "Fleet demo grid" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Per-run summary CSV and parallel collection flags
# ----------------------------------------------------------------------


def test_fleet_summary_csv_rows_per_cell_and_seed(tmp_path):
    csv_path = tmp_path / "runs.csv"
    code, _ = _run(
        tmp_path,
        "--seeds", "0", "1",
        "--summary-csv", str(csv_path),
    )
    assert code == 0
    lines = csv_path.read_text().splitlines()
    header = lines[0].split(",")
    assert header[:4] == ["cell", "policy", "seed", "error"]
    assert "collections" in header and "total_reclaimed_bytes" in header
    # 1 interleaved scenario × 2 default policies × 2 seeds.
    assert len(lines) == 1 + 2 * 2
    seeds = [line.split(",")[2] for line in lines[1:]]
    assert seeds == ["0", "1", "0", "1"]
    assert all(line.split(",")[3] == "" for line in lines[1:]), "no failures"


def test_fleet_summary_csv_byte_identical_across_jobs(tmp_path):
    csv1 = tmp_path / "jobs1.csv"
    csv2 = tmp_path / "jobs2.csv"
    code1, _ = _run(
        tmp_path, "--jobs", "1", "--summary-csv", str(csv1),
        out_name="jobs1.txt",
    )
    code2, _ = _run(
        tmp_path, "--jobs", "2", "--no-cache", "--summary-csv", str(csv2),
        out_name="jobs2.txt",
    )
    assert code1 == code2 == 0
    assert csv1.read_bytes() == csv2.read_bytes()


def test_fleet_parallel_collection_report_identical(tmp_path):
    """--collection parallel is an execution detail: same report bytes at
    any worker count, and the serial cells' cache entries answer it."""
    serial_out = tmp_path / "serial.txt"
    code = fleet_main(
        [*_BASE, "--cache-dir", str(tmp_path / "cache"),
         "--out", str(serial_out)]
    )
    assert code == 0
    parallel_out = tmp_path / "parallel.txt"
    code = fleet_main(
        [*_BASE, "--cache-dir", str(tmp_path / "cache"),
         "--out", str(parallel_out),
         "--collection", "parallel", "--gc-workers", "4",
         "--expect-all-cached"]
    )
    assert code == 0, "parallel cells must share the serial fingerprints"
    assert parallel_out.read_bytes() == serial_out.read_bytes()


def test_fleet_parallel_collection_uncached_matches_serial(tmp_path):
    """Without a cache the parallel cells actually simulate — the report
    must still match the serial run byte for byte."""
    serial_out = tmp_path / "serial.txt"
    code = fleet_main([*_BASE, "--no-cache", "--out", str(serial_out)])
    assert code == 0
    parallel_out = tmp_path / "parallel.txt"
    code = fleet_main(
        [*_BASE, "--no-cache", "--out", str(parallel_out),
         "--collection", "parallel", "--gc-workers", "4"]
    )
    assert code == 0
    assert parallel_out.read_bytes() == serial_out.read_bytes()


def test_fleet_gc_workers_validation():
    assert fleet_main([*_BASE, "--gc-workers", "0"]) == 2
    assert fleet_main([*_BASE, "--gc-workers", "4"]) == 2  # serial + workers


def test_format_summary_csv_quarantined_seed_gets_error_row():
    from repro.fleet import build_grid, format_summary_csv
    from repro.sim.metrics import SimulationSummary
    from repro.sim.runner import AggregateResult, RunFailure

    specs = build_grid(
        tenant_mix(["oltp-churn"], scale=0.2), [parse_policy("fixed:20")]
    )
    summary = SimulationSummary(
        events=10, collections=2, preamble_collections=0,
        garbage_fraction_mean=0.1, garbage_fraction_min=0.0,
        garbage_fraction_max=0.2, gc_io_fraction=0.3,
        gc_io_fraction_total=0.3, app_io_total=100, gc_io_total=40,
        total_reclaimed_bytes=500, total_garbage_generated=600,
        pointer_overwrites=50, final_garbage_fraction=0.05,
        final_db_size=4000, final_partitions=2, significant=True,
    )
    results = [
        AggregateResult(
            summaries=[summary],
            failures=[RunFailure(specs[0].label, seed=0, error="Boom()",
                                 attempts=1)],
        )
    ]
    lines = format_summary_csv(specs, results, seeds=[0, 1]).splitlines()
    assert len(lines) == 3
    failed, ok = lines[1].split(","), lines[2].split(",")
    assert failed[2] == "0" and failed[3] == "Boom()"
    assert all(cell == "" for cell in failed[4:])
    assert ok[2] == "1" and ok[3] == "" and "500" in ok
