"""The bench harness: suite output shape, regression gate, CLI entry."""

import json

import pytest

from repro.bench import (
    BENCH_FORMAT,
    GATED_METRICS,
    check_regression,
    main as bench_main,
    run_suite,
)
from repro.cli import main as cli_main


@pytest.fixture(scope="module")
def quick_doc():
    return run_suite(quick=True, repeats=1)


def _set_metric(doc, metric, value):
    """Assign a (possibly nested) dotted gated metric in a bench document."""
    node = doc["results"]
    *path, leaf = metric.split(".")
    for part in path:
        node = node[part]
    node[leaf] = value


def test_suite_document_shape(quick_doc):
    assert quick_doc["format"] == BENCH_FORMAT
    assert quick_doc["scale"] == "quick"
    for name in (
        "figure1_cell",
        "traverse_replay",
        "collection_throughput",
        "trace_compile_load",
        "sweep_trace_cache",
        "multi_tenant_replay",
    ):
        assert name in quick_doc["results"], name
    assert quick_doc["results"]["figure1_cell"]["events_per_s"] > 0
    assert quick_doc["results"]["traverse_replay"]["events_per_s"] > 0
    assert quick_doc["results"]["trace_compile_load"]["load_s"] >= 0
    throughput = quick_doc["results"]["collection_throughput"]
    assert throughput["remembered"]["collections_per_s"] > 0
    assert throughput["summaries_match"] is True
    # Sweeping 3 specs over 1 seed shares one trace: a single build.
    assert quick_doc["results"]["sweep_trace_cache"]["trace_builds"] == 1
    replay = quick_doc["results"]["multi_tenant_replay"]
    assert replay["events_per_s"] > 0
    assert replay["tenants"] == 4
    assert replay["collections"] > 0


def test_compiled_load_beats_rebuild(quick_doc):
    tcl = quick_doc["results"]["trace_compile_load"]
    assert tcl["load_s"] < tcl["rebuild_s"]


def test_regression_gate(quick_doc):
    # Identical runs never regress.
    assert check_regression(quick_doc, quick_doc, 0.30) == []

    # A big drop in any gated metric trips the gate — including the
    # nested remembered-collections metric.
    for metric in GATED_METRICS:
        slow = json.loads(json.dumps(quick_doc))
        _set_metric(slow, metric, 10**12)
        problems = check_regression(quick_doc, slow, 0.30)
        assert len(problems) == 1
        assert metric in problems[0]

    # Mismatched scales are not comparable.
    standard = dict(quick_doc, scale="standard")
    problems = check_regression(quick_doc, standard, 0.30)
    assert problems and "scale" in problems[0]


def test_bench_main_writes_json_and_gates(tmp_path, quick_doc):
    out = tmp_path / "BENCH_test.json"
    assert bench_main(["--quick", "--repeats", "1", "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["format"] == BENCH_FORMAT

    # Gate against an easily beatable baseline: passes. (Gating a fresh
    # run against another fresh run is timing noise at --repeats 1; the
    # pass branch must not depend on run-to-run wall-clock stability.)
    easy = json.loads(json.dumps(doc))
    for metric in GATED_METRICS:
        _set_metric(easy, metric, 1.0)
    easy_baseline = tmp_path / "easy.json"
    easy_baseline.write_text(json.dumps(easy))
    out2 = tmp_path / "BENCH_test2.json"
    code = bench_main(
        [
            "--quick",
            "--repeats",
            "1",
            "--out",
            str(out2),
            "--baseline",
            str(easy_baseline),
        ]
    )
    assert code == 0

    # Gate against an impossible baseline: fails.
    impossible = json.loads(json.dumps(doc))
    for metric in GATED_METRICS:
        _set_metric(impossible, metric, 10**12)
    baseline = tmp_path / "impossible.json"
    baseline.write_text(json.dumps(impossible))
    code = bench_main(
        ["--quick", "--repeats", "1", "--out", str(out2), "--baseline", str(baseline)]
    )
    assert code == 1


def test_cli_dispatches_bench_subcommand(tmp_path):
    out = tmp_path / "BENCH_cli.json"
    assert cli_main(["bench", "--quick", "--repeats", "1", "--out", str(out)]) == 0
    assert out.exists()


def test_bench_telemetry_writes_suite_and_case_files(tmp_path):
    out = tmp_path / "BENCH_tel.json"
    tel = tmp_path / "tel"
    code = bench_main(
        [
            "--quick",
            "--repeats",
            "1",
            "--out",
            str(out),
            "--telemetry",
            str(tel),
        ]
    )
    assert code == 0
    names = {p.name for p in tel.glob("*.jsonl")}
    assert "bench_suite.jsonl" in names
    assert "bench_figure1_cell.jsonl" in names
    assert "bench_traverse_replay.jsonl" in names
    assert "bench_collection_throughput.jsonl" in names
    assert "bench_trace_compile_load.jsonl" in names
    assert "bench_multi_tenant_replay.jsonl" in names
    assert any(n.startswith("engine_") for n in names)
    # Readable via the metrics subcommand.
    assert cli_main(["metrics", str(tel)]) == 0


def test_bench_profile_dumps_into_telemetry_dir(tmp_path):
    out = tmp_path / "BENCH_prof.json"
    tel = tmp_path / "tel"
    code = bench_main(
        [
            "--quick",
            "--repeats",
            "1",
            "--out",
            str(out),
            "--telemetry",
            str(tel),
            "--profile",
        ]
    )
    assert code == 0
    stats = tel / "bench_profile.pstats"
    assert stats.exists() and stats.stat().st_size > 0
    # An explicit stats file wins over the telemetry dir.
    explicit = tmp_path / "explicit.pstats"
    code = bench_main(
        [
            "--quick",
            "--repeats",
            "1",
            "--out",
            str(out),
            "--telemetry",
            str(tel),
            "--profile",
            str(explicit),
        ]
    )
    assert code == 0
    assert explicit.exists()


def test_bench_profile_without_telemetry_prints_stats_only(tmp_path, capsys):
    out = tmp_path / "BENCH_prof2.json"
    assert (
        bench_main(["--quick", "--repeats", "1", "--out", str(out), "--profile"])
        == 0
    )
    assert "cumulative" in capsys.readouterr().err
