"""Validate the per-collection cost model exactly against the collector."""

import random

import pytest

from repro.analysis.cost_model import predict_collection_cost
from repro.gc.collector import CopyingCollector
from repro.oo7.builder import apply_event, build_database
from repro.oo7.config import TINY
from repro.oo7.schema import Oo7Graph
from repro.storage.heap import ObjectStore, StoreConfig
from repro.workload.phases import gen_db_phase, reorg1_phase

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def _churned_store(seed=0):
    rng = random.Random(seed)
    graph = Oo7Graph(TINY, rng=rng)
    store = ObjectStore(TINY_STORE)
    for event in gen_db_phase(graph):
        apply_event(store, event)
    for event in reorg1_phase(graph, rng):
        apply_event(store, event)
    return store


def test_prediction_matches_collector_exactly_fresh_db():
    store = build_database(TINY, store_config=TINY_STORE).store
    collector = CopyingCollector(store)
    for pid in range(store.partition_count):
        predicted = predict_collection_cost(store, pid)
        result = collector.collect(pid)
        assert predicted.reads == result.gc_reads, f"partition {pid} reads"
        assert predicted.writes == result.gc_writes, f"partition {pid} writes"


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_prediction_matches_collector_exactly_after_churn(seed):
    store = _churned_store(seed)
    collector = CopyingCollector(store)
    for pid in range(store.partition_count):
        predicted = predict_collection_cost(store, pid)
        result = collector.collect(pid)
        assert predicted.reads == result.gc_reads, f"partition {pid} reads"
        assert predicted.writes == result.gc_writes, f"partition {pid} writes"
        assert predicted.total == result.gc_io


def test_prediction_components_are_sane():
    store = _churned_store(0)
    breakdown = predict_collection_cost(store, 0)
    assert breakdown.partition_read_pages >= 1
    assert breakdown.survivor_write_pages >= 0
    assert breakdown.fixup_pages >= 0
    assert breakdown.dirty_writeback_pages >= 0
    assert breakdown.total == breakdown.reads + breakdown.writes


def test_cost_variation_is_modest_on_oo7():
    """The data behind SAIO's ΔGCIO ≈ CurrGCIO assumption: predicted costs
    across occupied partitions cluster within a small factor."""
    store = _churned_store(1)
    costs = [
        predict_collection_cost(store, pid).total
        for pid in range(store.partition_count)
        if store.partitions[pid].residents
    ]
    assert len(costs) >= 4
    # Ignore the manual's dedicated oversized partition if present.
    typical = sorted(costs)
    middle = typical[len(typical) // 4 : max(len(typical) // 4 + 1, 3 * len(typical) // 4)]
    assert max(middle) <= 3 * min(middle)
