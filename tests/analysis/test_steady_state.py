"""Validate the steady-state models against actual simulations.

The models claim factor-of-two accuracy; these tests hold them to it on a
mid-sized OO7 instance.
"""

import pytest

from repro.analysis.steady_state import (
    WorkloadModel,
    expected_collections,
    fixed_rate_garbage_fraction,
    fixed_rate_yield,
    saga_interval,
    saga_sawtooth_mean,
    saio_interval,
)
from repro.core.estimators import OracleEstimator
from repro.core.fixed import FixedRatePolicy
from repro.core.saga import SagaPolicy
from repro.core.saio import SaioPolicy
from repro.events import trace_stats
from repro.oo7.config import OO7Config
from repro.sim.simulator import Simulation, SimulationConfig
from repro.workload.application import Oo7Application

CONFIG = OO7Config(
    num_atomic_per_comp=15,
    num_comp_per_module=60,
    num_assm_levels=4,
    manual_size=32 * 1024,
)


@pytest.fixture(scope="module")
def measured():
    """One fixed-rate reference run plus the workload constants."""
    stats = trace_stats(Oo7Application(CONFIG, seed=0).events())
    sim = Simulation(
        policy=FixedRatePolicy(200),
        config=SimulationConfig(preamble_collections=5),
    )
    result = sim.run(Oo7Application(CONFIG, seed=0).events())
    return stats, result


# ----------------------------------------------------------------------
# Pure-algebra checks
# ----------------------------------------------------------------------


def test_model_validation():
    with pytest.raises(ValueError):
        WorkloadModel(garbage_per_overwrite=-1, db_size=100, partitions=2)
    with pytest.raises(ValueError):
        WorkloadModel(garbage_per_overwrite=1, db_size=0, partitions=2)
    with pytest.raises(ValueError):
        WorkloadModel(garbage_per_overwrite=1, db_size=100, partitions=0)


def test_saio_interval_matches_policy_algebra():
    from repro.storage.iostats import IOStats

    policy = SaioPolicy(io_fraction=0.25, c_hist=0)
    assert saio_interval(100, 0.25) == pytest.approx(
        policy.compute_interval(100, IOStats())
    )


def test_expected_collections():
    assert expected_collections(10_000, 200) == pytest.approx(50.0)
    with pytest.raises(ValueError):
        expected_collections(10_000, 0)


def test_sawtooth_mean_above_target():
    assert saga_sawtooth_mean(0.10, mean_yield=20_000, db_size=1_000_000) == pytest.approx(
        0.11
    )


# ----------------------------------------------------------------------
# Model-vs-simulator checks (factor-of-two contract)
# ----------------------------------------------------------------------


def test_fixed_rate_yield_prediction(measured):
    stats, result = measured
    model = WorkloadModel(
        garbage_per_overwrite=stats.garbage_per_overwrite,
        db_size=result.summary.final_db_size,
        partitions=result.summary.final_partitions,
    )
    predicted = fixed_rate_yield(model, 200)
    records = result.collections[5:]
    mean_yield = sum(r.reclaimed_bytes for r in records) / len(records)
    assert predicted == pytest.approx(mean_yield, rel=0.5)


def test_fixed_rate_garbage_prediction(measured):
    stats, result = measured
    model = WorkloadModel(
        garbage_per_overwrite=stats.garbage_per_overwrite,
        db_size=result.summary.final_db_size,
        partitions=result.summary.final_partitions,
    )
    predicted = fixed_rate_garbage_fraction(model, 200)
    achieved = result.summary.garbage_fraction_mean
    assert predicted == pytest.approx(achieved, rel=1.0)  # within 2x


def test_collection_count_prediction(measured):
    stats, result = measured
    predicted = expected_collections(stats.pointer_overwrites, 200)
    assert predicted == pytest.approx(result.summary.collections, rel=0.25)


def test_saga_interval_prediction():
    sim = Simulation(
        policy=SagaPolicy(garbage_fraction=0.10, estimator=OracleEstimator()),
        config=SimulationConfig(preamble_collections=5),
    )
    result = sim.run(Oo7Application(CONFIG, seed=0).events())
    records = result.collections[5:]
    assert len(records) > 5
    mean_yield = sum(r.reclaimed_bytes for r in records) / len(records)
    stats = trace_stats(Oo7Application(CONFIG, seed=0).events())
    model = WorkloadModel(
        garbage_per_overwrite=stats.garbage_per_overwrite,
        db_size=result.summary.final_db_size,
        partitions=result.summary.final_partitions,
    )
    predicted = saga_interval(model, mean_yield)
    clocks = [r.overwrite_clock for r in records]
    mean_interval = (clocks[-1] - clocks[0]) / max(1, len(clocks) - 1)
    assert predicted == pytest.approx(mean_interval, rel=1.0)


def test_saga_sawtooth_prediction():
    sim = Simulation(
        policy=SagaPolicy(garbage_fraction=0.15, estimator=OracleEstimator()),
        config=SimulationConfig(preamble_collections=5),
    )
    result = sim.run(Oo7Application(CONFIG, seed=0).events())
    records = result.collections[5:]
    mean_yield = sum(r.reclaimed_bytes for r in records) / len(records)
    predicted = saga_sawtooth_mean(
        0.15, mean_yield, result.summary.final_db_size
    )
    achieved = result.summary.garbage_fraction_mean
    # The model explains the direction and rough size of the offset.
    assert achieved == pytest.approx(predicted, abs=0.05)
