"""Public-API hygiene: everything exported exists and is documented."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.experiments",
    "repro.faults",
    "repro.gc",
    "repro.obs",
    "repro.oo7",
    "repro.service",
    "repro.sim",
    "repro.storage",
    "repro.tx",
    "repro.workload",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_packages_have_docstrings(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and package.__doc__.strip()


def test_top_level_exports_are_documented():
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not getattr(obj, "__doc__", None):
            undocumented.append(name)
    assert undocumented == []


def test_all_lists_are_sorted_sets():
    """No duplicates in any __all__ (sorted-ness is a style choice we keep
    only for the subpackages that already follow it)."""
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        assert len(exported) == len(set(exported)), f"duplicates in {package_name}"


def test_version_is_exposed():
    assert repro.__version__
