"""Compiled traces must be indistinguishable from the original stream.

The contract the trace cache rests on: ``compile_trace(events)`` replayed
is event-for-event equal to ``events``, through save/load, from any
``start_index``, and a simulation driven by the compiled trace produces a
byte-identical ``SimulationSummary`` — including under fault injection
and crash-recovery resume.
"""

import dataclasses
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import (
    AbortTransactionEvent,
    AccessEvent,
    BeginTransactionEvent,
    CommitTransactionEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    UpdateEvent,
)
from repro.faults.injector import FaultInjector, SimulatedCrash
from repro.faults.plan import FaultPlan, FaultSpec
from repro.oo7.config import TINY
from repro.sim.simulator import Simulation, SimulationConfig
from repro.sim.spec import (
    ExperimentSpec,
    PolicySpec,
    WorkloadSpec,
    build_policy,
    build_selection,
    build_workload,
)
from repro.storage.heap import StoreConfig
from repro.storage.object_model import ObjectKind
from repro.tx.recovery import RedoLog, recover
from repro.workload.compiled import (
    TRACE_FORMAT_VERSION,
    CompiledTrace,
    CompiledTraceError,
    compile_trace,
)

# ---------------------------------------------------------------- strategies

_oids = st.integers(min_value=0, max_value=10_000)
_slots = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=8
)
_kinds = st.sampled_from(list(ObjectKind))

_events = st.one_of(
    st.builds(
        CreateEvent,
        oid=_oids,
        size=st.integers(min_value=1, max_value=4096),
        kind=_kinds,
        pointers=st.lists(
            st.tuples(_slots, st.one_of(st.none(), _oids)), max_size=4
        ).map(tuple),
    ),
    st.builds(AccessEvent, oid=_oids),
    st.builds(UpdateEvent, oid=_oids),
    st.builds(
        PointerWriteEvent,
        src=_oids,
        slot=_slots,
        target=st.one_of(st.none(), _oids),
        dies=st.lists(_oids, max_size=4).map(tuple),
    ),
    st.builds(RootEvent, oid=_oids),
    st.builds(PhaseMarkerEvent, name=st.text(min_size=1, max_size=12)),
    st.builds(IdleEvent, ticks=st.integers(min_value=1, max_value=100)),
    st.builds(BeginTransactionEvent, txid=st.integers(0, 1000)),
    st.builds(CommitTransactionEvent, txid=st.integers(0, 1000)),
    st.builds(AbortTransactionEvent, txid=st.integers(0, 1000)),
)

_traces = st.lists(_events, max_size=60)


# ---------------------------------------------------------------- properties


@given(events=_traces)
@settings(max_examples=80, deadline=None)
def test_compile_replay_is_event_for_event_equal(events):
    trace = compile_trace(events)
    assert len(trace) == len(events)
    assert list(trace) == events
    # Iterating twice must not consume the trace.
    assert list(trace) == events


@given(events=_traces, data=st.data())
@settings(max_examples=60, deadline=None)
def test_replay_from_any_start_index(events, data):
    trace = compile_trace(events)
    start = data.draw(st.integers(min_value=0, max_value=len(events)))
    assert list(trace.replay(start)) == events[start:]


@given(events=_traces)
@settings(max_examples=40, deadline=None)
def test_save_load_roundtrip(events, tmp_path_factory):
    trace = compile_trace(events)
    path = tmp_path_factory.mktemp("traces") / "t.trace"
    trace.save(path)
    loaded = CompiledTrace.load(path)
    assert list(loaded) == events


# ---------------------------------------------------------------- real traces


def _oo7_spec(rate=50.0):
    return ExperimentSpec(
        policy=PolicySpec("fixed", {"overwrites_per_collection": rate}),
        workload=WorkloadSpec("oo7", {"config": TINY}),
        sim=SimulationConfig(
            store=StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4),
            preamble_collections=0,
        ),
        label="compiled-test",
    )


def _simulate(spec, trace, seed=0, **sim_kwargs):
    sim = Simulation(
        policy=build_policy(spec.policy, seed),
        selection=build_selection(spec.selection, seed),
        config=sim_kwargs.pop("config", spec.sim),
        **sim_kwargs,
    )
    return sim, sim.run(trace)


def test_oo7_trace_compiles_exactly():
    spec = _oo7_spec()
    events = list(build_workload(spec.workload, 0))
    trace = compile_trace(events)
    assert list(trace) == events


def test_simulation_summary_byte_identical_from_compiled_trace(tmp_path):
    spec = _oo7_spec()
    events = list(build_workload(spec.workload, 0))
    trace = compile_trace(events)
    path = tmp_path / "oo7.trace"
    trace.save(path)
    loaded = CompiledTrace.load(path)

    _, from_events = _simulate(spec, events)
    _, from_trace = _simulate(spec, trace)
    _, from_disk = _simulate(spec, loaded)

    assert from_events.summary == from_trace.summary == from_disk.summary
    # Byte identity, not just equality: cached-result hashes must match.
    reference = pickle.dumps(from_events.summary)
    assert pickle.dumps(from_trace.summary) == reference
    assert pickle.dumps(from_disk.summary) == reference


def test_crash_resume_from_compiled_trace_matches_event_list():
    """start_index resume must work identically on a compiled trace."""
    from repro.faults.drill import state_digest

    spec = _oo7_spec(rate=30.0)
    config = dataclasses.replace(spec.sim, enable_redo_log=True)
    events = list(build_workload(spec.workload, 0))
    trace = compile_trace(events)
    plan = FaultPlan(faults=(FaultSpec(site="gc.collect", at=2),))

    def drilled(replayable):
        injector = FaultInjector(plan)
        log = RedoLog()
        sim, _ = None, None
        sim = Simulation(
            policy=build_policy(spec.policy, 0),
            selection=build_selection(spec.selection, 0),
            config=config,
            faults=injector,
            redo_log=log,
        )
        start = 0
        crashes = 0
        while True:
            try:
                sim.run(replayable, start_index=start)
                break
            except SimulatedCrash as crash:
                crashes += 1
                assert crashes < 10, "unexpectedly many crashes"
                recovered = recover(log, store_config=config.store)
                log.truncate_uncommitted()
                start = crash.resume_index
                sim = Simulation(
                    policy=build_policy(spec.policy, 0),
                    selection=build_selection(spec.selection, 0),
                    config=config,
                    faults=injector,
                    store=recovered,
                    redo_log=log,
                )
        return crashes, state_digest(sim.store), sim

    crashes_ref, digest_ref, sim_ref = drilled(events)
    crashes_cmp, digest_cmp, sim_cmp = drilled(trace)
    assert crashes_ref >= 1, "the plan must actually crash the run"
    assert crashes_cmp == crashes_ref
    assert digest_cmp == digest_ref
    summary_ref = sim_ref.sampler.summary(sim_ref.store, sim_ref.store.iostats)
    summary_cmp = sim_cmp.sampler.summary(sim_cmp.store, sim_cmp.store.iostats)
    assert pickle.dumps(summary_cmp) == pickle.dumps(summary_ref)


# ---------------------------------------------------------------- format


def test_corrupt_file_raises_compiled_trace_error(tmp_path):
    events = [CreateEvent(oid=1, size=10), AccessEvent(oid=1)]
    path = tmp_path / "x.trace"
    compile_trace(events).save(path)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(CompiledTraceError):
        CompiledTrace.load(path)


def test_truncated_file_raises_compiled_trace_error(tmp_path):
    events = [CreateEvent(oid=1, size=10)]
    path = tmp_path / "x.trace"
    compile_trace(events).save(path)
    path.write_bytes(path.read_bytes()[:-5])
    with pytest.raises(CompiledTraceError):
        CompiledTrace.load(path)


def test_bad_magic_and_version_rejected(tmp_path):
    path = tmp_path / "x.trace"
    path.write_bytes(b"NOPE" + b"\x00" * 32)
    with pytest.raises(CompiledTraceError, match="magic"):
        CompiledTrace.load(path)

    events = [AccessEvent(oid=1)]
    good = tmp_path / "y.trace"
    compile_trace(events).save(good)
    blob = bytearray(good.read_bytes())
    blob[4] = TRACE_FORMAT_VERSION + 1  # bump the little-endian u16 version
    good.write_bytes(bytes(blob))
    with pytest.raises(CompiledTraceError, match="version"):
        CompiledTrace.load(good)
