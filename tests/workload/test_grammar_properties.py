"""Property tests: grammar configs round-trip losslessly for *any* valid
config, and (config, seed) pins the trace fingerprint byte-for-byte."""

from hypothesis import given, settings, strategies as st

from repro.workload.grammar import (
    Choice,
    Fixed,
    GrammarWorkload,
    OpMix,
    PhaseBlock,
    Uniform,
    WorkloadConfig,
)
from repro.workload.presets import PRESETS, make_preset
from repro.workload.trace_cache import trace_fingerprint

_sizes = st.integers(min_value=1, max_value=4096)

_distributions = st.one_of(
    _sizes.map(Fixed),
    st.tuples(_sizes, _sizes).map(lambda t: Uniform(min(t), max(t))),
    st.lists(_sizes, min_size=1, max_size=4, unique=True).map(
        lambda values: Choice(tuple(values))
    ),
)

_mixes = st.fixed_dictionaries(
    {},
    optional={
        "create": st.floats(0, 10),
        "delete": st.floats(0, 10),
        "trim": st.floats(0, 10),
        "access": st.floats(0, 10),
        "update": st.floats(0, 10),
        "pointer_churn": st.floats(0, 10),
        "idle": st.floats(0, 10),
    },
).map(lambda kw: OpMix(**kw))

_phases = st.builds(
    PhaseBlock,
    name=st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=12,
    ),
    operations=st.integers(min_value=0, max_value=60),
    mix=_mixes,
    cluster_size=_distributions,
    object_size=_distributions,
    trim_fraction=st.floats(0.05, 0.95),
    hot_key_skew=st.floats(0.0, 0.95),
    repeat=st.integers(min_value=1, max_value=3),
)

_configs = st.builds(
    WorkloadConfig,
    name=st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=12,
    ),
    phases=st.lists(_phases, min_size=1, max_size=3).map(tuple),
    ops_per_second=st.one_of(st.none(), st.floats(1.0, 2000.0)),
    initial_clusters=st.integers(min_value=0, max_value=8),
)


@settings(max_examples=40, deadline=None)
@given(config=_configs)
def test_any_config_round_trips_losslessly(config):
    assert WorkloadConfig.from_json(config.to_json()) == config
    assert WorkloadConfig.from_toml(config.to_toml()) == config


@settings(max_examples=25, deadline=None)
@given(config=_configs, seed=st.integers(0, 2**31))
def test_round_tripped_config_pins_the_fingerprint(config, seed):
    original = trace_fingerprint(GrammarWorkload(config, seed=seed), seed)
    via_json = WorkloadConfig.from_json(config.to_json())
    via_toml = WorkloadConfig.from_toml(config.to_toml())
    assert trace_fingerprint(GrammarWorkload(via_json, seed=seed), seed) == original
    assert trace_fingerprint(GrammarWorkload(via_toml, seed=seed), seed) == original


@settings(max_examples=15, deadline=None)
@given(config=_configs, seed=st.integers(0, 2**31))
def test_same_config_and_seed_generate_identical_traces(config, seed):
    first = list(GrammarWorkload(config, seed=seed).events())
    second = list(GrammarWorkload(config, seed=seed).events())
    assert first == second


@settings(max_examples=20, deadline=None)
@given(
    name=st.sampled_from(sorted(PRESETS)),
    scale=st.floats(0.01, 0.05),
    seed=st.integers(0, 2**31),
)
def test_preset_fingerprints_are_reproducible(name, scale, seed):
    a = trace_fingerprint(make_preset(name, scale=scale, seed=seed), seed)
    b = trace_fingerprint(make_preset(name, scale=scale, seed=seed), seed)
    assert a == b
