"""The unified WorkloadSpec protocol and trace-fingerprint stability.

Covers the ISSUE's API-redesign satellites: every workload class conforms
to :class:`repro.workload.base.WorkloadSpec`, fingerprints derive from
``canonical_material()``, the deprecated bare-list preset surface still
works (with a warning), and same (config, seed) means byte-identical
fingerprints — in-process, across processes, and across serialisation
round-trips.
"""

import subprocess
import sys
import textwrap

import pytest

from repro.oo7.config import TINY
from repro.workload import (
    GrammarWorkload,
    Oo7Application,
    PresetWorkload,
    SyntheticWorkload,
    TenantMix,
    TransactionalWorkload,
    WorkloadSpec,
    make_preset,
    steady_churn,
    tenant_mix,
)
from repro.workload.grammar import OpMix, PhaseBlock, WorkloadConfig
from repro.workload.trace_cache import TraceCache, trace_fingerprint
from repro.workload.transactional import TransactionalSpec


def _grammar_config():
    return WorkloadConfig(
        name="proto",
        phases=(
            PhaseBlock(name="p", operations=50, mix=OpMix(create=2, delete=1)),
        ),
    )


def _workloads():
    return [
        Oo7Application(TINY, seed=1),
        SyntheticWorkload(steady_churn(0.01), seed=1),
        TransactionalWorkload(TransactionalSpec(), seed=1),
        GrammarWorkload(_grammar_config(), seed=1),
        TenantMix(tenant_mix(["oltp-churn", "read-browse"], scale=0.05), seed=1),
        make_preset("steady-churn", scale=0.01, seed=1),
    ]


@pytest.mark.parametrize(
    "workload", _workloads(), ids=lambda w: type(w).__name__
)
def test_every_workload_conforms_to_the_protocol(workload):
    assert isinstance(workload, WorkloadSpec)
    assert workload.seed == 1
    material = workload.canonical_material()
    assert isinstance(material, dict) and "workload" in material
    events = list(workload.events())
    assert events


@pytest.mark.parametrize(
    "workload", _workloads(), ids=lambda w: type(w).__name__
)
def test_fingerprint_stable_within_process(workload):
    # A fresh equal-constructed instance fingerprints identically; a
    # different seed does not.
    assert trace_fingerprint(workload, 0) == trace_fingerprint(workload, 0)
    assert trace_fingerprint(workload, 0) != trace_fingerprint(workload, 1)


def test_fingerprint_uses_canonical_material():
    class Custom:
        seed = 0

        def events(self):
            return iter(())

        def canonical_material(self):
            return {"workload": "custom", "knob": 3}

    class SameMaterial(Custom):
        pass

    assert trace_fingerprint(Custom(), 0) == trace_fingerprint(SameMaterial(), 0)


def test_preset_fingerprint_matches_equivalent_synthetic():
    # A preset is its phase list: same canonical material as a
    # SyntheticWorkload built from the same phases, so they share cache
    # entries.
    preset = make_preset("steady-churn", scale=0.01, seed=2)
    manual = SyntheticWorkload(steady_churn(0.01), seed=2)
    assert preset.canonical_material() == manual.canonical_material()
    assert trace_fingerprint(preset, 0) == trace_fingerprint(manual, 0)


def test_trace_cache_consumes_protocol_workloads(tmp_path):
    cache = TraceCache(tmp_path)
    workload = GrammarWorkload(_grammar_config(), seed=0)
    first = list(cache.get_or_build(workload, 0).replay())
    again = list(
        cache.get_or_build(GrammarWorkload(_grammar_config(), seed=0), 0).replay()
    )
    assert first == again == list(GrammarWorkload(_grammar_config(), seed=0).events())
    assert cache.stats.builds == 1
    assert cache.stats.resolutions == 2


# ----------------------------------------------------------------------
# Deprecated preset surface
# ----------------------------------------------------------------------


def test_make_preset_returns_workload_and_warns_on_list_use():
    preset = make_preset("steady-churn", scale=0.01)
    assert isinstance(preset, PresetWorkload)
    with pytest.warns(DeprecationWarning):
        phases = list(preset)
    assert phases == preset.phases
    with pytest.warns(DeprecationWarning):
        assert len(preset) == len(preset.phases)
    with pytest.warns(DeprecationWarning):
        assert preset[0] == preset.phases[0]
    # The old idiom — passing the "list" to SyntheticWorkload — still works.
    with pytest.warns(DeprecationWarning):
        workload = SyntheticWorkload(list(preset), seed=0)
    assert list(workload.events())


def test_make_preset_unknown_name_lists_choices():
    with pytest.raises(ValueError, match="steady-churn"):
        make_preset("no-such-preset")


# ----------------------------------------------------------------------
# Cross-process and round-trip fingerprint stability
# ----------------------------------------------------------------------

_SUBPROCESS_SNIPPET = textwrap.dedent(
    """
    from repro.oo7.config import TINY
    from repro.workload import (
        GrammarWorkload, Oo7Application, make_preset, tenant_mix, TenantMix,
    )
    from repro.workload.grammar import OpMix, PhaseBlock, WorkloadConfig
    from repro.workload.trace_cache import trace_fingerprint

    config = WorkloadConfig(
        name="proto",
        phases=(
            PhaseBlock(name="p", operations=50, mix=OpMix(create=2, delete=1)),
        ),
    )
    for workload in (
        GrammarWorkload(config, seed=1),
        TenantMix(tenant_mix(["oltp-churn", "read-browse"], scale=0.05), seed=1),
        Oo7Application(TINY, seed=1),
        make_preset("steady-churn", scale=0.01, seed=1),
    ):
        print(trace_fingerprint(workload, 7))
    """
)


def test_fingerprints_are_stable_across_processes():
    def run():
        return subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SNIPPET],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.splitlines()

    first = run()
    assert len(first) == 4 and all(len(f) == 64 for f in first)
    assert first == run()

    # And the parent process agrees with the children.
    local = [
        trace_fingerprint(GrammarWorkload(_grammar_config(), seed=1), 7),
        trace_fingerprint(
            TenantMix(tenant_mix(["oltp-churn", "read-browse"], scale=0.05), seed=1),
            7,
        ),
        trace_fingerprint(Oo7Application(TINY, seed=1), 7),
        trace_fingerprint(make_preset("steady-churn", scale=0.01, seed=1), 7),
    ]
    assert local == first


def test_grammar_fingerprint_survives_json_and_toml_round_trips():
    config = _grammar_config()
    original = trace_fingerprint(GrammarWorkload(config, seed=3), 0)
    via_json = WorkloadConfig.from_json(config.to_json())
    via_toml = WorkloadConfig.from_toml(config.to_toml())
    assert trace_fingerprint(GrammarWorkload(via_json, seed=3), 0) == original
    assert trace_fingerprint(GrammarWorkload(via_toml, seed=3), 0) == original


def test_tenant_mix_fingerprint_survives_json_round_trip():
    from repro.workload import TenantMixConfig

    mix = tenant_mix(["oltp-churn", "bulk-load"], scale=0.1)
    original = trace_fingerprint(TenantMix(mix, seed=3), 0)
    rebuilt = TenantMixConfig.from_json(mix.to_json())
    assert trace_fingerprint(TenantMix(rebuilt, seed=3), 0) == original
