"""Zero-copy shared-memory trace handoff.

The contract: a trace decoded out of a shared segment (or any buffer, via
``from_bytes``'s zero-copy mode) is event-for-event identical to the
saved original, the cache's shared layer is consulted before disk and
degrades silently to it, and a warm parallel sweep publishes its on-disk
traces once and produces byte-identical results.
"""

import pickle

import pytest

from repro.events import AccessEvent
from repro.oo7.config import TINY
from repro.sim.spec import WorkloadSpec, build_workload
from repro.workload.compiled import (
    CompiledTrace,
    CompiledTraceError,
    compile_trace,
)
from repro.workload.shm import SharedTraceArena, attach_trace, detach_all
from repro.workload.trace_cache import TraceCache, trace_fingerprint

WL = WorkloadSpec("oo7", {"config": TINY})


@pytest.fixture(autouse=True)
def _isolate_worker_memo():
    yield
    detach_all()


def _trace_bytes(trace) -> bytes:
    import io

    buffer = io.BytesIO()
    trace.save(buffer)
    return buffer.getvalue()


# ---------------------------------------------------------------- from_bytes


def test_from_bytes_round_trips():
    trace = compile_trace(build_workload(WL, 0))
    payload = _trace_bytes(trace)
    for zero_copy in (False, True):
        decoded = CompiledTrace.from_bytes(payload, zero_copy=zero_copy)
        assert list(decoded) == list(trace)


def test_from_bytes_tolerates_trailing_bytes():
    # Shared-memory segments are page-size-rounded, so the mapped buffer is
    # longer than the trace. The decoder must stop at the declared body end.
    trace = compile_trace(build_workload(WL, 0))
    payload = _trace_bytes(trace) + b"\x00" * 4096
    decoded = CompiledTrace.from_bytes(payload, zero_copy=True)
    assert list(decoded) == list(trace)


def test_from_bytes_rejects_corruption():
    trace = compile_trace([AccessEvent(oid=1)])
    good = _trace_bytes(trace)
    # Corrupt the stored CRC (header bytes 6..10): the body stays
    # structurally valid, so only the checksum pass can notice.
    payload = bytearray(good)
    payload[6] ^= 0xFF
    with pytest.raises(CompiledTraceError):
        CompiledTrace.from_bytes(bytes(payload))
    # verify=False skips the CRC: publishers validate before sharing, so
    # workers may trust the segment.
    assert list(CompiledTrace.from_bytes(bytes(payload), verify=False)) == list(trace)
    # Structural damage is caught even without the CRC pass.
    with pytest.raises(CompiledTraceError):
        CompiledTrace.from_bytes(good[:-3], verify=False)
    with pytest.raises(CompiledTraceError):
        CompiledTrace.from_bytes(b"not a trace")
    with pytest.raises(CompiledTraceError):
        CompiledTrace.from_bytes(good[:10])


def test_zero_copy_replay_resumes_mid_trace():
    # replay(start_index) exercises the memoryview prefix-count path.
    trace = compile_trace(build_workload(WL, 0))
    decoded = CompiledTrace.from_bytes(_trace_bytes(trace), zero_copy=True)
    offset = len(trace) // 2
    assert list(decoded.replay(offset)) == list(trace)[offset:]


def test_zero_copy_trace_saves_and_sizes():
    trace = compile_trace(build_workload(WL, 0))
    payload = _trace_bytes(trace)
    decoded = CompiledTrace.from_bytes(payload, zero_copy=True)
    assert decoded.byte_size() == trace.byte_size()
    assert _trace_bytes(decoded) == payload


# ---------------------------------------------------------------- arena


def test_arena_publish_attach_round_trip():
    trace = compile_trace(build_workload(WL, 0))
    arena = SharedTraceArena()
    try:
        name = arena.publish("fp", _trace_bytes(trace))
        assert name is not None
        assert arena.plan() == {"fp": name}
        # Republishing the same fingerprint reuses the segment.
        assert arena.publish("fp", _trace_bytes(trace)) == name
        assert len(arena) == 1
        attached = attach_trace(name)
        assert list(attached) == list(trace)
        # The fixture detaches after this frame's views are gone.
        del attached
    finally:
        arena.close()
    assert arena.plan() == {}


def test_arena_rejects_invalid_payloads():
    arena = SharedTraceArena()
    try:
        assert arena.publish("bad", b"definitely not a trace") is None
        assert arena.plan() == {}
    finally:
        arena.close()


def test_publish_file_missing_path_degrades(tmp_path):
    arena = SharedTraceArena()
    try:
        assert arena.publish_file("fp", tmp_path / "absent.trace") is None
    finally:
        arena.close()


def test_attach_unknown_segment_raises():
    with pytest.raises(OSError):
        attach_trace("rptc-does-not-exist")


# ---------------------------------------------------------------- cache layer


def test_cache_resolves_from_shared_segment(tmp_path):
    parent = TraceCache(tmp_path)
    parent.get_or_build(WL, 0)  # build + write the on-disk entry
    key = trace_fingerprint(WL, 0)
    entry = parent.entry_path(key)
    assert entry is not None

    arena = SharedTraceArena()
    try:
        assert arena.publish_file(key, entry) is not None
        # A "worker" cache with the plan resolves zero-copy, before disk.
        worker = TraceCache(tmp_path)
        worker.attach_shared(arena.plan())
        trace = worker.get_or_build(WL, 0)
        assert worker.stats.shm_hits == 1
        assert worker.stats.disk_hits == 0
        assert worker.stats.builds == 0
        assert list(trace) == list(parent.get_or_build(WL, 0))
        # Second resolution comes from the memo, not another attach.
        worker.get_or_build(WL, 0)
        assert worker.stats.memo_hits == 1
        assert worker.stats.shm_hits == 1
        del trace, worker
    finally:
        arena.close()


def test_cache_degrades_to_disk_when_segment_vanishes(tmp_path):
    cache = TraceCache(tmp_path)
    cache.get_or_build(WL, 0)
    key = trace_fingerprint(WL, 0)

    worker = TraceCache(tmp_path)
    worker.attach_shared({key: "rptc-unpublished-segment"})
    trace = worker.get_or_build(WL, 0)
    assert worker.stats.shm_hits == 0
    assert worker.stats.disk_hits == 1
    assert list(trace) == list(cache.get_or_build(WL, 0))
    # The dead mapping was dropped: later misses go straight to disk.
    assert worker._shared == {}


def test_entry_path_none_without_disk_layer():
    assert TraceCache(None).entry_path("ab" * 32) is None


# ---------------------------------------------------------------- simulation


def test_simulation_from_shared_trace_is_byte_identical(tmp_path):
    from repro.experiments.common import oo7_spec
    from repro.sim.spec import PolicySpec
    from repro.sim.simulator import Simulation

    spec = oo7_spec(
        PolicySpec("fixed", {"overwrites_per_collection": 40.0}), TINY, 2
    )

    def run(trace):
        policy, _, selection = spec.resolve(0)
        sim = Simulation(policy=policy, selection=selection, config=spec.sim)
        return pickle.dumps(sim.run(trace).summary)

    trace = compile_trace(build_workload(spec.workload, 0))
    arena = SharedTraceArena()
    try:
        name = arena.publish("fp", _trace_bytes(trace))
        assert run(attach_trace(name)) == run(trace)
    finally:
        arena.close()
