"""Tests for document replacement — §2.1's large-object-per-overwrite mode."""

import random

import pytest

from repro.events import CreateEvent, PointerWriteEvent, trace_stats
from repro.oo7.builder import apply_event
from repro.oo7.config import TINY
from repro.oo7.schema import Oo7Graph
from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.object_model import ObjectKind
from repro.workload.phases import doc_churn_phase, gen_db_phase

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def _generated(seed=0):
    rng = random.Random(seed)
    graph = Oo7Graph(TINY, rng=rng)
    store = ObjectStore(TINY_STORE)
    for event in gen_db_phase(graph):
        apply_event(store, event)
    return graph, store, rng


def test_replace_document_events():
    graph, _store, _rng = _generated()
    composite = graph.composites[0]
    old_doc = composite.doc_oid
    events = graph.replace_document(composite)
    assert isinstance(events[0], CreateEvent)
    assert events[0].kind == ObjectKind.DOCUMENT
    assert isinstance(events[1], PointerWriteEvent)
    assert events[1].src == composite.oid
    assert events[1].slot == "doc"
    assert events[1].dies == (old_doc,)
    assert composite.doc_oid == events[0].oid != old_doc


def test_one_overwrite_kills_one_document():
    """The §2.1 claim in numbers: garbage per overwrite == DocumentSize."""
    graph, _store, rng = _generated()
    events = list(doc_churn_phase(graph, rng, fraction=1.0))
    stats = trace_stats(events, sizes=graph.object_sizes)
    # trace_stats cannot see GenDB's slot state, but every doc write here
    # replaces a pre-existing doc pointer... which it also cannot see, so
    # count deaths per pointer write directly.
    writes = [e for e in events if isinstance(e, PointerWriteEvent)]
    assert all(len(e.dies) == 1 for e in writes)
    assert stats.bytes_died == len(writes) * TINY.document_size


def test_doc_churn_annotations_consistent_on_store():
    graph, store, rng = _generated()
    for event in doc_churn_phase(graph, rng, fraction=0.5):
        apply_event(store, event)
    assert store.check_death_annotations() == set()
    count = max(1, int(len(graph.composites) * 0.5))
    assert store.actual_garbage_bytes == count * TINY.document_size


def test_doc_churn_fraction_validation():
    graph, _store, rng = _generated()
    with pytest.raises(ValueError):
        list(doc_churn_phase(graph, rng, fraction=0.0))
    with pytest.raises(ValueError):
        list(doc_churn_phase(graph, rng, fraction=1.5))


def test_doc_churn_overwrites_advance_clock_on_store():
    graph, store, rng = _generated()
    before = store.pointer_overwrites
    events = list(doc_churn_phase(graph, rng, fraction=1.0))
    for event in events:
        apply_event(store, event)
    writes = sum(1 for e in events if isinstance(e, PointerWriteEvent))
    assert store.pointer_overwrites == before + writes


def test_mixed_churn_is_bimodal():
    """Part deletion (~500 B over 4 overwrites) vs doc replacement
    (DocumentSize per overwrite): the two garbage modes differ by ~4x on
    TINY and far more on the paper's config."""
    graph, store, rng = _generated()
    composite = graph.composites[0]

    graph.replace_document(composite)
    doc_gpo = TINY.document_size / 1  # one overwrite

    part = composite.deletable_parts()[0]
    part_events = graph.delete_part(part)
    part_deaths = sum(
        graph.object_sizes[oid]
        for e in part_events
        if isinstance(e, PointerWriteEvent)
        for oid in e.dies
    )
    part_writes = sum(1 for e in part_events if isinstance(e, PointerWriteEvent))
    part_gpo = part_deaths / part_writes

    assert doc_gpo > 2.5 * part_gpo
