"""TraceCache: content addressing, layering, and corruption handling."""

import pytest

from repro.events import AccessEvent, CreateEvent
from repro.oo7.config import TINY
from repro.sim.spec import WorkloadSpec, build_workload
from repro.workload.compiled import compile_trace
from repro.workload.trace_cache import TraceCache, trace_fingerprint

WL = WorkloadSpec("oo7", {"config": TINY})


def test_fingerprint_is_stable_and_sensitive():
    assert trace_fingerprint(WL, 0) == trace_fingerprint(WL, 0)
    assert trace_fingerprint(WL, 0) != trace_fingerprint(WL, 1)
    other = WorkloadSpec("oo7", {"config": TINY, "phases": ("gendb",)})
    assert trace_fingerprint(WL, 0) != trace_fingerprint(other, 0)


def test_get_or_build_builds_once_then_hits(tmp_path):
    cache = TraceCache(tmp_path)
    events = list(build_workload(WL, 0))

    first = cache.get_or_build(WL, 0)
    assert cache.stats.builds == 1
    assert list(first) == events

    again = cache.get_or_build(WL, 0)
    assert again is first  # in-process memo
    assert cache.stats.memo_hits == 1
    assert cache.stats.builds == 1

    # A fresh instance over the same directory loads from disk.
    fresh = TraceCache(tmp_path)
    loaded = cache_trace = fresh.get_or_build(WL, 0)
    assert fresh.stats.disk_hits == 1
    assert fresh.stats.builds == 0
    assert list(cache_trace) == events
    assert loaded is not first


def test_warm_reports_cold_vs_hot(tmp_path):
    cache = TraceCache(tmp_path)
    assert cache.warm(WL, 0) is True
    assert cache.warm(WL, 0) is False
    assert TraceCache(tmp_path).warm(WL, 0) is False


def test_memo_only_cache_writes_nothing(tmp_path):
    cache = TraceCache(None)
    cache.get_or_build(WL, 0, builder=lambda: [AccessEvent(oid=1)])
    assert cache.stats.builds == 1
    cache.get_or_build(WL, 0, builder=lambda: [AccessEvent(oid=1)])
    assert cache.stats.memo_hits == 1
    assert len(cache) == 0
    assert list(tmp_path.iterdir()) == []


def test_corrupt_entry_quarantined_and_rebuilt(tmp_path):
    cache = TraceCache(tmp_path)
    key = trace_fingerprint(WL, 0)
    events = [CreateEvent(oid=1, size=16), AccessEvent(oid=1)]
    cache.put(key, compile_trace(events))
    path = cache._path(key)
    path.write_bytes(b"garbage" * 10)

    fresh = TraceCache(tmp_path)
    rebuilt = fresh.get_or_build(WL, 0, builder=lambda: events)
    assert fresh.stats.quarantined == 1
    assert fresh.stats.builds == 1
    assert list(rebuilt) == events
    quarantined = list((tmp_path / "quarantine").iterdir())
    assert len(quarantined) == 1
    assert quarantined[0].name.endswith(".corrupt")


def test_uncacheable_workload_bypasses_cache(tmp_path):
    cache = TraceCache(tmp_path)
    weird = WorkloadSpec("oo7", {"config": TINY, "junk": object()})
    events = [AccessEvent(oid=7)]
    trace = cache.get_or_build(weird, 0, builder=lambda: events)
    assert list(trace) == events
    assert cache.stats.uncacheable == 1
    assert len(cache) == 0


def test_memo_eviction_is_bounded(tmp_path):
    cache = TraceCache(tmp_path, memo_traces=2)
    for seed in range(4):
        cache.get_or_build(WL, seed, builder=lambda: [AccessEvent(oid=1)])
    assert len(cache._memo) == 2
    assert len(cache) == 4  # every build still landed on disk


def test_clear_removes_entries(tmp_path):
    cache = TraceCache(tmp_path)
    cache.get_or_build(WL, 0, builder=lambda: [AccessEvent(oid=1)])
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0
    # And the next resolution rebuilds.
    cache.get_or_build(WL, 0, builder=lambda: [AccessEvent(oid=1)])
    assert cache.stats.builds == 2


def test_hit_rate():
    cache = TraceCache(None)
    assert cache.stats.hit_rate == 0.0
    cache.get_or_build(WL, 0, builder=lambda: [])
    cache.get_or_build(WL, 0, builder=lambda: [])
    cache.get_or_build(WL, 0, builder=lambda: [])
    assert cache.stats.hit_rate == pytest.approx(2 / 3)
