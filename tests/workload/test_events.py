"""Unit tests for trace events and trace statistics."""

from repro.events import (
    AccessEvent,
    CreateEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    UpdateEvent,
    iterate_trace,
    trace_stats,
)
from repro.storage.object_model import ObjectKind


def test_trace_stats_counts_event_kinds():
    trace = [
        PhaseMarkerEvent("p1"),
        CreateEvent(1, 100, ObjectKind.GENERIC),
        CreateEvent(2, 50, ObjectKind.GENERIC),
        AccessEvent(1),
        UpdateEvent(2),
        PointerWriteEvent(1, "x", 2),
        PhaseMarkerEvent("p2"),
    ]
    stats = trace_stats(trace)
    assert stats.events == 7
    assert stats.creates == 2
    assert stats.accesses == 1
    assert stats.updates == 1
    assert stats.pointer_writes == 1
    assert stats.bytes_created == 150
    assert stats.phases == ["p1", "p2"]


def test_trace_stats_distinguishes_overwrites_from_stores():
    trace = [
        CreateEvent(1, 10),
        CreateEvent(2, 10),
        CreateEvent(3, 10),
        PointerWriteEvent(1, "x", 2),  # store (slot never written)
        PointerWriteEvent(1, "x", 3),  # overwrite
        PointerWriteEvent(1, "x", None),  # overwrite (clearing)
        PointerWriteEvent(1, "x", 2),  # store (slot was null)
    ]
    stats = trace_stats(trace)
    assert stats.pointer_writes == 4
    assert stats.pointer_overwrites == 2


def test_trace_stats_death_accounting():
    trace = [
        CreateEvent(1, 10),
        CreateEvent(2, 300),
        PointerWriteEvent(1, "x", 2),
        PointerWriteEvent(1, "x", None, dies=(2,)),
    ]
    stats = trace_stats(trace)
    assert stats.deaths == 1
    assert stats.bytes_died == 300
    assert stats.garbage_per_overwrite == 300.0


def test_trace_stats_uses_preseeded_sizes():
    trace = [PointerWriteEvent(1, "x", None, dies=(99,))]
    stats = trace_stats(trace, sizes={99: 77})
    assert stats.bytes_died == 77


def test_garbage_per_overwrite_zero_without_overwrites():
    assert trace_stats([CreateEvent(1, 10)]).garbage_per_overwrite == 0.0


def test_create_pointers_initialise_slot_state():
    """A slot set at creation counts as written — a later write overwrites."""
    trace = [
        CreateEvent(1, 10),
        CreateEvent(2, 10, pointers=(("x", 1),)),
        PointerWriteEvent(2, "x", None),
    ]
    assert trace_stats(trace).pointer_overwrites == 1


def test_iterate_trace_chains():
    a = [CreateEvent(1, 10)]
    b = [AccessEvent(1)]
    assert list(iterate_trace(a, b)) == a + b


def test_events_are_immutable():
    event = CreateEvent(1, 10)
    try:
        event.size = 20  # type: ignore[misc]
        mutated = True
    except Exception:
        mutated = False
    assert not mutated
