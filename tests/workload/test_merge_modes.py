"""A/B: the bisect k-way merge is byte-identical to ``random.choices``.

The ``bisect`` path exists purely as an O(log k)-per-step optimisation of
the original O(k) ``random.choices`` draw; both consume exactly one
``rng.random()`` per merge step over float-identical cumulative sums, so
the merged traces must be **equal event-for-event** — including across
tenant-exhaustion rebuilds of the draw table. Because the mode can never
change the trace, it is excluded from ``canonical_material`` and must not
split trace-cache entries.
"""

import itertools

import pytest

from repro.workload.grammar import OpMix, PhaseBlock, WorkloadConfig
from repro.workload.tenants import (
    MERGE_MODES,
    TenantMix,
    TenantMixConfig,
    TenantSpec,
    tenant_mix,
)


def _config(name, operations, create=2, delete=1, access=3):
    return WorkloadConfig(
        name=name,
        phases=(
            PhaseBlock(
                name="p",
                operations=operations,
                mix=OpMix(create=create, delete=delete, access=access),
            ),
        ),
        initial_clusters=4,
    )


def _uneven_mix():
    """Tenants of very different lengths: forces draw-table rebuilds.

    When the short tenant exhausts mid-merge, the bisect path must rebuild
    its cached cumulative table exactly where ``random.choices`` would
    narrow its population — the divergence-prone case the A/B guards.
    """
    return TenantMixConfig(
        name="uneven",
        tenants=(
            TenantSpec(name="short", config=_config("s", 30), weight=3.0),
            TenantSpec(name="long", config=_config("l", 400), weight=1.0),
            TenantSpec(name="mid", config=_config("m", 120), weight=2.0),
        ),
    )


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1999])
def test_merge_modes_are_byte_identical(seed):
    a = list(TenantMix(_uneven_mix(), seed=seed, merge_mode="bisect").events())
    b = list(TenantMix(_uneven_mix(), seed=seed, merge_mode="choices").events())
    assert a == b


@pytest.mark.parametrize("seed", [3, 11])
def test_merge_modes_identical_on_profiles(seed):
    config = tenant_mix(["oltp-churn", "read-browse"], scale=0.2)
    a = list(TenantMix(config, seed=seed, merge_mode="bisect").events())
    b = list(TenantMix(config, seed=seed, merge_mode="choices").events())
    assert a == b


def test_merge_mode_excluded_from_canonical_material():
    config = _uneven_mix()
    materials = {
        mode: TenantMix(config, seed=5, merge_mode=mode).canonical_material()
        for mode in MERGE_MODES
    }
    assert materials["bisect"] == materials["choices"]


def test_unknown_merge_mode_rejected():
    from repro.workload.grammar import GrammarError

    with pytest.raises(GrammarError):
        TenantMix(_uneven_mix(), merge_mode="heap")


def test_unbounded_stream_draw_matches_bisect_semantics():
    """The service stream uses the same cached-table draw (no exhaustion)."""
    config = tenant_mix(["oltp-churn", "read-browse"], scale=0.5)
    first = list(
        itertools.islice(TenantMix(config, seed=9).stream(max_live_clusters=32), 2000)
    )
    again = list(
        itertools.islice(TenantMix(config, seed=9).stream(max_live_clusters=32), 2000)
    )
    assert first == again
