"""Multi-tenant interleaving: remapping, determinism, profiles, config."""

import pytest

from repro.events import (
    BeginTransactionEvent,
    CommitTransactionEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    iterate_trace,
)
from repro.workload.grammar import (
    GrammarError,
    GrammarWorkload,
    OpMix,
    PhaseBlock,
    WorkloadConfig,
)
from repro.workload.tenants import (
    TENANT_FORMAT_VERSION,
    TENANT_PROFILES,
    TENANT_SEED_STRIDE,
    TenantMix,
    TenantMixConfig,
    TenantSpec,
    _remap_event,
    make_profile,
    tenant_mix,
    tenant_seed,
)


def _tiny_config(name="w", operations=40):
    return WorkloadConfig(
        name=name,
        phases=(
            PhaseBlock(
                name="p",
                operations=operations,
                mix=OpMix(create=2, delete=1, access=3),
            ),
        ),
        initial_clusters=4,
    )


def _mix(n=2):
    return TenantMixConfig(
        name="mix",
        tenants=tuple(
            TenantSpec(name=f"t{i}", config=_tiny_config(f"w{i}")) for i in range(n)
        ),
    )


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


def test_tenant_seed_derivation():
    assert tenant_seed(3, 1) == 3 * TENANT_SEED_STRIDE + 1


def test_tenant_spec_validation():
    with pytest.raises(GrammarError):
        TenantSpec(name="", config=_tiny_config())
    with pytest.raises(GrammarError):
        TenantSpec(name="a/b", config=_tiny_config())
    with pytest.raises(GrammarError):
        TenantSpec(name="t", config=_tiny_config(), weight=0)


def test_mix_config_validation():
    with pytest.raises(GrammarError):
        TenantMixConfig(name="", tenants=_mix().tenants)
    with pytest.raises(GrammarError):
        TenantMixConfig(name="m", tenants=())
    dup = TenantSpec(name="t0", config=_tiny_config())
    with pytest.raises(GrammarError):
        TenantMixConfig(name="m", tenants=(dup, dup))


def test_mix_json_round_trip_is_lossless():
    mix = _mix(3)
    assert TenantMixConfig.from_json(mix.to_json()) == mix


def test_mix_from_dict_rejects_bad_payloads():
    payload = _mix().to_dict()
    with pytest.raises(GrammarError):
        TenantMixConfig.from_dict(dict(payload, format=TENANT_FORMAT_VERSION + 1))
    with pytest.raises(GrammarError):
        TenantMixConfig.from_dict(dict(payload, extra=1))
    with pytest.raises(GrammarError):
        TenantMixConfig.from_json("{broken")


# ----------------------------------------------------------------------
# Remapping
# ----------------------------------------------------------------------


def test_remap_event_covers_ids_markers_and_idle():
    create = CreateEvent(5, 64, pointers=(("next", 3), ("null", None)))
    mapped = _remap_event(create, stride=4, offset=1, prefix="t")
    assert mapped.oid == 21
    assert mapped.pointers == (("next", 13), ("null", None))

    write = PointerWriteEvent(2, "slot", 7, dies=(3, 4))
    mapped = _remap_event(write, stride=4, offset=1, prefix="t")
    assert (mapped.src, mapped.target, mapped.dies) == (9, 29, (13, 17))

    assert _remap_event(RootEvent(1), 4, 1, "t").oid == 5
    assert _remap_event(PhaseMarkerEvent("load"), 4, 1, "t").name == "t/load"
    assert _remap_event(BeginTransactionEvent(2), 4, 1, "t").txid == 9
    idle = IdleEvent(ticks=3)
    assert _remap_event(idle, 4, 1, "t") is idle


def test_interleaved_oid_spaces_are_disjoint():
    mix = TenantMix(_mix(3), seed=0)
    residues = {}
    for event in mix.events():
        if isinstance(event, CreateEvent):
            residues.setdefault(event.oid % 3, set()).add(event.oid)
    assert len(residues) == 3
    all_oids = set().union(*residues.values())
    assert sum(len(v) for v in residues.values()) == len(all_oids)


def test_phase_markers_attribute_tenants():
    markers = {
        e.name
        for e in TenantMix(_mix(2), seed=0).events()
        if isinstance(e, PhaseMarkerEvent)
    }
    assert markers == {"t0/p", "t1/p"}


# ----------------------------------------------------------------------
# Determinism and stream merging
# ----------------------------------------------------------------------


def test_same_seed_same_merged_trace():
    a = list(TenantMix(_mix(3), seed=7).events())
    b = list(TenantMix(_mix(3), seed=7).events())
    assert a == b
    assert a != list(TenantMix(_mix(3), seed=8).events())


def test_merged_trace_contains_every_tenant_event():
    mix = TenantMix(_mix(2), seed=0)
    merged = list(mix.events())
    per_tenant = sum(len(list(w.events())) for w in mix.tenant_workloads())
    assert len(merged) == per_tenant


def test_shards_use_derived_seeds():
    mix = TenantMix(_mix(2), seed=3)
    shards = mix.shards()
    assert [spec.name for spec, _ in shards] == ["t0", "t1"]
    for index, (spec, workload) in enumerate(shards):
        assert workload.seed == tenant_seed(3, index)
        assert workload.config == spec.config


def test_weights_bias_the_interleave():
    heavy = TenantMixConfig(
        name="m",
        tenants=(
            TenantSpec(name="a", config=_tiny_config("a", 30), weight=20.0),
            TenantSpec(name="b", config=_tiny_config("b", 30), weight=1.0),
        ),
    )
    events = list(TenantMix(heavy, seed=0).events())
    # Tenant a (offset 0, weight 20) should exhaust its stream well before
    # tenant b: its last event lands in the first half of the merged trace.
    last_a = max(
        i for i, e in enumerate(events)
        if isinstance(e, CreateEvent) and e.oid % 2 == 0
    )
    assert last_a < len(events) * 0.75


def test_transactions_stay_contiguous():
    class _TxWorkload:
        """Two transactions with a marker inside each."""

        def events(self):
            yield BeginTransactionEvent(1)
            yield CreateEvent(1, 64)
            yield CommitTransactionEvent(1)
            yield BeginTransactionEvent(2)
            yield CreateEvent(2, 64)
            yield CommitTransactionEvent(2)

    mix = TenantMix(_mix(2), seed=0)
    # Substitute one tenant's stream with the transactional one.
    workloads = mix.tenant_workloads()

    def patched():
        streams = [_TxWorkload(), workloads[1]]
        return streams

    mix.tenant_workloads = patched  # type: ignore[method-assign]
    events = list(mix.events())
    depth = 0
    for event in events:
        if isinstance(event, BeginTransactionEvent):
            depth += 1
        elif isinstance(event, CommitTransactionEvent):
            depth -= 1
        elif depth > 0:
            # Inside tenant 0's transaction only its own (even-residue)
            # events may appear.
            if isinstance(event, CreateEvent):
                assert event.oid % 2 == 0
    assert depth == 0


# ----------------------------------------------------------------------
# The profile library
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(TENANT_PROFILES))
def test_every_profile_builds_and_generates(name):
    config = make_profile(name, scale=0.1)
    assert config.name == name
    events = list(GrammarWorkload(config, seed=0).events())
    assert events
    for _ in iterate_trace(events):  # event types all valid
        pass


def test_make_profile_unknown_name():
    with pytest.raises(GrammarError, match="oltp-churn"):
        make_profile("compaction-storm")


def test_tenant_mix_builder_handles_duplicates_and_weights():
    mix = tenant_mix(
        ["oltp-churn", "oltp-churn", "read-browse"],
        scale=0.1,
        weights=[2.0, 1.0, 1.0],
    )
    assert [t.name for t in mix.tenants] == [
        "oltp-churn", "oltp-churn-2", "read-browse",
    ]
    assert [t.weight for t in mix.tenants] == [2.0, 1.0, 1.0]
    assert mix.name == "oltp-churn+oltp-churn+read-browse"


def test_tenant_mix_builder_validation():
    with pytest.raises(GrammarError):
        tenant_mix([])
    with pytest.raises(GrammarError):
        tenant_mix(["oltp-churn"], weights=[1.0, 2.0])
