"""Grammar-driven workloads: distributions, schema, round-trips, generation."""

import random

import pytest

from repro.events import (
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    UpdateEvent,
    trace_stats,
)
from repro.workload.grammar import (
    Choice,
    Fixed,
    GRAMMAR_FORMAT_VERSION,
    GrammarError,
    GrammarWorkload,
    OpMix,
    PhaseBlock,
    TICKS_PER_SECOND,
    Uniform,
    WorkloadConfig,
    _skewed_index,
    distribution_from_dict,
    distribution_to_dict,
    load_workload_config,
)


def _config(**overrides):
    defaults = dict(
        name="test",
        phases=(
            PhaseBlock(
                name="churn",
                operations=200,
                mix=OpMix(create=2, delete=2, trim=1, access=3, update=1),
            ),
        ),
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


# ----------------------------------------------------------------------
# Distributions
# ----------------------------------------------------------------------


def test_fixed_always_returns_value():
    rng = random.Random(0)
    assert all(Fixed(7).sample(rng) == 7 for _ in range(10))


def test_uniform_stays_in_range():
    rng = random.Random(0)
    dist = Uniform(2, 9)
    assert all(2 <= dist.sample(rng) <= 9 for _ in range(100))


def test_choice_draws_only_listed_values():
    rng = random.Random(0)
    dist = Choice((64, 128), weights=(1, 3))
    assert {dist.sample(rng) for _ in range(50)} <= {64, 128}


@pytest.mark.parametrize(
    "bad",
    [
        lambda: Fixed(-1),
        lambda: Uniform(5, 2),
        lambda: Uniform(-1, 2),
        lambda: Choice(()),
        lambda: Choice((1, 2), weights=(1,)),
        lambda: Choice((1, 2), weights=(0, 0)),
        lambda: Choice((1, 2), weights=(-1, 2)),
    ],
)
def test_invalid_distributions_rejected(bad):
    with pytest.raises(GrammarError):
        bad()


@pytest.mark.parametrize(
    "dist",
    [Fixed(8), Uniform(2, 6), Choice((64, 128, 256), weights=(4, 2, 1)), Choice((1,))],
)
def test_distribution_dict_round_trip(dist):
    assert distribution_from_dict(distribution_to_dict(dist)) == dist


@pytest.mark.parametrize(
    "payload",
    [
        "not-a-dict",
        {"no": "kind"},
        {"kind": "gaussian"},
        {"kind": "fixed", "bogus": 1},
        {"kind": "fixed"},
    ],
)
def test_bad_distribution_payloads_rejected(payload):
    with pytest.raises(GrammarError):
        distribution_from_dict(payload)


# ----------------------------------------------------------------------
# OpMix / PhaseBlock / WorkloadConfig validation
# ----------------------------------------------------------------------


def test_opmix_coerces_int_weights_to_float():
    mix = OpMix(create=3, delete=2)
    assert isinstance(mix.create, float) and mix.create == 3.0


def test_opmix_rejects_bad_weights():
    with pytest.raises(GrammarError):
        OpMix(create=-1)
    with pytest.raises(GrammarError):
        OpMix(create=0, delete=0, trim=0, access=0)
    with pytest.raises(GrammarError):
        OpMix.from_dict({"create": 1, "compact": 2})


def test_phase_block_validation():
    with pytest.raises(GrammarError):
        PhaseBlock(name="", operations=1)
    with pytest.raises(GrammarError):
        PhaseBlock(name="p", operations=-1)
    with pytest.raises(GrammarError):
        PhaseBlock(name="p", operations=1, trim_fraction=1.0)
    with pytest.raises(GrammarError):
        PhaseBlock(name="p", operations=1, hot_key_skew=1.0)
    with pytest.raises(GrammarError):
        PhaseBlock(name="p", operations=1, repeat=0)
    with pytest.raises(GrammarError):
        PhaseBlock.from_dict({"name": "p", "operations": 1, "bogus": 2})


def test_workload_config_validation():
    with pytest.raises(GrammarError):
        WorkloadConfig(name="", phases=(PhaseBlock(name="p", operations=1),))
    with pytest.raises(GrammarError):
        WorkloadConfig(name="w", phases=())
    with pytest.raises(GrammarError):
        _config(ops_per_second=0)
    with pytest.raises(GrammarError):
        _config(initial_clusters=-1)


def test_total_operations_counts_repeats():
    config = WorkloadConfig(
        name="w",
        phases=(
            PhaseBlock(name="a", operations=100, repeat=3),
            PhaseBlock(name="b", operations=50),
        ),
    )
    assert config.total_operations == 350


# ----------------------------------------------------------------------
# Lossless serialisation
# ----------------------------------------------------------------------


def _rich_config():
    return WorkloadConfig(
        name="rich",
        phases=(
            PhaseBlock(
                name="load",
                operations=120,
                mix=OpMix(create=8, delete=0, access=1),
                cluster_size=Fixed(12),
                object_size=Choice((64, 512), weights=(3, 1)),
            ),
            PhaseBlock(
                name="churn",
                operations=200,
                mix=OpMix(create=2, delete=3, trim=1, access=4, update=2,
                          pointer_churn=1, idle=1),
                cluster_size=Uniform(2, 9),
                trim_fraction=0.25,
                hot_key_skew=0.7,
                repeat=2,
            ),
        ),
        ops_per_second=350.0,
        initial_clusters=8,
    )


def test_json_round_trip_is_lossless():
    config = _rich_config()
    assert WorkloadConfig.from_json(config.to_json()) == config


def test_toml_round_trip_is_lossless():
    config = _rich_config()
    assert WorkloadConfig.from_toml(config.to_toml()) == config


def test_round_trip_preserves_ops_per_second_absence():
    config = _config()  # ops_per_second=None
    assert "ops_per_second" not in config.to_dict()
    assert WorkloadConfig.from_json(config.to_json()).ops_per_second is None
    assert WorkloadConfig.from_toml(config.to_toml()).ops_per_second is None


def test_from_dict_rejects_other_versions_and_unknown_keys():
    payload = _config().to_dict()
    with pytest.raises(GrammarError):
        WorkloadConfig.from_dict(dict(payload, format=GRAMMAR_FORMAT_VERSION + 1))
    with pytest.raises(GrammarError):
        WorkloadConfig.from_dict(dict(payload, compaction="eager"))
    with pytest.raises(GrammarError):
        WorkloadConfig.from_json("{not json")
    with pytest.raises(GrammarError):
        WorkloadConfig.from_toml("= broken")


def test_load_workload_config_dispatches_on_extension(tmp_path):
    config = _rich_config()
    json_path = tmp_path / "w.json"
    toml_path = tmp_path / "w.toml"
    json_path.write_text(config.to_json())
    toml_path.write_text(config.to_toml())
    assert load_workload_config(json_path) == config
    assert load_workload_config(toml_path) == config


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


def test_same_seed_same_trace():
    config = _rich_config()
    a = list(GrammarWorkload(config, seed=5).events())
    b = list(GrammarWorkload(config, seed=5).events())
    assert a == b


def test_different_seeds_differ():
    config = _rich_config()
    a = list(GrammarWorkload(config, seed=0).events())
    b = list(GrammarWorkload(config, seed=1).events())
    assert a != b


def test_trace_replays_through_simulation():
    from repro.core.fixed import FixedRatePolicy
    from repro.sim.simulator import Simulation

    events = list(GrammarWorkload(_rich_config(), seed=0).events())
    result = Simulation(policy=FixedRatePolicy(20)).run(events)
    assert result.summary.collections > 0


def test_phase_markers_respect_repeat():
    config = WorkloadConfig(
        name="w",
        phases=(
            PhaseBlock(name="solo", operations=5),
            PhaseBlock(name="cycle", operations=5, repeat=2),
        ),
    )
    markers = [
        e.name
        for e in GrammarWorkload(config, seed=0).events()
        if isinstance(e, PhaseMarkerEvent)
    ]
    assert markers == ["solo", "cycle#0", "cycle#1"]


def test_ops_per_second_paces_with_idle_ticks():
    saturated = _config(ops_per_second=None)
    paced = _config(ops_per_second=100.0)
    idle_free = [
        e for e in GrammarWorkload(saturated, seed=0).events()
        if isinstance(e, IdleEvent)
    ]
    paced_idle = [
        e for e in GrammarWorkload(paced, seed=0).events()
        if isinstance(e, IdleEvent)
    ]
    assert not idle_free
    # 100 ops/s → 10 ticks per operation, across 200 operations.
    total_ticks = sum(e.ticks for e in paced_idle)
    expected = _config().total_operations * TICKS_PER_SECOND / 100.0
    assert total_ticks == pytest.approx(expected, rel=0.05)


def test_update_and_churn_produce_no_garbage():
    config = WorkloadConfig(
        name="no-garbage",
        phases=(
            PhaseBlock(
                name="p",
                operations=100,
                mix=OpMix(create=0, delete=0, access=0, update=1, pointer_churn=1),
            ),
        ),
    )
    events = list(GrammarWorkload(config, seed=0).events())
    # Setup creates; the phase only updates and churns pointers.
    assert any(isinstance(e, UpdateEvent) for e in events)
    churn = [
        e for e in events
        if isinstance(e, PointerWriteEvent) and e.target is not None and not e.dies
    ]
    assert len(churn) > 16  # beyond the 16 setup registry writes
    assert not any(e.dies for e in events if isinstance(e, PointerWriteEvent))


def test_delete_frees_whole_cluster():
    config = WorkloadConfig(
        name="delete",
        phases=(
            PhaseBlock(
                name="p",
                operations=50,
                mix=OpMix(create=0, delete=1, access=0),
                cluster_size=Fixed(4),
            ),
        ),
        initial_clusters=8,
    )
    events = list(GrammarWorkload(config, seed=0).events())
    dies = [e.dies for e in events if isinstance(e, PointerWriteEvent) and e.dies]
    assert dies and all(len(d) == 4 for d in dies)
    stats = trace_stats(events)
    assert stats.deaths == 8 * 4


def test_skewed_index_uniform_at_zero_and_concentrated_near_one():
    rng = random.Random(0)
    uniform = [_skewed_index(rng, 100, 0.0) for _ in range(2000)]
    skewed = [_skewed_index(rng, 100, 0.9) for _ in range(2000)]
    assert all(0 <= i < 100 for i in uniform + skewed)
    # Heavy skew concentrates on low indices (the "hot" clusters).
    assert sum(skewed) / len(skewed) < sum(uniform) / len(uniform) / 3


def test_object_sizes_follow_distribution():
    config = WorkloadConfig(
        name="sizes",
        phases=(
            PhaseBlock(
                name="p",
                operations=60,
                mix=OpMix(create=1, delete=0, access=0),
                object_size=Choice((64, 512)),
            ),
        ),
        initial_clusters=0,
    )
    workload = GrammarWorkload(config, seed=0)
    sizes = {
        e.size for e in workload.events() if isinstance(e, CreateEvent)
    }
    assert sizes == {64, 512}  # the size-64 registry object plus both draws
