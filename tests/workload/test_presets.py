"""Tests for the canned synthetic workload presets."""

import pytest

from repro.core.fixed import AllocationRatePolicy, FixedRatePolicy
from repro.events import IdleEvent, PhaseMarkerEvent
from repro.sim.simulator import Simulation, SimulationConfig
from repro.storage.heap import StoreConfig
from repro.workload.presets import (
    PRESETS,
    bulk_load_then_serve,
    daily_cycle,
    garbage_burst,
    make_preset,
    steady_churn,
)
from repro.workload.synthetic import SyntheticWorkload

STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_presets_generate_valid_workloads(name):
    phases = make_preset(name, scale=0.2)
    workload = SyntheticWorkload(phases, seed=0, initial_clusters=20)
    events = list(workload.events())
    markers = [e.name for e in events if isinstance(e, PhaseMarkerEvent)]
    assert markers == [p.name for p in phases]
    assert len(events) > len(phases)


def test_make_preset_rejects_unknown():
    with pytest.raises(ValueError, match="unknown preset"):
        make_preset("nope")


def test_scale_multiplies_operations():
    small = steady_churn(scale=0.5)
    big = steady_churn(scale=2.0)
    assert big[0].operations == 4 * small[0].operations


def test_daily_cycle_day_count():
    phases = daily_cycle(days=2)
    assert [p.name for p in phases] == ["day-0", "night-0", "day-1", "night-1"]
    with pytest.raises(ValueError):
        daily_cycle(days=0)


def test_daily_cycle_nights_are_quiet():
    phases = daily_cycle(scale=0.3)
    workload = SyntheticWorkload(phases, seed=1, initial_clusters=10)
    idle_by_phase = {}
    phase = None
    for event in workload.events():
        if isinstance(event, PhaseMarkerEvent):
            phase = event.name
        elif isinstance(event, IdleEvent):
            idle_by_phase[phase] = idle_by_phase.get(phase, 0) + 1
    assert any(name.startswith("night") for name in idle_by_phase)
    assert not any(name.startswith("day") for name in idle_by_phase)


def test_garbage_burst_raises_death_rate_in_burst():
    """The burst phase creates garbage much faster per event than the calm
    phases (deletions dominate its operation mix)."""
    from repro.events import PointerWriteEvent

    phases = garbage_burst(scale=0.5)
    workload = SyntheticWorkload(phases, seed=2, initial_clusters=30)
    deaths = dict.fromkeys(("calm-1", "burst", "calm-2"), 0)
    events = dict.fromkeys(("calm-1", "burst", "calm-2"), 0)
    phase = None
    for event in workload.events():
        if isinstance(event, PhaseMarkerEvent):
            phase = event.name
            continue
        if phase in events:
            events[phase] += 1
            if isinstance(event, PointerWriteEvent):
                deaths[phase] += len(event.dies)
    burst_rate = deaths["burst"] / events["burst"]
    calm_rate = deaths["calm-1"] / events["calm-1"]
    assert burst_rate > 2 * calm_rate


def test_bulk_load_decorrelates_allocation_and_garbage():
    """On the bulk-load preset, the allocation clock fires during the load
    (reclaiming nothing) while the overwrite clock stays quiet until the
    serve phase creates garbage."""
    phases = bulk_load_then_serve(scale=0.4)

    def run(policy):
        workload = SyntheticWorkload(phases, seed=3, initial_clusters=0)
        sim = Simulation(
            policy=policy,
            config=SimulationConfig(store=STORE, preamble_collections=0),
        )
        return sim.run(workload.events())

    allocation = run(AllocationRatePolicy(24 * 1024))
    overwrite = run(FixedRatePolicy(60))

    def load_phase_collections(result):
        return sum(1 for r in result.collections if r.phase == "bulk-load")

    assert load_phase_collections(allocation) > 0
    assert load_phase_collections(overwrite) == 0
