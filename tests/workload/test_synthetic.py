"""Tests for the synthetic workload generator."""

import pytest

from repro.events import (
    AccessEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    trace_stats,
)
from repro.oo7.builder import apply_event
from repro.storage.heap import ObjectStore, StoreConfig
from repro.workload.synthetic import SyntheticPhase, SyntheticWorkload

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def _phase(**kwargs) -> SyntheticPhase:
    defaults = dict(name="p", operations=50)
    defaults.update(kwargs)
    return SyntheticPhase(**defaults)


def test_phase_validation():
    with pytest.raises(ValueError):
        _phase(operations=-1)
    with pytest.raises(ValueError):
        _phase(create_weight=-1.0)
    with pytest.raises(ValueError):
        _phase(create_weight=0, delete_weight=0, trim_weight=0, access_weight=0, idle_weight=0)
    with pytest.raises(ValueError):
        _phase(cluster_size=0)
    with pytest.raises(ValueError):
        _phase(trim_fraction=1.0)


def test_workload_requires_phases():
    with pytest.raises(ValueError):
        SyntheticWorkload([])


def test_trace_is_deterministic_per_seed():
    phases = [_phase(operations=30)]
    a = list(SyntheticWorkload(phases, seed=5).events())
    b = list(SyntheticWorkload(phases, seed=5).events())
    assert a == b
    c = list(SyntheticWorkload(phases, seed=6).events())
    assert a != c


def test_phase_markers_in_order():
    phases = [_phase(name="alpha", operations=5), _phase(name="beta", operations=5)]
    markers = [
        e.name
        for e in SyntheticWorkload(phases, seed=0).events()
        if isinstance(e, PhaseMarkerEvent)
    ]
    assert markers == ["alpha", "beta"]


def test_whole_cluster_death_single_overwrite():
    """Deleting a cluster is one overwrite killing cluster_size objects —
    §2.1's 'large connected structure detached by a single overwrite'."""
    phases = [
        _phase(
            operations=40,
            create_weight=0,
            delete_weight=1,
            access_weight=0,
            cluster_size=8,
        )
    ]
    workload = SyntheticWorkload(phases, seed=1, initial_clusters=10)
    deletions = [
        e
        for e in workload.events()
        if isinstance(e, PointerWriteEvent) and e.dies
    ]
    assert deletions
    assert all(len(e.dies) == 8 for e in deletions)


def test_garbage_per_overwrite_is_tunable():
    """cluster_size × object_size controls bytes per overwrite directly."""
    phases = [
        _phase(
            operations=60,
            create_weight=1,
            delete_weight=1,
            access_weight=0,
            cluster_size=4,
            object_size=100,
        )
    ]
    workload = SyntheticWorkload(phases, seed=2, initial_clusters=20)
    stats = trace_stats(workload.events(), sizes=workload.object_sizes)
    assert stats.garbage_per_overwrite == pytest.approx(400.0)


def test_trim_kills_suffix():
    phases = [
        _phase(
            operations=20,
            create_weight=0,
            delete_weight=0,
            trim_weight=1,
            access_weight=0,
            cluster_size=8,
            trim_fraction=0.5,
        )
    ]
    workload = SyntheticWorkload(phases, seed=3, initial_clusters=4)
    trims = [
        e
        for e in workload.events()
        if isinstance(e, PointerWriteEvent) and e.dies and e.src != workload.registry_oid
    ]
    assert trims
    assert all(1 <= len(e.dies) <= 7 for e in trims)


def test_idle_phase_emits_idle_events():
    phases = [
        _phase(
            operations=20,
            create_weight=0,
            delete_weight=0,
            access_weight=0,
            idle_weight=1,
        )
    ]
    events = list(SyntheticWorkload(phases, seed=0, initial_clusters=2).events())
    assert sum(1 for e in events if isinstance(e, IdleEvent)) == 20


def test_access_touches_whole_cluster():
    phases = [
        _phase(
            operations=1,
            create_weight=0,
            delete_weight=0,
            access_weight=1,
            cluster_size=5,
        )
    ]
    events = list(SyntheticWorkload(phases, seed=0, initial_clusters=1).events())
    accesses = [e for e in events if isinstance(e, AccessEvent)]
    assert len(accesses) == 5


def test_death_annotations_match_reachability_on_store():
    phases = [
        _phase(operations=200, create_weight=1, delete_weight=1, trim_weight=1, access_weight=1)
    ]
    workload = SyntheticWorkload(phases, seed=7, initial_clusters=8)
    store = ObjectStore(TINY_STORE)
    for event in workload.events():
        apply_event(store, event)
    assert store.check_death_annotations() == set()


def test_creates_link_into_rooted_graph():
    phases = [_phase(operations=30, create_weight=1, delete_weight=0, access_weight=0)]
    workload = SyntheticWorkload(phases, seed=4, initial_clusters=0)
    store = ObjectStore(TINY_STORE)
    for event in workload.events():
        apply_event(store, event)
    assert store.unlinked == set()
    assert store.reachable_from_roots() == set(store.objects)
