"""Tests for trace-file serialization (round-trip fidelity, error handling)."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.events import (
    AbortTransactionEvent,
    AccessEvent,
    BeginTransactionEvent,
    CommitTransactionEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    UpdateEvent,
)
from repro.oo7.config import TINY
from repro.storage.object_model import ObjectKind
from repro.workload.application import Oo7Application
from repro.workload.tracefile import (
    TraceFormatError,
    event_to_record,
    read_trace,
    record_to_event,
    write_trace,
)

ALL_EVENT_EXAMPLES = [
    CreateEvent(1, 80, ObjectKind.MODULE),
    CreateEvent(2, 120, ObjectKind.ATOMIC_PART, pointers=(("partOf", 1), ("x", None))),
    AccessEvent(2),
    UpdateEvent(2),
    PointerWriteEvent(1, "slot", 2),
    PointerWriteEvent(1, "slot", None, dies=(2,)),
    RootEvent(1),
    PhaseMarkerEvent("GenDB"),
    IdleEvent(),
    IdleEvent(ticks=5),
    BeginTransactionEvent(txid=1),
    CommitTransactionEvent(txid=1),
    AbortTransactionEvent(txid=2),
]


@pytest.mark.parametrize("event", ALL_EVENT_EXAMPLES, ids=lambda e: type(e).__name__)
def test_record_round_trip(event):
    assert record_to_event(event_to_record(event)) == event


def test_write_and_read_stream():
    buffer = io.StringIO()
    count = write_trace(ALL_EVENT_EXAMPLES, buffer)
    assert count == len(ALL_EVENT_EXAMPLES)
    buffer.seek(0)
    assert list(read_trace(buffer)) == ALL_EVENT_EXAMPLES


def test_write_and_read_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_trace(ALL_EVENT_EXAMPLES, path)
    assert list(read_trace(path)) == ALL_EVENT_EXAMPLES


def test_oo7_application_trace_round_trips(tmp_path):
    """A full application trace survives a file round trip byte-exactly."""
    events = list(Oo7Application(TINY, seed=4).events())
    path = tmp_path / "oo7.jsonl"
    write_trace(events, path)
    assert list(read_trace(path)) == events


def test_blank_lines_ignored():
    buffer = io.StringIO('\n{"t":"access","oid":3}\n\n')
    assert list(read_trace(buffer)) == [AccessEvent(3)]


def test_invalid_json_rejected():
    with pytest.raises(TraceFormatError, match="invalid JSON"):
        list(read_trace(io.StringIO("not json\n")))


def test_unknown_record_type_rejected():
    with pytest.raises(TraceFormatError, match="unknown trace record"):
        list(read_trace(io.StringIO('{"t":"explode"}\n')))


def test_malformed_record_rejected():
    with pytest.raises(TraceFormatError, match="malformed"):
        list(read_trace(io.StringIO('{"t":"create","oid":1}\n')))  # missing size


@given(
    st.lists(
        st.one_of(
            st.builds(AccessEvent, oid=st.integers(min_value=1, max_value=1000)),
            st.builds(
                PointerWriteEvent,
                src=st.integers(min_value=1, max_value=1000),
                slot=st.text(
                    alphabet=st.characters(categories=("L", "N")), min_size=1, max_size=8
                ),
                target=st.one_of(st.none(), st.integers(min_value=1, max_value=1000)),
                dies=st.tuples(st.integers(min_value=1, max_value=1000)),
            ),
            st.builds(IdleEvent, ticks=st.integers(min_value=1, max_value=100)),
        ),
        max_size=50,
    )
)
def test_round_trip_property(events):
    buffer = io.StringIO()
    write_trace(events, buffer)
    buffer.seek(0)
    assert list(read_trace(buffer)) == events
