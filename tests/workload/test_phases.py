"""Tests for the four application phases: behaviour and clustering contracts."""

import random

import pytest

from repro.events import (
    AccessEvent,
    CreateEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    trace_stats,
)
from repro.oo7.builder import apply_event
from repro.oo7.config import TINY
from repro.oo7.schema import Oo7Graph
from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.object_model import ObjectKind
from repro.workload.phases import (
    PHASE_REORG1,
    PHASE_REORG2,
    PHASE_TRAVERSE,
    gen_db_phase,
    reorg1_phase,
    reorg2_phase,
    traverse_phase,
)

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def _generated_graph(seed=0):
    rng = random.Random(seed)
    graph = Oo7Graph(TINY, rng=rng)
    gen_events = list(gen_db_phase(graph))
    return graph, rng, gen_events


# ----------------------------------------------------------------------
# Reorg1
# ----------------------------------------------------------------------


def test_reorg1_preserves_part_population():
    graph, rng, _gen = _generated_graph()
    before = len(graph.alive_atomic_parts())
    list(reorg1_phase(graph, rng))
    assert len(graph.alive_atomic_parts()) == before
    assert graph.alive_connection_count() == TINY.connections_per_module


def test_reorg1_deletes_and_reinserts_half():
    graph, rng, _gen = _generated_graph()
    original = {p.oid for p in graph.alive_atomic_parts()}
    list(reorg1_phase(graph, rng))
    surviving = {p.oid for p in graph.alive_atomic_parts()}
    replaced = len(original - surviving)
    deletable_half = TINY.num_comp_per_module * int((TINY.num_atomic_per_comp - 1) * 0.5)
    assert replaced == deletable_half


def test_reorg1_emits_overwrites_and_deaths():
    graph, rng, gen_events = _generated_graph()
    events = list(reorg1_phase(graph, rng))
    # Overwrite classification needs the pointer state GenDB established, so
    # measure over the concatenated trace (GenDB itself contributes neither
    # overwrites nor deaths).
    stats = trace_stats(gen_events + events, sizes=graph.object_sizes)
    assert stats.pointer_overwrites > 0
    assert stats.deaths > 0
    # Garbage per overwrite should be in the paper's ballpark (~150 B at conn 3).
    assert 80 <= stats.garbage_per_overwrite <= 400


def test_reorg1_clusters_reinsertions_per_composite():
    """Reorg1 creates each composite's replacement parts consecutively."""
    graph, rng, _gen = _generated_graph()
    events = list(reorg1_phase(graph, rng))
    part_creates = [
        e for e in events if isinstance(e, CreateEvent) and e.kind == ObjectKind.ATOMIC_PART
    ]
    composites_in_order = []
    oid_to_composite = {
        p.oid: p.composite.oid for p in graph.alive_atomic_parts()
    }
    for event in part_creates:
        composite = oid_to_composite.get(event.oid)
        if composite is not None and (
            not composites_in_order or composites_in_order[-1] != composite
        ):
            composites_in_order.append(composite)
    # Clustered: each composite appears exactly once as a contiguous block.
    assert len(composites_in_order) == len(set(composites_in_order))


# ----------------------------------------------------------------------
# Traverse
# ----------------------------------------------------------------------


def test_traverse_is_read_only():
    graph, rng, _gen = _generated_graph()
    events = list(traverse_phase(graph))
    assert not any(isinstance(e, (PointerWriteEvent, CreateEvent)) for e in events)


def test_traverse_visits_every_alive_part_once():
    graph, rng, _gen = _generated_graph()
    events = list(traverse_phase(graph))
    part_oids = {p.oid for p in graph.alive_atomic_parts()}
    accessed = [e.oid for e in events if isinstance(e, AccessEvent)]
    part_accesses = [oid for oid in accessed if oid in part_oids]
    assert sorted(part_accesses) == sorted(part_oids)
    assert len(part_accesses) == len(set(part_accesses))


def test_traverse_visits_assemblies_and_composites():
    graph, rng, _gen = _generated_graph()
    accessed = {
        e.oid for e in traverse_phase(graph) if isinstance(e, AccessEvent)
    }
    assert graph.module_oid in accessed
    assert all(a.oid in accessed for a in graph.assemblies)
    assert all(c.oid in accessed for c in graph.composites)


# ----------------------------------------------------------------------
# Reorg2
# ----------------------------------------------------------------------


def test_reorg2_preserves_part_population():
    graph, rng, _gen = _generated_graph()
    before = len(graph.alive_atomic_parts())
    list(reorg2_phase(graph, rng))
    assert len(graph.alive_atomic_parts()) == before


def test_reorg2_interleaves_reinsertions_across_composites():
    """Reorg2 breaks clustering: consecutive new parts belong to different
    composites (round-robin)."""
    graph, rng, _gen = _generated_graph()
    events = list(reorg2_phase(graph, rng))
    oid_to_composite = {p.oid: p.composite.oid for p in graph.alive_atomic_parts()}
    sequence = [
        oid_to_composite[e.oid]
        for e in events
        if isinstance(e, CreateEvent)
        and e.kind == ObjectKind.ATOMIC_PART
        and e.oid in oid_to_composite
    ]
    adjacent_same = sum(1 for a, b in zip(sequence, sequence[1:]) if a == b)
    # Round-robin: essentially no two consecutive parts share a composite.
    assert adjacent_same <= len(sequence) * 0.05


def test_phase_markers_present():
    graph, rng, _gen = _generated_graph()
    for phase_fn, name in [
        (lambda: reorg1_phase(graph, rng), PHASE_REORG1),
        (lambda: traverse_phase(graph), PHASE_TRAVERSE),
        (lambda: reorg2_phase(graph, rng), PHASE_REORG2),
    ]:
        events = list(phase_fn())
        assert isinstance(events[0], PhaseMarkerEvent)
        assert events[0].name == name


# ----------------------------------------------------------------------
# Death-annotation fidelity against a real store
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_death_annotations_match_reachability_at_phase_boundaries(seed):
    graph, rng, gen_events = _generated_graph(seed)
    store = ObjectStore(TINY_STORE)
    for event in gen_events:
        apply_event(store, event)
    assert store.check_death_annotations() == set()

    for phase_fn in (
        lambda: reorg1_phase(graph, rng),
        lambda: traverse_phase(graph),
        lambda: reorg2_phase(graph, rng),
    ):
        for event in phase_fn():
            apply_event(store, event)
        assert store.check_death_annotations() == set()
        assert store.garbage.undeclared == 0
