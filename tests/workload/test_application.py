"""Tests for the composed four-phase OO7 application (Figure 2)."""

import pytest

from repro.events import PhaseMarkerEvent, trace_stats
from repro.oo7.config import TINY
from repro.workload.application import Oo7Application
from repro.workload.phases import PHASE_ORDER


def test_phases_appear_in_figure2_order():
    app = Oo7Application(TINY, seed=0)
    markers = [
        e.name for e in app.events() if isinstance(e, PhaseMarkerEvent)
    ]
    assert markers == list(PHASE_ORDER)
    assert app.phase_names == PHASE_ORDER


def test_application_is_deterministic_per_seed():
    a = list(Oo7Application(TINY, seed=3).events())
    b = list(Oo7Application(TINY, seed=3).events())
    assert a == b


def test_application_varies_with_seed():
    a = list(Oo7Application(TINY, seed=1).events())
    b = list(Oo7Application(TINY, seed=2).events())
    assert a != b


def test_delete_fraction_validation():
    with pytest.raises(ValueError):
        Oo7Application(TINY, delete_fraction=0.0)
    with pytest.raises(ValueError):
        Oo7Application(TINY, delete_fraction=1.5)


def test_both_reorganisations_do_comparable_work():
    """The paper changed Reorg2 to delete half (not all) parts so the two
    reorganisations perform approximately the same amount of work."""
    app = Oo7Application(TINY, seed=0)
    deaths_by_phase = {name: 0 for name in PHASE_ORDER}
    phase = None
    for event in app.events():
        if isinstance(event, PhaseMarkerEvent):
            phase = event.name
        elif hasattr(event, "dies"):
            deaths_by_phase[phase] += len(event.dies)
    assert deaths_by_phase["GenDB"] == 0
    assert deaths_by_phase["Traverse"] == 0
    r1, r2 = deaths_by_phase["Reorg1"], deaths_by_phase["Reorg2"]
    assert r1 > 0 and r2 > 0
    assert 0.5 <= r1 / r2 <= 2.0


def test_workload_constants_in_paper_ballpark():
    """§2.1: OO7 creates garbage at roughly 1 KB per 6 pointer overwrites
    (~170 B per overwrite)."""
    app = Oo7Application(TINY, seed=0)
    stats = trace_stats(app.events())
    assert 100 <= stats.garbage_per_overwrite <= 250


def test_graph_remains_inspectable_after_run():
    app = Oo7Application(TINY, seed=0)
    list(app.events())
    assert len(app.graph.alive_atomic_parts()) == TINY.atomic_parts_per_module
