"""Tests for the document-churn variant of the OO7 application."""

import pytest

from repro.events import PhaseMarkerEvent, trace_stats
from repro.oo7.config import TINY
from repro.workload.application import Oo7Application


def test_default_application_has_no_doc_churn():
    app = Oo7Application(TINY, seed=0)
    markers = [e.name for e in app.events() if isinstance(e, PhaseMarkerEvent)]
    assert markers == ["GenDB", "Reorg1", "Traverse", "Reorg2"]


def test_doc_churn_phases_inserted_after_each_reorg():
    app = Oo7Application(TINY, seed=0, doc_churn_fraction=0.5)
    markers = [e.name for e in app.events() if isinstance(e, PhaseMarkerEvent)]
    assert markers == [
        "GenDB",
        "Reorg1",
        "DocChurn1",
        "Traverse",
        "Reorg2",
        "DocChurn2",
    ]
    assert app.phase_names == tuple(markers)


def test_doc_churn_fraction_validation():
    with pytest.raises(ValueError):
        Oo7Application(TINY, doc_churn_fraction=-0.1)
    with pytest.raises(ValueError):
        Oo7Application(TINY, doc_churn_fraction=1.1)


def test_doc_churn_raises_overall_garbage_per_overwrite():
    plain = trace_stats(Oo7Application(TINY, seed=1).events())
    churned = trace_stats(
        Oo7Application(TINY, seed=1, doc_churn_fraction=0.8).events()
    )
    assert churned.garbage_per_overwrite > plain.garbage_per_overwrite
    assert churned.bytes_died > plain.bytes_died


def test_doc_churn_annotations_consistent_end_to_end():
    from repro.core.fixed import FixedRatePolicy
    from repro.sim.simulator import Simulation, SimulationConfig
    from repro.storage.heap import StoreConfig

    app = Oo7Application(TINY, seed=2, doc_churn_fraction=0.5)
    sim = Simulation(
        policy=FixedRatePolicy(25),
        config=SimulationConfig(
            store=StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4),
            preamble_collections=0,
        ),
    )
    result = sim.run(app.events())
    assert result.store.check_death_annotations() == set()
    assert result.store.garbage.undeclared == 0
