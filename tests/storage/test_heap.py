"""Unit tests for the object store (heap): the central substrate."""

import pytest

from repro.storage.heap import ObjectStore, StoreConfig, StoreError

#: Geometry used throughout: 4 pages × 256 bytes = 1 KB partitions.
CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=4)


@pytest.fixture
def store() -> ObjectStore:
    return ObjectStore(CFG)


def test_store_config_validation():
    with pytest.raises(ValueError):
        StoreConfig(page_size=0)
    with pytest.raises(ValueError):
        StoreConfig(partition_pages=-1)
    with pytest.raises(ValueError):
        StoreConfig(db_size_mode="bogus")


def test_create_assigns_sequential_oids(store):
    a = store.create(size=10)
    b = store.create(size=10)
    assert b == a + 1


def test_create_with_explicit_oid(store):
    oid = store.create(size=10, oid=42)
    assert oid == 42
    assert store.create(size=10) == 43


def test_double_create_rejected(store):
    store.create(size=10, oid=7)
    with pytest.raises(StoreError):
        store.create(size=10, oid=7)


def test_create_places_objects_contiguously(store):
    a = store.create(size=100)
    b = store.create(size=100)
    pa, pb = store.placement_of(a), store.placement_of(b)
    assert pa.partition == pb.partition == 0
    assert pb.offset == pa.offset + 100


def test_database_grows_when_partition_full(store):
    # 1 KB partitions: 3 objects of 400 bytes need 2 partitions.
    for _ in range(3):
        store.create(size=400)
    assert store.partition_count == 2


def test_first_fit_reuses_earlier_free_space(store):
    store.create(size=900)
    store.create(size=900)  # forces partition 1
    assert store.partition_count == 2
    # Partition 0 still has 124 bytes free → small object goes there.
    c = store.create(size=100)
    assert store.partition_of(c) == 0


def test_oversized_object_gets_dedicated_partition(store):
    big = store.create(size=5000)  # larger than the 1 KB partition size
    placement = store.placement_of(big)
    assert store.partitions[placement.partition].capacity == 5000


def test_create_with_unknown_pointer_target_rejected(store):
    with pytest.raises(StoreError):
        store.create(size=10, pointers={"x": 999})


def test_access_unknown_object_rejected(store):
    with pytest.raises(StoreError):
        store.access(12345)


def test_write_pointer_to_unknown_target_rejected(store):
    a = store.create(size=10)
    with pytest.raises(StoreError):
        store.write_pointer(a, "x", 999)


# ----------------------------------------------------------------------
# Overwrite vs store semantics (the policies' overwrite clock)
# ----------------------------------------------------------------------


def test_initial_pointer_values_are_not_overwrites(store):
    a = store.create(size=10)
    store.create(size=10, pointers={"x": a})
    assert store.pointer_overwrites == 0


def test_first_slot_write_is_a_store_not_overwrite(store):
    a = store.create(size=10)
    b = store.create(size=10)
    store.write_pointer(a, "x", b)
    assert store.pointer_overwrites == 0
    assert store.pointer_stores == 1


def test_null_to_value_write_is_a_store(store):
    a = store.create(size=10)
    b = store.create(size=10)
    store.write_pointer(a, "x", None)
    store.write_pointer(a, "x", b)
    assert store.pointer_overwrites == 0
    assert store.pointer_stores == 2


def test_replacing_non_null_pointer_is_an_overwrite(store):
    a = store.create(size=10)
    b = store.create(size=10)
    c = store.create(size=10)
    store.write_pointer(a, "x", b)
    store.write_pointer(a, "x", c)
    assert store.pointer_overwrites == 1
    store.write_pointer(a, "x", None)
    assert store.pointer_overwrites == 2


def test_overwrite_increments_old_targets_partition_fgs(store):
    a = store.create(size=10)
    b = store.create(size=900)
    c = store.create(size=900)  # pushed to partition 1
    assert store.partition_of(b) == 0
    assert store.partition_of(c) == 1
    store.write_pointer(a, "x", c)
    store.write_pointer(a, "x", b)  # overwrites a pointer INTO partition 1
    assert store.partitions[1].pointer_overwrites == 1
    assert store.partitions[0].pointer_overwrites == 0


# ----------------------------------------------------------------------
# Remembered sets
# ----------------------------------------------------------------------


def test_cross_partition_reference_is_remembered(store):
    a = store.create(size=900)  # partition 0
    b = store.create(size=900)  # partition 1
    store.write_pointer(a, "x", b)
    assert b in store.partitions[1].externally_referenced()


def test_intra_partition_reference_is_not_remembered(store):
    a = store.create(size=100)
    b = store.create(size=100)
    store.write_pointer(a, "x", b)
    assert store.partitions[0].externally_referenced() == set()


def test_overwrite_removes_old_remembered_reference(store):
    a = store.create(size=900)
    b = store.create(size=900)
    store.write_pointer(a, "x", b)
    store.write_pointer(a, "x", None)
    assert store.partitions[1].externally_referenced() == set()


def test_create_pointers_populate_remembered_sets(store):
    b = store.create(size=900)  # partition 0
    store.create(size=900, pointers={"x": b})  # partition 1
    assert b in store.partitions[0].externally_referenced()


# ----------------------------------------------------------------------
# Garbage accounting (oracle)
# ----------------------------------------------------------------------


def test_dies_annotation_marks_objects_dead(store):
    root = store.create(size=10)
    store.register_root(root)
    victim = store.create(size=100)
    store.write_pointer(root, "x", victim)
    store.write_pointer(root, "x", None, dies=[victim])
    assert store.objects[victim].dead
    assert store.garbage.total_generated == 100
    assert store.actual_garbage_bytes == 100
    assert store.partition_garbage_bytes(store.partition_of(victim)) == 100


def test_double_death_is_idempotent(store):
    root = store.create(size=10)
    store.register_root(root)
    victim = store.create(size=100)
    store.write_pointer(root, "x", victim)
    store.write_pointer(root, "y", victim)
    store.write_pointer(root, "x", None, dies=[victim])
    store.write_pointer(root, "y", None, dies=[victim])
    assert store.garbage.total_generated == 100


def test_garbage_fraction(store):
    root = store.create(size=10)
    store.register_root(root)
    victim = store.create(size=90)
    store.write_pointer(root, "x", victim)
    store.write_pointer(root, "x", None, dies=[victim])
    assert store.garbage_fraction == pytest.approx(90 / 100)


def test_garbage_fraction_empty_db_is_zero():
    assert ObjectStore(CFG).garbage_fraction == 0.0


def test_live_bytes_excludes_dead(store):
    root = store.create(size=10)
    store.register_root(root)
    victim = store.create(size=90)
    store.write_pointer(root, "x", victim)
    store.write_pointer(root, "x", None, dies=[victim])
    assert store.live_bytes == 10


# ----------------------------------------------------------------------
# db_size modes
# ----------------------------------------------------------------------


def test_db_size_allocated_counts_fill(store):
    store.create(size=100)
    store.create(size=200)
    assert store.db_size == 300


def test_db_size_physical_counts_partitions():
    store = ObjectStore(
        StoreConfig(page_size=256, partition_pages=4, buffer_pages=4, db_size_mode="physical")
    )
    store.create(size=100)
    assert store.db_size == 1024
    store.create(size=1000)  # overflows into a second partition
    assert store.db_size == 2048


# ----------------------------------------------------------------------
# Collector support API
# ----------------------------------------------------------------------


def test_partition_roots_include_database_roots(store):
    a = store.create(size=10)
    store.register_root(a)
    assert a in store.partition_roots(0)


def test_partition_roots_include_external_references(store):
    a = store.create(size=900)  # partition 0
    b = store.create(size=900)  # partition 1
    store.write_pointer(a, "x", b)
    assert b in store.partition_roots(1)


def test_partition_roots_include_unlinked_pins(store):
    a = store.create(size=10)  # never referenced, never rooted
    assert a in store.partition_roots(0)


def test_linking_removes_unlinked_pin(store):
    a = store.create(size=10)
    b = store.create(size=10)
    store.write_pointer(b, "x", a)
    assert a not in store.unlinked
    assert b in store.unlinked  # b itself is still unreferenced


def test_rooting_removes_unlinked_pin(store):
    a = store.create(size=10)
    store.register_root(a)
    assert a not in store.unlinked


def test_intra_partition_targets_excludes_external(store):
    a = store.create(size=100)
    b = store.create(size=100)
    c = store.create(size=900)  # partition 1
    store.write_pointer(a, "near", b)
    store.write_pointer(a, "far", c)
    assert list(store.intra_partition_targets(a, 0)) == [b]


def test_compact_partition_reclaims_non_survivors(store):
    root = store.create(size=10)
    store.register_root(root)
    keep = store.create(size=100)
    drop = store.create(size=200)
    store.write_pointer(root, "x", keep)
    store.write_pointer(root, "y", drop)
    store.write_pointer(root, "y", None, dies=[drop])

    reclaimed = store.compact_partition(0, [root, keep])
    assert reclaimed == 200
    assert drop not in store.objects
    assert store.garbage.total_collected == 200
    assert store.actual_garbage_bytes == 0
    assert store.partitions[0].fill == 110
    assert store.placement_of(root).offset == 0
    assert store.placement_of(keep).offset == 10


def test_compact_partition_rejects_foreign_survivors(store):
    store.create(size=500)
    far = store.create(size=900)  # does not fit partition 0 → partition 1
    assert store.partition_of(far) == 1
    with pytest.raises(StoreError):
        store.compact_partition(0, [far])


def test_reclaiming_undeclared_object_is_counted(store):
    root = store.create(size=10)
    store.register_root(root)
    orphan = store.create(size=50)
    store.write_pointer(root, "x", orphan)
    store.write_pointer(root, "x", None)  # no dies annotation!
    store.compact_partition(0, [root])
    assert store.garbage.undeclared == 50
    assert store.garbage.total_collected == 50
    assert store.garbage.total_generated == 50  # folded in for consistency
    assert store.actual_garbage_bytes == 0


def test_reclaim_drops_remembered_references_both_directions(store):
    a = store.create(size=900)  # partition 0
    b = store.create(size=900)  # partition 1
    root = store.create(size=10)  # partition 0 (fits in free tail? no → check)
    store.register_root(root)
    store.write_pointer(a, "x", b)  # a→b remembered in partition 1
    store.write_pointer(root, "a", a)

    # Kill a, then collect its partition: the floating a→b reference must go.
    store.write_pointer(root, "a", None, dies=[a])
    pid_a = store.partition_of(a)
    survivors = [oid for oid in store.partitions[pid_a].residents if oid != a]
    store.compact_partition(pid_a, survivors)
    assert b not in store.partitions[store.partition_of(b)].externally_referenced()


def test_external_source_pages_identifies_referrer_pages(store):
    a = store.create(size=900)  # partition 0
    b = store.create(size=900)  # partition 1
    store.write_pointer(a, "x", b)
    pages = store.external_source_pages(store.partition_of(b))
    a_pages = set(store.pages_of(a))
    assert pages == a_pages


def test_db_size_restored_after_compaction(store):
    root = store.create(size=10)
    store.register_root(root)
    victim = store.create(size=500)
    store.write_pointer(root, "x", victim)
    store.write_pointer(root, "x", None, dies=[victim])
    before = store.db_size
    store.compact_partition(0, [root])
    assert store.db_size == before - 500


# ----------------------------------------------------------------------
# Reachability helpers
# ----------------------------------------------------------------------


def test_reachable_from_roots_follows_pointers(store):
    a = store.create(size=10)
    b = store.create(size=10)
    c = store.create(size=10)
    orphan = store.create(size=10)
    store.register_root(a)
    store.write_pointer(a, "x", b)
    store.write_pointer(b, "x", c)
    assert store.reachable_from_roots() == {a, b, c}
    assert orphan not in store.reachable_from_roots()


def test_reachability_handles_cycles(store):
    a = store.create(size=10)
    b = store.create(size=10)
    store.register_root(a)
    store.write_pointer(a, "x", b)
    store.write_pointer(b, "x", a)
    assert store.reachable_from_roots() == {a, b}


def test_check_death_annotations_flags_mismatches(store):
    root = store.create(size=10)
    store.register_root(root)
    victim = store.create(size=10)
    store.write_pointer(root, "x", victim)
    # Disconnect WITHOUT declaring death → mismatch (alive but unreachable).
    store.write_pointer(root, "x", None)
    assert victim in store.check_death_annotations()


def test_check_death_annotations_clean_when_consistent(store):
    root = store.create(size=10)
    store.register_root(root)
    victim = store.create(size=10)
    store.write_pointer(root, "x", victim)
    store.write_pointer(root, "x", None, dies=[victim])
    assert store.check_death_annotations() == set()


# ----------------------------------------------------------------------
# I/O behaviour of application operations
# ----------------------------------------------------------------------


def test_create_touches_pages_dirty(store):
    store.create(size=100)
    assert store.iostats.application.reads == 1  # page faulted in
    assert store.buffer.is_dirty((0, 0))


def test_access_is_clean_touch(store):
    from repro.storage.iostats import IOCategory

    a = store.create(size=100)
    store.buffer.flush(IOCategory.APPLICATION)
    store.access(a)
    assert not store.buffer.is_dirty((0, 0))


def test_update_dirties_page(store):
    a = store.create(size=100)
    store.update(a)
    assert store.buffer.is_dirty((0, 0))


def test_multi_page_object_touches_all_pages(store):
    store.create(size=600)  # spans 3 pages of 256 bytes
    assert store.iostats.application.reads == 3
