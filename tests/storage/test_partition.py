"""Unit tests for partitions: allocation, remembered sets, FGS counters."""

import pytest

from repro.storage.partition import Partition, PartitionFullError, Placement


@pytest.fixture
def partition() -> Partition:
    return Partition(pid=0, capacity=1000)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Partition(pid=0, capacity=0)


def test_bump_allocation_assigns_consecutive_offsets(partition):
    p1 = partition.allocate(1, 100)
    p2 = partition.allocate(2, 250)
    assert (p1.offset, p1.size) == (0, 100)
    assert (p2.offset, p2.size) == (100, 250)
    assert partition.fill == 350
    assert partition.free_bytes == 650
    assert partition.residents == {1, 2}


def test_allocation_beyond_capacity_raises(partition):
    partition.allocate(1, 900)
    assert not partition.fits(200)
    with pytest.raises(PartitionFullError):
        partition.allocate(2, 200)


def test_exact_fit_allocation_succeeds(partition):
    partition.allocate(1, 1000)
    assert partition.free_bytes == 0


def test_placement_pages_single_and_multi_page():
    single = Placement(partition=0, offset=100, size=50)
    assert list(single.pages(page_size=256)) == [0]
    spanning = Placement(partition=0, offset=200, size=100)
    assert list(spanning.pages(page_size=256)) == [0, 1]
    large = Placement(partition=0, offset=0, size=1024)
    assert list(large.pages(page_size=256)) == [0, 1, 2, 3]


def test_reset_for_compaction_clears_space_residents_and_po(partition):
    partition.allocate(1, 100)
    partition.pointer_overwrites = 7
    partition.reset_for_compaction()
    assert partition.fill == 0
    assert partition.residents == set()
    assert partition.pointer_overwrites == 0


def test_remember_and_forget(partition):
    partition.allocate(5, 10)
    partition.remember(source=100, target=5)
    partition.remember(source=101, target=5)
    assert partition.externally_referenced() == {5}
    partition.forget(source=100, target=5)
    assert partition.externally_referenced() == {5}
    partition.forget(source=101, target=5)
    assert partition.externally_referenced() == set()


def test_forget_unknown_reference_is_silent(partition):
    partition.forget(source=1, target=2)  # must not raise


def test_drop_incoming_removes_all_sources(partition):
    partition.remember(source=1, target=9)
    partition.remember(source=2, target=9)
    partition.drop_incoming(9)
    assert partition.externally_referenced() == set()


def test_page_counts():
    partition = Partition(pid=0, capacity=1024)
    assert partition.page_count(page_size=256) == 4
    assert partition.used_pages(page_size=256) == 0
    partition.allocate(1, 257)
    assert partition.used_pages(page_size=256) == 2


def test_used_pages_rounds_up():
    partition = Partition(pid=0, capacity=1000)
    partition.allocate(1, 1)
    assert partition.used_pages(page_size=256) == 1
