"""Unit tests for the LRU buffer pool and its I/O accounting."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOCategory, IOStats


@pytest.fixture
def iostats() -> IOStats:
    return IOStats()


@pytest.fixture
def pool(iostats: IOStats) -> BufferPool:
    return BufferPool(capacity=3, iostats=iostats)


APP = IOCategory.APPLICATION
GC = IOCategory.COLLECTOR


def test_capacity_must_be_positive(iostats):
    with pytest.raises(ValueError):
        BufferPool(capacity=0, iostats=iostats)


def test_miss_costs_one_read(pool, iostats):
    hit = pool.touch((0, 0), APP)
    assert not hit
    assert iostats.application.reads == 1
    assert iostats.application.writes == 0


def test_hit_costs_nothing(pool, iostats):
    pool.touch((0, 0), APP)
    hit = pool.touch((0, 0), APP)
    assert hit
    assert iostats.application.reads == 1


def test_lru_eviction_order(pool, iostats):
    pool.touch((0, 0), APP)
    pool.touch((0, 1), APP)
    pool.touch((0, 2), APP)
    pool.touch((0, 0), APP)  # refresh page 0 → LRU is now page 1
    pool.touch((0, 3), APP)  # evicts page 1
    assert (0, 1) not in pool
    assert (0, 0) in pool
    assert len(pool) == 3


def test_clean_eviction_costs_no_write(pool, iostats):
    for index in range(4):
        pool.touch((0, index), APP, dirty=False)
    assert iostats.application.writes == 0
    assert iostats.application.reads == 4


def test_dirty_eviction_costs_one_write(pool, iostats):
    pool.touch((0, 0), APP, dirty=True)
    pool.touch((0, 1), APP)
    pool.touch((0, 2), APP)
    pool.touch((0, 3), APP)  # evicts dirty page 0
    assert iostats.application.writes == 1


def test_eviction_write_charged_to_toucher_not_dirtier(pool, iostats):
    pool.touch((0, 0), APP, dirty=True)
    pool.touch((0, 1), GC)
    pool.touch((0, 2), GC)
    pool.touch((0, 3), GC)  # GC access evicts the app's dirty page
    assert iostats.collector.writes == 1
    assert iostats.application.writes == 0


def test_dirty_flag_is_sticky_until_writeback(pool):
    pool.touch((0, 0), APP, dirty=True)
    pool.touch((0, 0), APP, dirty=False)
    assert pool.is_dirty((0, 0))


def test_flush_writes_only_dirty_pages(pool, iostats):
    pool.touch((0, 0), APP, dirty=True)
    pool.touch((0, 1), APP, dirty=False)
    pool.touch((0, 2), APP, dirty=True)
    written = pool.flush(APP)
    assert written == 2
    assert iostats.application.writes == 2
    assert not pool.is_dirty((0, 0))
    assert len(pool) == 3  # flush keeps pages resident


def test_invalidate_partition_drops_pages_and_writes_dirty(pool, iostats):
    pool.touch((0, 0), APP, dirty=True)
    pool.touch((1, 0), APP, dirty=True)
    pool.touch((0, 1), APP, dirty=False)
    dropped = pool.invalidate_partition(0, GC)
    assert dropped == 2
    assert (1, 0) in pool
    assert (0, 0) not in pool
    assert iostats.collector.writes == 1  # only the dirty page of partition 0


def test_never_exceeds_capacity(pool):
    for index in range(20):
        pool.touch((0, index), APP)
        assert len(pool) <= pool.capacity


def test_hit_rate_statistics(pool):
    pool.touch((0, 0), APP)
    pool.touch((0, 0), APP)
    pool.touch((0, 1), APP)
    assert pool.stats.hits == 1
    assert pool.stats.misses == 2
    assert pool.stats.hit_rate == pytest.approx(1 / 3)


def test_hit_rate_zero_without_accesses(pool):
    assert pool.stats.hit_rate == 0.0


def test_resident_pages_lru_first(pool):
    pool.touch((0, 0), APP)
    pool.touch((0, 1), APP)
    pool.touch((0, 0), APP)
    assert list(pool.resident_pages()) == [(0, 1), (0, 0)]
