"""Unit tests for the stored-object model."""

import pytest

from repro.storage.object_model import ObjectKind, StoredObject


def test_object_requires_positive_size():
    with pytest.raises(ValueError):
        StoredObject(oid=1, size=0)
    with pytest.raises(ValueError):
        StoredObject(oid=1, size=-8)


def test_targets_skips_null_pointers():
    obj = StoredObject(oid=1, size=64, pointers={"a": 2, "b": None, "c": 3})
    assert sorted(obj.targets()) == [2, 3]


def test_targets_empty_without_pointers():
    obj = StoredObject(oid=1, size=64)
    assert list(obj.targets()) == []


def test_slot_count_counts_written_slots_including_null():
    obj = StoredObject(oid=1, size=64, pointers={"a": 2, "b": None})
    assert obj.slot_count() == 2


def test_points_to():
    obj = StoredObject(oid=1, size=64, pointers={"a": 2, "b": None})
    assert obj.points_to(2)
    assert not obj.points_to(3)
    assert not obj.points_to(None)  # null slots are not references


def test_default_kind_is_generic():
    assert StoredObject(oid=1, size=1).kind is ObjectKind.GENERIC


def test_dead_flag_defaults_false():
    assert not StoredObject(oid=1, size=1).dead
