"""Property-based tests (hypothesis) for heap invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.buffer import BufferPool
from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.iostats import IOCategory, IOStats

CFG = StoreConfig(page_size=128, partition_pages=4, buffer_pages=3)


@st.composite
def allocation_sequences(draw):
    """Random sequences of object sizes (possibly oversized)."""
    return draw(
        st.lists(st.integers(min_value=1, max_value=700), min_size=1, max_size=60)
    )


@given(allocation_sequences())
def test_allocations_never_overlap_within_a_partition(sizes):
    store = ObjectStore(CFG)
    for size in sizes:
        store.create(size=size)
    for partition in store.partitions:
        spans = sorted(
            (store.placements[oid].offset, store.placements[oid].size)
            for oid in partition.residents
        )
        cursor = 0
        for offset, size in spans:
            assert offset >= cursor
            cursor = offset + size
        assert cursor <= partition.capacity
        assert cursor == partition.fill


@given(allocation_sequences())
def test_db_size_equals_sum_of_object_sizes(sizes):
    store = ObjectStore(CFG)
    for size in sizes:
        store.create(size=size)
    assert store.db_size == sum(sizes)


@given(allocation_sequences())
def test_every_object_has_exactly_one_placement(sizes):
    store = ObjectStore(CFG)
    oids = [store.create(size=size) for size in sizes]
    assert set(store.placements) == set(oids)
    resident_total = [oid for p in store.partitions for oid in p.residents]
    assert sorted(resident_total) == sorted(oids)


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=15), st.booleans()),
        min_size=1,
        max_size=200,
    ),
    st.integers(min_value=1, max_value=8),
)
def test_buffer_pool_never_exceeds_capacity_and_counts_add_up(touches, capacity):
    iostats = IOStats()
    pool = BufferPool(capacity=capacity, iostats=iostats)
    for page_index, dirty in touches:
        pool.touch((0, page_index), IOCategory.APPLICATION, dirty=dirty)
        assert len(pool) <= capacity
    assert pool.stats.accesses == len(touches)
    # Every miss is exactly one read I/O.
    assert iostats.application.reads == pool.stats.misses


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=9), st.booleans()),
        min_size=1,
        max_size=100,
    )
)
def test_buffer_recency_reflects_touch_order(touches):
    """The MRU page is always the last page touched."""
    iostats = IOStats()
    pool = BufferPool(capacity=4, iostats=iostats)
    for page_index, dirty in touches:
        pool.touch((0, page_index), IOCategory.APPLICATION, dirty=dirty)
        assert list(pool.resident_pages())[-1] == (0, page_index)


@settings(max_examples=30)
@given(
    st.lists(st.integers(min_value=20, max_value=200), min_size=2, max_size=30),
    st.data(),
)
def test_remembered_set_invariant_under_random_pointer_writes(sizes, data):
    """For every cross-partition pointer src→tgt, tgt's partition remembers src.

    And no remembered entry exists without a matching live pointer.
    """
    store = ObjectStore(CFG)
    oids = [store.create(size=size) for size in sizes]
    writes = data.draw(
        st.lists(
            st.tuples(
                st.sampled_from(oids),
                st.sampled_from(["a", "b"]),
                st.one_of(st.none(), st.sampled_from(oids)),
            ),
            max_size=60,
        )
    )
    for src, slot, target in writes:
        store.write_pointer(src, slot, target)

    expected: dict[int, set[tuple[int, int]]] = {}
    for oid, obj in store.objects.items():
        src_pid = store.partition_of(oid)
        for target in obj.targets():
            tgt_pid = store.partition_of(target)
            if tgt_pid != src_pid:
                expected.setdefault(tgt_pid, set()).add((oid, target))

    for partition in store.partitions:
        actual = {
            (src, tgt)
            for tgt, sources in partition.incoming.items()
            for src in sources
        }
        assert actual == expected.get(partition.pid, set())
