"""Tests for the store invariant validator."""

import pytest

from repro.gc.collector import CopyingCollector
from repro.oo7.builder import build_database
from repro.oo7.config import TINY
from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.validation import (
    StoreInvariantError,
    StoreValidator,
    validate_store,
)

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=4)


@pytest.fixture
def store() -> ObjectStore:
    store = ObjectStore(CFG)
    root = store.create(size=10)
    store.register_root(root)
    a = store.create(size=100)
    b = store.create(size=920)  # does not fit partition 0 -> partition 1
    store.write_pointer(root, "a", a)
    store.write_pointer(a, "b", b)
    return store


def test_healthy_store_passes(store):
    report = validate_store(store)
    assert report.ok
    assert report.violations == []


def test_fresh_oo7_database_passes():
    db = build_database(TINY, store_config=CFG)
    assert validate_store(db.store).ok


def test_validation_after_collections():
    db = build_database(TINY, store_config=CFG)
    store = db.store
    collector = CopyingCollector(store)
    for pid in range(store.partition_count):
        collector.collect(pid)
    assert validate_store(store).ok


def test_detects_placement_overlap(store):
    # Corrupt: force two objects onto the same offset.
    oids = sorted(store.partitions[0].residents)
    clobbered = store.placements[oids[1]]
    clobbered.offset = store.placements[oids[0]].offset
    store.placements[oids[1]] = clobbered
    report = StoreValidator().validate(store)
    assert any("placements" in v for v in report.violations)


def test_detects_resident_mismatch(store):
    store.partitions[0].residents.add(99999)
    report = StoreValidator().validate(store)
    assert not report.ok


def test_detects_overfilled_partition(store):
    store.partitions[0].fill = store.partitions[0].capacity + 1
    report = StoreValidator().validate(store)
    assert any("partitions" in v for v in report.violations)


def test_detects_dangling_live_pointer(store):
    # Remove the target object behind the store's back.
    victim = next(
        oid
        for oid, obj in store.objects.items()
        if obj.pointers
        for _ in [None]
    )
    target = next(iter(store.objects[victim].targets()))
    placement = store.placements.pop(target)
    store.partitions[placement.partition].residents.discard(target)
    del store.objects[target]
    report = StoreValidator().validate(store)
    assert any("pointers" in v or "remembered" in v for v in report.violations)


def test_detects_missing_remembered_entry(store):
    b_pid = 1
    store.partitions[b_pid].incoming.clear()
    report = StoreValidator().validate(store)
    assert any("remembered-sets" in v for v in report.violations)


def test_detects_extra_remembered_entry(store):
    store.partitions[1].remember(123456, next(iter(store.partitions[1].residents)))
    report = StoreValidator().validate(store)
    assert any("remembered-sets" in v for v in report.violations)


def test_detects_garbage_ledger_drift(store):
    root = next(iter(store.roots))
    victim = store.create(size=50)
    store.write_pointer(root, "v", victim)
    store.write_pointer(root, "v", None, dies=[victim])
    store.dead_bytes[store.partition_of(victim)] += 10
    report = StoreValidator().validate(store)
    assert any("garbage" in v for v in report.violations)


def test_strict_mode_raises(store):
    store.partitions[0].fill = store.partitions[0].capacity + 1
    with pytest.raises(StoreInvariantError):
        validate_store(store, strict=True)


def test_non_strict_mode_reports(store):
    store.partitions[0].fill = store.partitions[0].capacity + 1
    report = validate_store(store, strict=False)
    assert not report.ok


def test_simulation_debug_mode_validates():
    from repro.core.fixed import FixedRatePolicy
    from repro.sim.simulator import Simulation, SimulationConfig
    from repro.workload.application import Oo7Application

    sim = Simulation(
        policy=FixedRatePolicy(25),
        config=SimulationConfig(
            store=StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4),
            preamble_collections=0,
            validate_every=1,
        ),
    )
    result = sim.run(Oo7Application(TINY, seed=0).events())
    assert result.summary.collections > 0  # every collection validated cleanly
