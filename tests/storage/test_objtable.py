"""PlacementTable: flat-array placement columns with a dict-shaped surface.

The table replaced ``dict[ObjectId, Placement]`` under the store's hot
lookups; these tests pin the mapping contract (model-checked against a
plain dict), the dense/overflow split, slot recycling, and the raw-column
invariants the batched replay interpreter reads directly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.objtable import DENSE_CEILING, PlacementTable
from repro.storage.partition import Placement

# ---------------------------------------------------------------- basics


def test_empty_table():
    table = PlacementTable()
    assert len(table) == 0
    assert table.locate(0) is None
    assert table.part_of(0) == -1
    assert table.get(7) is None
    assert 7 not in table
    assert list(table) == []
    with pytest.raises(KeyError):
        table[7]


def test_put_locate_roundtrip():
    table = PlacementTable()
    table.put(3, pid=2, offset=128, size=64)
    assert table.locate(3) == (2, 128, 64)
    assert table.part_of(3) == 2
    assert table[3] == Placement(partition=2, offset=128, size=64)
    assert len(table) == 1
    assert 3 in table


def test_getitem_returns_snapshot_not_live_state():
    table = PlacementTable()
    table.put(1, pid=0, offset=0, size=10)
    snapshot = table[1]
    table.put(1, pid=5, offset=99, size=20)
    assert snapshot.partition == 0, "snapshots must not see later writes"
    assert table.locate(1) == (5, 99, 20)


def test_replace_does_not_double_count():
    table = PlacementTable()
    table.put(4, pid=1, offset=0, size=8)
    table.put(4, pid=2, offset=16, size=8)
    assert len(table) == 1
    assert table.locate(4) == (2, 16, 8)


def test_setitem_delitem_pop():
    table = PlacementTable()
    table[9] = Placement(partition=1, offset=32, size=48)
    assert table.pop(9) == Placement(partition=1, offset=32, size=48)
    assert len(table) == 0
    assert table.pop(9, None) is None
    with pytest.raises(KeyError):
        table.pop(9)
    with pytest.raises(KeyError):
        del table[9]


def test_slot_recycling():
    """Discard writes -1 back; a later create of the same oid reuses the row."""
    table = PlacementTable()
    table.put(6, pid=3, offset=0, size=100)
    assert table.discard(6)
    assert not table.discard(6)
    assert table.parts[6] == -1
    assert len(table) == 0
    table.put(6, pid=7, offset=256, size=50)
    assert table.locate(6) == (7, 256, 50)
    assert len(table) == 1


# ---------------------------------------------------------------- growth


def test_reserve_grows_dense_columns_with_absent_fill():
    table = PlacementTable()
    table.reserve(100)
    assert table.dense_limit == 100
    assert all(table.parts[i] == -1 for i in range(100))
    table.reserve(50)  # never shrinks
    assert table.dense_limit == 100


def test_reserve_clamps_at_dense_ceiling():
    table = PlacementTable()
    table.reserve(DENSE_CEILING + 1000)
    assert table.dense_limit == DENSE_CEILING


def test_put_beyond_current_extent_grows():
    table = PlacementTable()
    table.put(5000, pid=1, offset=0, size=1)
    assert table.dense_limit > 5000
    assert table.locate(5000) == (1, 0, 1)
    assert table.locate(4999) is None


# ---------------------------------------------------------------- overflow


@pytest.mark.parametrize("oid", [-1, DENSE_CEILING, DENSE_CEILING + 12345])
def test_sparse_oids_fall_back_to_overflow(oid):
    table = PlacementTable()
    table.put(oid, pid=2, offset=64, size=32)
    assert oid in table.overflow
    assert table.dense_limit == 0, "sparse oids must not grow the columns"
    assert table.locate(oid) == (2, 64, 32)
    assert table.part_of(oid) == 2
    assert len(table) == 1
    assert table.discard(oid)
    assert table.locate(oid) is None
    assert len(table) == 0


def test_iteration_covers_dense_and_overflow():
    table = PlacementTable()
    table.put(2, pid=0, offset=0, size=4)
    table.put(DENSE_CEILING + 1, pid=1, offset=8, size=4)
    assert set(table) == {2, DENSE_CEILING + 1}
    assert set(table.keys()) == {2, DENSE_CEILING + 1}
    assert {oid: p.partition for oid, p in table.items()} == {
        2: 0,
        DENSE_CEILING + 1: 1,
    }
    assert sorted(p.size for p in table.values()) == [4, 4]


# ---------------------------------------------------------------- equality


def test_equality_against_dict_of_placements():
    table = PlacementTable()
    table.put(1, pid=0, offset=0, size=10)
    table.put(2, pid=1, offset=16, size=20)
    assert table == {
        1: Placement(partition=0, offset=0, size=10),
        2: Placement(partition=1, offset=16, size=20),
    }
    assert table != {1: Placement(partition=0, offset=0, size=10)}
    other = PlacementTable()
    other.put(2, pid=1, offset=16, size=20)
    other.put(1, pid=0, offset=0, size=10)
    assert table == other
    other.put(3, pid=2, offset=0, size=1)
    assert table != other


# ---------------------------------------------------------------- model check


_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "discard", "pop"]),
        st.integers(min_value=-2, max_value=40),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=80,
)


@given(ops=_ops)
@settings(max_examples=120, deadline=None)
def test_behaves_like_a_dict(ops):
    """Model-check the mapping surface against a plain dict."""
    table = PlacementTable()
    model: dict[int, Placement] = {}
    for action, oid, salt in ops:
        if action == "put":
            placement = Placement(partition=salt, offset=salt * 16, size=salt + 1)
            table[oid] = placement
            model[oid] = placement
        elif action == "discard":
            assert table.discard(oid) == (model.pop(oid, None) is not None)
        else:
            assert table.pop(oid, None) == model.pop(oid, None)
        assert len(table) == len(model)
    assert table == model
    assert sorted(table) == sorted(model)
    for oid, placement in model.items():
        assert table[oid] == placement
        assert table.locate(oid) == (
            placement.partition,
            placement.offset,
            placement.size,
        )
