"""Unit tests for I/O accounting and per-collection interval history."""

import pytest

from repro.storage.iostats import IOCategory, IOStats


@pytest.fixture
def stats() -> IOStats:
    return IOStats()


APP = IOCategory.APPLICATION
GC = IOCategory.COLLECTOR


def test_ledgers_start_empty(stats):
    assert stats.application_total == 0
    assert stats.collector_total == 0
    assert stats.grand_total == 0
    assert stats.collector_fraction == 0.0


def test_reads_and_writes_accumulate_per_category(stats):
    stats.record_read(APP, 3)
    stats.record_write(APP, 2)
    stats.record_read(GC, 5)
    assert stats.application.reads == 3
    assert stats.application.writes == 2
    assert stats.application_total == 5
    assert stats.collector_total == 5
    assert stats.grand_total == 10
    assert stats.collector_fraction == pytest.approx(0.5)


def test_negative_counts_rejected(stats):
    with pytest.raises(ValueError):
        stats.record_read(APP, -1)
    with pytest.raises(ValueError):
        stats.record_write(GC, -1)


def test_mark_collection_closes_intervals(stats):
    stats.record_read(APP, 10)
    stats.record_read(GC, 4)
    first = stats.mark_collection()
    assert (first.app, first.gc) == (10, 4)
    assert first.collection_number == 0

    stats.record_read(APP, 6)
    stats.record_write(GC, 2)
    second = stats.mark_collection()
    assert (second.app, second.gc) == (6, 2)
    assert second.collection_number == 1
    assert len(stats.history) == 2


def test_interval_gc_fraction(stats):
    stats.record_read(APP, 9)
    stats.record_read(GC, 1)
    record = stats.mark_collection()
    assert record.gc_fraction == pytest.approx(0.1)
    assert record.total == 10


def test_interval_gc_fraction_zero_without_io(stats):
    record = stats.mark_collection()
    assert record.gc_fraction == 0.0


def test_window_sums_recent_intervals(stats):
    for app_io, gc_io in [(10, 1), (20, 2), (30, 3)]:
        stats.record_read(APP, app_io)
        stats.record_read(GC, gc_io)
        stats.mark_collection()
    assert stats.window(0) == (0, 0)
    assert stats.window(1) == (30, 3)
    assert stats.window(2) == (50, 5)
    assert stats.window(10) == (60, 6)  # capped at available history


def test_window_rejects_negative(stats):
    with pytest.raises(ValueError):
        stats.window(-1)


def test_since_last_collection(stats):
    stats.record_read(APP, 5)
    stats.mark_collection()
    stats.record_read(APP, 7)
    stats.record_read(GC, 2)
    assert stats.since_last_collection() == (7, 2)


def test_ledger_copy_is_independent(stats):
    stats.record_read(APP, 1)
    snapshot = stats.application.copy()
    stats.record_read(APP, 1)
    assert snapshot.reads == 1
    assert stats.application.reads == 2
