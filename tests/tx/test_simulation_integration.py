"""Transactions through the simulation engine: GC exclusion and consistency."""

import pytest

from repro.core.estimators import OracleEstimator
from repro.core.fixed import FixedRatePolicy
from repro.core.saga import SagaPolicy
from repro.events import (
    BeginTransactionEvent,
    CommitTransactionEvent,
    CreateEvent,
    PointerWriteEvent,
    RootEvent,
)
from repro.sim.simulator import Simulation, SimulationConfig
from repro.storage.heap import StoreConfig
from repro.storage.validation import validate_store
from repro.workload.transactional import TransactionalSpec, TransactionalWorkload

STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def _config(**kwargs):
    defaults = dict(store=STORE, preamble_collections=0)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def test_no_collection_inside_transaction():
    """Overwrites inside an open transaction do not trigger collection; the
    deferred trigger fires right after commit."""

    def trace():
        yield CreateEvent(1, 50)
        yield RootEvent(1)
        # Pre-transaction garbage so the eventual collection has work.
        oid = 2
        for _ in range(5):
            yield CreateEvent(oid, 600)
            yield PointerWriteEvent(1, "x", oid)
            yield PointerWriteEvent(1, "x", None, dies=(oid,))
            oid += 1
        yield BeginTransactionEvent(1)
        for _ in range(20):
            yield CreateEvent(oid, 600)
            yield PointerWriteEvent(1, "x", oid)
            yield PointerWriteEvent(1, "x", None, dies=(oid,))
            oid += 1
        yield CommitTransactionEvent(1)
        # One more event so the post-commit trigger check runs.
        yield CreateEvent(oid, 100)
        yield PointerWriteEvent(1, "y", oid)

    sim = Simulation(policy=FixedRatePolicy(10), config=_config())
    result = sim.run(trace())
    # The rate-10 trigger would have fired at overwrite 10 and 20, both
    # inside the transaction. Deferral means every collection runs only
    # once all 25 overwrites (5 pre-transaction + 20 in-transaction) are
    # committed — so no record can show a mid-transaction clock value.
    assert result.summary.collections >= 1
    assert all(r.overwrite_clock >= 25 for r in result.collections)


def test_transactional_workload_runs_consistently():
    spec = TransactionalSpec(transactions=60, abort_probability=0.3)
    workload = TransactionalWorkload(spec, seed=1, initial_clusters=20)
    sim = Simulation(
        policy=SagaPolicy(garbage_fraction=0.15, estimator=OracleEstimator(), initial_interval=10),
        config=_config(validate_every=5),
    )
    result = sim.run(workload.events())
    store = result.store
    assert workload.aborted_transactions > 0
    assert workload.committed_transactions > 0
    assert result.summary.collections > 0
    # Death annotations stayed faithful through aborts and resurrections.
    assert store.check_death_annotations() == set()
    assert store.garbage.undeclared == 0
    assert validate_store(store).ok


def test_aborted_transactions_leave_no_policy_signal():
    """A workload whose every transaction aborts looks (to the policies'
    clocks) like nothing ever happened."""
    spec = TransactionalSpec(transactions=30, abort_probability=1.0)
    workload = TransactionalWorkload(spec, seed=2, initial_clusters=10)
    sim = Simulation(policy=FixedRatePolicy(10_000), config=_config())
    result = sim.run(workload.events())
    store = result.store
    assert workload.aborted_transactions == 30
    assert store.pointer_overwrites == 0
    assert store.actual_garbage_bytes == 0
    # Exactly the setup objects survive: registry + initial clusters.
    expected = 1 + 10 * spec.cluster_size
    assert len(store.objects) == expected
    assert validate_store(store).ok


def test_commit_only_equivalence():
    """With abort_probability 0 the transactional workload's final logical
    state matches a store where every operation simply committed."""
    spec = TransactionalSpec(transactions=40, abort_probability=0.0)
    workload = TransactionalWorkload(spec, seed=3, initial_clusters=15)
    sim = Simulation(policy=FixedRatePolicy(10_000), config=_config())
    result = sim.run(workload.events())
    store = result.store
    # Generator bookkeeping agrees with the store: every tracked cluster is
    # alive and rooted, every untracked one is dead or collected.
    for cluster in workload.clusters:
        head = cluster.members[0]
        assert store.objects[workload.registry_oid].pointers[cluster.slot] == head
        for member in cluster.members:
            assert not store.objects[member].dead
    assert store.check_death_annotations() == set()


def test_abort_mid_transaction_wrong_txid_raises():
    def trace():
        yield CreateEvent(1, 50)
        yield RootEvent(1)
        yield BeginTransactionEvent(1)
        yield CommitTransactionEvent(99)

    sim = Simulation(policy=FixedRatePolicy(100), config=_config())
    from repro.tx.manager import TransactionError

    with pytest.raises(TransactionError, match="mismatch"):
        sim.run(trace())
