"""Unit tests for the transaction manager: commit/abort/undo semantics."""

import pytest

from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.validation import validate_store
from repro.tx.manager import TransactionError, TransactionManager, TransactionState

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=4)


@pytest.fixture
def store() -> ObjectStore:
    return ObjectStore(CFG)


@pytest.fixture
def manager(store) -> TransactionManager:
    return TransactionManager(store)


def _seed_root(store):
    root = store.create(size=10)
    store.register_root(root)
    return root


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------


def test_begin_commit_lifecycle(manager):
    txn = manager.begin()
    assert manager.in_transaction
    assert txn.state is TransactionState.ACTIVE
    manager.commit()
    assert not manager.in_transaction
    assert txn.state is TransactionState.COMMITTED
    assert manager.committed == 1


def test_nested_transactions_rejected(manager):
    manager.begin()
    with pytest.raises(TransactionError, match="still active"):
        manager.begin()


def test_commit_without_transaction_rejected(manager):
    with pytest.raises(TransactionError, match="no active"):
        manager.commit()


def test_abort_without_transaction_rejected(manager):
    with pytest.raises(TransactionError, match="no active"):
        manager.abort()


def test_txid_mismatch_rejected(manager):
    manager.begin(txid=7)
    with pytest.raises(TransactionError, match="mismatch"):
        manager.commit(txid=8)


def test_explicit_txids_advance_counter(manager):
    manager.begin(txid=10)
    manager.commit()
    txn = manager.begin()
    assert txn.txid == 11


def test_operations_require_transaction(manager, store):
    root = _seed_root(store)
    with pytest.raises(TransactionError):
        manager.create(size=10)
    with pytest.raises(TransactionError):
        manager.write_pointer(root, "x", None)


# ----------------------------------------------------------------------
# Commit semantics
# ----------------------------------------------------------------------


def test_committed_effects_persist(manager, store):
    root = _seed_root(store)
    manager.begin()
    child = manager.create(size=50)
    manager.write_pointer(root, "child", child)
    manager.commit()
    assert child in store.objects
    assert store.objects[root].pointers["child"] == child
    assert validate_store(store).ok


# ----------------------------------------------------------------------
# Abort semantics: creations
# ----------------------------------------------------------------------


def test_abort_expunges_created_objects(manager, store):
    _seed_root(store)
    size_before = store.db_size
    manager.begin()
    created = manager.create(size=50)
    manager.abort()
    assert created not in store.objects
    assert store.db_size == size_before
    assert validate_store(store).ok


def test_abort_reverts_pointer_writes(manager, store):
    root = _seed_root(store)
    a = store.create(size=20)
    b = store.create(size=20)
    store.write_pointer(root, "x", a)
    manager.begin()
    manager.write_pointer(root, "x", b)
    manager.write_pointer(root, "y", b)  # brand-new slot
    manager.abort()
    assert store.objects[root].pointers["x"] == a
    assert "y" not in store.objects[root].pointers
    assert validate_store(store).ok


def test_abort_resurrects_dead_objects(manager, store):
    root = _seed_root(store)
    victim = store.create(size=100)
    store.write_pointer(root, "v", victim)
    manager.begin()
    manager.write_pointer(root, "v", None, dies=[victim])
    assert store.actual_garbage_bytes == 100
    manager.abort()
    assert not store.objects[victim].dead
    assert store.actual_garbage_bytes == 0
    assert store.garbage.total_generated == 0
    assert store.check_death_annotations() == set()
    assert validate_store(store).ok


def test_abort_restores_overwrite_clock_and_fgs(manager, store):
    root = _seed_root(store)
    a = store.create(size=20)
    store.write_pointer(root, "x", a)
    clock_before = store.pointer_overwrites
    fgs_before = store.partitions[store.partition_of(a)].pointer_overwrites
    manager.begin()
    manager.write_pointer(root, "x", None, dies=[a])
    manager.abort()
    assert store.pointer_overwrites == clock_before
    assert store.partitions[store.partition_of(a)].pointer_overwrites == fgs_before


def test_abort_restores_root_registration(manager, store):
    _seed_root(store)
    extra = store.create(size=10)
    manager.begin()
    manager.register_root(extra)
    manager.abort()
    assert extra not in store.roots


def test_abort_keeps_preexisting_root(manager, store):
    root = _seed_root(store)
    manager.begin()
    manager.register_root(root)  # already a root — undo must not remove it
    manager.abort()
    assert root in store.roots


def test_create_then_delete_then_abort(manager, store):
    """An object created and killed in the same transaction vanishes
    cleanly on abort (resurrect before expunge)."""
    root = _seed_root(store)
    manager.begin()
    child = manager.create(size=40)
    manager.write_pointer(root, "c", child)
    manager.write_pointer(root, "c", None, dies=[child])
    manager.abort()
    assert child not in store.objects
    assert "c" not in store.objects[root].pointers
    assert store.garbage.total_generated == 0
    assert validate_store(store).ok


def test_abort_restores_remembered_sets(manager, store):
    root = _seed_root(store)
    far = store.create(size=1020)  # own partition
    far_pid = store.partition_of(far)
    assert far_pid != store.partition_of(root)
    store.write_pointer(root, "far", far)
    manager.begin()
    manager.write_pointer(root, "far", None, dies=[far])
    manager.abort()
    assert far in store.partitions[far_pid].externally_referenced()
    assert validate_store(store).ok


def test_tail_expunge_reclaims_bump_space(manager, store):
    _seed_root(store)
    fill_before = store.partitions[0].fill
    manager.begin()
    manager.create(size=64)
    manager.abort()
    assert store.partitions[0].fill == fill_before


def test_transaction_rollback_always_expunges_from_the_tail(manager, store):
    """Undo runs in LIFO order, so rolled-back allocations peel off the bump
    extent tail and their space is recovered immediately."""
    root = _seed_root(store)
    fill_before = store.partitions[0].fill
    manager.begin()
    a = manager.create(size=64)
    b = manager.create(size=32)
    manager.write_pointer(root, "a", a)
    manager.write_pointer(root, "b", b)
    manager.abort()
    assert a not in store.objects and b not in store.objects
    assert store.partitions[0].fill == fill_before
    assert validate_store(store).ok


def test_direct_mid_extent_expunge_leaves_hole_until_compaction(store):
    """The expunge API itself tolerates non-tail removal (a hole remains
    until the next compaction rewrites the partition)."""
    root = _seed_root(store)
    middle = store.create(size=64)
    tail = store.create(size=32)
    store.write_pointer(root, "t", tail)
    fill_before = store.partitions[0].fill
    store.expunge(middle)
    assert store.partitions[0].fill == fill_before  # hole, not reclaimed
    assert middle not in store.objects
    # Compaction recovers the hole.
    survivors = sorted(store.partitions[0].residents)
    store.compact_partition(0, survivors)
    assert store.partitions[0].fill == fill_before - 64
    assert store.db_size == sum(o.size for o in store.objects.values())
    assert validate_store(store).ok


def test_update_and_access_inside_transaction(manager, store):
    root = _seed_root(store)
    manager.begin()
    manager.update(root)
    assert manager.access(root).oid == root
    manager.abort()  # nothing logical to undo
    assert validate_store(store).ok


def test_abort_counts(manager, store):
    _seed_root(store)
    manager.begin()
    manager.abort()
    manager.begin()
    manager.commit()
    assert manager.aborted == 1
    assert manager.committed == 1
