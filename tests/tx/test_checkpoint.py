"""Checkpoint records: build, install, restore, and suffix-only recovery."""

import pytest

from repro.storage.heap import ObjectStore, StoreConfig
from repro.tx.manager import TransactionManager
from repro.tx.recovery import (
    CheckpointSnapshot,
    RedoLog,
    build_checkpoint,
    recover,
    recover_with_info,
)
from repro.tx.wal import WriteAheadLog

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=8)


def _empty_snapshot(event_index, **overrides):
    fields = dict(objects=(), pointers=(), roots=(), unlinked=())
    fields.update(overrides)
    return CheckpointSnapshot(event_index=event_index, **fields)


def _view(store: ObjectStore):
    return {
        "objects": {
            oid: (obj.size, obj.kind, dict(obj.pointers), obj.dead)
            for oid, obj in store.objects.items()
        },
        "roots": set(store.roots),
        "unlinked": set(store.unlinked),
        "garbage": (
            store.garbage.total_generated,
            store.garbage.total_collected,
            store.garbage.undeclared,
        ),
        "clocks": (
            store.pointer_overwrites,
            store.pointer_stores,
            store.bytes_allocated_total,
        ),
    }


def _history(store, manager):
    """A few committed transactions with pointers, roots and deaths."""
    manager.begin(1)
    a = manager.create(size=64)
    b = manager.create(size=64)
    manager.write_pointer(a, "next", b)
    manager.register_root(a)
    manager.commit(1)
    manager.begin(2)
    c = manager.create(size=32)
    manager.write_pointer(b, "next", c)
    manager.commit(2)
    manager.begin(3)
    manager.write_pointer(b, "next", None, dies=(c,))
    manager.commit(3)
    return a, b, c


def test_checkpoint_roundtrip_restores_everything():
    store = ObjectStore(CFG)
    log = RedoLog()
    manager = TransactionManager(store, redo_log=log)
    _history(store, manager)

    snapshot = build_checkpoint(store, event_index=17)
    assert snapshot.event_index == 17
    assert snapshot.estimated_bytes > 0
    log.install_checkpoint(snapshot)

    recovered, info = recover_with_info(log, store_config=CFG)
    assert info.from_checkpoint
    assert info.checkpoint_event_index == 17
    assert info.records_replayed == 0
    assert _view(recovered) == _view(store)


def test_suffix_after_checkpoint_is_replayed_on_top():
    store = ObjectStore(CFG)
    log = RedoLog()
    manager = TransactionManager(store, redo_log=log)
    _history(store, manager)
    log.install_checkpoint(build_checkpoint(store, event_index=9))

    manager.begin(4)
    d = manager.create(size=16)
    manager.write_pointer(1, "extra", d)
    manager.commit(4)

    recovered, info = recover_with_info(log, store_config=CFG)
    assert info.from_checkpoint
    assert info.records_replayed == 4  # begin, create, write, commit
    assert _view(recovered) == _view(store)


def test_uncommitted_suffix_is_dropped():
    store = ObjectStore(CFG)
    log = RedoLog()
    manager = TransactionManager(store, redo_log=log)
    _history(store, manager)
    log.install_checkpoint(build_checkpoint(store, event_index=9))
    reference = _view(store)

    manager.begin(5)
    manager.create(size=16)  # never commits: in flight at the "crash"

    recovered, _ = recover_with_info(log, store_config=CFG)
    assert _view(recovered) == reference


def test_reused_txid_does_not_resurrect_in_flight_records():
    """Regression: recovery is bracket-scoped, not committed-txid-set based.

    Crash/resume cycles legitimately reuse auto-commit txids within one
    log. An in-flight transaction whose txid an earlier *committed*
    incarnation used must still be dropped.
    """
    log = RedoLog()
    # First incarnation of txid -1: committed create of oid 1.
    log.begin(-1)
    log.create(-1, 1, 64, None, ())
    log.commit(-1)
    # Second incarnation of txid -1: in flight at the crash.
    log.begin(-1)
    log.create(-1, 2, 64, None, ())

    recovered = recover(log, store_config=CFG)
    assert 1 in recovered.objects
    assert 2 not in recovered.objects


def test_orphaned_records_are_superseded_by_a_new_begin():
    """A later begin of the same txid discards the orphan's buffered ops."""
    log = RedoLog()
    log.begin(-1)
    log.create(-1, 1, 64, None, ())  # orphan: no commit, no abort
    log.begin(-1)
    log.create(-1, 2, 64, None, ())
    log.commit(-1)

    recovered = recover(log, store_config=CFG)
    assert 2 in recovered.objects
    assert 1 not in recovered.objects


def test_install_checkpoint_truncates_and_counts():
    log = RedoLog()
    log.begin(1)
    log.create(1, 1, 64, None, ())
    log.commit(1)
    assert log.appended_total == 3
    snapshot = _empty_snapshot(5)
    dropped = log.install_checkpoint(snapshot)
    assert dropped == 3
    assert log.truncated_total == 3
    assert log.appended_total == 4  # + the checkpoint record itself
    assert log.checkpoints_installed == 1
    assert log.suffix_length == 0
    assert log.last_checkpoint() is snapshot
    log.begin(2)
    assert log.suffix_length == 1


def test_truncate_uncommitted_keeps_checkpoint_records():
    log = RedoLog()
    log.install_checkpoint(_empty_snapshot(1))
    log.begin(7)
    log.create(7, 1, 64, None, ())
    dropped = log.truncate_uncommitted()
    assert dropped == 2
    assert [r.kind for r in log.records] == ["checkpoint"]


def test_recovery_without_checkpoint_reports_full_replay():
    store = ObjectStore(CFG)
    log = RedoLog()
    manager = TransactionManager(store, redo_log=log)
    _history(store, manager)
    recovered, info = recover_with_info(log, store_config=CFG)
    assert not info.from_checkpoint
    assert info.records_replayed == len(log.records)
    assert _view(recovered) == _view(store)


def test_wal_checkpoint_pays_modelled_io():
    store = ObjectStore(CFG)
    wal = WriteAheadLog(store.iostats, page_size=CFG.page_size)
    before = wal.stats.pages_written
    wal.checkpoint(10_000)
    assert wal.stats.checkpoints == 1
    assert wal.stats.pages_written > before
    assert wal.stats.records_by_type["checkpoint"] == 1
    assert "checkpoints" in wal.stats.as_metrics()
    with pytest.raises(ValueError):
        wal.checkpoint(-1)


def test_estimated_bytes_scales_with_content():
    empty = _empty_snapshot(0)
    full = _empty_snapshot(
        0,
        objects=tuple((i, 64, "generic", False) for i in range(100)),
        pointers=tuple((i, "next", i + 1) for i in range(100)),
        roots=(1, 2, 3),
    )
    assert full.estimated_bytes > empty.estimated_bytes
