"""Crash-recovery tests: replaying the redo log reconstructs committed state."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.object_model import ObjectKind
from repro.storage.validation import validate_store
from repro.tx.manager import TransactionManager
from repro.tx.recovery import RedoLog, recover

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=4)


def _logical_state(store: ObjectStore):
    """The durable logical state recovery must reproduce."""
    return {
        "objects": {
            oid: (obj.size, obj.kind, dict(obj.pointers), obj.dead)
            for oid, obj in store.objects.items()
        },
        "roots": set(store.roots),
        "garbage_generated": store.garbage.total_generated,
    }


def _fresh_manager():
    store = ObjectStore(CFG)
    log = RedoLog()
    manager = TransactionManager(store, redo_log=log)
    return store, log, manager


def test_recover_empty_log():
    store = recover(RedoLog(), store_config=CFG)
    assert store.objects == {}


def test_committed_transaction_is_recovered():
    store, log, manager = _fresh_manager()
    manager.begin()
    root = manager.create(size=32)
    manager.register_root(root)
    child = manager.create(size=64, kind=ObjectKind.DOCUMENT)
    manager.write_pointer(root, "doc", child)
    manager.commit()

    recovered = recover(log, store_config=CFG)
    assert _logical_state(recovered) == _logical_state(store)
    assert validate_store(recovered).ok


def test_uncommitted_transaction_is_not_recovered():
    store, log, manager = _fresh_manager()
    manager.begin()
    root = manager.create(size=32)
    manager.register_root(root)
    manager.commit()
    # A transaction in flight at the "crash": begin without commit.
    manager.begin()
    manager.create(size=500)

    recovered = recover(log, store_config=CFG)
    assert set(recovered.objects) == {root}


def test_aborted_transaction_is_not_recovered():
    store, log, manager = _fresh_manager()
    manager.begin()
    root = manager.create(size=32)
    manager.register_root(root)
    manager.commit()
    manager.begin()
    manager.create(size=500)
    manager.abort()

    recovered = recover(log, store_config=CFG)
    assert _logical_state(recovered) == _logical_state(store)


def test_deaths_are_replayed_into_oracle_accounting():
    store, log, manager = _fresh_manager()
    manager.begin()
    root = manager.create(size=32)
    manager.register_root(root)
    victim = manager.create(size=100)
    manager.write_pointer(root, "v", victim)
    manager.commit()
    manager.begin()
    manager.write_pointer(root, "v", None, dies=[victim])
    manager.commit()

    recovered = recover(log, store_config=CFG)
    assert recovered.objects[victim].dead
    assert recovered.actual_garbage_bytes == 100
    assert recovered.check_death_annotations() == set()


def test_recovery_of_transactional_workload():
    """End-to-end: run the transactional churn workload through a logging
    manager, 'crash', recover, and compare logical states."""
    from repro.events import (
        AbortTransactionEvent,
        BeginTransactionEvent,
        CommitTransactionEvent,
        CreateEvent,
        PhaseMarkerEvent,
        PointerWriteEvent,
        RootEvent,
    )
    from repro.workload.transactional import TransactionalSpec, TransactionalWorkload

    spec = TransactionalSpec(transactions=40, abort_probability=0.3)
    workload = TransactionalWorkload(spec, seed=6, initial_clusters=10)

    store = ObjectStore(CFG)
    log = RedoLog()
    manager = TransactionManager(store, redo_log=log)

    # Setup events run outside transactions in the simulator; here we wrap
    # them in one big committed transaction so the log captures everything.
    events = list(workload.events())
    manager.begin(txid=100_000)
    for event in events:
        if isinstance(event, BeginTransactionEvent):
            if manager.in_transaction:
                manager.commit()
            manager.begin(event.txid)
        elif isinstance(event, CommitTransactionEvent):
            manager.commit(event.txid)
        elif isinstance(event, AbortTransactionEvent):
            manager.abort(event.txid)
        elif isinstance(event, CreateEvent):
            manager.create(
                size=event.size, kind=event.kind, pointers=dict(event.pointers), oid=event.oid
            )
        elif isinstance(event, PointerWriteEvent):
            manager.write_pointer(event.src, event.slot, event.target, dies=event.dies)
        elif isinstance(event, RootEvent):
            manager.register_root(event.oid)
        elif isinstance(event, PhaseMarkerEvent):
            pass
    if manager.in_transaction:
        manager.commit()

    recovered = recover(log, store_config=CFG)
    assert _logical_state(recovered) == _logical_state(store)
    assert validate_store(recovered).ok


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**20),
    st.lists(st.tuples(st.booleans(), st.integers(min_value=0, max_value=10)), max_size=5),
)
def test_recovery_equals_survivor_state_property(seed, script):
    """Property: for any commit/abort script, recovery reproduces exactly
    the logical state the live store ended with."""
    rng = random.Random(seed)
    store = ObjectStore(CFG)
    log = RedoLog()
    manager = TransactionManager(store, redo_log=log)

    # Seed inside a committed transaction so the log is complete.
    manager.begin()
    root = manager.create(size=16)
    manager.register_root(root)
    live = [root]
    for _ in range(rng.randrange(2, 6)):
        oid = manager.create(size=rng.randrange(16, 200))
        manager.write_pointer(root, f"s{oid}", oid)
        live.append(oid)
    manager.commit()

    for commit, op_count in script:
        manager.begin()
        created_this_txn = []
        for _ in range(op_count):
            if rng.random() < 0.4:
                oid = manager.create(size=rng.randrange(16, 200))
                created_this_txn.append(oid)
                live.append(oid)
            elif len(live) >= 2:
                src = rng.choice(live)
                target = rng.choice(live + [None])
                manager.write_pointer(src, f"w{rng.randrange(4)}", target)
        if commit:
            manager.commit()
        else:
            manager.abort()
            for oid in created_this_txn:
                live.remove(oid)

    recovered = recover(log, store_config=CFG)
    assert _logical_state(recovered) == _logical_state(store)
