"""Property: recovery from ANY log prefix yields the committed-only state.

A crash can land after any redo record. For every prefix length ``k`` of a
randomly generated transactional history's log, recovering from the first
``k`` records must reconstruct exactly the state at the last transaction
boundary (commit or abort) durable within that prefix — never a torn,
partially applied transaction.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.heap import ObjectStore, StoreConfig
from repro.tx.manager import TransactionManager
from repro.tx.recovery import RedoLog, recover

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=8)


def _committed_view(store: ObjectStore):
    """The durable logical state a recovered store must reproduce."""
    return {
        "objects": {
            oid: (obj.size, obj.kind, dict(obj.pointers), obj.dead)
            for oid, obj in store.objects.items()
        },
        "roots": set(store.roots),
    }


#: One transaction: a list of ops plus whether it commits.
_op = st.sampled_from(["create", "root", "pointer", "update"])
_transaction = st.tuples(st.lists(_op, min_size=1, max_size=6), st.booleans())
_history = st.lists(_transaction, min_size=1, max_size=8)


def _execute(history, rng_choices):
    """Run the history; return the log and state snapshots at tx boundaries.

    Snapshots are (records_durable_so_far, committed_state) pairs taken
    when no transaction is in flight — exactly the states a crash-time
    recovery is allowed to land on.
    """
    store = ObjectStore(CFG)
    log = RedoLog()
    manager = TransactionManager(store, redo_log=log)
    snapshots = [(0, _committed_view(store))]
    durable: list = []  # survives commits only — aborts roll creates back
    # A maximal history needs more picks than the strategy draws (up to
    # 8 tx × 6 ops × 2 picks); cycling keeps execution deterministic
    # without ever exhausting the sequence.
    pick = itertools.cycle(rng_choices)

    def choose(seq):
        return seq[next(pick) % len(seq)]

    for ops, commits in history:
        manager.begin()
        tx_created: list = []
        for op in ops:
            live = durable + tx_created
            if op == "create" or not live:
                oid = manager.create(size=32 + 16 * (next(pick) % 4))
                tx_created.append(oid)
            elif op == "root":
                manager.register_root(choose(live))
            elif op == "pointer":
                src, target = choose(live), choose(live)
                manager.write_pointer(src, f"slot{next(pick) % 3}", target)
            else:  # update
                manager.update(choose(live))
        if commits:
            manager.commit()
            durable.extend(tx_created)
        else:
            manager.abort()
        snapshots.append((len(log.records), _committed_view(store)))
    return log, snapshots


@given(
    history=_history,
    rng_choices=st.lists(st.integers(min_value=0, max_value=2**16), min_size=64, max_size=64),
)
@settings(max_examples=40, deadline=None)
def test_recovery_from_every_log_prefix(history, rng_choices):
    log, snapshots = _execute(history, rng_choices)

    for k in range(len(log.records) + 1):
        truncated = RedoLog(records=list(log.records[:k]))
        recovered = recover(truncated, store_config=CFG)
        # The reference: the last boundary state durable within the prefix.
        expected = max(
            (snap for snap in snapshots if snap[0] <= k), key=lambda snap: snap[0]
        )[1]
        assert _committed_view(recovered) == expected, (
            f"prefix k={k} of {len(log.records)} records did not recover to "
            "the last durable transaction boundary"
        )


@given(
    history=_history,
    rng_choices=st.lists(st.integers(min_value=0, max_value=2**16), min_size=64, max_size=64),
)
@settings(max_examples=25, deadline=None)
def test_truncate_uncommitted_drops_only_inflight_records(history, rng_choices):
    log, _ = _execute(history, rng_choices)
    # History always ends at a boundary: nothing is in flight to drop.
    before = list(log.records)
    assert log.truncate_uncommitted() == 0
    assert log.records == before

    # Start a transaction and crash mid-way: exactly those records drop.
    # The txid must be fresh — a recycled txid with an old commit record
    # would look committed.
    store = recover(log, store_config=CFG)
    manager = TransactionManager(store, redo_log=log)
    manager.begin(txid=10_000)
    manager.create(size=32)
    dropped = log.truncate_uncommitted()
    assert dropped == 2  # begin + create
    assert log.records == before
