"""Property: checkpoint + suffix recovery equals full-log recovery.

For a random transactional history, take ANY transaction boundary ``k``
(a point where no transaction is open — the only points the service
checkpoints at). Recovering the prefix, snapshotting it, installing the
snapshot in a fresh log and appending the suffix must recover to exactly
the same state as replaying the full log — which in turn must match the
live store that executed the committed transactions. Checkpoints are a
pure compression of the log, never a semantic change.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.heap import ObjectStore, StoreConfig
from repro.tx.manager import TransactionManager
from repro.tx.recovery import RedoLog, build_checkpoint, recover, recover_with_info

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=8)


def _full_view(store: ObjectStore):
    """Byte-level logical state, including the accounting clocks."""
    return {
        "objects": {
            oid: (obj.size, obj.kind, dict(obj.pointers), obj.dead)
            for oid, obj in store.objects.items()
        },
        "roots": set(store.roots),
        "unlinked": set(store.unlinked),
        "garbage": (
            store.garbage.total_generated,
            store.garbage.total_collected,
            store.garbage.undeclared,
        ),
        "clocks": (
            store.pointer_overwrites,
            store.pointer_stores,
            store.bytes_allocated_total,
        ),
    }


def _committed_view(store: ObjectStore):
    """The durable state a recovered store must share with the live one."""
    return {
        "objects": {
            oid: (obj.size, obj.kind, dict(obj.pointers), obj.dead)
            for oid, obj in store.objects.items()
        },
        "roots": set(store.roots),
    }


_op = st.sampled_from(["create", "root", "pointer", "update", "kill"])
_transaction = st.tuples(st.lists(_op, min_size=1, max_size=6), st.booleans())
_history = st.lists(_transaction, min_size=1, max_size=8)


def _execute(history, rng_choices):
    """Run the history; return the log and the transaction boundaries.

    Boundaries are (records_durable_so_far, live_committed_state) pairs
    taken between transactions — the only positions the service builds
    checkpoints at.
    """
    store = ObjectStore(CFG)
    log = RedoLog()
    manager = TransactionManager(store, redo_log=log)
    boundaries = [(0, _committed_view(store))]
    durable: list = []
    pick = itertools.cycle(rng_choices)

    def choose(seq):
        return seq[next(pick) % len(seq)]

    for ops, commits in history:
        manager.begin()
        tx_created: list = []
        for op in ops:
            live = durable + tx_created
            if op == "create" or not live:
                oid = manager.create(size=32 + 16 * (next(pick) % 4))
                tx_created.append(oid)
            elif op == "root":
                manager.register_root(choose(live))
            elif op == "pointer":
                src, target = choose(live), choose(live)
                manager.write_pointer(src, f"slot{next(pick) % 3}", target)
            elif op == "kill":
                src = choose(live)
                manager.write_pointer(src, f"slot{next(pick) % 3}", None)
            else:  # update
                manager.update(choose(live))
        if commits:
            manager.commit()
            durable.extend(tx_created)
        else:
            manager.abort()
        boundaries.append((len(log.records), _committed_view(store)))
    return store, log, boundaries


@given(
    history=_history,
    rng_choices=st.lists(
        st.integers(min_value=0, max_value=2**16), min_size=64, max_size=64
    ),
)
@settings(max_examples=30, deadline=None)
def test_checkpoint_at_every_boundary_equals_full_replay(history, rng_choices):
    live, log, boundaries = _execute(history, rng_choices)
    full_recovered = recover(log, store_config=CFG)
    reference = _full_view(full_recovered)
    # Full replay reconstructs the live committed state (sanity anchor).
    assert _committed_view(full_recovered) == _committed_view(live)

    for k, _ in boundaries:
        # Recover the prefix exactly as a crashed service would, then
        # checkpoint it at this quiescent point.
        prefix_store = recover(
            RedoLog(records=list(log.records[:k])), store_config=CFG
        )
        snapshot = build_checkpoint(prefix_store, event_index=k)

        compacted = RedoLog()
        compacted.install_checkpoint(snapshot)
        compacted.records.extend(log.records[k:])

        recovered, info = recover_with_info(compacted, store_config=CFG)
        assert info.from_checkpoint
        assert info.checkpoint_event_index == k
        assert info.records_replayed == len(log.records) - k
        assert _full_view(recovered) == reference, (
            f"checkpoint at boundary k={k} of {len(log.records)} records "
            "diverged from full-log recovery"
        )


@given(
    history=_history,
    rng_choices=st.lists(
        st.integers(min_value=0, max_value=2**16), min_size=64, max_size=64
    ),
)
@settings(max_examples=20, deadline=None)
def test_checkpointed_recovery_survives_a_torn_suffix(history, rng_choices):
    """Checkpoint + suffix + an in-flight tail still drops the tail."""
    live, log, boundaries = _execute(history, rng_choices)
    k, _ = boundaries[len(boundaries) // 2]
    prefix_store = recover(RedoLog(records=list(log.records[:k])), store_config=CFG)
    compacted = RedoLog()
    compacted.install_checkpoint(build_checkpoint(prefix_store, event_index=k))
    compacted.records.extend(log.records[k:])

    # Crash mid-transaction after the last boundary: begin + one create,
    # no commit record.
    manager = TransactionManager(
        recover(log, store_config=CFG), redo_log=compacted
    )
    manager.begin()
    manager.create(size=16)

    recovered = recover(compacted, store_config=CFG)
    assert _committed_view(recovered) == _committed_view(live)
