"""Property test: abort is a perfect inverse.

For any random operation sequence, the store state after
``begin; ops; abort`` must equal the state before ``begin`` — object table,
pointer state, roots, garbage accounting, remembered sets, and the
policies' clocks — and the store must pass full invariant validation.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.validation import validate_store
from repro.tx.manager import TransactionManager

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=4)


def _snapshot(store: ObjectStore):
    """A deep logical snapshot of everything rollback must restore.

    Partition-indexed vectors are trimmed of trailing *empty* partitions:
    database growth is physical and is legitimately not undone by an abort
    (the file grew), but an empty partition carries no logical state.
    """

    def _trim(values, empty):
        values = list(values)
        while values and values[-1] == empty:
            values.pop()
        return values

    return {
        "objects": {
            oid: (obj.size, obj.kind, dict(obj.pointers), obj.dead)
            for oid, obj in store.objects.items()
        },
        "placements": {
            oid: (p.partition, p.offset, p.size) for oid, p in store.placements.items()
        },
        "roots": set(store.roots),
        "unlinked": set(store.unlinked),
        "overwrites": store.pointer_overwrites,
        "stores": store.pointer_stores,
        "fgs": _trim((p.pointer_overwrites for p in store.partitions), 0),
        "fills": _trim((p.fill for p in store.partitions), 0),
        "garbage": (
            store.garbage.total_generated,
            store.garbage.total_collected,
            store.garbage.undeclared,
        ),
        "dead_bytes": {k: v for k, v in store.dead_bytes.items() if v},
        "incoming": _trim(
            ({t: dict(s) for t, s in p.incoming.items()} for p in store.partitions),
            {},
        ),
        "db_size": store.db_size,
    }


def _seed_store(rng: random.Random) -> tuple[ObjectStore, list[int]]:
    store = ObjectStore(CFG)
    root = store.create(size=16)
    store.register_root(root)
    oids = [root]
    for _ in range(rng.randrange(3, 12)):
        oid = store.create(size=rng.randrange(16, 300))
        store.write_pointer(root, f"s{oid}", oid)
        oids.append(oid)
    return store, oids


def _random_ops(manager: TransactionManager, oids: list[int], rng: random.Random, count: int):
    """Random transactional operations; keeps a live-oid list for targets."""
    store = manager.store
    live = [oid for oid in oids if oid in store.objects]
    for _ in range(count):
        choice = rng.random()
        if choice < 0.35:
            oid = manager.create(size=rng.randrange(16, 300))
            live.append(oid)
        elif choice < 0.8 and len(live) >= 2:
            src = rng.choice(live)
            target = rng.choice(live + [None])
            # A write may orphan objects; we do not track liveness here, so
            # no dies annotations — this property is about physical undo.
            manager.write_pointer(src, f"w{rng.randrange(6)}", target)
        elif live:
            victim = rng.choice(live)
            if not store.objects[victim].dead and victim not in store.roots:
                # Declare a death explicitly (annotation fidelity is not the
                # point here; resurrection symmetry is).
                manager.write_pointer(
                    rng.choice(live), f"kill{rng.randrange(3)}", None, dies=[victim]
                )


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**20), st.integers(min_value=0, max_value=25))
def test_abort_restores_exact_state(seed, op_count):
    rng = random.Random(seed)
    store, oids = _seed_store(rng)
    manager = TransactionManager(store)

    before = _snapshot(store)
    manager.begin()
    _random_ops(manager, oids, rng, op_count)
    manager.abort()
    after = _snapshot(store)

    assert after == before


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**20), st.integers(min_value=0, max_value=25))
def test_commit_then_validate(seed, op_count):
    """Committed random transactions always leave a valid store."""
    rng = random.Random(seed)
    store, oids = _seed_store(rng)
    manager = TransactionManager(store)
    manager.begin()
    _random_ops(manager, oids, rng, op_count)
    manager.commit()
    assert validate_store(store, strict=False).ok


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**20),
    st.lists(st.tuples(st.booleans(), st.integers(min_value=0, max_value=12)), max_size=6),
)
def test_interleaved_commits_and_aborts_stay_valid(seed, script):
    """Any interleaving of committed and aborted transactions validates."""
    rng = random.Random(seed)
    store, oids = _seed_store(rng)
    manager = TransactionManager(store)
    for commit, op_count in script:
        manager.begin()
        _random_ops(manager, oids, rng, op_count)
        if commit:
            manager.commit()
        else:
            manager.abort()
    assert validate_store(store, strict=False).ok
