"""Tests for the write-ahead log: record accounting and forced I/O."""

import pytest

from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.iostats import IOStats
from repro.tx.manager import TransactionManager
from repro.tx.wal import RECORD_SIZES, WriteAheadLog

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=4)


def test_page_size_validation():
    with pytest.raises(ValueError):
        WriteAheadLog(IOStats(), page_size=0)


def test_unknown_record_type_rejected():
    wal = WriteAheadLog(IOStats())
    with pytest.raises(ValueError, match="unknown log record"):
        wal.append("mystery")


def test_records_accumulate_in_tail():
    iostats = IOStats()
    wal = WriteAheadLog(iostats, page_size=1024)
    wal.append("begin")
    wal.append("create")
    assert wal.stats.records == 2
    assert wal.stats.bytes_logged == RECORD_SIZES["begin"] + RECORD_SIZES["create"]
    assert wal.pending_bytes == wal.stats.bytes_logged
    assert wal.stats.pages_written == 0
    assert iostats.application.writes == 0


def test_filled_page_is_written():
    iostats = IOStats()
    wal = WriteAheadLog(iostats, page_size=100)
    for _ in range(3):  # 3 × 40 = 120 bytes > one 100-byte page
        wal.append("write")
    assert wal.stats.pages_written == 1
    assert iostats.application.writes == 1
    assert wal.pending_bytes == 20


def test_force_flushes_partial_tail():
    iostats = IOStats()
    wal = WriteAheadLog(iostats, page_size=1024)
    wal.append("begin")
    wal.force()
    assert wal.stats.pages_written == 1
    assert wal.pending_bytes == 0
    assert wal.stats.forces == 1


def test_force_with_empty_tail_writes_nothing():
    iostats = IOStats()
    wal = WriteAheadLog(iostats, page_size=1024)
    wal.force()
    assert wal.stats.pages_written == 0


def test_manager_logs_operations_and_forces_at_commit():
    store = ObjectStore(CFG)
    root = store.create(size=10)
    store.register_root(root)
    wal = WriteAheadLog(store.iostats, page_size=4096)
    manager = TransactionManager(store, wal=wal)

    manager.begin()
    child = manager.create(size=20)
    manager.write_pointer(root, "c", child)
    manager.update(child)
    manager.commit()

    by_type = wal.stats.records_by_type
    assert by_type == {"begin": 1, "create": 1, "write": 1, "update": 1, "commit": 1}
    assert wal.stats.forces == 1
    assert wal.stats.pages_written >= 1


def test_abort_logs_compensation_records():
    store = ObjectStore(CFG)
    root = store.create(size=10)
    store.register_root(root)
    wal = WriteAheadLog(store.iostats, page_size=4096)
    manager = TransactionManager(store, wal=wal)

    manager.begin()
    child = manager.create(size=20)
    manager.write_pointer(root, "c", child)
    manager.abort()

    by_type = wal.stats.records_by_type
    assert by_type["clr"] == 2  # one CLR per undone operation
    assert by_type["abort"] == 1
    assert wal.stats.forces == 1


def test_logging_io_is_application_io():
    """Log writes land on the application ledger — the cost that competes
    with the collector under a SAIO budget."""
    store = ObjectStore(CFG)
    root = store.create(size=10)
    store.register_root(root)
    wal = WriteAheadLog(store.iostats, page_size=64)  # tiny pages: every op writes
    manager = TransactionManager(store, wal=wal)
    app_writes_before = store.iostats.application.writes
    gc_before = store.iostats.collector_total

    manager.begin()
    for _ in range(5):
        manager.create(size=20)
    manager.commit()

    assert store.iostats.application.writes > app_writes_before
    assert store.iostats.collector_total == gc_before


def test_simulation_with_wal_enabled():
    from repro.core.saio import SaioPolicy
    from repro.sim.simulator import Simulation, SimulationConfig
    from repro.workload.transactional import TransactionalSpec, TransactionalWorkload

    spec = TransactionalSpec(transactions=50, abort_probability=0.2)

    def run(enable_wal):
        workload = TransactionalWorkload(spec, seed=4, initial_clusters=40)
        sim = Simulation(
            policy=SaioPolicy(io_fraction=0.15, initial_interval=50),
            config=SimulationConfig(
                store=StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4),
                preamble_collections=0,
                enable_wal=enable_wal,
                wal_page_size=2048,
            ),
        )
        return sim.run(workload.events())

    without = run(False)
    with_wal = run(True)
    # Logging adds application I/O for the same workload.
    assert with_wal.summary.app_io_total > without.summary.app_io_total
    # SAIO still keeps its share on the inflated total.
    assert with_wal.summary.gc_io_fraction == pytest.approx(0.15, abs=0.05)
