"""Regression: the simulator's per-class dispatch memos must stay bounded.

The dispatch tables (``_EVENT_HANDLERS``, ``_RUN_KINDS``, ``_MUTATING_MEMO``)
are keyed by event *class* objects and memoise lazily for subclasses. Before
the bound, every dynamically minted event class ever dispatched was pinned
for the life of the process — a real leak for long-lived hosts and for test
suites that mint classes. The bound evicts dynamic entries at the cap while
never touching the ten builtin classes.
"""

import pytest

from repro.core.fixed import FixedRatePolicy
from repro.events import AccessEvent, CreateEvent, IdleEvent
from repro.sim import simulator
from repro.sim.simulator import (
    _BUILTIN_EVENT_CLASSES,
    _DYNAMIC_CLASS_LIMIT,
    _EVENT_HANDLERS,
    _MUTATING_MEMO,
    _RUN_KINDS,
    Simulation,
    SimulationConfig,
)
from repro.storage.heap import StoreConfig

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


@pytest.fixture(autouse=True)
def _scrub_dynamic_entries():
    """Leave the module-level tables exactly as the suite found them."""
    yield
    for table in (_EVENT_HANDLERS, _RUN_KINDS, _MUTATING_MEMO):
        for cls in [c for c in table if c not in _BUILTIN_EVENT_CLASSES]:
            del table[cls]


def _mint(base, count):
    return [type(f"{base.__name__}Minted{i}", (base,), {}) for i in range(count)]


def test_handler_memo_is_bounded_and_keeps_builtins():
    minted = _mint(AccessEvent, _DYNAMIC_CLASS_LIMIT * 2)
    for cls in minted:
        assert simulator._resolve_handler(cls) is _EVENT_HANDLERS[AccessEvent]
    assert len(_EVENT_HANDLERS) <= _DYNAMIC_CLASS_LIMIT + len(_BUILTIN_EVENT_CLASSES)
    assert _BUILTIN_EVENT_CLASSES <= set(_EVENT_HANDLERS)
    # Eviction is only a cache flush: a flushed class re-resolves correctly.
    assert simulator._resolve_handler(minted[0]) is _EVENT_HANDLERS[AccessEvent]


def test_run_loop_memos_stay_bounded_across_a_real_run():
    """A single run over far more dynamic classes than the cap leaves every
    memo bounded — and the events still dispatch to the right handlers."""
    total = _DYNAMIC_CLASS_LIMIT + 50

    def trace():
        yield CreateEvent(1, 50)
        for cls in _mint(IdleEvent, total):
            yield cls()
        for cls in _mint(AccessEvent, total):
            yield cls(oid=1)

    sim = Simulation(
        policy=FixedRatePolicy(10**9),
        config=SimulationConfig(store=TINY_STORE, preamble_collections=0),
    )
    result = sim.run(trace())
    # Idle ticks are quiescence, not database events; only the create and
    # the accesses count.
    assert result.summary.events == 1 + total
    for table in (_EVENT_HANDLERS, _RUN_KINDS, _MUTATING_MEMO):
        assert len(table) <= _DYNAMIC_CLASS_LIMIT + len(_BUILTIN_EVENT_CLASSES)
    assert _BUILTIN_EVENT_CLASSES <= set(_EVENT_HANDLERS)
    assert all(_RUN_KINDS[cls] == 0 for cls in _BUILTIN_EVENT_CLASSES
               if cls not in (simulator.PhaseMarkerEvent, simulator.IdleEvent))


def test_mutating_memo_bounded_with_redo_log():
    """The auto-commit path memoises mutability per class; minted mutating
    classes are classified correctly and still evicted at the cap."""
    total = _DYNAMIC_CLASS_LIMIT + 20

    def trace():
        oid = 1
        for cls in _mint(CreateEvent, total):
            yield cls(oid, 50)
            oid += 1

    sim = Simulation(
        policy=FixedRatePolicy(10**9),
        config=SimulationConfig(
            store=StoreConfig(page_size=2048, partition_pages=64, buffer_pages=8),
            preamble_collections=0,
            enable_redo_log=True,
        ),
    )
    result = sim.run(trace())
    assert len(result.store.objects) == total
    assert len(_MUTATING_MEMO) <= _DYNAMIC_CLASS_LIMIT
