"""Unit tests for the measurement machinery (sampler, summaries)."""

import pytest

from repro.gc.collector import CollectionResult
from repro.sim.metrics import RunningMean, Sampler
from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.iostats import IOCategory, IOStats

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=4)


def _result(number=0, reclaimed=100, po=5) -> CollectionResult:
    return CollectionResult(
        collection_number=number,
        partition=0,
        reclaimed_bytes=reclaimed,
        reclaimed_objects=1,
        live_bytes=50,
        live_objects=1,
        gc_reads=4,
        gc_writes=2,
        pointer_overwrites_at_selection=po,
        overwrite_clock=42,
    )


def test_running_mean():
    mean = RunningMean()
    assert mean.mean == 0.0
    for value in (1.0, 2.0, 3.0):
        mean.add(value)
    assert mean.mean == pytest.approx(2.0)
    assert mean.minimum == 1.0
    assert mean.maximum == 3.0


def test_sampler_validation():
    with pytest.raises(ValueError):
        Sampler(preamble_collections=-1)
    with pytest.raises(ValueError):
        Sampler(series_stride=0)


def test_preamble_excludes_early_samples():
    """Only events after the preamble-th collection contribute to means."""
    sampler = Sampler(preamble_collections=1)
    store = ObjectStore(CFG)
    iostats = store.iostats
    root = store.create(size=100)
    store.register_root(root)

    # Preamble: garbage fraction 0 sampled — must NOT enter the mean.
    sampler.on_event(store, iostats)
    assert sampler.summary(store, iostats).garbage_fraction_mean == 0.0

    sampler.on_collection(_result(0), store, 100.0, None, None)

    # Now create garbage: fraction becomes 0.5.
    victim = store.create(size=100)
    store.write_pointer(root, "x", victim)
    store.write_pointer(root, "x", None, dies=[victim])
    sampler.on_event(store, iostats)

    summary = sampler.summary(store, iostats)
    assert summary.significant
    assert summary.garbage_fraction_mean == pytest.approx(0.5)


def test_gc_io_fraction_over_significant_region():
    sampler = Sampler(preamble_collections=1)
    store = ObjectStore(CFG)
    iostats = IOStats()
    # Preamble I/O: should be excluded.
    iostats.record_read(IOCategory.APPLICATION, 1000)
    iostats.record_read(IOCategory.COLLECTOR, 1000)
    sampler.on_event(store, iostats)
    sampler.on_collection(_result(0), store, 100.0, None, None)
    # First post-preamble event snapshots the baseline.
    sampler.on_event(store, iostats)
    # Significant region: 90 app, 10 gc → 10%.
    iostats.record_read(IOCategory.APPLICATION, 90)
    iostats.record_read(IOCategory.COLLECTOR, 10)
    sampler.on_event(store, iostats)
    summary = sampler.summary(store, iostats)
    assert summary.gc_io_fraction == pytest.approx(0.10)
    assert summary.gc_io_fraction_total == pytest.approx(1010 / 2100)


def test_insignificant_run_flagged():
    sampler = Sampler(preamble_collections=10)
    store = ObjectStore(CFG)
    sampler.on_event(store, store.iostats)
    summary = sampler.summary(store, store.iostats)
    assert not summary.significant


def test_event_series_stride():
    sampler = Sampler(preamble_collections=0, keep_event_series=True, series_stride=2)
    store = ObjectStore(CFG)
    for _ in range(10):
        sampler.on_event(store, store.iostats)
    assert len(sampler.event_series) == 5
    assert [s.event_index for s in sampler.event_series] == [2, 4, 6, 8, 10]


def test_series_disabled_by_default():
    sampler = Sampler()
    store = ObjectStore(CFG)
    sampler.on_event(store, store.iostats)
    assert sampler.event_series == []


def test_collection_records_capture_estimates():
    sampler = Sampler()
    store = ObjectStore(CFG)
    store.create(size=1000)
    sampler.on_phase("Reorg1")
    sampler.on_collection(
        _result(0),
        store,
        interval_next=123.0,
        estimated_garbage_bytes=250.0,
        target_garbage_fraction=0.10,
    )
    record = sampler.collection_records[0]
    assert record.phase == "Reorg1"
    assert record.interval_next == 123.0
    assert record.estimated_garbage_fraction == pytest.approx(0.25)
    assert record.target_garbage_fraction == 0.10
    assert record.yield_bytes == 100


def test_collection_record_without_estimator():
    sampler = Sampler()
    store = ObjectStore(CFG)
    store.create(size=1000)
    sampler.on_collection(_result(0), store, 1.0, None, None)
    assert sampler.collection_records[0].estimated_garbage_fraction is None


def test_phase_boundaries_recorded():
    sampler = Sampler()
    store = ObjectStore(CFG)
    sampler.on_phase("GenDB")
    sampler.on_event(store, store.iostats)
    sampler.on_event(store, store.iostats)
    sampler.on_phase("Reorg1")
    assert sampler.phase_boundaries == {"GenDB": 0, "Reorg1": 2}
