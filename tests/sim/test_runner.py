"""Tests for the multi-seed runner and aggregation."""

import pytest

from repro.core.fixed import FixedRatePolicy
from repro.core.saio import SaioPolicy
from repro.oo7.config import TINY
from repro.sim.runner import AggregateStat, run_one, run_seeds
from repro.sim.simulator import SimulationConfig
from repro.storage.heap import StoreConfig
from repro.workload.application import Oo7Application

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)
CONFIG = SimulationConfig(store=TINY_STORE, preamble_collections=0)


def _trace(seed: int):
    return Oo7Application(TINY, seed=seed).events()


def test_aggregate_stat_of_values():
    stat = AggregateStat.of([1.0, 2.0, 6.0])
    assert stat.mean == pytest.approx(3.0)
    assert stat.minimum == 1.0
    assert stat.maximum == 6.0
    assert stat.spread == 5.0


def test_aggregate_stat_empty():
    stat = AggregateStat.of([])
    assert (stat.mean, stat.minimum, stat.maximum) == (0.0, 0.0, 0.0)


def test_run_seeds_requires_seeds():
    with pytest.raises(ValueError):
        run_seeds(lambda seed: FixedRatePolicy(50), _trace, seeds=[])


def test_run_seeds_aggregates_each_seed():
    aggregate = run_seeds(
        lambda seed: FixedRatePolicy(50),
        _trace,
        seeds=[0, 1, 2],
        config=CONFIG,
    )
    assert aggregate.runs == 3
    assert aggregate.collections.mean > 0
    stat = aggregate.garbage_fraction
    assert stat.minimum <= stat.mean <= stat.maximum


def test_run_seeds_results_dropped_by_default():
    aggregate = run_seeds(
        lambda seed: FixedRatePolicy(50), _trace, seeds=[0], config=CONFIG
    )
    assert aggregate.results == []


def test_run_seeds_keep_results():
    aggregate = run_seeds(
        lambda seed: FixedRatePolicy(50),
        _trace,
        seeds=[0],
        config=CONFIG,
        keep_results=True,
    )
    assert len(aggregate.results) == 1
    assert aggregate.results[0].summary.collections == aggregate.summaries[0].collections


def test_identical_seeds_give_identical_summaries():
    """Determinism across full simulation runs."""
    kwargs = dict(
        policy_factory=lambda seed: SaioPolicy(io_fraction=0.2, initial_interval=50),
        trace_factory=_trace,
        seeds=[7],
        config=CONFIG,
    )
    first = run_seeds(**kwargs)
    second = run_seeds(**kwargs)
    assert first.summaries == second.summaries


def test_different_seeds_vary():
    aggregate = run_seeds(
        lambda seed: FixedRatePolicy(50), _trace, seeds=[0, 1, 2, 3], config=CONFIG
    )
    fractions = [s.garbage_fraction_mean for s in aggregate.summaries]
    assert len(set(fractions)) > 1


def test_run_one_convenience():
    result = run_one(FixedRatePolicy(50), _trace(0), config=CONFIG)
    assert result.summary.collections > 0


# ---------------------------------------------------------------- factory protocol


def test_seed_aware_factory_receives_each_seed():
    received = []

    def factory(seed):
        received.append(seed)
        return FixedRatePolicy(50)

    run_seeds(factory, _trace, seeds=[3, 1, 4], config=CONFIG)
    assert received == [3, 1, 4]


def test_legacy_zero_arg_factory_warns_but_works():
    with pytest.warns(DeprecationWarning, match="seed-aware"):
        aggregate = run_seeds(
            lambda: FixedRatePolicy(50), _trace, seeds=[0], config=CONFIG
        )
    assert aggregate.runs == 1


def test_legacy_default_arg_factory_keeps_its_defaults():
    """`lambda r=rate: ...` smuggles state via defaults; the seed must not
    clobber it."""
    captured = []

    def factory(rate=50):
        captured.append(rate)
        return FixedRatePolicy(rate)

    with pytest.warns(DeprecationWarning):
        run_seeds(factory, _trace, seeds=[7], config=CONFIG)
    assert captured == [50]  # not the seed


def test_legacy_and_seed_aware_factories_agree():
    with pytest.warns(DeprecationWarning):
        legacy = run_seeds(
            lambda: FixedRatePolicy(50), _trace, seeds=[0, 1], config=CONFIG
        )
    modern = run_seeds(
        lambda seed: FixedRatePolicy(50), _trace, seeds=[0, 1], config=CONFIG
    )
    assert legacy.summaries == modern.summaries
