"""Tests for the multi-seed runner and aggregation."""

import pytest

from repro.core.fixed import FixedRatePolicy
from repro.core.saio import SaioPolicy
from repro.oo7.config import TINY
from repro.sim.runner import AggregateStat, run_one, run_seeds
from repro.sim.simulator import SimulationConfig
from repro.storage.heap import StoreConfig
from repro.workload.application import Oo7Application

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)
CONFIG = SimulationConfig(store=TINY_STORE, preamble_collections=0)


def _trace(seed: int):
    return Oo7Application(TINY, seed=seed).events()


def test_aggregate_stat_of_values():
    stat = AggregateStat.of([1.0, 2.0, 6.0])
    assert stat.mean == pytest.approx(3.0)
    assert stat.minimum == 1.0
    assert stat.maximum == 6.0
    assert stat.spread == 5.0


def test_aggregate_stat_empty():
    stat = AggregateStat.of([])
    assert (stat.mean, stat.minimum, stat.maximum) == (0.0, 0.0, 0.0)


def test_run_seeds_requires_seeds():
    with pytest.raises(ValueError):
        run_seeds(lambda: FixedRatePolicy(50), _trace, seeds=[])


def test_run_seeds_aggregates_each_seed():
    aggregate = run_seeds(
        lambda: FixedRatePolicy(50),
        _trace,
        seeds=[0, 1, 2],
        config=CONFIG,
    )
    assert aggregate.runs == 3
    assert aggregate.collections.mean > 0
    stat = aggregate.garbage_fraction
    assert stat.minimum <= stat.mean <= stat.maximum


def test_run_seeds_results_dropped_by_default():
    aggregate = run_seeds(
        lambda: FixedRatePolicy(50), _trace, seeds=[0], config=CONFIG
    )
    assert aggregate.results == []


def test_run_seeds_keep_results():
    aggregate = run_seeds(
        lambda: FixedRatePolicy(50),
        _trace,
        seeds=[0],
        config=CONFIG,
        keep_results=True,
    )
    assert len(aggregate.results) == 1
    assert aggregate.results[0].summary.collections == aggregate.summaries[0].collections


def test_identical_seeds_give_identical_summaries():
    """Determinism across full simulation runs."""
    kwargs = dict(
        policy_factory=lambda: SaioPolicy(io_fraction=0.2, initial_interval=50),
        trace_factory=_trace,
        seeds=[7],
        config=CONFIG,
    )
    first = run_seeds(**kwargs)
    second = run_seeds(**kwargs)
    assert first.summaries == second.summaries


def test_different_seeds_vary():
    aggregate = run_seeds(
        lambda: FixedRatePolicy(50), _trace, seeds=[0, 1, 2, 3], config=CONFIG
    )
    fractions = [s.garbage_fraction_mean for s in aggregate.summaries]
    assert len(set(fractions)) > 1


def test_run_one_convenience():
    result = run_one(FixedRatePolicy(50), _trace(0), config=CONFIG)
    assert result.summary.collections > 0
