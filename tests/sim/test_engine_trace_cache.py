"""Engine + trace cache: once-per-sweep builds, identical results at any jobs."""


from repro.oo7.config import TINY
from repro.sim.engine import run_experiment_batch
from repro.sim.simulator import SimulationConfig
from repro.sim.spec import ExperimentSpec, PolicySpec, WorkloadSpec
from repro.storage.heap import StoreConfig
from repro.workload.trace_cache import TraceCache

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)
SIM = SimulationConfig(store=TINY_STORE, preamble_collections=0)


def specs(rates=(40, 80, 160)):
    return [
        ExperimentSpec(
            policy=PolicySpec("fixed", {"overwrites_per_collection": rate}),
            workload=WorkloadSpec("oo7", {"config": TINY}),
            sim=SIM,
            label=f"tc@{rate}",
        )
        for rate in rates
    ]


def summaries(aggregates):
    return [s for agg in aggregates for s in agg.summaries]


def test_trace_cache_results_identical_serial(tmp_path):
    reference = run_experiment_batch(specs(), seeds=[0, 1], jobs=1)
    cache = TraceCache(tmp_path)
    cached = run_experiment_batch(specs(), seeds=[0, 1], jobs=1, trace_cache=cache)
    assert summaries(cached) == summaries(reference)
    # 3 specs x 2 seeds share 2 unique traces: 2 builds, 4 memo/disk hits.
    assert cache.stats.builds == 2
    assert cache.stats.memo_hits + cache.stats.disk_hits == 4


def test_trace_cache_results_identical_parallel(tmp_path):
    reference = run_experiment_batch(specs(), seeds=[0, 1], jobs=1)
    cache = TraceCache(tmp_path)
    parallel = run_experiment_batch(
        specs(), seeds=[0, 1], jobs=2, trace_cache=cache
    )
    assert summaries(parallel) == summaries(reference)
    # The prewarm pass materialised every unique trace on disk.
    assert len(cache) == 2


def test_memo_only_trace_cache_identical(tmp_path):
    reference = run_experiment_batch(specs(), seeds=[0], jobs=1)
    memo = run_experiment_batch(
        specs(), seeds=[0], jobs=1, trace_cache=TraceCache(None)
    )
    assert summaries(memo) == summaries(reference)


def test_trace_cache_as_path(tmp_path):
    reference = run_experiment_batch(specs(), seeds=[0], jobs=1)
    from_path = run_experiment_batch(
        specs(), seeds=[0], jobs=1, trace_cache=str(tmp_path)
    )
    assert summaries(from_path) == summaries(reference)
    assert len(TraceCache(tmp_path)) == 1


def test_result_cache_fingerprints_unchanged_by_trace_cache(tmp_path):
    """A result cached without the trace cache must hit with it enabled."""
    from repro.sim.cache import ResultCache

    result_cache = ResultCache(tmp_path / "results")
    first = run_experiment_batch(specs(), seeds=[0], jobs=1, cache=result_cache)

    outcomes = []
    again = run_experiment_batch(
        specs(),
        seeds=[0],
        jobs=1,
        cache=result_cache,
        trace_cache=TraceCache(tmp_path / "traces"),
        progress=outcomes.append,
    )
    assert summaries(again) == summaries(first)
    assert len(outcomes) == 3
    assert all(outcome.cached for outcome in outcomes)
