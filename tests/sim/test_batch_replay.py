"""The batched replay interpreter must be invisible.

``repro.sim.batch`` slices a :class:`~repro.workload.compiled.
CompiledTrace` into runs and replays them with bulk kernels; these tests
pin the contract that makes it safe to enable by default: byte-identical
``SimulationSummary`` pickles and identical committed store state versus
the scalar per-event loop — across preset, grammar and tenant-mix
workloads, from any ``start_index``, under crash/recovery drills, with
and without numpy, and with no effect on result-cache fingerprints or
service-mode backpressure decisions.
"""

import dataclasses
import itertools
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import (
    AccessEvent,
    CreateEvent,
    PointerWriteEvent,
    UpdateEvent,
)
from repro.faults.drill import state_digest
from repro.faults.injector import FaultInjector, SimulatedCrash
from repro.faults.plan import FaultPlan, FaultSpec
from repro.oo7.config import TINY
from repro.service.server import GcService, ServiceConfig
from repro.service.stream import grammar_stream, tenant_stream
from repro.sim.cache import spec_fingerprint
from repro.sim.simulator import Simulation, SimulationConfig
from repro.sim.spec import (
    ExperimentSpec,
    PolicySpec,
    WorkloadSpec,
    build_policy,
    build_selection,
    build_workload,
)
from repro.storage.heap import StoreConfig, StoreError
from repro.tx.recovery import RedoLog, recover
from repro.workload.compiled import compile_trace
from repro.workload.tenants import make_profile, tenant_mix

# ---------------------------------------------------------------- helpers


def _spec(rate=50.0, **sim_overrides):
    return ExperimentSpec(
        policy=PolicySpec("fixed", {"overwrites_per_collection": rate}),
        workload=WorkloadSpec("oo7", {"config": TINY}),
        sim=SimulationConfig(
            store=StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4),
            preamble_collections=0,
            **sim_overrides,
        ),
        label="batch-replay-test",
    )


def _run(spec, replayable, *, replay, seed=0, start_index=0):
    """One simulation under an explicit interpreter choice."""
    config = dataclasses.replace(spec.sim, replay=replay)
    sim = Simulation(
        policy=build_policy(spec.policy, seed),
        selection=build_selection(spec.selection, seed),
        config=config,
    )
    result = sim.run(replayable, start_index=start_index)
    return sim, result


def _assert_equivalent(spec, events, *, seed=0):
    """Scalar over the event list == batched over the compiled trace."""
    trace = compile_trace(events)
    sim_s, res_s = _run(spec, events, replay="scalar", seed=seed)
    sim_b, res_b = _run(spec, trace, replay="batched", seed=seed)
    assert pickle.dumps(res_b.summary) == pickle.dumps(res_s.summary)
    assert state_digest(sim_b.store) == state_digest(sim_s.store)
    return res_s


# ------------------------------------------------- workload equivalence


@pytest.mark.parametrize("rate", [30.0, 200.0])
def test_oo7_preset_equivalence(rate):
    spec = _spec(rate=rate)
    events = list(build_workload(spec.workload, 0))
    result = _assert_equivalent(spec, events)
    assert result.summary.collections > 0, "the workload must trigger GC"


def test_grammar_workload_equivalence():
    stream = grammar_stream(make_profile("oltp-churn", scale=0.2), seed=11)
    events = list(itertools.islice(stream.events_from(), 4000))
    _assert_equivalent(_spec(rate=40.0), events)


def test_tenant_mix_equivalence():
    config = tenant_mix(["oltp-churn", "read-browse"], scale=0.2)
    events = list(itertools.islice(tenant_stream(config, seed=5).events_from(), 4000))
    _assert_equivalent(_spec(rate=40.0), events)


def test_plain_event_list_under_auto_stays_scalar():
    """replay='auto' only engages batching for an already-compiled trace."""
    spec = _spec()
    events = list(build_workload(spec.workload, 0))
    _, res_auto = _run(spec, events, replay="auto")
    _, res_scalar = _run(spec, events, replay="scalar")
    assert pickle.dumps(res_auto.summary) == pickle.dumps(res_scalar.summary)


# ------------------------------------------------- start_index / resume


def _self_contained_events():
    """A trace whose tail is valid from many start offsets.

    Creates form one long run, so a ``start_index`` inside it lands in
    the middle of a batch; the pointer/access tail references only the
    last-created oids.
    """
    events = [CreateEvent(oid=i, size=120) for i in range(1, 11)]
    events.append(PointerWriteEvent(src=8, slot="x", target=9))
    events.extend(AccessEvent(oid=8) for _ in range(6))
    events.append(UpdateEvent(oid=9))
    return events


@given(start=st.integers(min_value=0, max_value=18))
@settings(max_examples=30, deadline=None)
def test_start_index_lands_mid_batch(start):
    """Resume from any offset — including inside a bulk run — matches.

    Both interpreters must agree on the outcome (summary and state on
    success, error type and message on failure) for every start offset.
    """
    spec = _spec(rate=500.0)
    events = _self_contained_events()
    trace = compile_trace(events)

    def outcome(replayable, replay):
        try:
            sim, res = _run(spec, replayable, replay=replay, start_index=start)
        except StoreError as err:
            return ("error", type(err).__name__, str(err))
        return ("ok", pickle.dumps(res.summary), state_digest(sim.store))

    assert outcome(trace, "batched") == outcome(events, "scalar")


def test_crash_drill_resume_matches_scalar():
    """A crash drill resumed mid-trace is identical under both interpreters.

    With faults and a redo log attached the batched path takes its
    guarded per-event interpreter; the resume index must land strictly
    inside an opcode run so the drill exercises a mid-batch restart.
    """
    spec = _spec(rate=30.0)
    config = dataclasses.replace(spec.sim, enable_redo_log=True)
    events = list(build_workload(spec.workload, 0))
    trace = compile_trace(events)
    plan = FaultPlan(faults=(FaultSpec(site="gc.collect", at=2),))

    def drilled(replayable, replay):
        injector = FaultInjector(plan)
        log = RedoLog()
        drill_config = dataclasses.replace(config, replay=replay)
        sim = Simulation(
            policy=build_policy(spec.policy, 0),
            selection=build_selection(spec.selection, 0),
            config=drill_config,
            faults=injector,
            redo_log=log,
        )
        start = 0
        resumes = []
        while True:
            try:
                sim.run(replayable, start_index=start)
                break
            except SimulatedCrash as crash:
                assert len(resumes) < 10, "unexpectedly many crashes"
                recovered = recover(log, store_config=config.store)
                log.truncate_uncommitted()
                start = crash.resume_index
                resumes.append(start)
                sim = Simulation(
                    policy=build_policy(spec.policy, 0),
                    selection=build_selection(spec.selection, 0),
                    config=drill_config,
                    faults=injector,
                    store=recovered,
                    redo_log=log,
                )
        summary = sim.sampler.summary(sim.store, sim.store.iostats)
        return resumes, state_digest(sim.store), pickle.dumps(summary)

    resumes_s, digest_s, summary_s = drilled(events, "scalar")
    resumes_b, digest_b, summary_b = drilled(trace, "batched")
    assert resumes_s, "the plan must actually crash the run"
    assert resumes_b == resumes_s
    assert digest_b == digest_s
    assert summary_b == summary_s
    # The drill is only a mid-batch test if some resume index lands
    # strictly inside a run of same-opcode events.
    ops = trace.ops
    assert any(0 < i < len(ops) and ops[i] == ops[i - 1] for i in resumes_b), (
        "no resume index landed inside an opcode run"
    )


# ------------------------------------------------- numpy independence


def test_pure_python_fallback_is_byte_identical(monkeypatch):
    """Forcing the numpy kernels off must not change a single byte."""
    spec = _spec(rate=80.0)
    events = list(build_workload(spec.workload, 0))

    def batched_summary():
        sim, res = _run(spec, compile_trace(events), replay="batched")
        return pickle.dumps(res.summary), state_digest(sim.store)

    with_default = batched_summary()
    monkeypatch.setattr("repro.sim.batch._HAVE_NUMPY", False)
    without_numpy = batched_summary()
    assert without_numpy == with_default


# ------------------------------------------------- fingerprints / config


def test_replay_choice_does_not_change_fingerprint():
    """The interpreter is an execution detail, not an experiment input."""
    spec = _spec()
    prints = {
        spec_fingerprint(
            dataclasses.replace(
                spec, sim=dataclasses.replace(spec.sim, replay=replay)
            ),
            seed=0,
        )
        for replay in ("auto", "batched", "scalar")
    }
    assert len(prints) == 1


def test_invalid_replay_value_rejected():
    spec = _spec()
    with pytest.raises(ValueError, match="replay"):
        Simulation(
            policy=build_policy(spec.policy, 0),
            config=dataclasses.replace(spec.sim, replay="vectorised"),
        )


# ------------------------------------------------- service backpressure


def test_service_backpressure_identical_across_interpreters():
    """Shedding decisions land at event (batch) boundaries either way.

    The service applies stream events one at a time so admission control
    can veto each create before it executes; the configured interpreter
    must not change a single shedding decision, counter, or the final
    committed state.
    """

    def report_for(replay):
        service = GcService(
            policy=build_policy(PolicySpec("fixed", {"overwrites_per_collection": 200.0}), 3),
            stream=grammar_stream(make_profile("oltp-churn"), seed=3),
            sim_config=SimulationConfig(replay=replay),
            service=ServiceConfig(
                max_events=15_000,
                checkpoint_every_events=5_000,
                max_heap_bytes=12_000,
                backpressure="shed",
            ),
        )
        report = service.run()
        fields = dataclasses.asdict(report)
        fields.pop("wall_s")
        fields.pop("paced_sleep_s")
        return fields

    scalar = report_for("scalar")
    batched = report_for("batched")
    assert scalar["backpressure"]["shed_events"] > 0, "the drill must shed"
    assert batched == scalar
