"""Tests for the content-addressed on-disk result cache."""

import json

import pytest

from repro.oo7.config import TINY
from repro.sim.cache import ResultCache, spec_fingerprint
from repro.sim.engine import run_experiment
from repro.sim.simulator import SimulationConfig
from repro.sim.spec import ExperimentSpec, PolicySpec, WorkloadSpec
from repro.storage.heap import StoreConfig

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)
SIM = SimulationConfig(store=TINY_STORE, preamble_collections=0)


def tiny_spec(rate=50, label=""):
    return ExperimentSpec(
        policy=PolicySpec("fixed", {"overwrites_per_collection": rate}),
        workload=WorkloadSpec("oo7", {"config": TINY}),
        sim=SIM,
        label=label,
    )


@pytest.fixture
def run():
    """One real simulation run (summary + records) to feed the cache."""
    aggregate = run_experiment(
        tiny_spec(), seeds=[0], jobs=1, keep_records=True
    )
    return aggregate.summaries[0], aggregate.records[0]


# ---------------------------------------------------------------- round-trip


def test_round_trip_summary(tmp_path, run):
    summary, _records = run
    cache = ResultCache(tmp_path)
    key = spec_fingerprint(tiny_spec(), seed=0)
    assert cache.get(key) is None
    cache.put(key, summary)
    hit = cache.get(key)
    assert hit is not None
    assert hit.summary == summary
    assert hit.records is None
    assert key in cache
    assert len(cache) == 1


def test_round_trip_with_records(tmp_path, run):
    summary, records = run
    cache = ResultCache(tmp_path)
    key = spec_fingerprint(tiny_spec(), seed=0)
    cache.put(key, summary, records)
    hit = cache.get(key, want_records=True)
    assert hit is not None
    assert hit.records == records


def test_want_records_misses_summary_only_entries(tmp_path, run):
    summary, _records = run
    cache = ResultCache(tmp_path)
    key = spec_fingerprint(tiny_spec(), seed=0)
    cache.put(key, summary)
    assert cache.get(key, want_records=True) is None
    assert cache.get(key) is not None  # still hits without records


def test_corrupt_entry_is_discarded(tmp_path, run):
    summary, _records = run
    cache = ResultCache(tmp_path)
    key = spec_fingerprint(tiny_spec(), seed=0)
    cache.put(key, summary)
    cache._path(key).write_text("{ not json")
    assert cache.get(key) is None
    assert key not in cache  # dropped, not left to fail again


def test_incompatible_schema_is_discarded(tmp_path):
    cache = ResultCache(tmp_path)
    key = spec_fingerprint(tiny_spec(), seed=0)
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"summary": {"no_such_field": 1}}))
    assert cache.get(key) is None
    assert key not in cache


def test_clear(tmp_path, run):
    summary, _records = run
    cache = ResultCache(tmp_path)
    for seed in (0, 1, 2):
        cache.put(spec_fingerprint(tiny_spec(), seed=seed), summary)
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0


def test_no_temp_files_left_behind(tmp_path, run):
    summary, _records = run
    cache = ResultCache(tmp_path)
    cache.put(spec_fingerprint(tiny_spec(), seed=0), summary)
    leftovers = [p for p in tmp_path.rglob("*") if p.is_file() and p.suffix != ".json"]
    assert leftovers == []


# ---------------------------------------------------------------- fingerprints


def test_fingerprint_stable_across_calls():
    assert spec_fingerprint(tiny_spec(), 0) == spec_fingerprint(tiny_spec(), 0)


def test_fingerprint_ignores_label():
    assert spec_fingerprint(tiny_spec(label="a"), 0) == spec_fingerprint(
        tiny_spec(label="b"), 0
    )


def test_fingerprint_invalidates_on_any_input_change(run):
    base = spec_fingerprint(tiny_spec(), 0)
    assert spec_fingerprint(tiny_spec(), 1) != base  # seed
    assert spec_fingerprint(tiny_spec(rate=51), 0) != base  # policy kwargs
    other_sim = ExperimentSpec(
        policy=PolicySpec("fixed", {"overwrites_per_collection": 50}),
        workload=WorkloadSpec("oo7", {"config": TINY}),
        sim=SimulationConfig(store=TINY_STORE, preamble_collections=1),
    )
    assert spec_fingerprint(other_sim, 0) != base  # simulation config
