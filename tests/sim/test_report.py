"""Tests for terminal report formatting."""

import pytest

from repro.sim.report import ascii_plot, format_percent, format_table, sparkline


def test_format_table_alignment_and_title():
    text = format_table(
        headers=["name", "value"],
        rows=[["alpha", 1.5], ["b", 22]],
        title="Demo",
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert lines[1] == "===="
    assert "name" in lines[2] and "value" in lines[2]
    assert set(lines[3]) <= {"-", " "}
    # All rows are equally wide.
    assert len({len(line) for line in lines[2:]}) == 1


def test_format_table_float_formatting():
    text = format_table(["x"], [[0.123456]])
    assert "0.1235" in text


def test_format_percent():
    assert format_percent(0.1234) == "12.34%"
    assert format_percent(0.5, digits=0) == "50%"


def test_ascii_plot_dimensions_and_legend():
    plot = ascii_plot(
        {"actual": [0.0, 1.0, 2.0], "target": [1.0, 1.0, 1.0]},
        width=20,
        height=6,
        title="T",
    )
    lines = plot.splitlines()
    assert lines[0] == "T"
    assert "*=actual" in lines[1] and "+=target" in lines[1]
    body = [line for line in lines if line.startswith("|")]
    assert len(body) == 6
    assert all(len(line) == 22 for line in body)


def test_ascii_plot_constant_series_does_not_crash():
    plot = ascii_plot({"flat": [5.0, 5.0, 5.0]}, width=10, height=4)
    assert "flat" in plot


def test_ascii_plot_validation():
    with pytest.raises(ValueError):
        ascii_plot({}, width=20, height=6)
    with pytest.raises(ValueError):
        ascii_plot({"x": [1.0]}, width=2, height=6)
    with pytest.raises(ValueError):
        ascii_plot({"x": []}, width=20, height=6)


def test_sparkline_resamples_to_width():
    line = sparkline([0.0, 1.0, 0.0, 1.0], width=16)
    assert len(line) == 16
    assert len(set(line)) > 1


def test_sparkline_empty():
    assert sparkline([]) == ""
