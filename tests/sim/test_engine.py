"""Tests for the parallel experiment engine.

The acceptance bar: jobs=1 and jobs>1 produce identical results (down to
the formatted report), and a warm cache answers a repeat invocation with
zero simulation runs.
"""

import pytest

from repro.oo7.config import TINY
from repro.sim.engine import ParallelRunner, run_experiment, run_experiment_batch
from repro.sim.simulator import SimulationConfig
from repro.sim.spec import ExperimentSpec, PolicySpec, WorkloadSpec
from repro.storage.heap import StoreConfig

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)
SIM = SimulationConfig(store=TINY_STORE, preamble_collections=0)


def tiny_spec(rate=50, label=""):
    return ExperimentSpec(
        policy=PolicySpec("fixed", {"overwrites_per_collection": rate}),
        workload=WorkloadSpec("oo7", {"config": TINY}),
        sim=SIM,
        label=label,
    )


# ---------------------------------------------------------------- basics


def test_requires_seeds():
    with pytest.raises(ValueError):
        run_experiment(tiny_spec(), seeds=[], jobs=1)


def test_rejects_nonpositive_jobs():
    with pytest.raises(ValueError):
        ParallelRunner(jobs=0)


def test_empty_batch():
    assert run_experiment_batch([], seeds=[0], jobs=1) == []


def test_aggregates_each_seed():
    aggregate = run_experiment(tiny_spec(), seeds=[0, 1, 2], jobs=1)
    assert aggregate.runs == 3
    assert aggregate.stats.runs == 3
    assert aggregate.stats.cache_misses == 3
    assert aggregate.stats.wall_time > 0


def test_keep_records():
    aggregate = run_experiment(tiny_spec(), seeds=[0, 1], jobs=1, keep_records=True)
    assert len(aggregate.records) == 2
    assert all(len(records) > 0 for records in aggregate.records)
    assert aggregate.records[0][0].reclaimed_bytes >= 0


def test_matches_run_seeds():
    """The engine runs the exact simulations run_seeds would."""
    from repro.core.fixed import FixedRatePolicy
    from repro.sim.runner import run_seeds
    from repro.workload.application import Oo7Application

    legacy = run_seeds(
        lambda seed: FixedRatePolicy(50),
        lambda seed: Oo7Application(TINY, seed=seed).events(),
        seeds=[0, 1],
        config=SIM,
    )
    engine = run_experiment(tiny_spec(), seeds=[0, 1], jobs=1)
    assert engine.summaries == legacy.summaries


# ---------------------------------------------------------------- determinism


def test_parallel_matches_serial():
    """jobs=1 and jobs=4 must produce identical summaries (byte-identical
    formatted output follows)."""
    specs = [tiny_spec(rate) for rate in (40, 50, 60)]
    serial = run_experiment_batch(specs, seeds=[0, 1], jobs=1)
    parallel = run_experiment_batch(specs, seeds=[0, 1], jobs=4)
    assert [a.summaries for a in serial] == [a.summaries for a in parallel]


def test_parallel_matches_serial_with_records():
    serial = run_experiment(tiny_spec(), seeds=[0, 1, 2], jobs=1, keep_records=True)
    parallel = run_experiment(tiny_spec(), seeds=[0, 1, 2], jobs=3, keep_records=True)
    assert serial.summaries == parallel.summaries
    assert serial.records == parallel.records


# ---------------------------------------------------------------- caching


def test_second_run_is_all_cache_hits(tmp_path):
    cache_dir = tmp_path / "cache"
    cold = run_experiment(tiny_spec(), seeds=[0, 1], jobs=1, cache=cache_dir)
    assert (cold.stats.cache_hits, cold.stats.cache_misses) == (0, 2)
    warm = run_experiment(tiny_spec(), seeds=[0, 1], jobs=1, cache=cache_dir)
    assert (warm.stats.cache_hits, warm.stats.cache_misses) == (2, 0)
    assert warm.summaries == cold.summaries


def test_cache_invalidates_on_spec_change(tmp_path):
    cache_dir = tmp_path / "cache"
    run_experiment(tiny_spec(rate=50), seeds=[0], jobs=1, cache=cache_dir)
    changed = run_experiment(tiny_spec(rate=60), seeds=[0], jobs=1, cache=cache_dir)
    assert changed.stats.cache_misses == 1


def test_cached_records_round_trip(tmp_path):
    cache_dir = tmp_path / "cache"
    cold = run_experiment(
        tiny_spec(), seeds=[0], jobs=1, cache=cache_dir, keep_records=True
    )
    warm = run_experiment(
        tiny_spec(), seeds=[0], jobs=1, cache=cache_dir, keep_records=True
    )
    assert warm.stats.cache_hits == 1
    assert warm.records == cold.records


def test_summary_only_entry_upgraded_when_records_needed(tmp_path):
    cache_dir = tmp_path / "cache"
    run_experiment(tiny_spec(), seeds=[0], jobs=1, cache=cache_dir)
    upgraded = run_experiment(
        tiny_spec(), seeds=[0], jobs=1, cache=cache_dir, keep_records=True
    )
    assert upgraded.stats.cache_misses == 1  # re-ran to get records
    again = run_experiment(
        tiny_spec(), seeds=[0], jobs=1, cache=cache_dir, keep_records=True
    )
    assert again.stats.cache_hits == 1


# ---------------------------------------------------------------- progress


def test_progress_reports_every_run(tmp_path):
    outcomes = []
    run_experiment(
        tiny_spec(label="tiny"),
        seeds=[0, 1],
        jobs=1,
        cache=tmp_path / "cache",
        progress=outcomes.append,
    )
    assert [o.cached for o in outcomes] == [False, False]
    assert [o.completed for o in outcomes] == [1, 2]
    assert all(o.total == 2 and o.label == "tiny" for o in outcomes)
    assert all(o.wall_time > 0 for o in outcomes)

    outcomes.clear()
    run_experiment(
        tiny_spec(label="tiny"),
        seeds=[0, 1],
        jobs=1,
        cache=tmp_path / "cache",
        progress=outcomes.append,
    )
    assert [o.cached for o in outcomes] == [True, True]
    assert {o.seed for o in outcomes} == {0, 1}


def test_progress_label_falls_back_to_policy_kind():
    outcomes = []
    run_experiment(tiny_spec(), seeds=[0], jobs=1, progress=outcomes.append)
    assert outcomes[0].label == "fixed"
