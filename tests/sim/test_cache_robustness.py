"""Cache corruption quarantine and the record-downgrade regression."""

import json

from repro.oo7.config import TINY
from repro.sim.cache import ResultCache, spec_fingerprint
from repro.sim.engine import run_experiment
from repro.sim.simulator import SimulationConfig
from repro.sim.spec import ExperimentSpec, PolicySpec, WorkloadSpec
from repro.storage.heap import StoreConfig

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)
SIM = SimulationConfig(store=TINY_STORE, preamble_collections=0)


def tiny_spec(rate=50):
    return ExperimentSpec(
        policy=PolicySpec("fixed", {"overwrites_per_collection": rate}),
        workload=WorkloadSpec("oo7", {"config": TINY}),
        sim=SIM,
    )


def _warm(cache, keep_records=False):
    run_experiment(
        tiny_spec(), seeds=[0], jobs=1, cache=cache, keep_records=keep_records
    )
    return spec_fingerprint(tiny_spec(), 0)


# ------------------------------------------------------------- quarantine


def test_corrupt_entry_is_quarantined_not_deleted(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = _warm(cache)
    path = cache._path(key)
    path.write_text("{torn json")

    assert cache.get(key) is None  # degrades to a miss
    assert cache.quarantined == 1
    assert not path.exists()
    quarantine = cache.root / "quarantine"
    files = list(quarantine.iterdir())
    assert [f.name for f in files] == [f"{key}.json.corrupt"]
    assert files[0].read_text() == "{torn json"  # bytes preserved


def test_quarantined_entries_invisible_to_len_and_clear(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = _warm(cache)
    assert len(cache) == 1
    cache._path(key).write_text("{torn")
    cache.get(key)
    assert len(cache) == 0
    assert cache.clear() == 0
    # The quarantined file survives clear().
    assert list((cache.root / "quarantine").iterdir())


def test_incompatible_schema_entry_is_quarantined(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = _warm(cache)
    cache._path(key).write_text(json.dumps({"summary": {"bogus_field": 1}}))
    assert cache.get(key) is None
    assert cache.quarantined == 1


def test_quarantined_entry_recomputed_and_rewritten(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = _warm(cache)
    cache._path(key).write_text("{torn")
    result = run_experiment(tiny_spec(), seeds=[0], jobs=1, cache=cache)
    assert result.stats.cache_misses == 1  # corrupt entry was a miss
    assert cache.get(key) is not None  # healthy entry rewritten


# ------------------------------------- record downgrade regression (sat. 2)


def test_recordless_put_never_downgrades_entry_with_records(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = _warm(cache, keep_records=True)
    with_records = cache.get(key, want_records=True)
    assert with_records is not None and with_records.records

    # A later keep_records=False sweep writes the same key without records.
    run_experiment(tiny_spec(), seeds=[0], jobs=1, cache=cache)
    still = cache.get(key, want_records=True)
    assert still is not None and still.records  # records survived


def test_recordless_entry_upgraded_when_records_needed(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = _warm(cache, keep_records=False)
    assert cache.get(key, want_records=True) is None  # records missing

    # A keep_records=True run recomputes AND upgrades the entry in place.
    result = run_experiment(
        tiny_spec(), seeds=[0], jobs=1, cache=cache, keep_records=True
    )
    assert result.stats.cache_misses == 1
    upgraded = cache.get(key, want_records=True)
    assert upgraded is not None and upgraded.records

    # And the upgrade sticks for the next records-needing run.
    warm = run_experiment(
        tiny_spec(), seeds=[0], jobs=1, cache=cache, keep_records=True
    )
    assert warm.stats.cache_hits == 1


def test_direct_put_with_none_records_on_fresh_key_still_writes(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = _warm(cache)
    hit = cache.get(key)
    other_key = "f" * 64
    cache.put(other_key, hit.summary, None)
    assert cache.get(other_key) is not None
