"""Tests for the simulation engine: triggering, dispatch, opportunism."""

import pytest

from repro.core.estimators import OracleEstimator
from repro.core.extensions import OpportunisticPolicy
from repro.core.fixed import FixedRatePolicy
from repro.core.saio import SaioPolicy
from repro.events import (
    AccessEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    UpdateEvent,
)
from repro.oo7.config import TINY
from repro.sim.simulator import Simulation, SimulationConfig
from repro.storage.heap import StoreConfig
from repro.workload.application import Oo7Application

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def _config(**kwargs) -> SimulationConfig:
    defaults = dict(store=TINY_STORE, preamble_collections=0)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def _churn_trace(cycles: int):
    """A hand-built trace: root + repeatedly created/killed 600-byte objects."""
    yield PhaseMarkerEvent("churn")
    yield CreateEvent(1, 50)
    yield RootEvent(1)
    oid = 2
    for _ in range(cycles):
        yield CreateEvent(oid, 600)
        yield PointerWriteEvent(1, "x", oid)
        yield PointerWriteEvent(1, "x", None, dies=(oid,))
        oid += 1


def test_fixed_policy_triggers_every_n_overwrites():
    sim = Simulation(policy=FixedRatePolicy(10), config=_config())
    result = sim.run(_churn_trace(100))
    # 100 overwrites at 1 per cycle... each cycle has 2 pointer writes but
    # only the second overwrites (slot null → value is a store).
    overwrites = result.store.pointer_overwrites
    assert overwrites == 100
    assert result.summary.collections == overwrites // 10


def test_collections_reclaim_garbage_end_to_end():
    sim = Simulation(policy=FixedRatePolicy(5), config=_config())
    result = sim.run(_churn_trace(60))
    assert result.summary.total_reclaimed_bytes > 0
    assert result.store.garbage.undeclared == 0
    # Garbage left is bounded: collections kept pace with churn.
    assert result.summary.final_garbage_fraction < 0.9


def test_all_event_kinds_dispatch():
    sim = Simulation(policy=FixedRatePolicy(1000), config=_config())
    trace = [
        PhaseMarkerEvent("p"),
        CreateEvent(1, 50),
        RootEvent(1),
        CreateEvent(2, 60, pointers=(("a", 1),)),
        AccessEvent(2),
        UpdateEvent(2),
        PointerWriteEvent(2, "a", None),
        IdleEvent(),
    ]
    result = sim.run(trace)
    assert result.summary.events == 6  # markers and idles are not DB events
    assert result.store.objects[2].pointers["a"] is None


def test_unknown_event_rejected():
    sim = Simulation(policy=FixedRatePolicy(10), config=_config())
    with pytest.raises(TypeError):
        sim.run([object()])


def test_max_collections_guard():
    config = _config(max_collections=3)
    sim = Simulation(policy=FixedRatePolicy(1), config=config)
    with pytest.raises(RuntimeError, match="max_collections"):
        sim.run(_churn_trace(100))


def test_saio_time_base_counts_application_io():
    """SAIO triggers on application I/O, not overwrites: a trace with heavy
    I/O but no overwrites still collects."""
    def read_heavy():
        yield CreateEvent(1, 50)
        yield RootEvent(1)
        oids = []
        for index in range(20):
            oid = 2 + index
            yield CreateEvent(oid, 1500)
            yield PointerWriteEvent(1, f"s{index}", oid)
            oids.append(oid)
        for _round in range(30):
            for oid in oids:
                yield AccessEvent(oid)

    sim = Simulation(
        policy=SaioPolicy(io_fraction=0.10, initial_interval=50),
        config=_config(),
    )
    result = sim.run(read_heavy())
    assert result.store.pointer_overwrites == 0
    assert result.summary.collections > 0


def test_phase_markers_reach_sampler():
    sim = Simulation(policy=FixedRatePolicy(50), config=_config())
    result = sim.run(Oo7Application(TINY, seed=0).events())
    assert list(result.sampler.phase_boundaries) == [
        "GenDB",
        "Reorg1",
        "Traverse",
        "Reorg2",
    ]


def test_opportunistic_policy_collects_during_idle():
    inner = FixedRatePolicy(1_000_000)  # never triggers on its own
    policy = OpportunisticPolicy(
        inner, OracleEstimator(), idle_threshold=3, min_garbage_bytes=100
    )

    def trace():
        yield from _churn_trace(5)  # creates ~3 KB of garbage
        for _ in range(10):
            yield IdleEvent()

    sim = Simulation(policy=policy, config=_config())
    result = sim.run(trace())
    assert policy.opportunistic_collections >= 1
    assert result.summary.collections >= 1


def test_opportunism_not_triggered_under_activity():
    inner = FixedRatePolicy(1_000_000)
    policy = OpportunisticPolicy(
        inner, OracleEstimator(), idle_threshold=5, min_garbage_bytes=100
    )
    sim = Simulation(policy=policy, config=_config())
    sim.run(_churn_trace(20))  # no idle events at all
    assert policy.opportunistic_collections == 0


def test_simulation_result_exposes_collections_and_series():
    config = _config(keep_event_series=True, series_stride=10)
    sim = Simulation(policy=FixedRatePolicy(20), config=config)
    result = sim.run(_churn_trace(50))
    assert len(result.collections) == result.summary.collections
    assert result.event_series
    assert result.event_series[0].event_index == 10


def test_idle_event_ticks_each_count():
    """IdleEvent(ticks=N) represents N quiet ticks, not one."""
    from repro.core.estimators import OracleEstimator

    inner = FixedRatePolicy(1_000_000)
    # min_garbage_bytes=0 so every completed quiet stretch fires, making the
    # tick arithmetic the only variable under test.
    policy = OpportunisticPolicy(
        inner, OracleEstimator(), idle_threshold=4, min_garbage_bytes=0
    )

    def trace():
        yield from _churn_trace(5)
        yield IdleEvent(ticks=8)  # two full quiet stretches in one event

    sim = Simulation(policy=policy, config=_config())
    sim.run(trace())
    assert policy.opportunistic_collections == 2
