"""Tests for the declarative experiment spec and its registries."""

import pytest

from repro.core.fixed import AllocationRatePolicy, FixedRatePolicy
from repro.core.saga import SagaPolicy
from repro.gc.selection import RandomSelection, UpdatedPointerSelection
from repro.oo7.config import TINY
from repro.sim.simulator import SimulationConfig
from repro.sim.spec import (
    ExperimentSpec,
    PolicySpec,
    SelectionSpec,
    WorkloadSpec,
    build_policy,
    build_selection,
    build_workload,
    register_policy,
    spec_material,
)
from repro.storage.heap import StoreConfig

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)
SIM = SimulationConfig(store=TINY_STORE, preamble_collections=0)


def tiny_spec(policy=None, label=""):
    return ExperimentSpec(
        policy=policy or PolicySpec("fixed", {"overwrites_per_collection": 50}),
        workload=WorkloadSpec("oo7", {"config": TINY}),
        sim=SIM,
        label=label,
    )


# ---------------------------------------------------------------- resolution


def test_resolve_builds_live_objects():
    policy, trace, selection = tiny_spec().resolve(seed=0)
    assert isinstance(policy, FixedRatePolicy)
    assert isinstance(selection, UpdatedPointerSelection)
    assert any(True for _ in trace)


def test_resolve_builds_fresh_instances_per_call():
    spec = tiny_spec()
    first, _, _ = spec.resolve(seed=0)
    second, _, _ = spec.resolve(seed=0)
    assert first is not second


def test_builtin_policy_kinds():
    assert isinstance(
        build_policy(PolicySpec("allocation", {"bytes_per_collection": 1000}), 0),
        AllocationRatePolicy,
    )
    saga = build_policy(
        PolicySpec(
            "saga", {"garbage_fraction": 0.1, "estimator": "oracle", "weight": 0.4}
        ),
        0,
    )
    assert isinstance(saga, SagaPolicy)


def test_unknown_kind_raises_with_choices():
    with pytest.raises(ValueError, match="unknown policy kind 'bogus'"):
        build_policy(PolicySpec("bogus"), 0)
    with pytest.raises(ValueError, match="unknown workload"):
        build_workload(WorkloadSpec("bogus"), 0)
    with pytest.raises(ValueError, match="unknown selection"):
        build_selection(SelectionSpec("bogus"), 0)


def test_selection_gets_the_run_seed():
    selection = build_selection(SelectionSpec("random"), seed=5)
    assert isinstance(selection, RandomSelection)


def test_registry_is_extensible():
    register_policy("test-fixed-77", lambda seed: FixedRatePolicy(77))
    try:
        policy = build_policy(PolicySpec("test-fixed-77"), 0)
        assert isinstance(policy, FixedRatePolicy)
    finally:
        from repro.sim import spec as spec_module

        del spec_module._POLICY_REGISTRY["test-fixed-77"]


# ---------------------------------------------------------------- hashing material


def test_spec_material_is_stable():
    assert spec_material(tiny_spec(), seed=3) == spec_material(tiny_spec(), seed=3)


def test_spec_material_ignores_label():
    plain = spec_material(tiny_spec(label=""))
    labelled = spec_material(tiny_spec(label="figure99 fancy name"))
    assert plain == labelled


def test_spec_material_varies_with_seed_and_kwargs():
    base = spec_material(tiny_spec(), seed=0)
    assert spec_material(tiny_spec(), seed=1) != base
    changed = tiny_spec(
        policy=PolicySpec("fixed", {"overwrites_per_collection": 51})
    )
    assert spec_material(changed, seed=0) != base


def test_spec_material_tags_dataclass_types():
    material = spec_material(tiny_spec())
    assert material["workload"]["kwargs"]["config"]["__class__"] == "OO7Config"
    assert material["sim"]["__class__"] == "SimulationConfig"


def test_spec_material_rejects_opaque_values():
    bad = tiny_spec(policy=PolicySpec("fixed", {"callback": object()}))
    with pytest.raises(TypeError, match="cannot be part of a cacheable"):
        spec_material(bad)
