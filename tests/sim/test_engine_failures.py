"""Failure tolerance of the experiment engine.

The acceptance bar (ISSUE): a batch containing an always-crashing run
completes with partial results and the failures recorded in
RunStats/AggregateResult — the batch never dies.
"""

import pytest

from repro.faults.plan import FaultPlan, FaultSpec
from repro.oo7.config import TINY
from repro.sim import engine as engine_module
from repro.sim.engine import (
    ParallelRunner,
    RunTimeoutError,
    run_experiment,
    run_experiment_batch,
)
from repro.sim.runner import RunFailure
from repro.sim.simulator import SimulationConfig
from repro.sim.spec import ExperimentSpec, PolicySpec, WorkloadSpec
from repro.storage.heap import StoreConfig

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)
SIM = SimulationConfig(store=TINY_STORE, preamble_collections=0)

#: Crashes the very first I/O write of every run: always fatal.
ALWAYS_CRASH = FaultPlan(faults=(FaultSpec(site="io.write", at=1),))


def tiny_spec(rate=50, label="", faults=None):
    return ExperimentSpec(
        policy=PolicySpec("fixed", {"overwrites_per_collection": rate}),
        workload=WorkloadSpec("oo7", {"config": TINY}),
        sim=SIM,
        label=label,
        faults=faults,
    )


# ------------------------------------------------------- partial results


def test_batch_with_always_crashing_spec_completes_with_partial_results():
    good = tiny_spec(label="good")
    bad = tiny_spec(label="bad", faults=ALWAYS_CRASH)
    outcomes = []
    results = run_experiment_batch(
        [good, bad], seeds=[0, 1], jobs=1, progress=outcomes.append
    )
    good_agg, bad_agg = results
    assert good_agg.runs == 2 and good_agg.stats.failures == 0
    assert bad_agg.runs == 0 and bad_agg.stats.failures == 2
    assert len(bad_agg.failures) == 2
    failure = bad_agg.failures[0]
    assert isinstance(failure, RunFailure)
    assert failure.label == "bad" and failure.seed == 0
    assert "SimulatedCrash" in failure.error
    assert failure.attempts == 1
    # Progress saw every run settle, failed ones flagged.
    assert len(outcomes) == 4
    assert sum(1 for o in outcomes if o.failed) == 2


def test_pooled_batch_with_failures_matches_serial():
    good = tiny_spec(label="good")
    bad = tiny_spec(label="bad", faults=ALWAYS_CRASH)
    serial = run_experiment_batch([good, bad], seeds=[0, 1], jobs=1)
    pooled = run_experiment_batch([good, bad], seeds=[0, 1], jobs=2)
    assert [a.summaries for a in serial] == [a.summaries for a in pooled]
    assert [a.failures for a in serial] == [a.failures for a in pooled]


def test_failed_runs_excluded_from_aggregates_and_records():
    bad = tiny_spec(label="bad", faults=ALWAYS_CRASH)
    aggregate = run_experiment(bad, seeds=[0, 1, 2], jobs=1, keep_records=True)
    assert aggregate.summaries == []
    assert aggregate.records == []
    assert aggregate.garbage_fraction.mean == 0.0  # empty-safe stats


# ----------------------------------------------------------------- retries


def test_permanent_failure_counts_attempts():
    bad = tiny_spec(label="bad", faults=ALWAYS_CRASH)
    aggregate = run_experiment(
        bad, seeds=[0], jobs=1, retries=2, retry_backoff=0.0
    )
    assert aggregate.stats.failures == 1
    assert aggregate.failures[0].attempts == 3  # 1 + 2 retries
    assert aggregate.stats.retries == 2


def test_transient_failure_retries_to_success(monkeypatch):
    real_simulate = engine_module._simulate
    calls = {"n": 0}

    def flaky(spec, seed, keep_records, timeout=None):
        calls["n"] += 1
        if calls["n"] == 1:
            raise OSError("transient")
        return real_simulate(spec, seed, keep_records, timeout)

    monkeypatch.setattr(engine_module, "_simulate", flaky)
    aggregate = run_experiment(
        tiny_spec(), seeds=[0], jobs=1, retries=1, retry_backoff=0.0
    )
    assert calls["n"] == 2
    assert aggregate.runs == 1 and aggregate.stats.failures == 0
    assert aggregate.stats.retries == 1


def test_negative_retries_rejected():
    with pytest.raises(ValueError):
        ParallelRunner(retries=-1)
    with pytest.raises(ValueError):
        ParallelRunner(run_timeout=0)


# ----------------------------------------------------------------- timeout


def test_run_timeout_quarantines_slow_runs():
    aggregate = run_experiment(
        tiny_spec(label="slow"), seeds=[0], jobs=1, run_timeout=1e-4
    )
    assert aggregate.stats.failures == 1
    assert "RunTimeoutError" in aggregate.failures[0].error


def test_generous_timeout_does_not_fire():
    aggregate = run_experiment(tiny_spec(), seeds=[0], jobs=1, run_timeout=120.0)
    assert aggregate.runs == 1 and aggregate.stats.failures == 0


# ------------------------------------------------- broken pool degradation


def test_broken_pool_falls_back_to_serial(monkeypatch):
    from concurrent.futures.process import BrokenProcessPool

    def broken(self, *args, **kwargs):
        raise BrokenProcessPool("worker died")

    monkeypatch.setattr(ParallelRunner, "_run_pooled", broken)
    results = run_experiment_batch(
        [tiny_spec(rate) for rate in (40, 60)], seeds=[0, 1], jobs=4
    )
    assert all(a.runs == 2 and a.stats.failures == 0 for a in results)


# --------------------------------------------------------- fault plumbing


def test_runner_level_faults_compose_onto_specs():
    aggregate = run_experiment(tiny_spec(), seeds=[0], jobs=1, faults=ALWAYS_CRASH)
    assert aggregate.stats.failures == 1


def test_spec_level_faults_take_precedence():
    benign = FaultPlan(faults=(FaultSpec(site="io.read", at=10**9),))
    aggregate = run_experiment(
        tiny_spec(faults=benign), seeds=[0], jobs=1, faults=ALWAYS_CRASH
    )
    assert aggregate.stats.failures == 0  # spec's own (benign) plan won


def test_faulty_and_fault_free_runs_never_share_cache_entries(tmp_path):
    cache_dir = tmp_path / "cache"
    clean = run_experiment(tiny_spec(), seeds=[0], jobs=1, cache=cache_dir)
    assert clean.stats.cache_misses == 1
    # Same spec with faults: must not hit the fault-free entry.
    faulty = run_experiment(
        tiny_spec(faults=ALWAYS_CRASH), seeds=[0], jobs=1, cache=cache_dir
    )
    assert faulty.stats.cache_hits == 0 and faulty.stats.failures == 1
    # And the fault-free entry still answers.
    warm = run_experiment(tiny_spec(), seeds=[0], jobs=1, cache=cache_dir)
    assert warm.stats.cache_hits == 1


# ------------------------------------------------------------- reentrancy


def test_run_batch_is_reentrant_from_progress_callback():
    """Nested run_batch on the same runner must not corrupt outer counters."""
    runner = ParallelRunner(jobs=1)
    outer_outcomes = []
    nested_outcomes = []

    def reenter(outcome):
        outer_outcomes.append(outcome)
        if len(outer_outcomes) == 1:
            # Re-enter the same runner mid-batch with a different progress.
            inner = ParallelRunner(jobs=1, progress=nested_outcomes.append)
            inner.progress = nested_outcomes.append
            runner.progress, saved = nested_outcomes.append, runner.progress
            try:
                runner.run(tiny_spec(rate=99), seeds=[7, 8])
            finally:
                runner.progress = saved

    runner.progress = reenter
    runner.run(tiny_spec(), seeds=[0, 1, 2])

    assert [(o.completed, o.total) for o in outer_outcomes] == [(1, 3), (2, 3), (3, 3)]
    assert [(o.completed, o.total) for o in nested_outcomes] == [(1, 2), (2, 2)]


def test_run_batch_reentrant_counts_with_threads():
    import threading

    runner = ParallelRunner(jobs=1)
    results = {}

    def work(name, rate, seeds):
        outcomes = []
        saved_progress = outcomes.append
        local = ParallelRunner(jobs=1, progress=saved_progress)
        # Deliberately share ONE runner across threads via run_batch's
        # explicit progress-free path; totals come from the outcome stream.
        results[name] = (
            runner.run(tiny_spec(rate=rate), seeds=seeds),
            local.run(tiny_spec(rate=rate), seeds=seeds),
        )

    threads = [
        threading.Thread(target=work, args=("a", 40, [0, 1])),
        threading.Thread(target=work, args=("b", 70, [2, 3, 4])),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    shared_a, local_a = results["a"]
    shared_b, local_b = results["b"]
    assert shared_a.summaries == local_a.summaries
    assert shared_b.summaries == local_b.summaries
