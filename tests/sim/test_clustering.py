"""Tests for clustering analytics — the Reorg1/Reorg2 (de)clustering contract."""

import random


from repro.oo7.builder import apply_event
from repro.oo7.config import OO7Config
from repro.oo7.schema import Oo7Graph
from repro.sim.clustering import composite_spread, traverse_hit_rate
from repro.storage.heap import ObjectStore, StoreConfig
from repro.workload.phases import gen_db_phase, reorg1_phase, reorg2_phase

CONFIG = OO7Config(
    num_atomic_per_comp=12,
    num_comp_per_module=30,
    num_assm_levels=3,
    manual_size=8 * 1024,
    document_size=500,
)
STORE_CFG = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def _fresh(seed=0):
    rng = random.Random(seed)
    graph = Oo7Graph(CONFIG, rng=rng)
    store = ObjectStore(STORE_CFG)
    for event in gen_db_phase(graph):
        apply_event(store, event)
    return graph, store, rng


def test_fresh_database_is_clustered():
    graph, store, _rng = _fresh()
    stats = composite_spread(store, graph)
    assert stats.mean_partitions_per_composite < 2.5
    assert stats.clustered_fraction > 0.6


def test_reorg1_roughly_preserves_clustering():
    graph, store, rng = _fresh()
    before = composite_spread(store, graph)
    for event in reorg1_phase(graph, rng):
        apply_event(store, event)
    after = composite_spread(store, graph)
    # Clustered reinsertion: spread grows only mildly.
    assert after.mean_partitions_per_composite < before.mean_partitions_per_composite + 2.0


def test_reorg2_breaks_clustering():
    """The paper's design goal for Reorg2."""
    graph1, store1, rng1 = _fresh()
    for event in reorg1_phase(graph1, rng1):
        apply_event(store1, event)
    after_reorg1 = composite_spread(store1, graph1)

    graph2, store2, rng2 = _fresh()
    for event in reorg2_phase(graph2, rng2):
        apply_event(store2, event)
    after_reorg2 = composite_spread(store2, graph2)

    assert (
        after_reorg2.mean_partitions_per_composite
        > after_reorg1.mean_partitions_per_composite + 1.0
    )
    assert after_reorg2.clustered_fraction < after_reorg1.clustered_fraction


def test_declustering_costs_traversal_locality():
    """De-clustered placement shows up as a worse traversal hit rate —
    the mechanism behind Figure 1a's application-I/O growth."""
    graph1, store1, rng1 = _fresh()
    for event in reorg1_phase(graph1, rng1):
        apply_event(store1, event)
    clustered_rate = traverse_hit_rate(store1, graph1)

    graph2, store2, rng2 = _fresh()
    for event in reorg2_phase(graph2, rng2):
        apply_event(store2, event)
    declustered_rate = traverse_hit_rate(store2, graph2)

    assert declustered_rate < clustered_rate


def test_compaction_shrinks_traversal_footprint():
    """Collecting every partition after Reorg2 squeezes garbage out: the
    live working set occupies fewer distinct pages — the storage-side
    benefit of copying collection (§3.1). Cross-partition de-clustering
    itself is permanent (objects never migrate between partitions), which
    is exactly why Reorg2 is hostile."""
    from repro.gc.collector import CopyingCollector
    from repro.sim.clustering import traverse_page_footprint

    graph, store, rng = _fresh()
    for event in reorg2_phase(graph, rng):
        apply_event(store, event)
    before = traverse_page_footprint(store, graph)
    collector = CopyingCollector(store)
    for _round in range(2):
        for pid in range(store.partition_count):
            collector.collect(pid)
    after = traverse_page_footprint(store, graph)
    assert after < before


def test_spread_stats_empty_graph():
    graph = Oo7Graph(CONFIG, rng=random.Random(0))
    store = ObjectStore(STORE_CFG)
    stats = composite_spread(store, graph)
    assert stats.mean_partitions_per_composite == 0.0
    assert stats.max_partitions_per_composite == 0
