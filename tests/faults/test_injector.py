"""FaultInjector semantics: determinism, firing rules, effects."""

import pytest

from repro.faults.injector import (
    FaultInjector,
    InjectedIOError,
    SimulatedCrash,
)
from repro.faults.plan import FaultPlan, FaultSpec


def test_at_fires_on_exact_occurrence():
    injector = FaultInjector(FaultPlan(faults=(FaultSpec(site="io.read", at=3),)))
    injector.fire("io.read")
    injector.fire("io.read")
    with pytest.raises(SimulatedCrash) as exc:
        injector.fire("io.read")
    assert exc.value.site == "io.read"
    assert exc.value.occurrence == 3


def test_single_shot_fault_retires_after_firing():
    injector = FaultInjector(FaultPlan(faults=(FaultSpec(site="io.read", at=1),)))
    with pytest.raises(SimulatedCrash):
        injector.fire("io.read")
    # Retired: later occurrences pass through.
    for _ in range(10):
        injector.fire("io.read")
    assert injector.crashes == 1


def test_repeating_at_fault_fires_on_every_multiple():
    plan = FaultPlan(
        faults=(FaultSpec(site="io.write", effect="io-error", at=2, repeat=True),)
    )
    injector = FaultInjector(plan)
    errors = 0
    for _ in range(6):
        try:
            injector.fire("io.write")
        except InjectedIOError:
            errors += 1
    assert errors == 3  # occurrences 2, 4, 6


def test_sites_count_independently():
    injector = FaultInjector(FaultPlan(faults=(FaultSpec(site="tx.commit", at=2),)))
    injector.fire("tx.begin")
    injector.fire("tx.commit")
    injector.fire("tx.begin")
    with pytest.raises(SimulatedCrash):
        injector.fire("tx.commit")
    assert injector.occurrences("tx.begin") == 2
    assert injector.occurrences("tx.commit") == 2


def test_torn_write_records_page_and_does_not_raise():
    plan = FaultPlan(
        faults=(FaultSpec(site="page.write", effect="torn-write", at=2),)
    )
    injector = FaultInjector(plan)
    injector.fire("page.write", detail=("p", 0))
    injector.fire("page.write", detail=("p", 1))  # fires silently
    injector.fire("page.write", detail=("p", 2))
    assert injector.torn_pages == {("p", 1)}
    assert [f.effect for f in injector.fired] == ["torn-write"]


def test_probabilistic_sequence_is_reproducible():
    plan = FaultPlan(
        faults=(
            FaultSpec(site="io.read", effect="io-error", probability=0.3, repeat=True),
        ),
        seed=42,
    )

    def ledger():
        injector = FaultInjector(plan)
        outcomes = []
        for _ in range(200):
            try:
                injector.fire("io.read")
                outcomes.append(0)
            except InjectedIOError:
                outcomes.append(1)
        return outcomes, [(f.site, f.occurrence, f.effect) for f in injector.fired]

    first, second = ledger(), ledger()
    assert first == second
    assert sum(first[0]) > 0  # some faults actually fired


def test_probabilistic_sequence_depends_on_plan_seed():
    def ledger(seed):
        plan = FaultPlan(
            faults=(
                FaultSpec(site="io.read", effect="io-error", probability=0.3, repeat=True),
            ),
            seed=seed,
        )
        injector = FaultInjector(plan)
        outcomes = []
        for _ in range(100):
            try:
                injector.fire("io.read")
                outcomes.append(0)
            except InjectedIOError:
                outcomes.append(1)
        return outcomes

    assert ledger(1) != ledger(2)


def test_probability_zero_never_fires_probability_one_always():
    never = FaultInjector(
        FaultPlan(
            faults=(FaultSpec(site="io.read", effect="io-error", probability=0.0, repeat=True),)
        )
    )
    for _ in range(50):
        never.fire("io.read")
    assert never.fired == []

    always = FaultInjector(
        FaultPlan(
            faults=(FaultSpec(site="io.read", effect="io-error", probability=1.0),)
        )
    )
    with pytest.raises(InjectedIOError):
        always.fire("io.read")


def test_crash_carries_mutable_resume_annotations():
    injector = FaultInjector(FaultPlan(faults=(FaultSpec(site="tx.commit", at=1),)))
    with pytest.raises(SimulatedCrash) as exc:
        injector.fire("tx.commit")
    crash = exc.value
    assert crash.event_index is None and crash.resume_index is None
    crash.event_index = 12
    crash.resume_index = 10
    assert (crash.event_index, crash.resume_index) == (12, 10)
