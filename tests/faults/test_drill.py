"""Crash–recover–continue drills: the tentpole acceptance tests.

Every drill asserts *byte identity*: the SHA-256 of the canonical committed
reachable state of the drilled (crashed + recovered + resumed) run must
equal the uncrashed reference run's.
"""

import pytest

from repro.experiments.drill_exp import DEFAULT_PLAN, drill_spec, format_drill, run_drill
from repro.faults.drill import run_crash_recovery_drill
from repro.faults.plan import FaultPlan, FaultSpec
from repro.sim.spec import ExperimentSpec, PolicySpec, WorkloadSpec
from repro.sim.simulator import SimulationConfig
from repro.storage.heap import StoreConfig

TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


def tx_spec() -> ExperimentSpec:
    return ExperimentSpec(
        policy=PolicySpec("fixed", {"overwrites_per_collection": 60}),
        workload=WorkloadSpec("transactional", {}),
        sim=SimulationConfig(store=TINY_STORE, preamble_collections=0),
        label="drill",
    )


def plan_of(*faults: FaultSpec) -> FaultPlan:
    return FaultPlan(faults=tuple(faults))


def test_single_commit_crash_recovers_byte_identical():
    plan = plan_of(FaultSpec(site="tx.commit", at=30))
    report = run_crash_recovery_drill(tx_spec(), seed=0, plan=plan)
    assert report.crashes == 1
    assert report.crash_sites == ["tx.commit"]
    assert report.recovered_objects[0] > 0
    assert report.matches_reference


def test_mid_collection_crash_recovers_byte_identical():
    plan = plan_of(FaultSpec(site="gc.collect", at=1))
    report = run_crash_recovery_drill(tx_spec(), seed=0, plan=plan)
    assert report.crash_sites == ["gc.collect"]
    assert report.matches_reference


def test_multi_site_crash_sequence():
    plan = plan_of(
        FaultSpec(site="tx.commit", at=20),
        FaultSpec(site="tx.begin", at=40),
        FaultSpec(site="tx.commit", at=70),
    )
    report = run_crash_recovery_drill(tx_spec(), seed=0, plan=plan)
    assert report.crash_sites == ["tx.commit", "tx.begin", "tx.commit"]
    assert len(report.resume_indices) == 3
    assert report.matches_reference


def test_torn_writes_do_not_break_logical_recovery():
    plan = plan_of(
        FaultSpec(site="page.write", effect="torn-write", at=3),
        FaultSpec(site="tx.commit", at=50),
    )
    report = run_crash_recovery_drill(tx_spec(), seed=0, plan=plan)
    assert "torn-write" in {effect for _, _, effect in report.fired}
    assert report.matches_reference


def test_drill_is_reproducible():
    plan = plan_of(
        FaultSpec(site="tx.commit", at=25),
        FaultSpec(site="tx.begin", at=60),
    )
    first = run_crash_recovery_drill(tx_spec(), seed=3, plan=plan)
    second = run_crash_recovery_drill(tx_spec(), seed=3, plan=plan)
    assert first.fired == second.fired
    assert first.resume_indices == second.resume_indices
    assert first.final_digest == second.final_digest


def test_drill_across_seeds():
    plan = plan_of(FaultSpec(site="tx.commit", at=45))
    for seed in range(4):
        report = run_crash_recovery_drill(tx_spec(), seed=seed, plan=plan)
        assert report.matches_reference, f"seed {seed} diverged"


def test_plan_is_required():
    with pytest.raises(ValueError):
        run_crash_recovery_drill(tx_spec(), seed=0)


def test_unbounded_crash_plan_hits_safety_valve():
    plan = plan_of(FaultSpec(site="tx.begin", at=1, repeat=True))
    with pytest.raises(RuntimeError):
        run_crash_recovery_drill(tx_spec(), seed=0, plan=plan, max_crashes=3)


# ------------------------------------------------------------- demo driver


def test_default_drill_experiment_all_match():
    result = run_drill(seeds=[0, 1])
    assert result.all_match
    # The default plan exercises all three crash layers.
    sites = {site for r in result.reports.values() for site in r.crash_sites}
    assert {"tx.commit", "tx.begin", "gc.collect"} <= sites


def test_drill_report_format():
    result = run_drill(seeds=[0])
    text = format_drill(result)
    assert "IDENTICAL" in text
    assert "byte-identical" in text


def test_default_plan_includes_torn_write():
    effects = {f.effect for f in DEFAULT_PLAN.faults}
    assert "torn-write" in effects
    assert drill_spec().workload.kind == "transactional"
