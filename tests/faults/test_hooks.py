"""The storage / transaction layers actually reach their fault sites."""

import pytest

from repro.faults.injector import FaultInjector, InjectedIOError, SimulatedCrash
from repro.faults.plan import FaultPlan, FaultSpec
from repro.storage.heap import ObjectStore, StoreConfig
from repro.storage.iostats import IOCategory
from repro.tx.manager import TransactionManager

CFG = StoreConfig(page_size=256, partition_pages=4, buffer_pages=4)


def test_store_reads_and_writes_reach_io_sites():
    store = ObjectStore(CFG)
    injector = FaultInjector(FaultPlan())
    store.attach_fault_injector(injector)
    root = store.create(size=64)
    store.register_root(root)
    store.access(root)
    assert injector.occurrences("io.read") > 0


def test_injected_io_error_surfaces_from_storage():
    store = ObjectStore(CFG)
    root = store.create(size=64)
    # Push the root's page out of the 4-page buffer so the next access is
    # a real disk read, then attach: occurrence 1 of io.read is that read.
    for _ in range(16):
        store.create(size=200)
    injector = FaultInjector(
        FaultPlan(faults=(FaultSpec(site="io.read", effect="io-error", at=1),))
    )
    store.attach_fault_injector(injector)
    with pytest.raises(InjectedIOError):
        store.access(root)


def test_page_write_site_sees_write_backs():
    store = ObjectStore(CFG)
    injector = FaultInjector(FaultPlan())
    store.attach_fault_injector(injector)
    for _ in range(8):
        store.create(size=200)
    store.buffer.flush(IOCategory.APPLICATION)
    assert injector.occurrences("page.write") > 0


def test_torn_write_recorded_on_flush():
    store = ObjectStore(CFG)
    injector = FaultInjector(
        FaultPlan(faults=(FaultSpec(site="page.write", effect="torn-write", at=1),))
    )
    store.attach_fault_injector(injector)
    store.create(size=200)
    store.buffer.flush(IOCategory.APPLICATION)
    assert len(injector.torn_pages) == 1


def test_tx_commit_crash_fires_before_any_commit_effects():
    store = ObjectStore(CFG)
    manager = TransactionManager(store)
    injector = FaultInjector(FaultPlan(faults=(FaultSpec(site="tx.commit", at=1),)))
    manager.fault_hook = injector.fire
    manager.begin()
    oid = manager.create(size=32)
    manager.register_root(oid)
    with pytest.raises(SimulatedCrash):
        manager.commit()
    # The crash hit before the commit took effect: the tx is still open.
    assert manager.in_transaction


def test_tx_begin_and_abort_sites():
    store = ObjectStore(CFG)
    manager = TransactionManager(store)
    injector = FaultInjector(FaultPlan())
    manager.fault_hook = injector.fire
    manager.begin()
    manager.create(size=32)
    manager.abort()
    assert injector.occurrences("tx.begin") == 1
    assert injector.occurrences("tx.abort") == 1
