"""FaultPlan / FaultSpec validation and JSON round-trips."""

import pytest

from repro.faults.plan import EFFECTS, SITES, FaultPlan, FaultSpec, load_fault_plan


def test_sites_and_effects_are_closed_sets():
    assert "tx.commit" in SITES
    assert "gc.collect" in SITES
    assert EFFECTS == {"crash", "io-error", "torn-write"}


def test_at_based_spec():
    spec = FaultSpec(site="io.read", at=3)
    assert spec.effect == "crash"
    assert spec.at == 3 and spec.probability is None


def test_probability_based_spec():
    spec = FaultSpec(site="io.write", effect="io-error", probability=0.5)
    assert spec.probability == 0.5


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(site="nope", at=1),
        dict(site="io.read", effect="nope", at=1),
        dict(site="io.read"),  # neither at nor probability
        dict(site="io.read", at=1, probability=0.5),  # both
        dict(site="io.read", at=0),  # 1-based
        dict(site="io.read", probability=1.5),
        dict(site="io.read", effect="torn-write", at=1),  # wrong site
    ],
)
def test_invalid_specs_rejected(kwargs):
    with pytest.raises(ValueError):
        FaultSpec(**kwargs)


def test_torn_write_requires_page_write_site():
    FaultSpec(site="page.write", effect="torn-write", at=1)  # ok


def test_plan_coerces_fault_list_to_tuple():
    plan = FaultPlan(faults=[FaultSpec(site="io.read", at=1)])
    assert isinstance(plan.faults, tuple)


def test_json_round_trip():
    plan = FaultPlan(
        faults=(
            FaultSpec(site="tx.commit", at=4),
            FaultSpec(site="io.read", effect="io-error", probability=0.25, repeat=True),
            FaultSpec(site="page.write", effect="torn-write", at=7),
        ),
        seed=99,
    )
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_from_json_defaults():
    plan = FaultPlan.from_json('{"faults": [{"site": "io.read", "at": 2}]}')
    assert plan.seed == 0
    assert plan.faults[0].effect == "crash"
    assert plan.faults[0].repeat is False


def test_from_json_rejects_non_object():
    with pytest.raises(ValueError):
        FaultPlan.from_json("[1, 2, 3]")


def test_load_fault_plan(tmp_path):
    plan = FaultPlan(faults=(FaultSpec(site="gc.collect", at=1),), seed=7)
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    assert load_fault_plan(path) == plan
