"""Shared fixtures: small store geometries and OO7 workloads for fast tests."""

from __future__ import annotations

import pytest

from repro.oo7.config import TINY, OO7Config
from repro.storage.heap import ObjectStore, StoreConfig

#: A store geometry small enough that TINY OO7 spans many partitions and the
#: buffer pool actually evicts: 4 pages of 2 KB per partition, 4-page buffer.
TINY_STORE = StoreConfig(page_size=2048, partition_pages=4, buffer_pages=4)


@pytest.fixture
def tiny_store_config() -> StoreConfig:
    return TINY_STORE


@pytest.fixture
def store(tiny_store_config: StoreConfig) -> ObjectStore:
    return ObjectStore(tiny_store_config)


@pytest.fixture
def default_store() -> ObjectStore:
    """A store with the paper's geometry (96 KB partitions, 12-page buffer)."""
    return ObjectStore(StoreConfig())


@pytest.fixture
def tiny_config() -> OO7Config:
    return TINY
