"""Performance benchmark harness: ``python -m repro bench``.

Tracks the engine's performance trajectory with a standard suite:

* ``figure1_cell`` — one Figure 1 cell end-to-end (build the OO7 trace,
  replay it under a fixed-rate policy): the representative experiment cost.
* ``traverse_replay`` — replay of a prebuilt compiled trace only (no
  build), the pure inner-loop throughput number in events/second under
  the default batched interpreter.
* ``batch_replay`` — scalar vs batched interpreter on the same compiled
  trace: events/s per mode, speedup, opcode run-length histogram, and a
  pickle-equality assertion on the two summaries.
* ``collection_throughput`` — collector-only throughput (collections/s and
  traced objects per collection) for the remembered-set frontier vs the
  full-scan baseline, asserting both produce pickle-equal summaries.
* ``trace_compile_load`` — workload rebuild vs trace compile vs binary
  save/load, demonstrating the compiled-trace speedup.
* ``sweep_trace_cache`` — a small multi-spec sweep through the trace
  cache, reporting builds and hit rates.
* ``multi_tenant_replay`` — replay throughput (events/s) on an
  interleaved 4-tenant grammar trace, the fleet subsystem's
  representative cost.

Results land in ``BENCH_<date>.json`` (see ``--out``)::

    {
      "format": 1,
      "date": "2026-08-06",
      "scale": "standard",          # or "quick" (--quick, CI smoke)
      "python": "3.11.7",
      "results": {
        "traverse_replay": {"events_per_s": ..., "wall_s": ..., ...},
        ...
      }
    }

``--baseline BENCH_old.json --max-regression 0.30`` turns the run into a
gate: the process exits 1 when any gated throughput metric (events/s and
collections/s, see ``GATED_METRICS``) drops more than the threshold
against the baseline (CI compares against the number recorded in the
repo).

``--telemetry DIR`` additionally writes JSON-lines telemetry: one
``kind="bench"`` file per suite case (phase spans, per-collection GC
timelines for the simulating cases) plus a ``bench_suite.jsonl`` with the
headline numbers as gauges — inspect with ``python -m repro metrics DIR``.
The timed regions stay untelemetered, so the gated events/s numbers are
unaffected; the telemetered replay is one extra untimed run.

``--profile`` wraps the suite in cProfile and prints the hottest
functions; given together with ``--telemetry`` (and no explicit stats
file) the pstats dump lands in ``DIR/bench_profile.pstats``.
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

#: Schema version of the emitted JSON.
BENCH_FORMAT = 1

#: Metrics (dotted paths into ``results``) the regression gate compares.
GATED_METRICS = (
    "figure1_cell.events_per_s",
    "traverse_replay.events_per_s",
    "batch_replay.batched.events_per_s",
    "collection_throughput.remembered.collections_per_s",
    "parallel_collection.parallel.collections_per_s",
    "multi_tenant_replay.events_per_s",
    "learned_estimator.learned.events_per_s",
)


def _best_of(repeats: int, fn):
    """Run ``fn`` ``repeats`` times; return (best_seconds, last_result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def _bench_config(quick: bool):
    from repro.oo7.config import TINY
    from repro.experiments.common import DEFAULT_CONFIG

    return TINY if quick else DEFAULT_CONFIG


def _cell_spec(config, rate: float = 200.0, label: str = "bench"):
    from repro.experiments.common import SAGA_PREAMBLE, oo7_spec
    from repro.sim.spec import PolicySpec

    return oo7_spec(
        PolicySpec("fixed", {"overwrites_per_collection": rate}),
        config,
        SAGA_PREAMBLE,
        label=label,
    )


def _new_simulation(spec, seed: int, obs=None):
    from repro.sim.simulator import Simulation
    from repro.sim.spec import build_policy, build_selection

    return Simulation(
        policy=build_policy(spec.policy, seed),
        selection=build_selection(spec.selection, seed),
        config=spec.sim,
        obs=obs,
    )


def _telemetered_replay(telemetry, name: str, spec, events) -> None:
    """One extra, untimed, fully observed replay for ``--telemetry`` runs.

    Kept outside the timed regions so the gated events/s numbers never pay
    for observability.
    """
    from repro.obs.telemetry import RunTelemetry

    tel = RunTelemetry(
        Path(telemetry) / f"bench_{name}.jsonl", kind="bench", label=name, seed=0
    )
    sim = _new_simulation(spec, 0, obs=tel)
    with tel.span("replay", events=len(events)):
        sim.run(events)
    tel.close()


def bench_figure1_cell(quick: bool, repeats: int, telemetry=None) -> dict:
    """One Figure 1 cell end-to-end: trace build + policy replay.

    Build, replay and collection wall time are reported separately (the
    collector's ``collect`` calls are timed from inside the run), so a
    replay-only regression is visible even when collection cost dominates
    the end-to-end number.
    """
    from repro.sim.spec import build_workload

    spec = _cell_spec(_bench_config(quick))

    best_wall = float("inf")
    best = None
    events = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        events = list(build_workload(spec.workload, 0))
        build_s = time.perf_counter() - started
        sim = _new_simulation(spec, 0)
        collector = sim.collector
        inner = collector.collect
        gc_wall = 0.0

        def timed(pid):
            nonlocal gc_wall
            gc_started = time.perf_counter()
            result = inner(pid)
            gc_wall += time.perf_counter() - gc_started
            return result

        collector.collect = timed
        result = sim.run(events)
        wall = time.perf_counter() - started
        if wall < best_wall:
            best_wall = wall
            best = (result.summary.collections, build_s, gc_wall)
    collections, build_s, gc_wall = best
    replay_s = best_wall - build_s - gc_wall
    if telemetry is not None:
        _telemetered_replay(telemetry, "figure1_cell", spec, events)
    return {
        "wall_s": round(best_wall, 4),
        "build_s": round(build_s, 4),
        "replay_s": round(replay_s, 4),
        "gc_s": round(gc_wall, 4),
        "events": len(events),
        "collections": collections,
        "events_per_s": round(len(events) / best_wall, 1),
        "replay_events_per_s": round(len(events) / replay_s, 1)
        if replay_s > 0
        else float("inf"),
    }


def bench_traverse_replay(quick: bool, repeats: int, telemetry=None) -> dict:
    """Replay throughput over a prebuilt trace — the inner-loop number.

    The trace is built and compiled once outside the timed region, so the
    default ``replay="auto"`` drives the batched interpreter of
    :mod:`repro.sim.batch` — the configuration every experiment runner
    replays under. A sparse fixed rate keeps collection cost low so the
    per-event replay path dominates. (``batch_replay`` below reports the
    scalar interpreter on the same trace, with the speedup.)
    """
    from repro.sim.spec import build_workload
    from repro.workload.compiled import compile_trace

    spec = _cell_spec(_bench_config(quick), rate=800.0)
    events = list(build_workload(spec.workload, 0))
    trace = compile_trace(events)

    def replay():
        return _new_simulation(spec, 0).run(trace).summary.collections

    replay()  # untimed warmup: builds the per-trace batch column cache
    wall, collections = _best_of(repeats, replay)
    if telemetry is not None:
        _telemetered_replay(telemetry, "traverse_replay", spec, events)
    return {
        "wall_s": round(wall, 4),
        "events": len(events),
        "collections": collections,
        "events_per_s": round(len(events) / wall, 1),
    }


def bench_batch_replay(quick: bool, repeats: int, telemetry=None) -> dict:
    """Scalar vs batched interpreter on the same prebuilt compiled trace.

    Both modes replay the identical trace under the identical policy; the
    scalar leg drives the per-event dispatch loop, the batched leg the
    run-sliced interpreter of :mod:`repro.sim.batch`. Summaries must stay
    pickle-equal — the speedup is never bought with a behaviour change.
    The opcode run-length histogram (power-of-two buckets) shows the run
    structure the batched interpreter exploits.
    """
    import pickle
    from dataclasses import replace

    from repro.sim.spec import build_workload
    from repro.workload.compiled import compile_trace

    spec = _cell_spec(_bench_config(quick), rate=800.0)
    events = list(build_workload(spec.workload, 0))
    trace = compile_trace(events)

    ops = trace.ops
    histogram: dict[str, int] = {}
    n = len(ops)
    i = 0
    while i < n:
        op = ops[i]
        j = i + 1
        while j < n and ops[j] == op:
            j += 1
        length = j - i
        low = 1 << (length.bit_length() - 1)
        label = "1" if low == 1 else f"{low}-{2 * low - 1}"
        histogram[label] = histogram.get(label, 0) + 1
        i = j
    histogram = {
        label: histogram[label]
        for label in sorted(histogram, key=lambda k: int(k.split("-")[0]))
    }

    scalar_spec = replace(spec, sim=replace(spec.sim, replay="scalar"))
    batched_spec = replace(spec, sim=replace(spec.sim, replay="batched"))

    def scalar():
        return _new_simulation(scalar_spec, 0).run(events).summary

    def batched():
        return _new_simulation(batched_spec, 0).run(trace).summary

    batched()  # untimed warmup: builds the per-trace batch column cache
    scalar_wall, scalar_summary = _best_of(repeats, scalar)
    batched_wall, batched_summary = _best_of(repeats, batched)
    if telemetry is not None:
        _telemetered_replay(telemetry, "batch_replay", spec, events)
    return {
        "events": len(events),
        "collections": batched_summary.collections,
        "scalar": {
            "wall_s": round(scalar_wall, 4),
            "events_per_s": round(len(events) / scalar_wall, 1),
        },
        "batched": {
            "wall_s": round(batched_wall, 4),
            "events_per_s": round(len(events) / batched_wall, 1),
        },
        "speedup": round(scalar_wall / batched_wall, 2)
        if batched_wall > 0
        else float("inf"),
        "summaries_match": pickle.dumps(scalar_summary)
        == pickle.dumps(batched_summary),
        "run_length_histogram": histogram,
    }


def bench_collection_throughput(quick: bool, repeats: int, telemetry=None) -> dict:
    """Collector throughput per reachability mode — collections/second and
    traced objects per collection, separate from the events/s replay number.

    Replays the same prebuilt Figure 1 cell trace once per mode, timing
    only the ``collector.collect`` calls (everything else — event replay,
    policy bookkeeping — is identical between modes and excluded). Quick
    scale collects at a denser rate so even the tiny configuration produces
    enough collections for a stable number. Also asserts the two modes'
    summaries stay pickle-equal, so the speedup is never bought with a
    behaviour change.
    """
    import pickle
    from dataclasses import replace

    from repro.sim.spec import build_workload

    # Quick scale collects much more often: the tiny trace has few pointer
    # overwrites, and the gate needs enough collections for stable timing.
    spec = _cell_spec(_bench_config(quick), rate=10.0 if quick else 200.0)
    events = list(build_workload(spec.workload, 0))

    def run_mode(mode: str):
        mode_spec = replace(spec, sim=replace(spec.sim, reachability=mode))
        best_wall = float("inf")
        best = None
        for _ in range(max(1, repeats)):
            sim = _new_simulation(mode_spec, 0)
            collector = sim.collector
            inner = collector.collect
            gc_wall = 0.0

            def timed(pid):
                nonlocal gc_wall
                started = time.perf_counter()
                result = inner(pid)
                gc_wall += time.perf_counter() - started
                return result

            collector.collect = timed
            summary = sim.run(events).summary
            if gc_wall < best_wall:
                best_wall = gc_wall
                best = (collector, summary)
        collector, summary = best
        collections = collector.collections_performed
        traced = collector.traced_objects_total
        heap = collector.heap_objects_total
        return {
            "collections": collections,
            "gc_wall_s": round(best_wall, 4),
            "collections_per_s": round(collections / best_wall, 1)
            if best_wall > 0
            else float("inf"),
            "traced_objects_per_collection": round(traced / collections, 1)
            if collections
            else 0.0,
            "traced_vs_heap": round(traced / heap, 4) if heap else 0.0,
        }, summary

    remembered, remembered_summary = run_mode("remembered")
    full, full_summary = run_mode("full")
    if telemetry is not None:
        _telemetered_replay(telemetry, "collection_throughput", spec, events)
    return {
        "events": len(events),
        "remembered": remembered,
        "full": full,
        "speedup_vs_full": round(
            remembered["collections_per_s"] / full["collections_per_s"], 2
        )
        if full["collections_per_s"]
        else float("inf"),
        "summaries_match": pickle.dumps(remembered_summary)
        == pickle.dumps(full_summary),
    }


def bench_trace_compile_load(quick: bool, repeats: int, telemetry=None) -> dict:
    """Workload rebuild vs compile vs binary save/load."""
    from repro.sim.spec import build_workload
    from repro.workload.compiled import CompiledTrace, compile_trace

    spec = _cell_spec(_bench_config(quick))

    rebuild_s, events = _best_of(
        repeats, lambda: list(build_workload(spec.workload, 0))
    )
    compile_s, trace = _best_of(repeats, lambda: compile_trace(events))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench.trace"
        save_s, _ = _best_of(repeats, lambda: trace.save(path))
        load_s, loaded = _best_of(repeats, lambda: CompiledTrace.load(path))
        file_bytes = path.stat().st_size
    assert len(loaded) == len(events)
    if telemetry is not None:
        from repro.obs.telemetry import RunTelemetry

        tel = RunTelemetry(
            Path(telemetry) / "bench_trace_compile_load.jsonl",
            kind="bench",
            label="trace_compile_load",
        )
        tel.tracer.record("rebuild", rebuild_s, events=len(events))
        tel.tracer.record("compile", compile_s)
        tel.tracer.record("save", save_s)
        tel.tracer.record("load", load_s, file_bytes=file_bytes)
        tel.close()
    return {
        "events": len(events),
        "rebuild_s": round(rebuild_s, 4),
        "compile_s": round(compile_s, 4),
        "save_s": round(save_s, 4),
        "load_s": round(load_s, 4),
        "file_bytes": file_bytes,
        "load_speedup_vs_rebuild": round(rebuild_s / load_s, 1)
        if load_s > 0
        else float("inf"),
    }


def bench_sweep_trace_cache(quick: bool, repeats: int, telemetry=None) -> dict:
    """A small sweep through the trace cache: builds once, hits the rest."""
    from repro.sim.engine import run_experiment_batch
    from repro.workload.trace_cache import TraceCache

    config = _bench_config(quick)
    specs = [_cell_spec(config, rate=r, label=f"bench@{r:g}") for r in (100, 200, 400)]
    seeds = [0] if quick else [0, 1]

    with tempfile.TemporaryDirectory() as tmp:
        cache = TraceCache(tmp)

        def sweep():
            run_experiment_batch(specs, seeds=seeds, jobs=1, trace_cache=cache)
            return cache.stats

        wall, stats = _best_of(repeats, sweep)
        if telemetry is not None:
            # One extra, untimed sweep with engine telemetry on: exercises
            # the engine-level file plus one per-run file per cell.
            run_experiment_batch(
                specs, seeds=seeds, jobs=1, trace_cache=cache, telemetry=telemetry
            )
    return {
        "wall_s": round(wall, 4),
        "runs": len(specs) * len(seeds),
        "trace_builds": stats.builds,
        "trace_resolutions": stats.resolutions,
        "trace_hit_rate": round(stats.hit_rate, 4),
    }


def bench_multi_tenant_replay(quick: bool, repeats: int, telemetry=None) -> dict:
    """Replay throughput on an interleaved 4-tenant grammar trace.

    The fleet subsystem's representative cost: four bundled tenant
    profiles (OLTP churn, bulk load, read-mostly browse, hot-key skew)
    interleaved by :class:`~repro.workload.tenants.TenantMix` into one
    trace, generated once outside the timed region and replayed under a
    fixed-rate policy on the fleet store geometry.
    """
    from repro.fleet import _default_sim_config
    from repro.sim.simulator import Simulation
    from repro.sim.spec import PolicySpec, build_policy
    from repro.workload.tenants import TenantMix, tenant_mix

    scenario = tenant_mix(
        ["oltp-churn", "bulk-load", "read-browse", "hot-key-skew"],
        scale=0.5 if quick else 2.0,
    )
    events = list(TenantMix(scenario, seed=0).events())
    sim_config = _default_sim_config()
    policy_spec = PolicySpec("fixed", {"overwrites_per_collection": 40.0})

    def replay():
        sim = Simulation(policy=build_policy(policy_spec, 0), config=sim_config)
        return sim.run(events).summary.collections

    wall, collections = _best_of(repeats, replay)
    if telemetry is not None:
        from repro.obs.telemetry import RunTelemetry

        tel = RunTelemetry(
            Path(telemetry) / "bench_multi_tenant_replay.jsonl",
            kind="bench",
            label="multi_tenant_replay",
            seed=0,
        )
        sim = Simulation(
            policy=build_policy(policy_spec, 0), config=sim_config, obs=tel
        )
        with tel.span("replay", events=len(events), tenants=len(scenario.tenants)):
            sim.run(events)
        tel.close()
    return {
        "wall_s": round(wall, 4),
        "events": len(events),
        "tenants": len(scenario.tenants),
        "collections": collections,
        "events_per_s": round(len(events) / wall, 1),
    }


def bench_learned_estimator(quick: bool, repeats: int, telemetry=None) -> dict:
    """Learned-estimator serving overhead vs the hand-designed FGS/HB.

    Replays one interleaved tenant-mix trace under SAGA twice — once per
    estimator — timing the whole replay: the estimator's per-collection
    ``observe``/``estimate`` cost is the only difference between the legs.
    The model is fitted in-bench from an untimed, telemetered oracle
    teacher run (the full train pipeline), so the bench also tracks
    training wall time, reported untimed-and-ungated alongside.
    """
    from repro.fleet import _default_sim_config
    from repro.gc.learned import train_model
    from repro.obs.features import load_training_rows
    from repro.obs.telemetry import RunTelemetry
    from repro.sim.simulator import Simulation
    from repro.sim.spec import PolicySpec, build_policy
    from repro.workload.tenants import TenantMix, tenant_mix

    scenario = tenant_mix(
        ["oltp-churn", "read-browse"], scale=1.0 if quick else 3.0
    )
    events = list(TenantMix(scenario, seed=0).events())
    sim_config = _default_sim_config()

    def saga_policy(estimator: str) -> PolicySpec:
        return PolicySpec(
            "saga", {"garbage_fraction": 0.15, "estimator": estimator}
        )

    with tempfile.TemporaryDirectory() as tmp:
        # Untimed teacher run + training: oracle-labelled telemetry in,
        # content-hashed model artifact out.
        teacher_path = Path(tmp) / "teacher.jsonl"
        tel = RunTelemetry(teacher_path, kind="bench", label="teacher", seed=0)
        Simulation(
            policy=build_policy(saga_policy("oracle"), 0),
            config=sim_config,
            obs=tel,
        ).run(events)
        tel.close()
        train_started = time.perf_counter()
        matrix = load_training_rows([teacher_path])
        model, _report = train_model(matrix.rows, files=len(matrix.files))
        train_s = time.perf_counter() - train_started
        model_path = Path(tmp) / "model.json"
        model.save(model_path)
        learned_spec = f"learned:{model_path}@{model.sha256[:12]}"

        def replay(estimator: str):
            sim = Simulation(
                policy=build_policy(saga_policy(estimator), 0),
                config=sim_config,
            )
            return sim.run(events).summary.collections

        fgs_wall, fgs_collections = _best_of(
            repeats, lambda: replay("fgs-hb")
        )
        learned_wall, learned_collections = _best_of(
            repeats, lambda: replay(learned_spec)
        )
        if telemetry is not None:
            tel = RunTelemetry(
                Path(telemetry) / "bench_learned_estimator.jsonl",
                kind="bench",
                label="learned_estimator",
                seed=0,
            )
            sim = Simulation(
                policy=build_policy(saga_policy(learned_spec), 0),
                config=sim_config,
                obs=tel,
            )
            with tel.span("replay", events=len(events)):
                sim.run(events)
            tel.close()

    return {
        "events": len(events),
        "train_rows": model.trained_rows,
        "train_s": round(train_s, 4),
        "fgs_hb": {
            "wall_s": round(fgs_wall, 4),
            "collections": fgs_collections,
            "events_per_s": round(len(events) / fgs_wall, 1),
        },
        "learned": {
            "wall_s": round(learned_wall, 4),
            "collections": learned_collections,
            "events_per_s": round(len(events) / learned_wall, 1),
        },
        "overhead_vs_fgs_hb": round(learned_wall / fgs_wall, 3)
        if fgs_wall > 0
        else float("inf"),
    }


def bench_parallel_collection(quick: bool, repeats: int, telemetry=None) -> dict:
    """Collection pause under the parallel scheduler vs the serial collector.

    Replays one access-heavy, garbage-sparse synthetic cell — large live
    partitions (the survivor trace and relocation dominate each pause) with
    a short overwrite interval (little garbage accumulates per collection)
    — once per collection mode, timing only the stop-the-world window:
    ``collector.collect`` for serial, ``scheduler.collect`` for parallel.
    Everything the parallel scheduler hoists into the margin window
    (frontier snapshot, Cheney trace, compaction layout planning) leaves
    the pause; reclamation bookkeeping stays, by design. Asserts the two
    modes' summaries are pickle-equal, so the speedup is never bought with
    a behaviour change.
    """
    import pickle

    from repro.core.fixed import FixedRatePolicy
    from repro.gc.selection import RoundRobinSelection
    from repro.sim.simulator import Simulation, SimulationConfig
    from repro.storage.heap import StoreConfig
    from repro.workload.synthetic import SyntheticPhase, SyntheticWorkload

    workers = 4
    store = StoreConfig(page_size=2048, partition_pages=64, buffer_pages=8)
    phases = [
        SyntheticPhase(
            name="hot-read",
            operations=12_000 if quick else 30_000,
            create_weight=0.1,
            delete_weight=0.3,
            access_weight=6.0,
            cluster_size=4,
            object_size=128,
        )
    ]
    events = list(
        SyntheticWorkload(phases, seed=7, initial_clusters=4800).events()
    )

    def make_sim(collection: str, gc_workers: int, obs=None) -> Simulation:
        return Simulation(
            policy=FixedRatePolicy(20.0),
            selection=RoundRobinSelection(),
            config=SimulationConfig(
                store=store, collection=collection, gc_workers=gc_workers
            ),
            obs=obs,
        )

    def run_mode(collection: str, gc_workers: int):
        best_wall = float("inf")
        best = None
        for _ in range(max(1, repeats)):
            sim = make_sim(collection, gc_workers)
            target = sim._par if sim._par is not None else sim.collector
            inner = target.collect
            gc_wall = 0.0

            def timed(pid):
                nonlocal gc_wall
                started = time.perf_counter()
                result = inner(pid)
                gc_wall += time.perf_counter() - started
                return result

            target.collect = timed
            summary = sim.run(events).summary
            if gc_wall < best_wall:
                best_wall = gc_wall
                best = (sim, summary)
        sim, summary = best
        payload = {
            "collections": sim.collector.collections_performed,
            "gc_wall_s": round(best_wall, 4),
            "collections_per_s": round(
                sim.collector.collections_performed / best_wall, 1
            )
            if best_wall > 0
            else float("inf"),
        }
        if sim._par is not None:
            payload.update(sim._par.stats())
        return payload, summary

    serial, serial_summary = run_mode("serial", 1)
    parallel, parallel_summary = run_mode("parallel", workers)
    if telemetry is not None:
        from repro.obs.telemetry import RunTelemetry

        tel = RunTelemetry(
            Path(telemetry) / "bench_parallel_collection.jsonl",
            kind="bench",
            label="parallel_collection",
            seed=7,
        )
        sim = make_sim("parallel", workers, obs=tel)
        with tel.span("replay", events=len(events)):
            sim.run(events)
        tel.close()
    return {
        "events": len(events),
        "gc_workers": workers,
        "serial": serial,
        "parallel": parallel,
        "pause_speedup": round(
            parallel["collections_per_s"] / serial["collections_per_s"], 2
        )
        if serial["collections_per_s"]
        else float("inf"),
        "summaries_match": pickle.dumps(serial_summary)
        == pickle.dumps(parallel_summary),
    }


#: The standard suite, in execution order.
SUITE = (
    ("figure1_cell", bench_figure1_cell),
    ("traverse_replay", bench_traverse_replay),
    ("batch_replay", bench_batch_replay),
    ("collection_throughput", bench_collection_throughput),
    ("parallel_collection", bench_parallel_collection),
    ("trace_compile_load", bench_trace_compile_load),
    ("sweep_trace_cache", bench_sweep_trace_cache),
    ("multi_tenant_replay", bench_multi_tenant_replay),
    ("learned_estimator", bench_learned_estimator),
)


def run_suite(quick: bool = False, repeats: int = 2, telemetry=None) -> dict:
    """Run every benchmark; return the BENCH_*.json document.

    ``telemetry`` names a directory: each suite case then writes a
    ``kind="bench"`` JSON-lines file, and a ``bench_suite.jsonl`` carries
    one span per case plus the headline numbers as gauges.
    """
    suite_tel = None
    if telemetry is not None:
        from repro.obs.telemetry import RunTelemetry

        suite_tel = RunTelemetry(
            Path(telemetry) / "bench_suite.jsonl",
            kind="bench",
            label="suite",
            scale="quick" if quick else "standard",
            repeats=repeats,
        )
    results = {}
    for name, fn in SUITE:
        print(f"[bench] {name} ...", file=sys.stderr)
        if suite_tel is not None:
            with suite_tel.span(name):
                results[name] = fn(quick, repeats, telemetry)
        else:
            results[name] = fn(quick, repeats)
    if suite_tel is not None:
        for name, payload in results.items():
            for key, value in payload.items():
                if isinstance(value, dict):
                    # Per-mode sub-results (collection_throughput).
                    for sub_key, sub_value in value.items():
                        if isinstance(sub_value, (int, float)) and sub_value != float("inf"):
                            suite_tel.metrics.gauge(
                                f"bench.{name}.{key}.{sub_key}"
                            ).set(sub_value)
                elif isinstance(value, (int, float)) and value != float("inf"):
                    suite_tel.metrics.gauge(f"bench.{name}.{key}").set(value)
        suite_tel.close()
    return {
        "format": BENCH_FORMAT,
        "date": datetime.date.today().isoformat(),
        "scale": "quick" if quick else "standard",
        "python": sys.version.split()[0],
        "results": results,
    }


def _metric(doc: dict, dotted: str) -> Optional[float]:
    node = doc.get("results", {})
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def check_regression(
    current: dict, baseline: dict, max_regression: float
) -> list[str]:
    """Gated-metric comparison; returns one message per violation.

    Scales must match — a quick run is never compared against a standard
    baseline (different workload sizes).
    """
    if current.get("scale") != baseline.get("scale"):
        return [
            f"baseline scale {baseline.get('scale')!r} does not match "
            f"current scale {current.get('scale')!r}; not comparable"
        ]
    problems = []
    for dotted in GATED_METRICS:
        new = _metric(current, dotted)
        old = _metric(baseline, dotted)
        if new is None or old is None or old <= 0:
            continue
        floor = old * (1.0 - max_regression)
        if new < floor:
            problems.append(
                f"{dotted}: {new:,.0f} is "
                f"{(1 - new / old) * 100:.1f}% below baseline {old:,.0f} "
                f"(allowed {max_regression * 100:.0f}%)"
            )
    return problems


def _format_report(doc: dict) -> str:
    lines = [f"benchmark suite ({doc['scale']}, python {doc['python']}, {doc['date']})"]
    r = doc["results"]
    cell = r["figure1_cell"]
    lines.append(
        f"  figure1_cell:       {cell['wall_s']:.3f}s "
        f"({cell['events_per_s']:,.0f} events/s incl. build; "
        f"build {cell['build_s']:.3f}s, replay {cell['replay_s']:.3f}s, "
        f"gc {cell['gc_s']:.3f}s)"
    )
    rep = r["traverse_replay"]
    lines.append(
        f"  traverse_replay:    {rep['wall_s']:.3f}s "
        f"({rep['events_per_s']:,.0f} events/s, {rep['collections']} collections)"
    )
    br = r["batch_replay"]
    lines.append(
        f"  batch_replay:       batched "
        f"{br['batched']['events_per_s']:,.0f} events/s vs scalar "
        f"{br['scalar']['events_per_s']:,.0f} events/s "
        f"({br['speedup']:g}x, summaries match: {br['summaries_match']})"
    )
    ct = r["collection_throughput"]
    lines.append(
        f"  collection_throughput: remembered "
        f"{ct['remembered']['collections_per_s']:,.0f} coll/s vs full "
        f"{ct['full']['collections_per_s']:,.0f} coll/s "
        f"({ct['speedup_vs_full']:g}x, "
        f"{ct['remembered']['traced_objects_per_collection']:,.0f} traced "
        f"objs/collection, summaries match: {ct['summaries_match']})"
    )
    pc = r["parallel_collection"]
    lines.append(
        f"  parallel_collection: parallel "
        f"{pc['parallel']['collections_per_s']:,.0f} coll/s vs serial "
        f"{pc['serial']['collections_per_s']:,.0f} coll/s "
        f"({pc['pause_speedup']:g}x pause speedup at "
        f"{pc['gc_workers']} workers, "
        f"{pc['parallel']['speculation_hits']}/"
        f"{pc['parallel']['collections']} speculation hits, "
        f"summaries match: {pc['summaries_match']})"
    )
    tcl = r["trace_compile_load"]
    lines.append(
        f"  trace_compile_load: rebuild {tcl['rebuild_s']:.3f}s, "
        f"compile {tcl['compile_s']:.3f}s, load {tcl['load_s']:.4f}s "
        f"({tcl['load_speedup_vs_rebuild']:g}x faster than rebuild, "
        f"{tcl['file_bytes']:,} bytes)"
    )
    swp = r["sweep_trace_cache"]
    lines.append(
        f"  sweep_trace_cache:  {swp['wall_s']:.3f}s for {swp['runs']} runs, "
        f"{swp['trace_builds']} trace builds, "
        f"hit rate {swp['trace_hit_rate'] * 100:.0f}%"
    )
    mtr = r["multi_tenant_replay"]
    lines.append(
        f"  multi_tenant_replay: {mtr['wall_s']:.3f}s "
        f"({mtr['events_per_s']:,.0f} events/s, {mtr['tenants']} tenants, "
        f"{mtr['collections']} collections)"
    )
    le = r["learned_estimator"]
    lines.append(
        f"  learned_estimator:  learned "
        f"{le['learned']['events_per_s']:,.0f} events/s vs fgs-hb "
        f"{le['fgs_hb']['events_per_s']:,.0f} events/s "
        f"({le['overhead_vs_fgs_hb']:g}x wall; trained on "
        f"{le['train_rows']} rows in {le['train_s']:.3f}s)"
    )
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments bench",
        description="Run the standard performance suite and write BENCH_<date>.json.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny OO7 configuration — seconds, not minutes (CI smoke)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per benchmark, best-of (default: 2, quick: 1)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: results/BENCH_<date>.json)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="BENCH.JSON",
        help="compare events/s against this earlier BENCH_*.json",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        metavar="FRACTION",
        help="allowed events/s drop vs baseline before exiting 1 (default 0.30)",
    )
    parser.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "write JSON-lines telemetry per suite case into DIR (untimed "
            "extra runs; the gated numbers are unaffected); inspect with "
            "'python -m repro metrics DIR'"
        ),
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="",
        default=None,
        metavar="STATS_FILE",
        help=(
            "profile the suite with cProfile; dump pstats to STATS_FILE, or "
            "to DIR/bench_profile.pstats when --telemetry DIR is also given"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 2)

    if args.profile is not None:
        from repro.cli import _profiled

        stats_file = args.profile
        if not stats_file and args.telemetry is not None:
            args.telemetry.mkdir(parents=True, exist_ok=True)
            stats_file = str(args.telemetry / "bench_profile.pstats")
        doc = _profiled(
            lambda: run_suite(
                quick=args.quick, repeats=repeats, telemetry=args.telemetry
            ),
            stats_file,
        )
    else:
        doc = run_suite(quick=args.quick, repeats=repeats, telemetry=args.telemetry)

    out = args.out
    if out is None:
        out = Path("results") / f"BENCH_{doc['date']}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    print(_format_report(doc))
    print(f"[written to {out}]", file=sys.stderr)
    if args.telemetry is not None:
        print(
            f"[telemetry in {args.telemetry}; inspect with "
            f"'python -m repro metrics {args.telemetry}']",
            file=sys.stderr,
        )

    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        problems = check_regression(doc, baseline, args.max_regression)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(
            f"[no regression vs {args.baseline} at "
            f"{args.max_regression * 100:.0f}% threshold]",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    raise SystemExit(main())
