"""``python -m repro train``: fit the learned garbage estimator offline.

Reads one or more RunTelemetry JSON-lines files (or directories of them),
replays their GC timelines into training rows
(:mod:`repro.obs.features`), fits the linear garbage-fraction model with
deterministic seeded SGD (:func:`repro.gc.learned.train_model`) and
writes a versioned, content-hashed model artifact.

The printed ``spec`` line is ready to paste anywhere an estimator name is
accepted — ``--estimator``/policy specs on the fleet and tournament CLIs,
or ``SagaPolicy`` via ``make_estimator``::

    python -m repro fleet --telemetry tel/ ...   # generate training data
    python -m repro train tel/ --out models/learned.json
    python -m repro fleet --policies saga:0.15:learned:models/learned.json ...

Training is bit-reproducible: the same telemetry, seed and
hyperparameters always produce a byte-identical artifact (CI retrains
twice and compares with ``cmp``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.gc.learned import DEFAULT_FEATURE_HISTORY, train_model
from repro.obs.features import load_training_rows
from repro.obs.telemetry import TelemetryError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-train",
        description=(
            "Fit the learned garbage estimator from telemetry GC timelines "
            "and write a content-hashed model artifact."
        ),
    )
    parser.add_argument(
        "telemetry",
        type=Path,
        nargs="+",
        metavar="PATH",
        help="telemetry .jsonl files and/or directories of them",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("learned_model.json"),
        metavar="MODEL.JSON",
        help="where to write the model artifact (default: %(default)s)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="SGD seed: weight init and epoch shuffling (default: %(default)s)",
    )
    parser.add_argument(
        "--lr",
        type=float,
        default=0.05,
        help="initial SGD learning rate (default: %(default)s)",
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=200,
        help="SGD epochs over the training rows (default: %(default)s)",
    )
    parser.add_argument(
        "--l2",
        type=float,
        default=1e-4,
        help="L2 weight penalty (default: %(default)s)",
    )
    parser.add_argument(
        "--history",
        type=float,
        default=DEFAULT_FEATURE_HISTORY,
        help=(
            "EMA history factor for the smoothed features; stored in the "
            "artifact so serving replays it (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable JSON summary instead of text",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else sys.argv[1:])
    try:
        matrix = load_training_rows(args.telemetry, history=args.history)
    except TelemetryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not matrix.rows:
        print(
            "error: no labelled collection records found — was the "
            "telemetry recorded from live runs (cache hits emit none)?",
            file=sys.stderr,
        )
        return 2

    model, report = train_model(
        matrix.rows,
        seed=args.seed,
        learning_rate=args.lr,
        epochs=args.epochs,
        l2=args.l2,
        feature_history=args.history,
        files=len(matrix.files),
    )
    path = model.save(args.out)
    spec = f"learned:{path}@{model.sha256[:12]}"

    if args.json:
        summary = {
            "rows": report.rows,
            "files": report.files,
            "skipped": len(matrix.skipped),
            "epochs": report.epochs,
            "mae": report.mae,
            "baseline_mae": report.baseline_mae,
            "mean_target": report.mean_target,
            "sha256": model.sha256,
            "path": str(path),
            "spec": spec,
        }
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0

    skipped_note = ""
    if matrix.skipped:
        skipped_note = f" ({len(matrix.skipped)} file(s) had no GC timeline)"
    print(
        f"trained on {report.rows} collections from {report.files} "
        f"telemetry file(s){skipped_note}"
    )
    print(
        f"train MAE {report.mae:.4f} garbage-fraction "
        f"(predict-the-mean baseline {report.baseline_mae:.4f}, "
        f"mean target {report.mean_target:.4f})"
    )
    print(f"model sha256 {model.sha256}")
    print(f"written to {path}")
    print(f"spec {spec}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    raise SystemExit(main())
