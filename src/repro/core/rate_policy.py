"""Collection-rate policy protocol.

A *collection-rate policy* decides how long to wait until the next garbage
collection. Policies measure "how long" against one of two clocks:

* ``OVERWRITES`` — the global pointer-overwrite counter. The paper uses
  pointer overwrites as the garbage-creation signal (§2), so fixed-rate
  policies and SAGA schedule in overwrites.
* ``APP_IO`` — application I/O operations. SAIO (§2.2) controls an I/O
  percentage, so it naturally uses I/O counts "as a unit of time".
* ``ALLOCATED`` — bytes allocated. Programming-language collectors (and the
  [YNY94] baseline the paper contrasts with) trigger "after a fixed amount
  of storage is allocated"; §2 argues this clock correlates poorly with
  garbage creation in object databases.

The simulator polls the active trigger after every application event and
invokes the collector when the deadline passes; after each collection it asks
the policy for the next interval.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

from repro.gc.collector import CollectionResult
from repro.storage.heap import ObjectStore
from repro.storage.iostats import IOStats


class TimeBase(enum.Enum):
    """Which clock a policy schedules collections against."""

    OVERWRITES = "overwrites"
    APP_IO = "app_io"
    ALLOCATED = "allocated"


@dataclass(frozen=True)
class Trigger:
    """A scheduled collection: fire after ``interval`` units of ``base``."""

    base: TimeBase
    interval: float

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"trigger interval must be positive, got {self.interval}")


@dataclass
class PolicyContext:
    """Everything a policy may consult when computing the next interval.

    Policies must restrict themselves to information a real ODBMS could
    gather cheaply (I/O counters, partition metadata, collection outcomes);
    only explicitly-labelled oracle components read exact garbage state.
    """

    result: CollectionResult
    store: ObjectStore
    iostats: IOStats


class RatePolicy(abc.ABC):
    """Decides when the next garbage collection should run."""

    #: Human-readable policy name for reports.
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def time_base(self) -> TimeBase:
        """The clock this policy schedules against."""

    @abc.abstractmethod
    def first_trigger(self, store: ObjectStore, iostats: IOStats) -> Trigger:
        """Trigger for the very first collection (cold start, no feedback yet)."""

    @abc.abstractmethod
    def next_trigger(self, ctx: PolicyContext) -> Trigger:
        """Trigger for the next collection, given the one that just finished."""

    def describe(self) -> str:
        """One-line description for report headers."""
        return self.name
