"""Fixed collection-rate policies (§2.1) — the baselines the paper rejects.

A fixed-rate policy collects every ``N`` pointer overwrites regardless of
application behaviour. The paper shows (Figure 1) that every choice of ``N``
is wrong for some application or phase; these policies exist here as the
baselines for Figure 1 and the §2.1 ablation.
"""

from __future__ import annotations

from repro.core.rate_policy import PolicyContext, RatePolicy, TimeBase, Trigger
from repro.storage.heap import ObjectStore
from repro.storage.iostats import IOStats


class FixedRatePolicy(RatePolicy):
    """Collect every ``overwrites_per_collection`` pointer overwrites."""

    name = "fixed"

    def __init__(self, overwrites_per_collection: float) -> None:
        if overwrites_per_collection <= 0:
            raise ValueError(
                f"overwrites_per_collection must be positive, got {overwrites_per_collection}"
            )
        self.overwrites_per_collection = overwrites_per_collection

    @property
    def time_base(self) -> TimeBase:
        return TimeBase.OVERWRITES

    def first_trigger(self, store: ObjectStore, iostats: IOStats) -> Trigger:
        return Trigger(TimeBase.OVERWRITES, self.overwrites_per_collection)

    def next_trigger(self, ctx: PolicyContext) -> Trigger:
        return Trigger(TimeBase.OVERWRITES, self.overwrites_per_collection)

    def describe(self) -> str:
        return f"fixed({self.overwrites_per_collection:g} overwrites/collection)"


class AllocationRatePolicy(RatePolicy):
    """[YNY94]-style baseline: collect every ``bytes_per_collection`` bytes
    of new allocation.

    This is the trigger "drawn from the realm of programming languages" that
    the paper's §2 argues against: object allocation and garbage creation
    are often uncorrelated in an ODBMS — the OO7 application, for example,
    generates its whole database (heavy allocation, zero garbage) before the
    reorganisations create garbage at a completely different tempo.
    """

    name = "allocation-rate"

    def __init__(self, bytes_per_collection: float) -> None:
        if bytes_per_collection <= 0:
            raise ValueError(
                f"bytes_per_collection must be positive, got {bytes_per_collection}"
            )
        self.bytes_per_collection = bytes_per_collection

    @property
    def time_base(self) -> TimeBase:
        return TimeBase.ALLOCATED

    def first_trigger(self, store: ObjectStore, iostats: IOStats) -> Trigger:
        return Trigger(TimeBase.ALLOCATED, self.bytes_per_collection)

    def next_trigger(self, ctx: PolicyContext) -> Trigger:
        return Trigger(TimeBase.ALLOCATED, self.bytes_per_collection)

    def describe(self) -> str:
        return f"allocation-rate({self.bytes_per_collection:g} bytes/collection)"


class PartitionHeuristicPolicy(FixedRatePolicy):
    """The §2.1 "clever" fixed-rate heuristic that fails miserably.

    From assumed application characteristics — average in-degree
    (``connectivity`` pointers to each object) and average object size — it
    infers that every ``connectivity`` overwrites free ``object_size`` bytes,
    and schedules a collection whenever one partition's worth of garbage
    should have accumulated::

        rate = partition_size · connectivity / object_size

    With the paper's numbers (96 KB partitions, connectivity 4, 133-byte
    objects) this gives 2956 overwrites per collection — about five times too
    sparse, because single overwrites can detach large connected structures.
    """

    name = "partition-heuristic"

    def __init__(
        self,
        partition_size: int,
        avg_connectivity: float = 4.0,
        avg_object_size: float = 133.0,
    ) -> None:
        if partition_size <= 0:
            raise ValueError(f"partition_size must be positive, got {partition_size}")
        if avg_connectivity <= 0 or avg_object_size <= 0:
            raise ValueError("connectivity and object size must be positive")
        self.partition_size = partition_size
        self.avg_connectivity = avg_connectivity
        self.avg_object_size = avg_object_size
        rate = partition_size * avg_connectivity / avg_object_size
        super().__init__(overwrites_per_collection=rate)

    def describe(self) -> str:
        return (
            f"partition-heuristic({self.overwrites_per_collection:.0f} overwrites/collection "
            f"from {self.partition_size}B partitions, conn {self.avg_connectivity:g}, "
            f"{self.avg_object_size:g}B objects)"
        )
