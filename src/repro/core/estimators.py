"""Garbage estimators for the SAGA policy (§2.4).

SAGA needs ``ActGarb(t)`` — the bytes of uncollected garbage in the database —
which cannot be known exactly without scanning everything. The paper derives
estimation heuristics from a 2×2 design space:

* **State** — how the database's *potential* garbage is described:
  coarse grain (CGS: just the number of allocated partitions) or fine grain
  (FGS: the pointer-overwrite counter of each partition).
* **Behaviour** — how collector outcomes are summarised: current behaviour
  (CB: the last collection only) or history behaviour (HB: an exponential
  mean over recent collections).

The paper evaluates CGS/CB and FGS/HB against a perfect oracle; this module
implements those plus the remaining corners (FGS/CB as FGS/HB with ``h = 0``,
and CGS/HB) for completeness, and the decaying-oracle blend the authors use
to shorten simulation preambles (§3.2).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable

from repro.core.control import ExponentialMean

if TYPE_CHECKING:  # pragma: no cover - annotations only; avoids a cycle
    # repro.gc re-exports the learned estimator, which subclasses
    # GarbageEstimator — a runtime import of repro.gc here would be
    # circular whenever repro.core loads first.
    from repro.gc.collector import CollectionResult
    from repro.storage.heap import ObjectStore


class GarbageEstimator(abc.ABC):
    """Estimates the current amount of garbage (bytes) in the database."""

    #: Human-readable estimator name for reports.
    name: str = "abstract"

    @abc.abstractmethod
    def observe_collection(self, result: CollectionResult, store: ObjectStore) -> None:
        """Fold the outcome of a collection into the estimator's state."""

    @abc.abstractmethod
    def estimate(self, store: ObjectStore) -> float:
        """Current ``ActGarb`` estimate in bytes (never negative)."""

    def describe(self) -> str:
        return self.name


class OracleEstimator(GarbageEstimator):
    """Perfect estimator: reads the store's exact garbage accounting.

    Impractical to implement in a real ODBMS (§2.4) — determining the true
    garbage requires a full database scan — but invaluable for separating
    policy error from estimation error (Figure 5).
    """

    name = "oracle"

    def observe_collection(self, result: CollectionResult, store: ObjectStore) -> None:
        pass  # The oracle needs no state; it reads the truth on demand.

    def estimate(self, store: ObjectStore) -> float:
        return float(store.actual_garbage_bytes)


class CgsCbEstimator(GarbageEstimator):
    """Coarse Grain State / Current Behaviour (§2.4.1): ``ActGarb = C · p``.

    ``C`` is the bytes reclaimed by the last collection and ``p`` the number
    of allocated partitions. Assumes the last victim partition is
    representative of all partitions — an assumption UPDATEDPOINTER selection
    deliberately violates (it hunts above-average garbage), which is why the
    paper finds this estimator erratic and biased high.
    """

    name = "cgs-cb"

    def __init__(self) -> None:
        self._last_reclaimed = 0.0

    def observe_collection(self, result: CollectionResult, store: ObjectStore) -> None:
        self._last_reclaimed = float(result.reclaimed_bytes)

    def estimate(self, store: ObjectStore) -> float:
        return self._last_reclaimed * store.partition_count


class CgsHbEstimator(GarbageEstimator):
    """Coarse Grain State / History Behaviour: ``ActGarb = mean(C) · p``.

    The unexplored CGS corner with behaviour smoothing: the per-collection
    yield ``C`` is replaced by an exponential mean. Smoothing removes the
    collection-to-collection noise of CGS/CB but not its representativeness
    bias.
    """

    name = "cgs-hb"

    def __init__(self, history: float = 0.8) -> None:
        self._mean_yield = ExponentialMean(history)

    @property
    def history(self) -> float:
        return self._mean_yield.history

    def observe_collection(self, result: CollectionResult, store: ObjectStore) -> None:
        self._mean_yield.update(float(result.reclaimed_bytes))

    def estimate(self, store: ObjectStore) -> float:
        if not self._mean_yield.initialized:
            return 0.0
        return self._mean_yield.value * store.partition_count


class FgsHbEstimator(GarbageEstimator):
    """Fine Grain State / History Behaviour (§2.4.2).

    Maintains ``GPPO_h`` — an exponential mean (history factor ``h``) of the
    garbage-per-pointer-overwrite observed at each collection — and estimates

        ``ActGarb = GPPO_h · Σ_p PO(p)``

    where ``PO(p)`` is each partition's pointer-overwrite counter (reset to
    zero whenever the partition is collected). With ``h = 0`` this degenerates
    to FGS/CB (§2.4.2: "by varying h from 1.0 to 0.0, the heuristic changes
    from FGS/HB to FGS/CB").

    Collections whose victim saw no overwrites contribute no GPPO sample:
    the behaviour metric is *bytes reclaimed per overwrite* and is undefined
    without overwrites.
    """

    name = "fgs-hb"

    def __init__(self, history: float = 0.8) -> None:
        self._gppo = ExponentialMean(history)

    @property
    def history(self) -> float:
        return self._gppo.history

    @property
    def gppo(self) -> float:
        """Current smoothed garbage-per-pointer-overwrite (0 before samples)."""
        return self._gppo.value or 0.0

    def observe_collection(self, result: CollectionResult, store: ObjectStore) -> None:
        if result.pointer_overwrites_at_selection > 0:
            self._gppo.update(result.yield_per_overwrite)

    def estimate(self, store: ObjectStore) -> float:
        if not self._gppo.initialized:
            return 0.0
        pending_overwrites = sum(p.pointer_overwrites for p in store.partitions)
        return self.gppo * pending_overwrites


class FgsCbEstimator(FgsHbEstimator):
    """Fine Grain State / Current Behaviour: FGS/HB with ``h = 0``."""

    name = "fgs-cb"

    def __init__(self) -> None:
        super().__init__(history=0.0)


class DecayingOracleBlend(GarbageEstimator):
    """Blend a practical estimator with the oracle during cold start (§3.2).

    For the ``k``-th collection the estimate is
    ``w·oracle + (1-w)·inner`` with ``w = decay^k``. The paper uses
    "exponentially decreasing knowledge from an oracle" to keep simulation
    preambles short; after a few tens of collections the oracle weight is
    negligible and the practical estimator stands alone.
    """

    name = "oracle-blend"

    def __init__(self, inner: GarbageEstimator, decay: float = 0.75) -> None:
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        self.inner = inner
        self.decay = decay
        self._oracle = OracleEstimator()
        self._weight = 1.0

    @property
    def oracle_weight(self) -> float:
        """Current weight given to the oracle's exact value."""
        return self._weight

    def observe_collection(self, result: CollectionResult, store: ObjectStore) -> None:
        self.inner.observe_collection(result, store)
        self._weight *= self.decay

    def estimate(self, store: ObjectStore) -> float:
        exact = self._oracle.estimate(store)
        guess = self.inner.estimate(store)
        return self._weight * exact + (1.0 - self._weight) * guess

    def describe(self) -> str:
        return f"{self.inner.describe()}+oracle-blend({self.decay})"


# ----------------------------------------------------------------------
# Estimator registry
# ----------------------------------------------------------------------

#: A factory receives the ``history`` smoothing factor (HB variants use it,
#: the rest ignore it) and returns a fresh estimator.
EstimatorFactory = Callable[[float], GarbageEstimator]

_ESTIMATOR_REGISTRY: dict[str, EstimatorFactory] = {}


def register_estimator(name: str, factory: EstimatorFactory) -> None:
    """Register (or replace) ``factory(history)`` under an estimator name.

    Registered names resolve through :func:`make_estimator`, which the
    SAGA policy builder (:mod:`repro.sim.spec`) and the fleet/tournament
    CLIs call — downstream estimators plug into every driver at once.
    """
    _ESTIMATOR_REGISTRY[name] = factory


def estimator_names() -> list[str]:
    """The registered estimator names, sorted."""
    return sorted(_ESTIMATOR_REGISTRY)


register_estimator(OracleEstimator.name, lambda history: OracleEstimator())
register_estimator(CgsCbEstimator.name, lambda history: CgsCbEstimator())
register_estimator(
    CgsHbEstimator.name, lambda history: CgsHbEstimator(history=history)
)
register_estimator(
    FgsHbEstimator.name, lambda history: FgsHbEstimator(history=history)
)
register_estimator(FgsCbEstimator.name, lambda history: FgsCbEstimator())


def make_estimator(name: str, history: float = 0.8) -> GarbageEstimator:
    """Factory used by the CLI and experiment drivers.

    ``history`` applies to the HB variants and is ignored otherwise.
    Beyond the registered names, the spec form ``learned:<model.json>``
    (optionally content-pinned as ``learned:<model.json>@<hash-prefix>``)
    loads a trained :class:`~repro.gc.learned.LearnedModel` artifact and
    returns a :class:`~repro.gc.learned.LearnedEstimator` over it.
    """
    if name.startswith("learned:"):
        # Imported lazily: repro.gc.learned subclasses GarbageEstimator,
        # so a module-level import would be circular.
        from repro.gc.learned import estimator_from_spec

        return estimator_from_spec(name)
    try:
        factory = _ESTIMATOR_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown estimator {name!r}; choose from {estimator_names()} "
            "or 'learned:<model.json>'"
        ) from None
    return factory(history)
