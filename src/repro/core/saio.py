"""SAIO — the Semi-Automatic I/O collection-rate policy (§2.2).

The user requests that garbage collection consume ``SAIO_Frac`` of all I/O
operations. After each collection, SAIO computes how many *application* I/O
operations to allow before collecting again, assuming the next collection
will cost about as much as the last one (``ΔGCIO = CurrGCIO``).

Over a history window of ``c_hist`` past collections plus the upcoming
interval, the policy solves

    (GCIO_hist + CurrGCIO) / (GCIO_hist + CurrGCIO + AppIO_hist + ΔAppIO)
        = SAIO_Frac

for ``ΔAppIO``. With ``c_hist = 0`` (the paper's default, maximally
responsive) this reduces to

    ΔAppIO = CurrGCIO · (1 - SAIO_Frac) / SAIO_Frac.

A positive history window feeds past prediction error back into the interval,
which §4.1.1 notes damps the systematic upward drift seen at very high
requested percentages.
"""

from __future__ import annotations

import math

from repro.core.rate_policy import PolicyContext, RatePolicy, TimeBase, Trigger
from repro.storage.heap import ObjectStore
from repro.storage.iostats import IOStats

#: Sentinel for "use every past collection" (the paper's c_hist = ∞ extreme).
UNLIMITED_HISTORY = math.inf


class SaioPolicy(RatePolicy):
    """Hold garbage-collection I/O at a requested fraction of total I/O.

    Args:
        io_fraction: Requested GC share of total I/O, in (0, 1).
        c_hist: History window in collections — 0 (default, most responsive),
            a positive integer, or :data:`UNLIMITED_HISTORY`.
        initial_interval: Application I/O operations before the first
            collection (cold start, no feedback available yet).
        min_interval: Floor on the computed interval; the history term can
            push the raw solution to zero or below when past GC I/O already
            exceeds the budget, and a collection-every-event regime would
            starve the application.
    """

    name = "saio"

    def __init__(
        self,
        io_fraction: float,
        c_hist: float = 0,
        initial_interval: float = 200.0,
        min_interval: float = 1.0,
    ) -> None:
        if not 0.0 < io_fraction < 1.0:
            raise ValueError(f"io_fraction must be in (0, 1), got {io_fraction}")
        if c_hist != UNLIMITED_HISTORY and (c_hist < 0 or int(c_hist) != c_hist):
            raise ValueError(f"c_hist must be a non-negative integer or UNLIMITED_HISTORY, got {c_hist}")
        if initial_interval <= 0:
            raise ValueError(f"initial_interval must be positive, got {initial_interval}")
        if min_interval <= 0:
            raise ValueError(f"min_interval must be positive, got {min_interval}")
        self.io_fraction = io_fraction
        self.c_hist = c_hist
        self.initial_interval = initial_interval
        self.min_interval = min_interval

    @property
    def time_base(self) -> TimeBase:
        return TimeBase.APP_IO

    def first_trigger(self, store: ObjectStore, iostats: IOStats) -> Trigger:
        return Trigger(TimeBase.APP_IO, self.initial_interval)

    def next_trigger(self, ctx: PolicyContext) -> Trigger:
        interval = self.compute_interval(
            current_gc_io=ctx.result.gc_io,
            iostats=ctx.iostats,
        )
        return Trigger(TimeBase.APP_IO, interval)

    def compute_interval(self, current_gc_io: int, iostats: IOStats) -> float:
        """Solve the §2.2 equation for the next application-I/O interval.

        Exposed separately so tests can exercise the algebra directly.
        """
        app_hist, gc_hist = self._window(iostats)
        predicted_gc = gc_hist + current_gc_io
        frac = self.io_fraction
        raw = predicted_gc * (1.0 - frac) / frac - app_hist
        return max(self.min_interval, raw)

    def _window(self, iostats: IOStats) -> tuple[int, int]:
        """(app, gc) I/O sums over the configured history window.

        Per the §2.2 derivation the window is ``x|_{c-c_hist}^{c}`` — the last
        ``c_hist`` closed inter-collection intervals, including the one that
        just ended. The upcoming interval enters the equation separately via
        the ``ΔGCIO = CurrGCIO`` prediction.
        """
        if self.c_hist == 0 or not iostats.history:
            return (0, 0)
        history = iostats.history
        if self.c_hist != UNLIMITED_HISTORY:
            history = history[-int(self.c_hist):]
        return (sum(r.app for r in history), sum(r.gc for r in history))

    def describe(self) -> str:
        hist = "inf" if self.c_hist == UNLIMITED_HISTORY else str(int(self.c_hist))
        return f"saio({self.io_fraction:.1%} I/O, c_hist={hist})"
