"""Small control-theory building blocks shared by the rate policies.

The paper's policies (§2.2–2.4) are feedback controllers built from two
primitives: exponentially weighted means (used to smooth noisy behaviour
samples) and a smoothed finite-difference slope estimator (used by SAGA to
predict the garbage-generation rate ``TotGarb'(t)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` to the inclusive interval [low, high]."""
    if low > high:
        raise ValueError(f"invalid clamp interval [{low}, {high}]")
    return max(low, min(high, value))


class ExponentialMean:
    """Exponentially weighted mean: ``m ← h·m + (1-h)·sample``.

    ``history`` (the ``h`` of §2.4.2 / ``Weight`` of §2.3) controls inertia:
    1.0 ignores new samples entirely, 0.0 tracks only the latest sample. The
    first sample initialises the mean directly so the estimate is unbiased
    from the start.
    """

    def __init__(self, history: float) -> None:
        if not 0.0 <= history <= 1.0:
            raise ValueError(f"history factor must be in [0, 1], got {history}")
        self.history = history
        self._value: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        """Current mean, or None before any sample."""
        return self._value

    @property
    def initialized(self) -> bool:
        return self._value is not None

    def update(self, sample: float) -> float:
        """Fold in a new sample and return the updated mean."""
        if self._value is None:
            self._value = sample
        else:
            self._value = self.history * self._value + (1.0 - self.history) * sample
        return self._value

    def reset(self) -> None:
        self._value = None


@dataclass
class SlopeSample:
    """One (time, value) observation fed to the slope estimator."""

    time: float
    value: float


class SmoothedSlopeEstimator:
    """SAGA's ``TotGarb'(t)`` estimator (§2.3).

    Given successive (t, TotGarb(t)) observations, maintains::

        slope ← Weight · slope_prev + (1 - Weight) · (ΔTotGarb / Δt)

    Observations with ``Δt == 0`` (the overwrite clock does not advance
    through read-only phases) leave the slope unchanged — no garbage can have
    been created, and the finite difference is undefined.
    """

    def __init__(self, weight: float = 0.7) -> None:
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"weight must be in [0, 1], got {weight}")
        self.weight = weight
        self._previous: Optional[SlopeSample] = None
        self._slope: Optional[float] = None

    @property
    def slope(self) -> Optional[float]:
        """Current slope estimate, or None before two usable observations."""
        return self._slope

    def observe(self, time: float, value: float) -> Optional[float]:
        """Record an observation and return the updated slope estimate."""
        sample = SlopeSample(time=time, value=value)
        previous = self._previous
        self._previous = sample
        if previous is None:
            return self._slope

        dt = sample.time - previous.time
        if dt <= 0:
            return self._slope

        instantaneous = (sample.value - previous.value) / dt
        if self._slope is None:
            self._slope = instantaneous
        else:
            self._slope = self.weight * self._slope + (1.0 - self.weight) * instantaneous
        return self._slope

    def reset(self) -> None:
        self._previous = None
        self._slope = None
