"""SAGA — the Semi-Automatic GArbage collection-rate policy (§2.3).

The user requests that garbage account for ``SAGA_Frac`` of the database.
After each collection, SAGA predicts when the garbage level will again reach
the target, assuming (a) the next collection will reclaim about as much as
this one did (``CurrColl``), and (b) the database size will not change much
before then. Solving the balance equation of §2.3 gives

    Δt = (CurrColl - GarbDiff(t)) / TotGarb'(t)

with ``GarbDiff(t) = ActGarb(t) - TargetGarb(t)`` and
``TargetGarb(t) = DBSize(t) · SAGA_Frac``. Time ``t`` is measured in pointer
overwrites, the garbage-creation signal of §2.

``ActGarb`` comes from a pluggable :class:`~repro.core.estimators.GarbageEstimator`
(oracle, CGS/CB, FGS/HB, ...). ``TotGarb(t)`` — needed for the slope — is
reconstructed as ``ActGarb_est(t) + TotColl(t)``; the collector knows
``TotColl`` exactly because it counts what it reclaims.

The slope ``TotGarb'(t)`` is smoothed with ``Weight = 0.7`` (§2.3) and Δt is
clamped to ``[Δt_min, Δt_max] = [2, 1000]`` overwrites; the paper reports the
clamps are rarely needed in practice.
"""

from __future__ import annotations

from repro.core.control import SmoothedSlopeEstimator, clamp
from repro.core.estimators import GarbageEstimator
from repro.core.rate_policy import PolicyContext, RatePolicy, TimeBase, Trigger
from repro.storage.heap import ObjectStore
from repro.storage.iostats import IOStats

#: Paper defaults (§2.3).
DEFAULT_WEIGHT = 0.7
DEFAULT_DT_MIN = 2.0
DEFAULT_DT_MAX = 1000.0


class SagaPolicy(RatePolicy):
    """Hold database garbage at a requested fraction of database size.

    Args:
        garbage_fraction: Requested garbage share of database size, in (0, 1).
        estimator: Source of ``ActGarb`` estimates.
        weight: Slope-smoothing factor (the paper's ``Weight``, 0.7).
        dt_min: Lower clamp on the collection interval, in overwrites.
        dt_max: Upper clamp on the collection interval, in overwrites.
        initial_interval: Overwrites before the first collection (cold start).
    """

    name = "saga"

    def __init__(
        self,
        garbage_fraction: float,
        estimator: GarbageEstimator,
        weight: float = DEFAULT_WEIGHT,
        dt_min: float = DEFAULT_DT_MIN,
        dt_max: float = DEFAULT_DT_MAX,
        initial_interval: float = 100.0,
    ) -> None:
        if not 0.0 < garbage_fraction < 1.0:
            raise ValueError(f"garbage_fraction must be in (0, 1), got {garbage_fraction}")
        if dt_min <= 0 or dt_max < dt_min:
            raise ValueError(f"invalid clamp interval [{dt_min}, {dt_max}]")
        if initial_interval <= 0:
            raise ValueError(f"initial_interval must be positive, got {initial_interval}")
        self.garbage_fraction = garbage_fraction
        self.estimator = estimator
        self.dt_min = dt_min
        self.dt_max = dt_max
        self.initial_interval = initial_interval
        self._slope = SmoothedSlopeEstimator(weight=weight)
        #: Diagnostic trail: (overwrite clock, estimated ActGarb, Δt) per collection.
        self.decisions: list[tuple[int, float, float]] = []

    @property
    def weight(self) -> float:
        return self._slope.weight

    @property
    def time_base(self) -> TimeBase:
        return TimeBase.OVERWRITES

    def first_trigger(self, store: ObjectStore, iostats: IOStats) -> Trigger:
        return Trigger(TimeBase.OVERWRITES, self.initial_interval)

    def next_trigger(self, ctx: PolicyContext) -> Trigger:
        store = ctx.store
        result = ctx.result
        self.estimator.observe_collection(result, store)

        now = float(store.pointer_overwrites)
        act_garb = max(0.0, self.estimator.estimate(store))
        tot_garb = act_garb + store.garbage.total_collected
        slope = self._slope.observe(time=now, value=tot_garb)

        if slope is None:
            # Still bootstrapping: one observation cannot yield a slope, so
            # keep sampling at the cold-start cadence rather than deferring
            # a full dt_max of overwrites.
            interval = self.initial_interval
        else:
            interval = self.compute_interval(
                current_coll=result.reclaimed_bytes,
                act_garb=act_garb,
                db_size=store.db_size,
                slope=slope,
            )
        self.decisions.append((store.pointer_overwrites, act_garb, interval))
        return Trigger(TimeBase.OVERWRITES, interval)

    def compute_interval(
        self,
        current_coll: float,
        act_garb: float,
        db_size: float,
        slope: float | None,
    ) -> float:
        """Solve the §2.3 balance equation for Δt (in pointer overwrites).

        Exposed separately so tests can exercise the algebra directly. A
        missing, zero, or negative slope means no garbage growth is predicted
        — the next collection is pushed out to ``dt_max``.
        """
        if slope is None or slope <= 0.0:
            return self.dt_max
        target = db_size * self.garbage_fraction
        garb_diff = act_garb - target
        dt = (current_coll - garb_diff) / slope
        return clamp(dt, self.dt_min, self.dt_max)

    def describe(self) -> str:
        return (
            f"saga({self.garbage_fraction:.1%} garbage, "
            f"estimator={self.estimator.describe()}, weight={self.weight:g})"
        )
