"""Extension policies sketched in the paper's future work (§5).

Two directions the authors call out:

* **Opportunism** — the core policies assume an active workload; when the
  database goes quiescent, the collector could run beyond its user-stated
  limits "to reduce the garbage in the database".
  :class:`OpportunisticPolicy` wraps any rate policy and volunteers extra
  collections after a configurable stretch of idle time, as long as garbage
  remains worth chasing.
* **Coupling** — "the SAIO policy could use information provided by the SAGA
  heuristics to determine the cost-effectiveness of the I/O operations being
  performed, and adjust itself accordingly."
  :class:`CoupledSaioSagaPolicy` scales SAIO's interval by how far the
  estimated garbage level sits from a target band: collections get scarcer
  when there is little garbage to find and denser when garbage is piling up.
"""

from __future__ import annotations

from repro.core.estimators import GarbageEstimator
from repro.core.rate_policy import PolicyContext, RatePolicy, TimeBase, Trigger
from repro.core.saio import SaioPolicy
from repro.storage.heap import ObjectStore
from repro.storage.iostats import IOStats


class OpportunisticPolicy(RatePolicy):
    """Wrap a rate policy with quiescent-period opportunism.

    Args:
        inner: The policy that governs collections under active load.
        estimator: Garbage estimator consulted during idle periods.
        idle_threshold: Consecutive idle ticks before opportunism kicks in.
        min_garbage_bytes: Do not bother collecting opportunistically when the
            estimated garbage falls below this (each collection still costs
            I/O; chasing crumbs during idle time only ages the buffer pool).
    """

    name = "opportunistic"

    def __init__(
        self,
        inner: RatePolicy,
        estimator: GarbageEstimator,
        idle_threshold: int = 5,
        min_garbage_bytes: float = 1024.0,
    ) -> None:
        if idle_threshold <= 0:
            raise ValueError(f"idle_threshold must be positive, got {idle_threshold}")
        if min_garbage_bytes < 0:
            raise ValueError(f"min_garbage_bytes must be non-negative, got {min_garbage_bytes}")
        self.inner = inner
        self.estimator = estimator
        self.idle_threshold = idle_threshold
        self.min_garbage_bytes = min_garbage_bytes
        self._consecutive_idle = 0
        self.opportunistic_collections = 0

    @property
    def time_base(self) -> TimeBase:
        return self.inner.time_base

    def first_trigger(self, store: ObjectStore, iostats: IOStats) -> Trigger:
        return self.inner.first_trigger(store, iostats)

    def next_trigger(self, ctx: PolicyContext) -> Trigger:
        return self.inner.next_trigger(ctx)

    def note_activity(self) -> None:
        """Called by the simulator on every non-idle application event."""
        self._consecutive_idle = 0

    def note_idle(self, store: ObjectStore) -> bool:
        """Called by the simulator on each idle tick.

        Returns True when the policy wants an opportunistic collection now.
        """
        self._consecutive_idle += 1
        if self._consecutive_idle < self.idle_threshold:
            return False
        if self.estimator.estimate(store) < self.min_garbage_bytes:
            return False
        # Re-arm: require another full quiet stretch before the next one.
        self._consecutive_idle = 0
        self.opportunistic_collections += 1
        return True

    def describe(self) -> str:
        return f"opportunistic({self.inner.describe()}, idle>={self.idle_threshold})"


class CoupledSaioSagaPolicy(RatePolicy):
    """SAIO modulated by SAGA-style garbage estimates (§5 coupling).

    Runs the SAIO interval computation, then scales the result by the ratio
    of the target garbage level to the estimated one, bounded to
    ``[1/max_scale, max_scale]``:

    * estimated garbage far *below* target → intervals stretch (collections
      are not cost-effective right now);
    * estimated garbage far *above* target → intervals shrink (spend more
      than the I/O budget to dig out).

    With ``max_scale = 1`` this degenerates to plain SAIO.
    """

    name = "saio+saga"

    def __init__(
        self,
        io_fraction: float,
        garbage_fraction: float,
        estimator: GarbageEstimator,
        max_scale: float = 4.0,
        c_hist: float = 0,
        initial_interval: float = 200.0,
    ) -> None:
        if not 0.0 < garbage_fraction < 1.0:
            raise ValueError(f"garbage_fraction must be in (0, 1), got {garbage_fraction}")
        if max_scale < 1.0:
            raise ValueError(f"max_scale must be >= 1, got {max_scale}")
        self._saio = SaioPolicy(
            io_fraction=io_fraction, c_hist=c_hist, initial_interval=initial_interval
        )
        self.garbage_fraction = garbage_fraction
        self.estimator = estimator
        self.max_scale = max_scale

    @property
    def io_fraction(self) -> float:
        return self._saio.io_fraction

    @property
    def time_base(self) -> TimeBase:
        return TimeBase.APP_IO

    def first_trigger(self, store: ObjectStore, iostats: IOStats) -> Trigger:
        return self._saio.first_trigger(store, iostats)

    def next_trigger(self, ctx: PolicyContext) -> Trigger:
        self.estimator.observe_collection(ctx.result, ctx.store)
        base = self._saio.next_trigger(ctx)
        scale = self._cost_effectiveness_scale(ctx.store)
        interval = max(self._saio.min_interval, base.interval * scale)
        return Trigger(TimeBase.APP_IO, interval)

    def _cost_effectiveness_scale(self, store: ObjectStore) -> float:
        """Target-to-estimated garbage ratio, clamped to the scale band."""
        db_size = store.db_size
        if db_size <= 0:
            return 1.0
        target = self.garbage_fraction * db_size
        estimated = max(0.0, self.estimator.estimate(store))
        if estimated <= 0.0:
            return self.max_scale
        ratio = target / estimated
        return max(1.0 / self.max_scale, min(self.max_scale, ratio))

    def describe(self) -> str:
        return (
            f"saio+saga(io={self._saio.io_fraction:.1%}, "
            f"garbage={self.garbage_fraction:.1%}, "
            f"estimator={self.estimator.describe()}, scale<={self.max_scale:g})"
        )
