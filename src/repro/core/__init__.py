"""The paper's contribution: adaptive collection-rate policies and estimators."""

from repro.core.control import ExponentialMean, SmoothedSlopeEstimator, clamp
from repro.core.estimators import (
    CgsCbEstimator,
    CgsHbEstimator,
    DecayingOracleBlend,
    FgsCbEstimator,
    FgsHbEstimator,
    GarbageEstimator,
    OracleEstimator,
    estimator_names,
    make_estimator,
    register_estimator,
)
from repro.core.extensions import CoupledSaioSagaPolicy, OpportunisticPolicy
from repro.core.fixed import (
    AllocationRatePolicy,
    FixedRatePolicy,
    PartitionHeuristicPolicy,
)
from repro.core.rate_policy import PolicyContext, RatePolicy, TimeBase, Trigger
from repro.core.saga import SagaPolicy
from repro.core.saio import UNLIMITED_HISTORY, SaioPolicy

__all__ = [
    "AllocationRatePolicy",
    "CgsCbEstimator",
    "CgsHbEstimator",
    "CoupledSaioSagaPolicy",
    "DecayingOracleBlend",
    "ExponentialMean",
    "FgsCbEstimator",
    "FgsHbEstimator",
    "FixedRatePolicy",
    "GarbageEstimator",
    "OpportunisticPolicy",
    "OracleEstimator",
    "PartitionHeuristicPolicy",
    "PolicyContext",
    "RatePolicy",
    "SagaPolicy",
    "SaioPolicy",
    "SmoothedSlopeEstimator",
    "TimeBase",
    "Trigger",
    "UNLIMITED_HISTORY",
    "clamp",
    "estimator_names",
    "make_estimator",
    "register_estimator",
]
