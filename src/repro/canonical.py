"""Canonical rendering of plain-data values for content addressing.

Both on-disk caches key their entries on SHA-256 digests of *canonical
material*: the result cache digests experiment specs
(:func:`repro.sim.cache.spec_fingerprint`), the trace cache digests
workload descriptions (:func:`repro.workload.trace_cache.trace_fingerprint`).
This module holds the one shared canonicaliser both build on, so a value
renders to the same bytes no matter which cache asks.

The function lived in :mod:`repro.sim.spec` originally; it moved here when
the unified workload protocol (:mod:`repro.workload.base`) made workload
modules need it too — importing it from ``repro.sim.spec`` there would
close an import cycle (``sim.spec`` imports the workload generators).
``repro.sim.spec`` re-exports it unchanged, so existing fingerprints are
byte-identical.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Mapping

#: Dataclass fields excluded from canonical material, by class name.
#: ``SimulationConfig.reachability`` selects *how* the collection frontier is
#: computed, ``SimulationConfig.replay`` selects *which interpreter* drives
#: the trace, and ``SimulationConfig.collection`` / ``gc_workers`` select
#: how collections are executed (serial, or speculatively pre-traced by N
#: workers and validated at apply) — none changes *what* is simulated: each
#: mode produces identical results (property-tested), so including them
#: would split the result cache and invalidate every fingerprint minted
#: before the fields existed.
CANONICAL_EXCLUDED_FIELDS: dict[str, frozenset[str]] = {
    "SimulationConfig": frozenset(
        {"reachability", "replay", "collection", "gc_workers"}
    ),
}


def canonical_value(value: Any) -> Any:
    """Render a value into a canonical JSON-compatible structure.

    Dataclasses are tagged with their class name so that two config types
    with coincidentally identical fields hash differently; mappings are
    key-sorted by the JSON dump downstream. Fields listed in
    :data:`CANONICAL_EXCLUDED_FIELDS` are omitted (they cannot affect
    results, so they must not affect fingerprints).

    Raises:
        TypeError: for values that cannot be canonicalised (live objects,
            closures, ...) — callers treat those specs as uncacheable.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        excluded = CANONICAL_EXCLUDED_FIELDS.get(type(value).__name__, ())
        rendered = {
            f.name: canonical_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.name not in excluded
        }
        rendered["__class__"] = type(value).__name__
        return rendered
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "value": value.value}
    if isinstance(value, Mapping):
        return {str(key): canonical_value(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"value {value!r} of type {type(value).__name__} cannot be part of a "
        "cacheable experiment spec (use plain data, dataclasses, or enums)"
    )
