"""Policy tournament: fixed / SAIO / SAGA / learned across a scenario grid.

The paper compares its adaptive policies one figure at a time; this
experiment puts them in one bracket. Each scenario is a grammar-driven
tenant mix on the fleet heap geometry; each policy runs the same
scenarios over the same seeds through the parallel engine, and the
"Figure 9" report ranks them on end-to-end I/O *and* — for the SAGA
family — on estimator quality (mean ``|estimated − actual|`` garbage
fraction per collection, the same metric as the §2.4 design-space
ablation).

The learned entrant (:mod:`repro.gc.learned`) either loads a pre-trained
model artifact (``--model``) or **self-trains**: a teacher sweep runs
``saga:oracle`` over the tournament scenarios with telemetry on, the GC
timelines become training rows, and the freshly fitted model enters the
bracket. The teacher sweep always runs uncached — result-cache hits
replay summaries without emitting telemetry, and an empty training set
must be impossible.

Determinism contract (CI-gated): the report and the ``--json`` document
contain no wall-clock and no machine-dependent values, so repeat runs are
byte-identical at any ``--jobs``; self-trained models are bit-identical
because training never reads telemetry timing fields.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.fleet import _default_sim_config
from repro.gc.learned import LearnedModel, train_model
from repro.obs.features import load_training_rows
from repro.sim.engine import run_experiment_batch
from repro.sim.report import format_percent, format_table
from repro.sim.spec import ExperimentSpec, PolicySpec, WorkloadSpec
from repro.workload.tenants import tenant_mix

#: Report/JSON schema version; bump on breaking changes.
TOURNAMENT_FORMAT = 1

#: The scenario bracket: name → tenant profiles interleaved into one mix.
SCENARIOS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("oltp-churn", ("oltp-churn",)),
    ("churn+browse", ("oltp-churn", "read-browse")),
    ("bulk+churn", ("bulk-load", "oltp-churn")),
)

#: SAGA requested garbage level shared by every SAGA entrant.
SAGA_LEVEL = 0.15

#: Hand-designed SAGA estimators the learned model competes against.
HAND_DESIGNED = ("cgs-cb", "fgs-hb")


@dataclass(frozen=True)
class TournamentCell:
    """One (scenario, policy) cell's aggregated outcome."""

    scenario: str
    policy: str
    #: Estimator short name for SAGA cells ("" otherwise).
    estimator: str
    collections: float
    gc_io_fraction: float
    total_io: float
    garbage_fraction: float
    #: Mean per-collection |estimated − actual| garbage fraction over all
    #: runs; None for policies that do not estimate garbage.
    estimator_mae: Optional[float]
    failures: int


@dataclass(frozen=True)
class ScenarioRanking:
    """Learned vs best hand-designed estimator on one scenario."""

    scenario: str
    learned_mae: Optional[float]
    best_hand: str
    best_hand_mae: Optional[float]

    @property
    def learned_wins(self) -> bool:
        return (
            self.learned_mae is not None
            and self.best_hand_mae is not None
            and self.learned_mae <= self.best_hand_mae
        )


@dataclass
class TournamentResult:
    cells: list[TournamentCell]
    rankings: list[ScenarioRanking]
    seeds: list[int]
    scale: float
    model: LearnedModel
    #: Where the model artifact lives ("" when it was supplied pre-trained
    #: at an externally chosen path — the report never includes paths).
    self_trained: bool


def _scenario_specs(
    scale: float, policies: Sequence[tuple[str, str, PolicySpec]]
) -> list[ExperimentSpec]:
    """The full grid: every scenario × every (display, estimator, policy)."""
    specs = []
    for scenario_name, profiles in SCENARIOS:
        mix = tenant_mix(list(profiles), scale=scale)
        workload = WorkloadSpec("tenant-mix", {"config": mix})
        for display, _estimator, policy in policies:
            specs.append(
                ExperimentSpec(
                    policy=policy,
                    workload=workload,
                    sim=_default_sim_config(),
                    label=f"{scenario_name} × {display}",
                )
            )
    return specs


def train_from_scenarios(
    seeds: Sequence[int],
    scale: float,
    jobs: Optional[int] = None,
    train_seed: int = 0,
    progress=None,
) -> LearnedModel:
    """Self-train: oracle-supervised teacher sweep → fitted model.

    Runs an oracle-supervised SAGA cell *plus* fixed and SAIO cells over
    every tournament scenario with telemetry into a temp dir and fits the
    learned model from the GC timelines. The non-SAGA teachers matter:
    they cover collection-state distributions the oracle-driven policy
    never visits, which is exactly where the deployed estimator would
    otherwise extrapolate. Deliberately uncached (see module docstring).
    """
    teacher = [
        ("teacher-oracle", "oracle",
         PolicySpec("saga", {"garbage_fraction": SAGA_LEVEL,
                             "estimator": "oracle"})),
        ("teacher-fgs", "fgs-hb",
         PolicySpec("saga", {"garbage_fraction": SAGA_LEVEL,
                             "estimator": "fgs-hb"})),
        ("teacher-fixed", "",
         PolicySpec("fixed", {"overwrites_per_collection": 20.0})),
        ("teacher-saio", "", PolicySpec("saio", {"io_fraction": 0.10})),
    ]
    specs = _scenario_specs(scale, teacher)
    with tempfile.TemporaryDirectory(prefix="repro-tournament-") as tmp:
        run_experiment_batch(
            specs, seeds=seeds, jobs=jobs, cache=None,
            telemetry=tmp, progress=progress,
        )
        matrix = load_training_rows([tmp])
        model, _report = train_model(
            matrix.rows, seed=train_seed, files=len(matrix.files)
        )
    return model


def run_tournament(
    seeds: Optional[Sequence[int]] = None,
    model: Optional[LearnedModel] = None,
    model_path: Optional[str] = None,
    scale: float = 3.0,
    train_seed: int = 0,
    **engine_kwargs,
) -> TournamentResult:
    """Run the bracket; self-train the learned entrant when no model given.

    ``model_path`` deploys a saved artifact (its content hash is verified
    on load); ``model`` passes one in-process. ``engine_kwargs`` are the
    usual engine options (jobs / cache / progress / ...).
    """
    seeds = list(seeds) if seeds else [0, 1]
    jobs = engine_kwargs.get("jobs")
    progress = engine_kwargs.get("progress")
    self_trained = False
    if model is None and model_path is not None:
        model = LearnedModel.load(model_path)
    if model is None:
        model = train_from_scenarios(
            seeds, scale, jobs=jobs, train_seed=train_seed, progress=progress
        )
        self_trained = True

    # The learned cell references the model through a content-pinned spec
    # file so the engine's cache fingerprints track the model bytes. The
    # artifact must exist on disk for worker processes to load.
    with tempfile.TemporaryDirectory(prefix="repro-tournament-") as tmp:
        if model_path is None:
            deployed = str(Path(tmp) / "model.json")
            model.save(deployed)
        else:
            deployed = model_path
        learned_spec = f"learned:{deployed}@{model.sha256[:12]}"

        policies: list[tuple[str, str, PolicySpec]] = [
            ("fixed:20", "",
             PolicySpec("fixed", {"overwrites_per_collection": 20.0})),
            ("saio:0.10", "", PolicySpec("saio", {"io_fraction": 0.10})),
        ]
        for name in HAND_DESIGNED:
            policies.append(
                (f"saga:{SAGA_LEVEL:g}:{name}", name,
                 PolicySpec("saga", {"garbage_fraction": SAGA_LEVEL,
                                     "estimator": name}))
            )
        policies.append(
            (f"saga:{SAGA_LEVEL:g}:learned@{model.sha256[:12]}", "learned",
             PolicySpec("saga", {"garbage_fraction": SAGA_LEVEL,
                                 "estimator": learned_spec}))
        )

        specs = _scenario_specs(scale, policies)
        aggregates = run_experiment_batch(
            specs, seeds=seeds, keep_records=True, **engine_kwargs
        )

    flat = [
        (scenario_name, display, estimator)
        for scenario_name, _profiles in SCENARIOS
        for display, estimator, _policy in policies
    ]
    cells = []
    for (scenario_name, display, estimator), aggregate in zip(flat, aggregates):
        maes = []
        for records in aggregate.records:
            pairs = [
                (r.estimated_garbage_fraction, r.actual_garbage_fraction)
                for r in records
                if r.estimated_garbage_fraction is not None
            ]
            if pairs:
                maes.append(sum(abs(e - a) for e, a in pairs) / len(pairs))
        cells.append(
            TournamentCell(
                scenario=scenario_name,
                policy=display,
                estimator=estimator,
                collections=aggregate.collections.mean,
                gc_io_fraction=aggregate.gc_io_fraction.mean,
                total_io=aggregate.total_io.mean,
                garbage_fraction=aggregate.garbage_fraction.mean,
                estimator_mae=(sum(maes) / len(maes)) if maes else None,
                failures=len(aggregate.failures),
            )
        )

    rankings = []
    for scenario_name, _profiles in SCENARIOS:
        by_est = {
            c.estimator: c.estimator_mae
            for c in cells
            if c.scenario == scenario_name and c.estimator
        }
        hand: list[tuple[str, float]] = []
        for name in HAND_DESIGNED:
            mae = by_est.get(name)
            if mae is not None:
                hand.append((name, mae))
        best_hand = ""
        best_mae: Optional[float] = None
        if hand:
            best_hand, best_mae = min(hand, key=lambda kv: kv[1])
        rankings.append(
            ScenarioRanking(
                scenario=scenario_name,
                learned_mae=by_est.get("learned"),
                best_hand=best_hand,
                best_hand_mae=best_mae,
            )
        )

    return TournamentResult(
        cells=cells,
        rankings=rankings,
        seeds=seeds,
        scale=scale,
        model=model,
        self_trained=self_trained,
    )


def format_tournament(result: TournamentResult) -> str:
    """The "Figure 9" report — deterministic, byte-identical at any --jobs."""
    rows = []
    for cell in result.cells:
        rows.append(
            [
                cell.scenario,
                cell.policy,
                f"{cell.collections:.1f}",
                format_percent(cell.gc_io_fraction),
                f"{cell.total_io:.0f}",
                format_percent(cell.garbage_fraction),
                format_percent(cell.estimator_mae)
                if cell.estimator_mae is not None
                else "-",
                cell.failures,
            ]
        )
    table = format_table(
        ["scenario", "policy", "collections", "gc io", "total IO",
         "garbage", "est MAE", "failed"],
        rows,
        title=(
            "Figure 9: policy tournament — fixed / SAIO / SAGA / learned "
            f"({len(result.seeds)} seeds, scale {result.scale:g})"
        ),
    )
    lines = [
        "Estimator ranking (mean per-collection |estimated - actual| "
        "garbage fraction):"
    ]
    for ranking in result.rankings:
        if ranking.learned_mae is None or ranking.best_hand_mae is None:
            lines.append(f"  {ranking.scenario:14s} insufficient collections")
            continue
        verdict = "LEARNED WINS" if ranking.learned_wins else "hand-designed wins"
        lines.append(
            f"  {ranking.scenario:14s} learned {ranking.learned_mae * 100:.2f}%"
            f"  vs  best hand-designed {ranking.best_hand} "
            f"{ranking.best_hand_mae * 100:.2f}%  -> {verdict}"
        )
    model = result.model
    origin = "self-trained" if result.self_trained else "pre-trained"
    lines.append(
        f"model: learned@{model.sha256[:12]} ({origin} on "
        f"{model.trained_rows} collections from {model.trained_files} "
        f"telemetry files; train MAE {model.train_mae * 100:.2f}%)"
    )
    lines.append(f"seeds: {' '.join(str(s) for s in result.seeds)}")
    return table + "\n\n" + "\n".join(lines)


def tournament_json(result: TournamentResult) -> str:
    """Machine-readable document (stable field order; CI parses this)."""
    document = {
        "format": TOURNAMENT_FORMAT,
        "seeds": result.seeds,
        "scale": result.scale,
        "model": {
            "sha256": result.model.sha256,
            "self_trained": result.self_trained,
            "trained_rows": result.model.trained_rows,
            "trained_files": result.model.trained_files,
            "train_mae": result.model.train_mae,
        },
        "cells": [
            {
                "scenario": cell.scenario,
                "policy": cell.policy,
                "estimator": cell.estimator,
                "collections": cell.collections,
                "gc_io_fraction": cell.gc_io_fraction,
                "total_io": cell.total_io,
                "garbage_fraction": cell.garbage_fraction,
                "estimator_mae": cell.estimator_mae,
                "failures": cell.failures,
            }
            for cell in result.cells
        ],
        "rankings": [
            {
                "scenario": ranking.scenario,
                "learned_mae": ranking.learned_mae,
                "best_hand": ranking.best_hand,
                "best_hand_mae": ranking.best_hand_mae,
                "learned_wins": ranking.learned_wins,
            }
            for ranking in result.rankings
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# CLI: ``python -m repro tournament``
# ----------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro tournament",
        description=(
            "Rank fixed / SAIO / SAGA / learned policies across the "
            "scenario bracket (the 'Figure 9' report)."
        ),
    )
    parser.add_argument(
        "--model",
        default=None,
        metavar="MODEL.JSON",
        help=(
            "deploy this trained model artifact (from 'python -m repro "
            "train'); default: self-train from an oracle teacher sweep"
        ),
    )
    parser.add_argument(
        "--train-out",
        type=Path,
        default=None,
        metavar="MODEL.JSON",
        help="when self-training, also save the fitted model here",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1],
        help="seed list (default: 0 1)",
    )
    parser.add_argument(
        "--scale", type=float, default=3.0,
        help="tenant-profile operation multiplier (default: %(default)s)",
    )
    parser.add_argument(
        "--train-seed", type=int, default=0,
        help="SGD seed for self-training (default: %(default)s)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: one per CPU; 1 = in-process)",
    )
    parser.add_argument("--cache-dir", type=Path, default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--trace-cache-dir", type=Path, default=None)
    parser.add_argument("--no-trace-cache", action="store_true")
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per completed run (stderr)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="also write the machine-readable tournament document here",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="also write the report to this file",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.cli import _ProgressReporter, _resolve_cache, _resolve_trace_cache

    args = _build_parser().parse_args(
        list(argv) if argv is not None else sys.argv[1:]
    )
    reporter = _ProgressReporter(verbose=args.progress)
    started = time.time()
    result = run_tournament(
        seeds=args.seeds,
        model_path=args.model,
        scale=args.scale,
        train_seed=args.train_seed,
        jobs=args.jobs,
        cache=_resolve_cache(args),
        trace_cache=_resolve_trace_cache(args),
        progress=reporter,
    )
    elapsed = time.time() - started

    if args.train_out is not None and result.self_trained:
        path = result.model.save(args.train_out)
        print(f"[self-trained model written to {path}]", file=sys.stderr)

    report = format_tournament(result)
    print(report)
    print(
        f"[tournament in {elapsed:.1f}s{reporter.summary()}]",
        file=sys.stderr,
    )
    if args.out is not None:
        args.out.write_text(report + "\n")
        print(f"[written to {args.out}]", file=sys.stderr)
    if args.json is not None:
        args.json.write_text(tournament_json(result))
        print(f"[json written to {args.json}]", file=sys.stderr)
    return 1 if any(cell.failures for cell in result.cells) else 0


__all__ = [
    "HAND_DESIGNED",
    "SAGA_LEVEL",
    "SCENARIOS",
    "ScenarioRanking",
    "TOURNAMENT_FORMAT",
    "TournamentCell",
    "TournamentResult",
    "format_tournament",
    "main",
    "run_tournament",
    "tournament_json",
    "train_from_scenarios",
]


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    raise SystemExit(main(sys.argv[1:]))
