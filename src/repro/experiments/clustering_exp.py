"""Ablation: measuring the (de)clustering behaviour behind the workload.

The paper chose this application precisely because its two reorganisations
recluster differently — Reorg1 preserves per-composite clustering, Reorg2
destroys it (§3.4) — which is what makes a fixed collection rate fail for
one or the other. This experiment measures the effect directly on the
stored database:

* composite spread (partitions per composite) after GenDB, after Reorg1,
  and after Reorg2;
* the read-only traversal's buffer hit rate and distinct-page footprint in
  each state;
* the same footprint after collecting every partition (compaction squeezes
  out the garbage the reorganisations left behind).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.experiments.common import DEFAULT_CONFIG, default_seeds
from repro.gc.collector import CopyingCollector
from repro.oo7.builder import apply_event
from repro.oo7.config import OO7Config
from repro.oo7.schema import Oo7Graph
from repro.sim.clustering import (
    composite_spread,
    traverse_hit_rate,
    traverse_page_footprint,
)
from repro.sim.report import format_table
from repro.storage.heap import ObjectStore, StoreConfig
from repro.workload.phases import gen_db_phase, reorg1_phase, reorg2_phase


@dataclass(frozen=True)
class ClusteringRow:
    state: str
    mean_spread: float
    clustered_fraction: float
    hit_rate: float
    footprint_pages: float


@dataclass
class ClusteringResult:
    rows: list[ClusteringRow]
    seeds: list[int]


def _measure(store: ObjectStore, graph: Oo7Graph, state: str) -> tuple:
    spread = composite_spread(store, graph)
    return (
        state,
        spread.mean_partitions_per_composite,
        spread.clustered_fraction,
        traverse_hit_rate(store, graph),
        float(traverse_page_footprint(store, graph)),
    )


def run_clustering_experiment(
    seeds=None, config: OO7Config = DEFAULT_CONFIG
) -> ClusteringResult:
    seeds = seeds if seeds is not None else default_seeds()
    states = ("after GenDB", "after Reorg1", "after Reorg2", "Reorg2 + full GC")
    sums = {state: [0.0, 0.0, 0.0, 0.0] for state in states}

    for seed in seeds:
        rng = random.Random(seed)
        graph = Oo7Graph(config, rng=rng)
        store = ObjectStore(StoreConfig())
        for event in gen_db_phase(graph):
            apply_event(store, event)
        measurements = [_measure(store, graph, "after GenDB")]

        for event in reorg1_phase(graph, rng):
            apply_event(store, event)
        measurements.append(_measure(store, graph, "after Reorg1"))

        for event in reorg2_phase(graph, rng):
            apply_event(store, event)
        measurements.append(_measure(store, graph, "after Reorg2"))

        collector = CopyingCollector(store)
        for _round in range(2):
            for pid in range(store.partition_count):
                collector.collect(pid)
        measurements.append(_measure(store, graph, "Reorg2 + full GC"))

        for state, *values in measurements:
            for index, value in enumerate(values):
                sums[state][index] += value

    rows = [
        ClusteringRow(
            state=state,
            mean_spread=sums[state][0] / len(seeds),
            clustered_fraction=sums[state][1] / len(seeds),
            hit_rate=sums[state][2] / len(seeds),
            footprint_pages=sums[state][3] / len(seeds),
        )
        for state in states
    ]
    return ClusteringResult(rows=rows, seeds=list(seeds))


def format_clustering_experiment(result: ClusteringResult) -> str:
    table = format_table(
        [
            "database state",
            "partitions/composite",
            "clustered composites",
            "traversal hit rate",
            "traversal footprint (pages)",
        ],
        [
            [
                row.state,
                f"{row.mean_spread:.2f}",
                f"{row.clustered_fraction * 100:.0f}%",
                f"{row.hit_rate * 100:.1f}%",
                f"{row.footprint_pages:.0f}",
            ]
            for row in result.rows
        ],
        title="§3.4 ablation: reclustering behaviour of the reorganisations",
    )
    note = (
        "Reorg1 reinserts clustered (spread barely moves); Reorg2 scatters "
        "each composite over many partitions, costing traversal locality. "
        "Compaction recovers pages (footprint) but cannot un-scatter "
        "composites — objects never migrate between partitions."
    )
    return f"{table}\n\n{note}"
