"""Figure 1: the cost of fixed collection rates.

Sweeps the fixed rate (pointer overwrites per collection) over the OO7
application and reports, per rate,

* **Figure 1a** — total I/O operations (application + collector), showing
  that very frequent collection drowns the application in collector I/O
  while very sparse collection loses locality and strands garbage;
* **Figure 1b** — total garbage collected, which falls off as the rate
  coarsens ("a collection rate of 800 results in little garbage being
  collected").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    DEFAULT_CONFIG,
    SAGA_PREAMBLE,
    default_seeds,
    engine_options,
    full_scale,
    oo7_spec,
)
from repro.oo7.config import OO7Config
from repro.sim.engine import run_experiment_batch
from repro.sim.report import format_table
from repro.sim.spec import PolicySpec

#: The paper's interesting range: 50 ("excessive I/O") to 800 ("little
#: garbage collected") overwrites per collection.
FULL_RATES = (50, 75, 100, 150, 200, 300, 400, 600, 800)
QUICK_RATES = (50, 100, 200, 400, 800)


@dataclass(frozen=True)
class Figure1Row:
    rate: float
    total_io_mean: float
    total_io_min: float
    total_io_max: float
    app_io_mean: float
    gc_io_mean: float
    collected_mean: float
    collected_min: float
    collected_max: float
    collections_mean: float


@dataclass
class Figure1Result:
    rows: list[Figure1Row]
    seeds: list[int]
    config: OO7Config


def run_figure1(
    rates=None,
    seeds=None,
    config: OO7Config = DEFAULT_CONFIG,
    **engine_kwargs,
) -> Figure1Result:
    rates = rates if rates is not None else (FULL_RATES if full_scale() else QUICK_RATES)
    seeds = seeds if seeds is not None else default_seeds()
    specs = [
        oo7_spec(
            PolicySpec("fixed", {"overwrites_per_collection": rate}),
            config,
            SAGA_PREAMBLE,
            label=f"figure1 fixed@{rate:g}",
        )
        for rate in rates
    ]
    aggregates = run_experiment_batch(
        specs, seeds=seeds, **engine_options(engine_kwargs)
    )
    rows = []
    for rate, aggregate in zip(rates, aggregates):
        total = aggregate.total_io
        collected = aggregate.total_reclaimed
        rows.append(
            Figure1Row(
                rate=rate,
                total_io_mean=total.mean,
                total_io_min=total.minimum,
                total_io_max=total.maximum,
                app_io_mean=sum(s.app_io_total for s in aggregate.summaries)
                / max(1, aggregate.runs),
                gc_io_mean=sum(s.gc_io_total for s in aggregate.summaries)
                / max(1, aggregate.runs),
                collected_mean=collected.mean,
                collected_min=collected.minimum,
                collected_max=collected.maximum,
                collections_mean=aggregate.collections.mean,
            )
        )
    return Figure1Result(rows=rows, seeds=list(seeds), config=config)


def format_figure1(result: Figure1Result) -> str:
    table_a = format_table(
        ["rate (ow/coll)", "total I/O", "min", "max", "app I/O", "GC I/O", "collections"],
        [
            [
                f"{r.rate:g}",
                f"{r.total_io_mean:.0f}",
                f"{r.total_io_min:.0f}",
                f"{r.total_io_max:.0f}",
                f"{r.app_io_mean:.0f}",
                f"{r.gc_io_mean:.0f}",
                f"{r.collections_mean:.1f}",
            ]
            for r in result.rows
        ],
        title="Figure 1a: collection rate vs I/O operations",
    )
    table_b = format_table(
        ["rate (ow/coll)", "garbage collected (KB)", "min", "max"],
        [
            [
                f"{r.rate:g}",
                f"{r.collected_mean / 1024:.0f}",
                f"{r.collected_min / 1024:.0f}",
                f"{r.collected_max / 1024:.0f}",
            ]
            for r in result.rows
        ],
        title="Figure 1b: collection rate vs total garbage collected",
    )
    note = (
        f"(OO7 Small', connectivity {result.config.num_conn_per_atomic}, "
        f"{len(result.seeds)} seeds per point)"
    )
    return "\n\n".join([table_a, table_b, note])
