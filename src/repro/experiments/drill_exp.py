"""Crash-recovery drill: the fault-injection subsystem's acceptance demo.

Runs the crash–recover–continue harness (:func:`repro.faults.
run_crash_recovery_drill`) over the transactional churn workload: a
deterministic :class:`~repro.faults.plan.FaultPlan` crashes the simulated
store at transaction commits, transaction begins and mid-collection; each
crash is recovered from the redo log and the trace resumed from the crash
point; and the final committed state must be **byte-identical** (SHA-256
of the canonical reachable-state rendering) to an uncrashed reference run.

The report prints, per seed, every crash survived (site, resume index,
objects recovered) and the digest comparison — a reproducible, end-to-end
demonstration that recovery is correct under the injected failure
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import default_seeds, sim_config
from repro.faults.drill import DrillReport, run_crash_recovery_drill
from repro.faults.plan import FaultPlan, FaultSpec
from repro.sim.report import format_table
from repro.sim.spec import ExperimentSpec, PolicySpec, WorkloadSpec

#: The default drill schedule: crashes at all three crash-site layers plus
#: a torn page write riding along (logical redo recovery must be immune).
DEFAULT_PLAN = FaultPlan(
    faults=(
        FaultSpec(site="tx.commit", at=40, effect="crash"),
        FaultSpec(site="tx.begin", at=55, effect="crash"),
        FaultSpec(site="tx.commit", at=90, effect="crash"),
        FaultSpec(site="gc.collect", at=2, effect="crash"),
        FaultSpec(site="page.write", at=10, effect="torn-write"),
    ),
    seed=0,
)


def drill_spec() -> ExperimentSpec:
    """The drilled setting: fixed-rate policy over transactional churn."""
    return ExperimentSpec(
        policy=PolicySpec("fixed", {"overwrites_per_collection": 60}),
        workload=WorkloadSpec("transactional", {}),
        sim=sim_config(0),
        label="crash-recovery drill",
    )


@dataclass
class DrillResult:
    reports: dict[int, DrillReport]
    plan: FaultPlan
    seeds: list[int]

    @property
    def all_match(self) -> bool:
        return all(r.matches_reference for r in self.reports.values())


def run_drill(
    seeds=None, plan: FaultPlan | None = None, telemetry=None
) -> DrillResult:
    """Run the drill over ``seeds``; ``telemetry`` names a directory for
    one ``kind="drill"`` JSON-lines telemetry file per seed."""
    seeds = list(seeds) if seeds is not None else default_seeds()
    plan = plan if plan is not None else DEFAULT_PLAN
    spec = drill_spec()
    reports = {}
    for index, seed in enumerate(seeds):
        tel_path = None
        if telemetry is not None:
            from repro.obs.telemetry import run_telemetry_path

            tel_path = run_telemetry_path(telemetry, index, "drill", seed)
        reports[seed] = run_crash_recovery_drill(
            spec, seed, plan=plan, telemetry=tel_path
        )
    return DrillResult(reports=reports, plan=plan, seeds=seeds)


def format_drill(result: DrillResult) -> str:
    rows = []
    for seed, report in result.reports.items():
        rows.append(
            [
                str(seed),
                str(report.crashes),
                ", ".join(report.crash_sites) or "-",
                ", ".join(str(i) for i in report.resume_indices) or "-",
                ", ".join(str(n) for n in report.recovered_objects) or "-",
                "IDENTICAL" if report.matches_reference else "DIVERGED",
            ]
        )
    table = format_table(
        ["seed", "crashes", "crash sites", "resumed at", "recovered", "state vs reference"],
        rows,
        title="Crash-recovery drill: injected crashes vs committed state",
    )
    sites = ", ".join(
        f"{f.site}@{f.at}" if f.at is not None else f"{f.site}~p={f.probability}"
        for f in result.plan.faults
    )
    verdict = (
        "All drilled runs recovered to a committed state byte-identical to "
        "the uncrashed reference."
        if result.all_match
        else "DIVERGENCE DETECTED: at least one drilled run did not recover "
        "to the reference state."
    )
    note = f"(plan: {sites}; plan seed {result.plan.seed})"
    return "\n".join([table, note, verdict])
