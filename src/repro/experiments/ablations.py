"""Ablation experiments for the claims the paper makes in passing.

* **Fixed-heuristic failure (§2.1)** — the "collect one partition's worth
  of garbage" heuristic (96 KB · connectivity / object size ≈ 2956
  overwrites per collection) badly underestimates garbage creation because
  single overwrites detach whole structures. We measure the workload's true
  garbage-per-overwrite and compare the heuristic's prediction with tuned
  fixed rates and the adaptive policies.
* **SAIO history (§4.1.1)** — c_hist makes little accuracy difference on
  OO7, but damps the drift at extreme requested percentages.
* **Selection policy vs CGS/CB (§4.1.2)** — "if the partition selection
  policy used was likely to find a partition with only an average amount of
  garbage (e.g., it picked a random partition to collect), then the CGS/CB
  heuristic would provide a more accurate estimate."
* **SAGA slope Weight (§2.3)** — sensitivity of SAGA/oracle accuracy to the
  slope-smoothing factor around the paper's 0.7.

All drivers run on the declarative :class:`~repro.sim.spec.ExperimentSpec`
engine, so every ablation parallelises across seeds/settings and caches
per-run results when the caller passes ``jobs`` / ``cache``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fixed import PartitionHeuristicPolicy
from repro.core.saio import UNLIMITED_HISTORY
from repro.events import trace_stats
from repro.experiments.common import (
    engine_options,
    DEFAULT_CONFIG,
    SAGA_PREAMBLE,
    SAIO_PREAMBLE,
    default_seeds,
    oo7_spec,
    paper_store_config,
)
from repro.oo7.config import OO7Config
from repro.sim.engine import run_experiment, run_experiment_batch
from repro.sim.report import format_table
from repro.sim.spec import PolicySpec, SelectionSpec
from repro.workload.application import Oo7Application


# ----------------------------------------------------------------------
# §2.1: the partition-heuristic fixed rate fails
# ----------------------------------------------------------------------


@dataclass
class FixedHeuristicResult:
    heuristic_rate: float
    heuristic_gpo_prediction: float
    measured_gpo: float
    rows: list[list[object]]


def run_fixed_heuristic_ablation(
    seeds=None,
    config: OO7Config = DEFAULT_CONFIG,
    **engine_kwargs,
) -> FixedHeuristicResult:
    seeds = seeds if seeds is not None else default_seeds()
    store = paper_store_config()
    heuristic = PartitionHeuristicPolicy(
        partition_size=store.partition_size,
        avg_connectivity=config.num_conn_per_atomic + 1,
        avg_object_size=DEFAULT_CONFIG.atomic_part_size * 0.6
        + DEFAULT_CONFIG.connection_size * 0.4,
    )
    stats = trace_stats(Oo7Application(config, seed=seeds[0]).events())
    prediction = heuristic.avg_object_size / heuristic.avg_connectivity

    rates = [heuristic.overwrites_per_collection, 800, 200, 50]
    labels = ["heuristic (§2.1)", "fixed 800", "fixed 200", "fixed 50"]
    specs = [
        oo7_spec(
            PolicySpec("fixed", {"overwrites_per_collection": rate}),
            config,
            SAGA_PREAMBLE,
            label=f"ablation-fixed {label}",
        )
        for label, rate in zip(labels, rates)
    ]
    aggregates = run_experiment_batch(
        specs, seeds=seeds, **engine_options(engine_kwargs)
    )
    rows = []
    for label, rate, aggregate in zip(labels, rates, aggregates):
        rows.append(
            [
                label,
                f"{rate:.0f}",
                f"{aggregate.collections.mean:.1f}",
                f"{aggregate.garbage_fraction.mean * 100:.1f}%",
                f"{aggregate.total_reclaimed.mean / 1024:.0f} KB",
            ]
        )
    return FixedHeuristicResult(
        heuristic_rate=heuristic.overwrites_per_collection,
        heuristic_gpo_prediction=prediction,
        measured_gpo=stats.garbage_per_overwrite,
        rows=rows,
    )


def format_fixed_heuristic(result: FixedHeuristicResult) -> str:
    table = format_table(
        ["policy", "rate (ow/coll)", "collections", "mean garbage %", "collected"],
        result.rows,
        title="§2.1 ablation: the partition-heuristic fixed rate fails",
    )
    factor = result.measured_gpo / max(1e-9, result.heuristic_gpo_prediction)
    note = (
        f"heuristic predicts {result.heuristic_gpo_prediction:.0f} B of garbage per "
        f"overwrite; the application actually creates {result.measured_gpo:.0f} B "
        f"per overwrite — {factor:.1f}x more (paper: ~5x), because single "
        "overwrites detach whole connected structures."
    )
    return f"{table}\n\n{note}"


# ----------------------------------------------------------------------
# §2: overwrite clock vs allocation clock
# ----------------------------------------------------------------------


@dataclass
class ClockAblationResult:
    rows: list[list[object]]
    collections_budget: int


def run_clock_ablation(
    collections_budget: int = 50,
    seeds=None,
    config: OO7Config = DEFAULT_CONFIG,
    **engine_kwargs,
) -> ClockAblationResult:
    """Compare overwrite-triggered vs allocation-triggered fixed policies.

    §2 argues pointer overwrites — not allocation — signal garbage creation
    in an ODBMS. Both baselines are calibrated (from a probe run) to spend
    the *same* total number of collections; the difference is purely *when*
    they spend them. The allocation clock races through GenDB (heavy
    allocation, zero garbage) and through the insertion halves of the
    reorganisations, wasting collections where there is nothing to reclaim.
    """
    seeds = seeds if seeds is not None else default_seeds()

    # Probe: total overwrites and allocated bytes of one run.
    probe_store_events = Oo7Application(config, seed=seeds[0]).events()
    probe = trace_stats(probe_store_events)
    total_overwrites = probe.pointer_overwrites
    total_allocated = probe.bytes_created

    policies = [
        (
            "overwrite clock",
            PolicySpec(
                "fixed",
                {
                    "overwrites_per_collection": max(
                        1.0, total_overwrites / collections_budget
                    )
                },
            ),
        ),
        (
            "allocation clock",
            PolicySpec(
                "allocation",
                {
                    "bytes_per_collection": max(
                        1.0, total_allocated / collections_budget
                    )
                },
            ),
        ),
    ]
    rows = []
    for label, policy_spec in policies:
        aggregate = run_experiment(
            oo7_spec(policy_spec, config, SAGA_PREAMBLE, label=f"ablation-clock {label}"),
            seeds=seeds,
            **engine_options(engine_kwargs),
            keep_records=True,
        )
        zero_yield = []
        gendb_collections = []
        for records in aggregate.records:
            zero_yield.append(
                sum(1 for r in records if r.reclaimed_bytes == 0)
                / max(1, len(records))
            )
            gendb_collections.append(
                sum(1 for r in records if r.phase == "GenDB")
            )
        rows.append(
            [
                label,
                f"{aggregate.collections.mean:.1f}",
                f"{sum(gendb_collections) / max(1, len(gendb_collections)):.1f}",
                f"{sum(zero_yield) / max(1, len(zero_yield)) * 100:.0f}%",
                f"{aggregate.total_reclaimed.mean / 1024:.0f} KB",
                f"{aggregate.garbage_fraction.mean * 100:.1f}%",
            ]
        )
    return ClockAblationResult(rows=rows, collections_budget=collections_budget)


def format_clock_ablation(result: ClockAblationResult) -> str:
    table = format_table(
        [
            "trigger clock",
            "collections",
            "during GenDB",
            "zero-yield",
            "reclaimed",
            "mean garbage",
        ],
        result.rows,
        title=(
            "§2 ablation: overwrite clock vs allocation clock "
            f"(~{result.collections_budget} collections each)"
        ),
    )
    note = (
        "Allocation and garbage creation are not correlated in this workload: "
        "the allocation-triggered baseline burns collections during GenDB and "
        "the insertion sweeps, where no garbage exists to reclaim."
    )
    return f"{table}\n\n{note}"


# ----------------------------------------------------------------------
# §4.1.1: SAIO history parameter
# ----------------------------------------------------------------------


@dataclass
class SaioHistoryResult:
    rows: list[list[object]]


def run_saio_history_ablation(
    fractions=(0.10, 0.40, 0.65),
    histories=(0, 4, UNLIMITED_HISTORY),
    seeds=None,
    config: OO7Config = DEFAULT_CONFIG,
    **engine_kwargs,
) -> SaioHistoryResult:
    seeds = seeds if seeds is not None else default_seeds()
    settings = [
        (fraction, history) for fraction in fractions for history in histories
    ]
    specs = [
        oo7_spec(
            PolicySpec("saio", {"io_fraction": fraction, "c_hist": history}),
            config,
            SAIO_PREAMBLE,
            label=f"ablation-history saio@{fraction:.0%} c_hist={history:g}",
        )
        for fraction, history in settings
    ]
    aggregates = run_experiment_batch(
        specs, seeds=seeds, **engine_options(engine_kwargs)
    )
    rows = []
    for (fraction, history), aggregate in zip(settings, aggregates):
        stat = aggregate.gc_io_fraction
        label = "inf" if history == UNLIMITED_HISTORY else f"{history:g}"
        rows.append(
            [
                f"{fraction * 100:.0f}%",
                label,
                f"{stat.mean * 100:.2f}%",
                f"{(stat.mean - fraction) * 100:+.2f}%",
                f"{stat.spread * 100:.2f}%",
            ]
        )
    return SaioHistoryResult(rows=rows)


def format_saio_history(result: SaioHistoryResult) -> str:
    return format_table(
        ["requested", "c_hist", "achieved", "error", "min-max spread"],
        result.rows,
        title="§4.1.1 ablation: SAIO history parameter",
    )


# ----------------------------------------------------------------------
# §4.1.2: CGS/CB under random vs UPDATEDPOINTER selection
# ----------------------------------------------------------------------


@dataclass
class SelectionAblationResult:
    rows: list[list[object]]


def run_selection_ablation(
    requested: float = 0.10,
    seeds=None,
    config: OO7Config = DEFAULT_CONFIG,
    **engine_kwargs,
) -> SelectionAblationResult:
    """Measure CGS/CB *estimation* bias under each selection policy.

    The paper's claim is about the estimator, not the closed loop: with a
    selection policy that picks an average partition (random), the "last
    victim is representative" assumption holds and ``C · p`` approximates
    the actual garbage; UPDATEDPOINTER hunts above-average victims, so
    ``C · p`` overestimates.
    """
    seeds = seeds if seeds is not None else default_seeds()
    rows = []
    for label, selection_kind in (
        ("updated-pointer", "updated-pointer"),
        ("random", "random"),
    ):
        aggregate = run_experiment(
            oo7_spec(
                PolicySpec(
                    "saga", {"garbage_fraction": requested, "estimator": "cgs-cb"}
                ),
                config,
                SAGA_PREAMBLE,
                selection=SelectionSpec(selection_kind),
                label=f"ablation-selection {label}",
            ),
            seeds=seeds,
            **engine_options(engine_kwargs),
            keep_records=True,
        )
        biases = []
        abs_errors = []
        for records in aggregate.records:
            pairs = [
                (r.estimated_garbage_fraction, r.actual_garbage_fraction)
                for r in records
                if r.estimated_garbage_fraction is not None
            ]
            if pairs:
                biases.append(sum(e - a for e, a in pairs) / len(pairs))
                abs_errors.append(sum(abs(e - a) for e, a in pairs) / len(pairs))
        achieved = [s.garbage_fraction_mean for s in aggregate.summaries]
        rows.append(
            [
                label,
                f"{sum(biases) / max(1, len(biases)) * 100:+.2f}%",
                f"{sum(abs_errors) / max(1, len(abs_errors)) * 100:.2f}%",
                f"{sum(achieved) / max(1, len(achieved)) * 100:.2f}%",
            ]
        )
    return SelectionAblationResult(rows=rows)


def format_selection_ablation(result: SelectionAblationResult) -> str:
    table = format_table(
        ["selection", "estimate bias (est-act)", "mean |est-act|", "achieved garbage"],
        result.rows,
        title="§4.1.2 ablation: CGS/CB estimation accuracy vs selection policy",
    )
    note = (
        "CGS/CB assumes the last victim is representative of all partitions; "
        "random selection satisfies that assumption (small bias), while "
        "UPDATEDPOINTER deliberately violates it (estimates biased high)."
    )
    return f"{table}\n\n{note}"


# ----------------------------------------------------------------------
# §2.3: SAGA slope-smoothing Weight
# ----------------------------------------------------------------------


@dataclass
class WeightAblationResult:
    rows: list[list[object]]


def run_weight_ablation(
    requested: float = 0.10,
    weights=(0.0, 0.4, 0.7, 0.9),
    seeds=None,
    config: OO7Config = DEFAULT_CONFIG,
    **engine_kwargs,
) -> WeightAblationResult:
    seeds = seeds if seeds is not None else default_seeds()
    specs = [
        oo7_spec(
            PolicySpec(
                "saga",
                {
                    "garbage_fraction": requested,
                    "estimator": "oracle",
                    "weight": weight,
                },
            ),
            config,
            SAGA_PREAMBLE,
            label=f"ablation-weight w={weight:g}",
        )
        for weight in weights
    ]
    aggregates = run_experiment_batch(
        specs, seeds=seeds, **engine_options(engine_kwargs)
    )
    rows = []
    for weight, aggregate in zip(weights, aggregates):
        stat = aggregate.garbage_fraction
        rows.append(
            [
                f"{weight:g}",
                f"{stat.mean * 100:.2f}%",
                f"{(stat.mean - requested) * 100:+.2f}%",
                f"{stat.spread * 100:.2f}%",
                f"{aggregate.collections.mean:.1f}",
            ]
        )
    return WeightAblationResult(rows=rows)


def format_weight_ablation(result: WeightAblationResult) -> str:
    return format_table(
        ["Weight", "achieved", "error", "min-max spread", "collections"],
        result.rows,
        title="§2.3 ablation: SAGA slope-smoothing Weight (10% requested, oracle)",
    )
