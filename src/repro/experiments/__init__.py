"""Experiment drivers: one module per table/figure plus ablations.

Every driver exposes ``run_<name>()`` returning structured results and
``format_<name>()`` rendering them as terminal tables/plots; each is also
registered by name in :mod:`repro.experiments.registry`, which the CLI
(``python -m repro``) enumerates. The benchmark harness under
``benchmarks/`` wraps the drivers directly. Sim-based drivers accept
``jobs=``/``cache=``/``progress=`` and fan out through
:func:`repro.sim.engine.run_experiment_batch`.
"""

from repro.experiments.ablations import (
    run_clock_ablation,
    run_fixed_heuristic_ablation,
    run_saio_history_ablation,
    run_selection_ablation,
    run_weight_ablation,
)
from repro.experiments.clustering_exp import (
    format_clustering_experiment,
    run_clustering_experiment,
)
from repro.experiments.common import default_seeds, full_scale
from repro.experiments.estimator_space import (
    format_estimator_space,
    run_estimator_space,
)
from repro.experiments.figure1 import format_figure1, run_figure1
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure5 import format_figure5, run_figure5
from repro.experiments.figure6 import format_figure6, run_figure6
from repro.experiments.figure7 import format_figure7, run_figure7
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.experiments.registry import (
    Experiment,
    RunOptions,
    experiment,
    experiment_names,
    get_experiment,
    iter_experiments,
    register_experiment,
)
from repro.experiments.table1 import format_table1, run_table1

__all__ = [
    "Experiment",
    "RunOptions",
    "default_seeds",
    "experiment",
    "experiment_names",
    "get_experiment",
    "iter_experiments",
    "register_experiment",
    "format_figure1",
    "format_figure4",
    "format_figure5",
    "format_figure6",
    "format_figure7",
    "format_figure8",
    "format_table1",
    "full_scale",
    "run_figure1",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "format_clustering_experiment",
    "format_estimator_space",
    "run_clock_ablation",
    "run_clustering_experiment",
    "run_estimator_space",
    "run_fixed_heuristic_ablation",
    "run_saio_history_ablation",
    "run_selection_ablation",
    "run_table1",
    "run_weight_ablation",
]
