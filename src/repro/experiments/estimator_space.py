"""Ablation: the complete 2×2 garbage-estimator design space (§2.4).

The paper derives its estimators from two orthogonal axes — state
granularity (coarse/fine) and behaviour summary (current/history) — but
evaluates only two corners (CGS/CB, FGS/HB) against the oracle. This
experiment fills in the matrix: it runs SAGA at one requested garbage level
under all four corners plus the oracle and reports, per estimator, the
achieved garbage percentage and the estimation quality (bias and mean
absolute error of the estimate against the true garbage at each
collection).

Expected ordering (and what the bench asserts): fine grain beats coarse
grain on estimation error, and history smoothing reduces estimate
volatility on both state granularities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    engine_options,
    DEFAULT_CONFIG,
    SAGA_PREAMBLE,
    default_seeds,
    oo7_spec,
)
from repro.oo7.config import OO7Config
from repro.sim.engine import run_experiment_batch
from repro.sim.report import format_table
from repro.sim.spec import PolicySpec

ESTIMATOR_SPACE = ("oracle", "cgs-cb", "cgs-hb", "fgs-cb", "fgs-hb")


@dataclass(frozen=True)
class EstimatorRow:
    estimator: str
    achieved_mean: float
    achieved_spread: float
    estimate_bias: float
    estimate_abs_error: float
    estimate_jitter: float
    collections_mean: float


@dataclass
class EstimatorSpaceResult:
    requested: float
    history: float
    rows: list[EstimatorRow]
    seeds: list[int]


def run_estimator_space(
    requested: float = 0.10,
    history: float = 0.8,
    seeds=None,
    config: OO7Config = DEFAULT_CONFIG,
    estimators=ESTIMATOR_SPACE,
    **engine_kwargs,
) -> EstimatorSpaceResult:
    seeds = seeds if seeds is not None else default_seeds()
    specs = [
        oo7_spec(
            PolicySpec(
                "saga",
                {
                    "garbage_fraction": requested,
                    "estimator": name,
                    "history": history,
                },
            ),
            config,
            SAGA_PREAMBLE,
            label=f"estimator-space saga/{name}",
        )
        for name in estimators
    ]
    aggregates = run_experiment_batch(
        specs,
        seeds=seeds,
        **engine_options(engine_kwargs),
        keep_records=True,
    )
    rows = []
    for name, aggregate in zip(estimators, aggregates):
        biases, abs_errors, jitters = [], [], []
        for records in aggregate.records:
            pairs = [
                (r.estimated_garbage_fraction, r.actual_garbage_fraction)
                for r in records
                if r.estimated_garbage_fraction is not None
            ]
            if pairs:
                biases.append(sum(e - a for e, a in pairs) / len(pairs))
                abs_errors.append(sum(abs(e - a) for e, a in pairs) / len(pairs))
                estimates = [e for e, _a in pairs]
                jumps = [abs(b - a) for a, b in zip(estimates, estimates[1:])]
                jitters.append(sum(jumps) / max(1, len(jumps)))

        stat = aggregate.garbage_fraction
        rows.append(
            EstimatorRow(
                estimator=name,
                achieved_mean=stat.mean,
                achieved_spread=stat.spread,
                estimate_bias=sum(biases) / max(1, len(biases)),
                estimate_abs_error=sum(abs_errors) / max(1, len(abs_errors)),
                estimate_jitter=sum(jitters) / max(1, len(jitters)),
                collections_mean=aggregate.collections.mean,
            )
        )
    return EstimatorSpaceResult(
        requested=requested, history=history, rows=rows, seeds=list(seeds)
    )


def format_estimator_space(result: EstimatorSpaceResult) -> str:
    table = format_table(
        [
            "estimator",
            "achieved",
            "spread",
            "estimate bias",
            "mean |est-act|",
            "estimate jitter",
            "collections",
        ],
        [
            [
                row.estimator,
                f"{row.achieved_mean * 100:.2f}%",
                f"{row.achieved_spread * 100:.2f}%",
                f"{row.estimate_bias * 100:+.2f}%",
                f"{row.estimate_abs_error * 100:.2f}%",
                f"{row.estimate_jitter * 100:.2f}%",
                f"{row.collections_mean:.1f}",
            ]
            for row in result.rows
        ],
        title=(
            f"§2.4 design space: SAGA estimators at {result.requested:.0%} "
            f"requested (h={result.history:g}, {len(result.seeds)} seeds)"
        ),
    )
    note = (
        "Axes: CGS/FGS = coarse/fine grain state; CB/HB = current/history "
        "behaviour. Fine grain state fixes the bias; history smoothing fixes "
        "the jitter; FGS/HB combines both (the paper's recommendation)."
    )
    return f"{table}\n\n{note}"
