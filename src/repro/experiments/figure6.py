"""Figure 6: time-varying behaviour of the garbage estimators.

Runs SAGA at a 10% requested garbage percentage under (a) CGS/CB and
(b) FGS/HB, recording target, actual, and estimated garbage percentage at
every collection. Findings this reproduces:

* CGS/CB's estimates swing wildly from collection to collection and are
  biased away from the actual value — its "last victim is representative"
  assumption is broken by UPDATEDPOINTER selection;
* FGS/HB's estimate tracks the actual garbage closely and smoothly, even
  across the Reorg1 → Traverse → Reorg2 phase changes;
* no "time" passes during the read-only Traverse phase (no overwrites, so
  no collections occur within it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DEFAULT_CONFIG, SAGA_PREAMBLE, engine_options, oo7_spec
from repro.oo7.config import OO7Config
from repro.sim.engine import run_experiment_batch
from repro.sim.metrics import CollectionRecord
from repro.sim.report import ascii_plot, format_table
from repro.sim.spec import PolicySpec


@dataclass
class Figure6Series:
    estimator: str
    records: list[CollectionRecord]

    @property
    def actual(self) -> list[float]:
        return [r.actual_garbage_fraction for r in self.records]

    @property
    def estimated(self) -> list[float]:
        return [r.estimated_garbage_fraction or 0.0 for r in self.records]

    @property
    def target(self) -> list[float]:
        return [r.target_garbage_fraction or 0.0 for r in self.records]


@dataclass
class Figure6Result:
    series: dict[str, Figure6Series]
    requested: float
    seed: int
    config: OO7Config


def run_figure6(
    requested: float = 0.10,
    estimators=("cgs-cb", "fgs-hb"),
    history: float = 0.8,
    seed: int = 0,
    config: OO7Config = DEFAULT_CONFIG,
    **engine_kwargs,
) -> Figure6Result:
    specs = [
        oo7_spec(
            PolicySpec(
                "saga",
                {
                    "garbage_fraction": requested,
                    "estimator": name,
                    "history": history,
                },
            ),
            config,
            SAGA_PREAMBLE,
            label=f"figure6 saga/{name}",
        )
        for name in estimators
    ]
    aggregates = run_experiment_batch(
        specs,
        seeds=[seed],
        **engine_options(engine_kwargs),
        keep_records=True,
    )
    series = {}
    for name, aggregate in zip(estimators, aggregates):
        series[name] = Figure6Series(estimator=name, records=aggregate.records[0] if aggregate.records else [])
    return Figure6Result(series=series, requested=requested, seed=seed, config=config)


def format_figure6(result: Figure6Result) -> str:
    sections = []
    for label, panel in (("6a", "cgs-cb"), ("6b", "fgs-hb")):
        if panel not in result.series:
            continue
        series = result.series[panel]
        if not series.records:
            sections.append(
                f"Figure {label}: no surviving runs for {panel} "
                "(all runs failed); panel omitted"
            )
            continue
        sections.append(
            ascii_plot(
                {
                    "actual": series.actual,
                    "estimated": series.estimated,
                    "target": series.target,
                },
                title=(
                    f"Figure {label}: time-varying garbage estimation, "
                    f"{panel} at {result.requested:.0%} requested "
                    f"({len(series.records)} collections)"
                ),
                y_label="garbage fraction",
            )
        )
        # Quantify the claims: estimate volatility and bias per estimator.
        estimates = series.estimated
        actuals = series.actual
        jumps = [abs(b - a) for a, b in zip(estimates, estimates[1:])]
        bias = sum(e - a for e, a in zip(estimates, actuals)) / max(1, len(estimates))
        sections.append(
            format_table(
                ["estimator", "collections", "mean |Δestimate|", "mean bias (est-act)"],
                [
                    [
                        panel,
                        len(series.records),
                        f"{sum(jumps) / max(1, len(jumps)) * 100:.2f}%",
                        f"{bias * 100:+.2f}%",
                    ]
                ],
            )
        )
    return "\n\n".join(sections)
