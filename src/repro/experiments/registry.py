"""Registry of named, CLI-runnable experiments.

Historically the CLI hand-listed every ``run_<name>``/``format_<name>``
pair; adding an experiment meant editing three files. The registry
collapses that: each experiment registers itself here as a *name*, a
one-line *description* and a runner that takes the seed list plus a
:class:`RunOptions` (parallelism / caching / progress) and returns the
fully formatted report. ``repro-experiments list`` and the ``all`` target
read the registry instead of a hand-maintained table.

Downstream code can add experiments with the :func:`experiment` decorator
(or :func:`register_experiment`) before invoking
:func:`repro.cli.main`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from repro.faults.plan import FaultPlan
from repro.sim.engine import CacheLike, ProgressCallback, TraceCacheLike


@dataclass(frozen=True)
class RunOptions:
    """Execution options threaded from the CLI into every driver.

    ``jobs=1`` is the in-process deterministic path; ``jobs=None`` lets the
    engine pick ``os.cpu_count()``. ``cache`` may be a
    :class:`~repro.sim.cache.ResultCache`, a directory path, or ``None``
    to disable caching; ``trace_cache`` is the compiled-trace counterpart
    (:class:`~repro.workload.trace_cache.TraceCache`), so each unique
    (workload, seed) trace is built once per sweep. ``retries`` /
    ``run_timeout`` configure the engine's failure-tolerance layer, and
    ``faults`` composes a deterministic
    :class:`~repro.faults.plan.FaultPlan` onto every run (the CLI's
    ``--retries`` / ``--run-timeout`` / ``--faults`` flags). ``telemetry``
    names a directory for per-run JSON-lines observability files (the
    CLI's ``--telemetry``; see :mod:`repro.obs`) — ``None`` disables the
    observability layer entirely.
    """

    jobs: Optional[int] = 1
    cache: CacheLike = None
    progress: Optional[ProgressCallback] = None
    retries: int = 0
    run_timeout: Optional[float] = None
    faults: Optional[FaultPlan] = None
    trace_cache: TraceCacheLike = None
    telemetry: Union[str, Path, None] = None

    def engine_kwargs(self) -> dict:
        """Keyword arguments every spec-engine driver accepts."""
        return {
            "jobs": self.jobs,
            "cache": self.cache,
            "progress": self.progress,
            "retries": self.retries,
            "run_timeout": self.run_timeout,
            "faults": self.faults,
            "trace_cache": self.trace_cache,
            "telemetry": self.telemetry,
        }


#: A runner renders one experiment end-to-end: (seeds, options) → report.
ExperimentRunner = Callable[[Optional[list], RunOptions], str]


@dataclass(frozen=True)
class Experiment:
    """One named, runnable experiment."""

    name: str
    description: str
    run: ExperimentRunner
    #: True when the runner actually fans simulation work out over the
    #: engine (i.e. ``jobs``/``cache`` have an effect).
    uses_engine: bool = True


_REGISTRY: dict[str, Experiment] = {}


def register_experiment(exp: Experiment) -> Experiment:
    """Register (or replace) an experiment under its name."""
    _REGISTRY[exp.name] = exp
    return exp


def experiment(
    name: str, description: str, uses_engine: bool = True
) -> Callable[[ExperimentRunner], ExperimentRunner]:
    """Decorator form of :func:`register_experiment`."""

    def decorate(run: ExperimentRunner) -> ExperimentRunner:
        register_experiment(
            Experiment(
                name=name,
                description=description,
                run=run,
                uses_engine=uses_engine,
            )
        )
        return run

    return decorate


def get_experiment(name: str) -> Experiment:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {experiment_names()}"
        ) from None


def experiment_names() -> list[str]:
    return sorted(_REGISTRY)


def iter_experiments() -> list[Experiment]:
    return [_REGISTRY[name] for name in experiment_names()]


# ----------------------------------------------------------------------
# Built-in experiments
# ----------------------------------------------------------------------


@experiment(
    "table1",
    "OO7 database parameters and generated-database verification",
    uses_engine=False,
)
def _table1(seeds, options: RunOptions) -> str:
    from repro.experiments.table1 import format_table1, run_table1

    return format_table1(run_table1())


@experiment("figure1", "fixed collection rate vs I/O and garbage collected")
def _figure1(seeds, options: RunOptions) -> str:
    from repro.experiments.figure1 import format_figure1, run_figure1

    return format_figure1(run_figure1(seeds=seeds, **options.engine_kwargs()))


@experiment("figure4", "SAIO accuracy sweep")
def _figure4(seeds, options: RunOptions) -> str:
    from repro.experiments.figure4 import format_figure4, run_figure4

    return format_figure4(run_figure4(seeds=seeds, **options.engine_kwargs()))


@experiment("figure5", "SAGA accuracy sweep per estimator")
def _figure5(seeds, options: RunOptions) -> str:
    from repro.experiments.figure5 import format_figure5, run_figure5

    return format_figure5(run_figure5(seeds=seeds, **options.engine_kwargs()))


@experiment("figure6", "time-varying garbage estimation (CGS/CB, FGS/HB)")
def _figure6(seeds, options: RunOptions) -> str:
    from repro.experiments.figure6 import format_figure6, run_figure6

    seed = seeds[0] if seeds else 0
    return format_figure6(run_figure6(seed=seed, **options.engine_kwargs()))


@experiment("figure7", "FGS/HB history parameter study + rate/yield traces")
def _figure7(seeds, options: RunOptions) -> str:
    from repro.experiments.figure7 import format_figure7, run_figure7

    seed = seeds[0] if seeds else 0
    return format_figure7(run_figure7(seed=seed, **options.engine_kwargs()))


@experiment("figure8", "connectivity sensitivity (6 and 9)")
def _figure8(seeds, options: RunOptions) -> str:
    from repro.experiments.figure8 import format_figure8, run_figure8

    return format_figure8(run_figure8(seeds=seeds, **options.engine_kwargs()))


@experiment(
    "drill",
    "crash-recovery drill: injected crashes vs byte-identical recovery",
    uses_engine=False,
)
def _drill(seeds, options: RunOptions) -> str:
    from repro.experiments.drill_exp import format_drill, run_drill

    return format_drill(
        run_drill(seeds=seeds, plan=options.faults, telemetry=options.telemetry)
    )


@experiment(
    "describe",
    "Figures 2 and 3: phases and database structure",
    uses_engine=False,
)
def _describe(seeds, options: RunOptions) -> str:
    from repro.oo7 import SMALL_PRIME, describe_phases, describe_structure

    return "\n\n".join([describe_phases(), describe_structure(SMALL_PRIME)])


@experiment("ablation-clock", "§2 overwrite clock vs allocation clock")
def _ablation_clock(seeds, options: RunOptions) -> str:
    from repro.experiments.ablations import format_clock_ablation, run_clock_ablation

    return format_clock_ablation(
        run_clock_ablation(seeds=seeds, **options.engine_kwargs())
    )


@experiment(
    "ablation-clustering",
    "§3.4 reclustering behaviour of the reorganisations",
    uses_engine=False,
)
def _ablation_clustering(seeds, options: RunOptions) -> str:
    from repro.experiments.clustering_exp import (
        format_clustering_experiment,
        run_clustering_experiment,
    )

    return format_clustering_experiment(run_clustering_experiment(seeds=seeds))


@experiment("ablation-estimators", "§2.4 full 2x2 estimator design space")
def _ablation_estimators(seeds, options: RunOptions) -> str:
    from repro.experiments.estimator_space import (
        format_estimator_space,
        run_estimator_space,
    )

    return format_estimator_space(
        run_estimator_space(seeds=seeds, **options.engine_kwargs())
    )


@experiment("ablation-fixed", "§2.1 partition-heuristic fixed rate failure")
def _ablation_fixed(seeds, options: RunOptions) -> str:
    from repro.experiments.ablations import (
        format_fixed_heuristic,
        run_fixed_heuristic_ablation,
    )

    return format_fixed_heuristic(
        run_fixed_heuristic_ablation(seeds=seeds, **options.engine_kwargs())
    )


@experiment("ablation-history", "§4.1.1 SAIO history parameter")
def _ablation_history(seeds, options: RunOptions) -> str:
    from repro.experiments.ablations import (
        format_saio_history,
        run_saio_history_ablation,
    )

    return format_saio_history(
        run_saio_history_ablation(seeds=seeds, **options.engine_kwargs())
    )


@experiment("ablation-selection", "§4.1.2 CGS/CB vs selection policy")
def _ablation_selection(seeds, options: RunOptions) -> str:
    from repro.experiments.ablations import (
        format_selection_ablation,
        run_selection_ablation,
    )

    return format_selection_ablation(
        run_selection_ablation(seeds=seeds, **options.engine_kwargs())
    )


@experiment(
    "fleet-demo",
    "grammar-driven multi-tenant fleet: tiny 2-tenant × 2-policy grid",
)
def _fleet_demo(seeds, options: RunOptions) -> str:
    from repro.fleet import run_demo

    return run_demo(seeds, options.engine_kwargs())


@experiment(
    "figure9",
    "policy tournament: fixed/SAIO/SAGA/learned + estimator error ranking",
)
def _figure9(seeds, options: RunOptions) -> str:
    import os

    from repro.experiments.tournament import format_tournament, run_tournament

    return format_tournament(
        run_tournament(
            seeds=seeds,
            model_path=os.environ.get("REPRO_LEARNED_MODEL"),
            **options.engine_kwargs(),
        )
    )


@experiment("ablation-weight", "§2.3 SAGA slope Weight")
def _ablation_weight(seeds, options: RunOptions) -> str:
    from repro.experiments.ablations import (
        format_weight_ablation,
        run_weight_ablation,
    )

    return format_weight_ablation(
        run_weight_ablation(seeds=seeds, **options.engine_kwargs())
    )
