"""Figure 5: effectiveness of the SAGA policy per garbage estimator.

Sweeps the requested garbage percentage for SAGA driven by each estimator
(oracle, CGS/CB, FGS/HB) and reports achieved percentages. Findings this
reproduces:

* the **oracle** curve is nearly indistinguishable from perfect accuracy —
  the control algorithm itself is sound and its assumptions hold;
* **FGS/HB** is close to the request with a small systematic overshoot
  (the "bump" the paper traces to Traverse-phase sampling and estimation
  lag);
* **CGS/CB** is far off and largely insensitive to the request, with much
  larger run-to-run spread ("the control algorithm in its case behaves
  much more erratically").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    engine_options,
    DEFAULT_CONFIG,
    SAGA_PREAMBLE,
    SWEEP_HEADERS,
    SweepPoint,
    default_seeds,
    full_scale,
    oo7_spec,
    sweep_rows,
)
from repro.oo7.config import OO7Config
from repro.sim.engine import run_experiment_batch
from repro.sim.report import format_table
from repro.sim.spec import PolicySpec

FULL_FRACTIONS = (0.02, 0.05, 0.08, 0.10, 0.15, 0.20, 0.25, 0.30)
QUICK_FRACTIONS = (0.05, 0.10, 0.20, 0.30)
ESTIMATORS = ("oracle", "cgs-cb", "fgs-hb")


@dataclass
class Figure5Result:
    sweeps: dict[str, list[SweepPoint]]
    history: float
    seeds: list[int]
    config: OO7Config


def run_figure5(
    fractions=None,
    seeds=None,
    estimators=ESTIMATORS,
    history: float = 0.8,
    config: OO7Config = DEFAULT_CONFIG,
    **engine_kwargs,
) -> Figure5Result:
    fractions = (
        fractions
        if fractions is not None
        else (FULL_FRACTIONS if full_scale() else QUICK_FRACTIONS)
    )
    seeds = seeds if seeds is not None else default_seeds()
    settings = [
        (estimator_name, fraction)
        for estimator_name in estimators
        for fraction in fractions
    ]
    specs = [
        oo7_spec(
            PolicySpec(
                "saga",
                {
                    "garbage_fraction": fraction,
                    "estimator": estimator_name,
                    "history": history,
                },
            ),
            config,
            SAGA_PREAMBLE,
            label=f"figure5 saga/{estimator_name}@{fraction:.0%}",
        )
        for estimator_name, fraction in settings
    ]
    aggregates = run_experiment_batch(
        specs, seeds=seeds, **engine_options(engine_kwargs)
    )
    sweeps: dict[str, list[SweepPoint]] = {name: [] for name in estimators}
    for (estimator_name, fraction), aggregate in zip(settings, aggregates):
        stat = aggregate.garbage_fraction
        sweeps[estimator_name].append(
            SweepPoint(
                requested=fraction,
                mean=stat.mean,
                minimum=stat.minimum,
                maximum=stat.maximum,
            )
        )
    return Figure5Result(
        sweeps=sweeps, history=history, seeds=list(seeds), config=config
    )


def format_figure5(result: Figure5Result) -> str:
    sections = []
    for name, points in result.sweeps.items():
        sections.append(
            format_table(
                SWEEP_HEADERS,
                sweep_rows(points),
                title=f"Figure 5 ({name}): SAGA achieved vs requested garbage percentage",
            )
        )
    note = (
        f"(FGS/HB history h={result.history:g}, connectivity "
        f"{result.config.num_conn_per_atomic}, {len(result.seeds)} seeds per point)"
    )
    sections.append(note)
    return "\n\n".join(sections)
