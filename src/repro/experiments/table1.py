"""Table 1: OO7 database parameters, verified against generated databases.

Prints the Small' and Small parameter columns side by side (as in the
paper), then generates a Small' database at each connectivity and verifies
the emergent quantities the paper quotes: object population, database size
range across connectivities, atomic-part in-degree (≈ connectivity + 1),
and average object size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DEFAULT_CONFIG
from repro.oo7.builder import build_database
from repro.oo7.config import SMALL, OO7Config
from repro.sim.report import format_table


@dataclass(frozen=True)
class GeneratedStats:
    connectivity: int
    objects: int
    db_bytes: int
    avg_object_size: float
    part_in_degree: float


@dataclass
class Table1Result:
    small_prime: OO7Config
    small: OO7Config
    generated: list[GeneratedStats]


#: (label, Small' accessor, Small accessor) rows exactly as in Table 1.
_PARAMETER_ROWS = (
    ("NumAtomicPerComp", "num_atomic_per_comp"),
    ("NumConnPerAtomic", "num_conn_per_atomic"),
    ("DocumentSize (bytes)", "document_size"),
    ("ManualSize (kbytes)", "manual_size"),
    ("NumCompPerModule", "num_comp_per_module"),
    ("NumAssmPerAssm", "num_assm_per_assm"),
    ("NumAssmLevels", "num_assm_levels"),
    ("NumCompPerAssm", "num_comp_per_assm"),
    ("NumModules", "num_modules"),
)


def run_table1(
    config: OO7Config = DEFAULT_CONFIG, connectivities=(3, 6, 9), seed: int = 0
) -> Table1Result:
    generated = []
    for connectivity in connectivities:
        db = build_database(config.with_connectivity(connectivity), seed=seed)
        generated.append(
            GeneratedStats(
                connectivity=connectivity,
                objects=len(db.store.objects),
                db_bytes=db.store.db_size,
                avg_object_size=db.average_object_size(),
                part_in_degree=db.atomic_part_in_degree(),
            )
        )
    return Table1Result(small_prime=config, small=SMALL, generated=generated)


def format_table1(result: Table1Result) -> str:
    def value(config: OO7Config, attr: str):
        raw = getattr(config, attr)
        if attr == "manual_size":
            return raw // 1024
        if attr == "num_conn_per_atomic":
            return "3/6/9"
        return raw

    parameters = format_table(
        ["Parameter", "Small'", "Small"],
        [
            [label, value(result.small_prime, attr), value(result.small, attr)]
            for label, attr in _PARAMETER_ROWS
        ],
        title="Table 1: OO7 benchmark database parameters",
    )
    verification = format_table(
        ["connectivity", "objects", "DB size (MB)", "avg obj (B)", "part in-degree"],
        [
            [
                g.connectivity,
                g.objects,
                f"{g.db_bytes / 1e6:.2f}",
                f"{g.avg_object_size:.0f}",
                f"{g.part_in_degree:.2f}",
            ]
            for g in result.generated
        ],
        title="Generated Small' databases (verification)",
    )
    return "\n\n".join([parameters, verification])
