"""Figure 7: history-parameter study of the FGS/HB heuristic.

**Figure 7a** runs SAGA/FGS-HB at a 10% request with history factors
h ∈ {0.5, 0.8, 0.95} and records the estimated vs actual garbage percentage
per collection. Findings this reproduces:

* h = 0.95 adapts sluggishly — large swings and errors after behaviour
  changes, settling only after many collections;
* h = 0.5 is responsive but noisy, developing oscillations driven by the
  control law's slope estimate;
* h = 0.8 is the practical middle ground the paper uses.

**Figure 7b** records, for h = 0.8, the collection rate (overwrites between
collections), the collection yield (bytes reclaimed), and the garbage
percentage over time. The paper's observations: initially high collection
rates during the database cold start; a settling rate of roughly one
collection per ~200 overwrites; Reorg1 garbage persisting several
collections into the Reorg2 era; and lower yields as Reorg2 executes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DEFAULT_CONFIG, SAGA_PREAMBLE, engine_options, oo7_spec
from repro.oo7.config import OO7Config
from repro.sim.engine import run_experiment_batch
from repro.sim.metrics import CollectionRecord
from repro.sim.report import ascii_plot, format_table
from repro.sim.spec import PolicySpec

HISTORY_VALUES = (0.5, 0.8, 0.95)


@dataclass
class Figure7Run:
    history: float
    records: list[CollectionRecord]

    @property
    def intervals(self) -> list[float]:
        """Overwrites between successive collections (the collection rate)."""
        clocks = [r.overwrite_clock for r in self.records]
        return [float(b - a) for a, b in zip(clocks, clocks[1:])]

    @property
    def yields(self) -> list[float]:
        return [float(r.reclaimed_bytes) for r in self.records]

    @property
    def actual(self) -> list[float]:
        return [r.actual_garbage_fraction for r in self.records]

    @property
    def estimated(self) -> list[float]:
        return [r.estimated_garbage_fraction or 0.0 for r in self.records]


@dataclass
class Figure7Result:
    runs: dict[float, Figure7Run]
    requested: float
    seed: int
    config: OO7Config


def run_figure7(
    requested: float = 0.10,
    histories=HISTORY_VALUES,
    seed: int = 0,
    config: OO7Config = DEFAULT_CONFIG,
    **engine_kwargs,
) -> Figure7Result:
    specs = [
        oo7_spec(
            PolicySpec(
                "saga",
                {
                    "garbage_fraction": requested,
                    "estimator": "fgs-hb",
                    "history": history,
                },
            ),
            config,
            SAGA_PREAMBLE,
            label=f"figure7 fgs-hb h={history:g}",
        )
        for history in histories
    ]
    aggregates = run_experiment_batch(
        specs,
        seeds=[seed],
        **engine_options(engine_kwargs),
        keep_records=True,
    )
    runs = {}
    for history, aggregate in zip(histories, aggregates):
        runs[history] = Figure7Run(history=history, records=aggregate.records[0] if aggregate.records else [])
    return Figure7Result(runs=runs, requested=requested, seed=seed, config=config)


def format_figure7(result: Figure7Result) -> str:
    sections = []
    # 7a: estimation quality per history value.
    rows = []
    for history, run in sorted(result.runs.items()):
        errors = [abs(e - a) for e, a in zip(run.estimated, run.actual)]
        mean_error = sum(errors) / max(1, len(errors))
        jumps = [abs(b - a) for a, b in zip(run.estimated, run.estimated[1:])]
        rows.append(
            [
                f"{history:g}",
                len(run.records),
                f"{mean_error * 100:.2f}%",
                f"{(sum(jumps) / max(1, len(jumps))) * 100:.2f}%",
            ]
        )
    sections.append(
        format_table(
            ["history h", "collections", "mean |est-act|", "mean |Δestimate|"],
            rows,
            title="Figure 7a: FGS/HB history parameter study (10% requested)",
        )
    )
    for history, run in sorted(result.runs.items()):
        if not run.records:
            sections.append(
                f"Figure 7a: h={history:g} — no surviving runs "
                "(all runs failed); plot omitted"
            )
            continue
        sections.append(
            ascii_plot(
                {"actual": run.actual, "estimated": run.estimated},
                title=f"Figure 7a: h={history:g} — estimated vs actual garbage",
                y_label="garbage fraction",
                height=10,
            )
        )

    # 7b: rate / yield / garbage over time at h=0.8.
    reference = result.runs.get(0.8) or next(iter(result.runs.values()))
    if not reference.records:
        sections.append(
            "Figure 7b: no surviving runs (all runs failed); panels omitted"
        )
        return "\n\n".join(sections)
    if reference.intervals:
        sections.append(
            ascii_plot(
                {"overwrites/collection": reference.intervals},
                title="Figure 7b (top): collection rate over time (h=0.8)",
                y_label="overwrites between collections",
                height=10,
            )
        )
    sections.append(
        ascii_plot(
            {"yield (bytes)": reference.yields},
            title="Figure 7b (middle): collection yield over time",
            y_label="bytes reclaimed",
            height=10,
        )
    )
    sections.append(
        ascii_plot(
            {"actual": reference.actual, "estimated": reference.estimated},
            title="Figure 7b (bottom): garbage percentage over time",
            y_label="garbage fraction",
            height=10,
        )
    )
    settled = reference.intervals[len(reference.intervals) // 3 :]
    if settled:
        sections.append(
            "settled collection rate (h=0.8): one collection per "
            f"{sum(settled) / len(settled):.0f} overwrites "
            "(paper: ~200 overwrites after the cold-start transient)"
        )
    return "\n\n".join(sections)
