"""Shared infrastructure for the per-figure experiment drivers.

Every driver follows the paper's protocol (§3.2, §4.1): multiple simulation
runs per data point that differ only in the random seed, reported as the
mean with min/max error bars.

Two scales are provided:

* **quick** (default) — 3 seeds and a reduced parameter grid, so the full
  benchmark suite finishes in minutes;
* **full** (``REPRO_FULL=1``) — 10 seeds and the paper-scale grids, used to
  produce the numbers recorded in EXPERIMENTS.md.

Preamble conventions: SAGA-style experiments exclude the paper's 10
cold-start collections. SAIO performs far fewer, more expensive collections
per run, so SAIO experiments use a 2-collection preamble (documented in
DESIGN.md/EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.oo7.config import SMALL_PRIME, OO7Config
from repro.sim.simulator import SimulationConfig
from repro.sim.spec import ExperimentSpec, PolicySpec, SelectionSpec, WorkloadSpec
from repro.storage.heap import StoreConfig
from repro.workload.application import Oo7Application
from repro.events import TraceEvent

#: Preamble used for SAGA / fixed-rate experiments (the paper's choice).
SAGA_PREAMBLE = 10
#: Preamble used for SAIO experiments (few collections per run).
SAIO_PREAMBLE = 2


def engine_options(engine_kwargs: dict) -> dict:
    """Normalise a driver's ``**engine_kwargs`` for the parallel engine.

    Drivers forward whatever engine options they are given (``jobs``,
    ``cache``, ``progress``, ``retries``, ``run_timeout``, ``faults``, …)
    verbatim — new engine features reach every driver without touching
    their signatures. The single default imposed here is ``jobs=1``, so
    direct programmatic callers get the deterministic in-process path
    unless they opt into parallelism.
    """
    engine_kwargs.setdefault("jobs", 1)
    return engine_kwargs


def full_scale() -> bool:
    """Whether paper-scale grids were requested via ``REPRO_FULL=1``."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "no")


def default_seeds() -> list[int]:
    """Seeds per data point: 10 at full scale (the paper), 3 quick."""
    return list(range(10)) if full_scale() else [0, 1, 2]


def paper_store_config() -> StoreConfig:
    """The paper's geometry: 8 KB pages, 96 KB partitions, 12-page buffer."""
    return StoreConfig()


def sim_config(preamble: int, **kwargs) -> SimulationConfig:
    return SimulationConfig(store=paper_store_config(), preamble_collections=preamble, **kwargs)


def oo7_trace_factory(config: OO7Config):
    """A trace factory (seed → events) over the given OO7 configuration."""

    def factory(seed: int) -> Iterable[TraceEvent]:
        return Oo7Application(config, seed=seed).events()

    return factory


def oo7_spec(
    policy: PolicySpec,
    config: OO7Config,
    preamble: int,
    selection: SelectionSpec = None,
    label: str = "",
) -> ExperimentSpec:
    """An :class:`ExperimentSpec` over the OO7 application workload.

    The declarative unit every driver hands the parallel engine: one policy
    setting, the paper's store geometry, and the per-policy preamble.
    """
    return ExperimentSpec(
        policy=policy,
        workload=WorkloadSpec("oo7", {"config": config}),
        selection=selection if selection is not None else SelectionSpec(),
        sim=sim_config(preamble),
        label=label,
    )


@dataclass(frozen=True)
class SweepPoint:
    """One row of an accuracy sweep: requested setting vs achieved stat."""

    requested: float
    mean: float
    minimum: float
    maximum: float

    @property
    def error(self) -> float:
        return self.mean - self.requested


def sweep_rows(points: Sequence[SweepPoint]) -> list[list[object]]:
    """Render sweep points as table rows (percentages)."""
    return [
        [
            f"{p.requested * 100:.1f}%",
            f"{p.mean * 100:.2f}%",
            f"{p.minimum * 100:.2f}%",
            f"{p.maximum * 100:.2f}%",
            f"{p.error * 100:+.2f}%",
        ]
        for p in points
    ]

SWEEP_HEADERS = ["requested", "achieved (mean)", "min", "max", "error"]

#: The database configuration every experiment defaults to.
DEFAULT_CONFIG = SMALL_PRIME
