"""Figure 8: sensitivity of policy accuracy to database connectivity.

Repeats the Figure 4 (SAIO) and Figure 5 (SAGA, oracle and FGS/HB) accuracy
sweeps with ``NumConnPerAtomic`` set to 6 and 9 instead of 3. The paper's
finding: "the results in the graphs are consistent with those [at
connectivity 3] … the SAIO and SAGA policies are effective across a variety
of database connectivities."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    engine_options,
    DEFAULT_CONFIG,
    SAGA_PREAMBLE,
    SAIO_PREAMBLE,
    SWEEP_HEADERS,
    SweepPoint,
    default_seeds,
    full_scale,
    oo7_spec,
    sweep_rows,
)
from repro.oo7.config import OO7Config
from repro.sim.engine import run_experiment_batch
from repro.sim.report import format_table
from repro.sim.spec import PolicySpec

FULL_FRACTIONS = (0.05, 0.10, 0.15, 0.20, 0.30)
QUICK_FRACTIONS = (0.05, 0.10, 0.20)
CONNECTIVITIES = (6, 9)


@dataclass
class Figure8Result:
    #: saio[connectivity] and saga[(estimator, connectivity)] sweeps.
    saio: dict[int, list[SweepPoint]]
    saga: dict[tuple[str, int], list[SweepPoint]]
    seeds: list[int]
    config: OO7Config


def run_figure8(
    fractions=None,
    seeds=None,
    connectivities=CONNECTIVITIES,
    estimators=("oracle", "fgs-hb"),
    config: OO7Config = DEFAULT_CONFIG,
    **engine_kwargs,
) -> Figure8Result:
    fractions = (
        fractions
        if fractions is not None
        else (FULL_FRACTIONS if full_scale() else QUICK_FRACTIONS)
    )
    seeds = seeds if seeds is not None else default_seeds()

    # One flat batch over every (connectivity, policy, fraction) setting so
    # the whole figure fans out across workers at once.
    settings = []
    specs = []
    for connectivity in connectivities:
        variant = config.with_connectivity(connectivity)
        for fraction in fractions:
            settings.append(("saio", connectivity, fraction))
            specs.append(
                oo7_spec(
                    PolicySpec("saio", {"io_fraction": fraction}),
                    variant,
                    SAIO_PREAMBLE,
                    label=f"figure8 saio conn={connectivity}@{fraction:.0%}",
                )
            )
        for estimator_name in estimators:
            for fraction in fractions:
                settings.append((estimator_name, connectivity, fraction))
                specs.append(
                    oo7_spec(
                        PolicySpec(
                            "saga",
                            {"garbage_fraction": fraction, "estimator": estimator_name},
                        ),
                        variant,
                        SAGA_PREAMBLE,
                        label=(
                            f"figure8 saga/{estimator_name} "
                            f"conn={connectivity}@{fraction:.0%}"
                        ),
                    )
                )

    aggregates = run_experiment_batch(
        specs, seeds=seeds, **engine_options(engine_kwargs)
    )

    saio: dict[int, list[SweepPoint]] = {}
    saga: dict[tuple[str, int], list[SweepPoint]] = {}
    for (kind, connectivity, fraction), aggregate in zip(settings, aggregates):
        if kind == "saio":
            stat = aggregate.gc_io_fraction
            bucket = saio.setdefault(connectivity, [])
        else:
            stat = aggregate.garbage_fraction
            bucket = saga.setdefault((kind, connectivity), [])
        bucket.append(SweepPoint(fraction, stat.mean, stat.minimum, stat.maximum))
    return Figure8Result(saio=saio, saga=saga, seeds=list(seeds), config=config)


def format_figure8(result: Figure8Result) -> str:
    sections = []
    for connectivity, points in sorted(result.saio.items()):
        sections.append(
            format_table(
                SWEEP_HEADERS,
                sweep_rows(points),
                title=f"Figure 8: SAIO accuracy at connectivity {connectivity}",
            )
        )
    for (estimator, connectivity), points in sorted(result.saga.items()):
        sections.append(
            format_table(
                SWEEP_HEADERS,
                sweep_rows(points),
                title=(
                    f"Figure 8: SAGA ({estimator}) accuracy at "
                    f"connectivity {connectivity}"
                ),
            )
        )
    sections.append(f"({len(result.seeds)} seeds per point)")
    return "\n\n".join(sections)
