"""Figure 8: sensitivity of policy accuracy to database connectivity.

Repeats the Figure 4 (SAIO) and Figure 5 (SAGA, oracle and FGS/HB) accuracy
sweeps with ``NumConnPerAtomic`` set to 6 and 9 instead of 3. The paper's
finding: "the results in the graphs are consistent with those [at
connectivity 3] … the SAIO and SAGA policies are effective across a variety
of database connectivities."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimators import make_estimator
from repro.core.saga import SagaPolicy
from repro.core.saio import SaioPolicy
from repro.experiments.common import (
    DEFAULT_CONFIG,
    SAGA_PREAMBLE,
    SAIO_PREAMBLE,
    SWEEP_HEADERS,
    SweepPoint,
    default_seeds,
    full_scale,
    oo7_trace_factory,
    sim_config,
    sweep_rows,
)
from repro.oo7.config import OO7Config
from repro.sim.report import format_table
from repro.sim.runner import run_seeds

FULL_FRACTIONS = (0.05, 0.10, 0.15, 0.20, 0.30)
QUICK_FRACTIONS = (0.05, 0.10, 0.20)
CONNECTIVITIES = (6, 9)


@dataclass
class Figure8Result:
    #: saio[connectivity] and saga[(estimator, connectivity)] sweeps.
    saio: dict[int, list[SweepPoint]]
    saga: dict[tuple[str, int], list[SweepPoint]]
    seeds: list[int]
    config: OO7Config


def run_figure8(
    fractions=None,
    seeds=None,
    connectivities=CONNECTIVITIES,
    estimators=("oracle", "fgs-hb"),
    config: OO7Config = DEFAULT_CONFIG,
) -> Figure8Result:
    fractions = (
        fractions
        if fractions is not None
        else (FULL_FRACTIONS if full_scale() else QUICK_FRACTIONS)
    )
    seeds = seeds if seeds is not None else default_seeds()
    saio: dict[int, list[SweepPoint]] = {}
    saga: dict[tuple[str, int], list[SweepPoint]] = {}
    for connectivity in connectivities:
        variant = config.with_connectivity(connectivity)
        trace_factory = oo7_trace_factory(variant)

        points = []
        for fraction in fractions:
            aggregate = run_seeds(
                policy_factory=lambda f=fraction: SaioPolicy(io_fraction=f),
                trace_factory=trace_factory,
                seeds=seeds,
                config=sim_config(SAIO_PREAMBLE),
            )
            stat = aggregate.gc_io_fraction
            points.append(
                SweepPoint(fraction, stat.mean, stat.minimum, stat.maximum)
            )
        saio[connectivity] = points

        for estimator_name in estimators:
            points = []
            for fraction in fractions:
                aggregate = run_seeds(
                    policy_factory=lambda f=fraction, e=estimator_name: SagaPolicy(
                        garbage_fraction=f, estimator=make_estimator(e)
                    ),
                    trace_factory=trace_factory,
                    seeds=seeds,
                    config=sim_config(SAGA_PREAMBLE),
                )
                stat = aggregate.garbage_fraction
                points.append(
                    SweepPoint(fraction, stat.mean, stat.minimum, stat.maximum)
                )
            saga[(estimator_name, connectivity)] = points
    return Figure8Result(saio=saio, saga=saga, seeds=list(seeds), config=config)


def format_figure8(result: Figure8Result) -> str:
    sections = []
    for connectivity, points in sorted(result.saio.items()):
        sections.append(
            format_table(
                SWEEP_HEADERS,
                sweep_rows(points),
                title=f"Figure 8: SAIO accuracy at connectivity {connectivity}",
            )
        )
    for (estimator, connectivity), points in sorted(result.saga.items()):
        sections.append(
            format_table(
                SWEEP_HEADERS,
                sweep_rows(points),
                title=(
                    f"Figure 8: SAGA ({estimator}) accuracy at "
                    f"connectivity {connectivity}"
                ),
            )
        )
    sections.append(f"({len(result.seeds)} seeds per point)")
    return "\n\n".join(sections)
