"""Figure 4: effectiveness of the SAIO policy.

Sweeps the requested garbage-collection I/O percentage and reports the
achieved percentage (mean over seeds, with min/max error bars). The paper's
findings this experiment reproduces:

* achieved ≈ requested across the whole range;
* at the highest percentages the achieved value drifts slightly *above* the
  request (the ``ΔGCIO = CurrGCIO`` assumption breaks down more often when
  collections are dense, and the errors do not cancel — §4.1.1);
* with ``c_hist = 0`` the policy is maximally responsive; history makes
  little accuracy difference for OO7 but damps the high-percentage drift.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    engine_options,
    DEFAULT_CONFIG,
    SAIO_PREAMBLE,
    SWEEP_HEADERS,
    SweepPoint,
    default_seeds,
    full_scale,
    oo7_spec,
    sweep_rows,
)
from repro.oo7.config import OO7Config
from repro.sim.engine import run_experiment_batch
from repro.sim.report import format_table
from repro.sim.spec import PolicySpec

FULL_FRACTIONS = (0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.65, 0.80)
QUICK_FRACTIONS = (0.05, 0.10, 0.20, 0.40, 0.65)


@dataclass
class Figure4Result:
    points: list[SweepPoint]
    c_hist: float
    seeds: list[int]
    config: OO7Config


def run_figure4(
    fractions=None,
    seeds=None,
    c_hist: float = 0,
    config: OO7Config = DEFAULT_CONFIG,
    **engine_kwargs,
) -> Figure4Result:
    fractions = (
        fractions
        if fractions is not None
        else (FULL_FRACTIONS if full_scale() else QUICK_FRACTIONS)
    )
    seeds = seeds if seeds is not None else default_seeds()
    specs = [
        oo7_spec(
            PolicySpec("saio", {"io_fraction": fraction, "c_hist": c_hist}),
            config,
            SAIO_PREAMBLE,
            label=f"figure4 saio@{fraction:.0%}",
        )
        for fraction in fractions
    ]
    aggregates = run_experiment_batch(
        specs, seeds=seeds, **engine_options(engine_kwargs)
    )
    points = []
    for fraction, aggregate in zip(fractions, aggregates):
        stat = aggregate.gc_io_fraction
        points.append(
            SweepPoint(
                requested=fraction,
                mean=stat.mean,
                minimum=stat.minimum,
                maximum=stat.maximum,
            )
        )
    return Figure4Result(points=points, c_hist=c_hist, seeds=list(seeds), config=config)


def format_figure4(result: Figure4Result) -> str:
    table = format_table(
        SWEEP_HEADERS,
        sweep_rows(result.points),
        title="Figure 4: SAIO achieved vs requested GC I/O percentage",
    )
    note = (
        f"(c_hist={result.c_hist:g}, connectivity "
        f"{result.config.num_conn_per_atomic}, {len(result.seeds)} seeds per point)"
    )
    return f"{table}\n\n{note}"
