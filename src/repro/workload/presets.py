"""Canned synthetic workload presets.

Ready-made phase sequences for the behaviours the paper's discussion keeps
returning to: steady churn (the estimators' best case), bursty garbage
creation (their worst case), daily-cycle activity with quiescent windows
(the §5 opportunism scenario), and a bulk-load-then-serve lifecycle (the §2
allocation-vs-garbage decorrelation argument).

Each preset returns a list of :class:`~repro.workload.synthetic.SyntheticPhase`
objects that can be passed straight to
:class:`~repro.workload.synthetic.SyntheticWorkload`; the ``scale`` argument
multiplies every phase's operation count.
"""

from __future__ import annotations

import warnings
from typing import Iterator

from repro.workload.synthetic import SyntheticPhase, SyntheticWorkload


def _scaled(operations: int, scale: float) -> int:
    return max(1, int(operations * scale))


def steady_churn(scale: float = 1.0) -> list[SyntheticPhase]:
    """Constant create/delete churn — constant garbage-per-overwrite.

    The friendliest possible workload for the FGS/HB estimator: behaviour
    never changes, so any history factor converges to the truth.
    """
    return [
        SyntheticPhase(
            name="steady",
            operations=_scaled(6000, scale),
            create_weight=1.0,
            delete_weight=1.0,
            access_weight=2.0,
            cluster_size=6,
            object_size=120,
        )
    ]


def garbage_burst(scale: float = 1.0) -> list[SyntheticPhase]:
    """Calm background churn punctuated by a violent deletion burst.

    Stresses responsiveness: the burst multiplies garbage-per-overwrite
    (big clusters die whole), then behaviour snaps back.
    """
    calm = dict(
        create_weight=1.0,
        delete_weight=0.5,
        access_weight=3.0,
        cluster_size=4,
        object_size=96,
    )
    return [
        SyntheticPhase(name="calm-1", operations=_scaled(2000, scale), **calm),
        SyntheticPhase(
            name="burst",
            operations=_scaled(800, scale),
            create_weight=0.2,
            delete_weight=3.0,
            access_weight=0.5,
            cluster_size=24,
            object_size=160,
        ),
        SyntheticPhase(name="calm-2", operations=_scaled(2000, scale), **calm),
    ]


def daily_cycle(scale: float = 1.0, days: int = 3) -> list[SyntheticPhase]:
    """Alternating busy daytime churn and quiet nights (§5 opportunism).

    Nights are mostly idle ticks with a trickle of reads — the window an
    opportunistic policy exploits to drain garbage beyond its limits.
    """
    if days < 1:
        raise ValueError(f"days must be >= 1, got {days}")
    phases = []
    for day in range(days):
        phases.append(
            SyntheticPhase(
                name=f"day-{day}",
                operations=_scaled(1500, scale),
                create_weight=1.0,
                delete_weight=1.0,
                access_weight=2.0,
                cluster_size=6,
                object_size=120,
            )
        )
        phases.append(
            SyntheticPhase(
                name=f"night-{day}",
                operations=_scaled(600, scale),
                create_weight=0.0,
                delete_weight=0.0,
                access_weight=0.3,
                idle_weight=3.0,
            )
        )
    return phases


def bulk_load_then_serve(scale: float = 1.0) -> list[SyntheticPhase]:
    """Heavy allocation with no garbage, then garbage-producing service.

    The §2 decorrelation argument in workload form: an allocation-triggered
    policy fires throughout the load phase and reclaims nothing, while an
    overwrite-triggered one stays quiet until garbage actually appears.
    """
    return [
        SyntheticPhase(
            name="bulk-load",
            operations=_scaled(2500, scale),
            create_weight=1.0,
            delete_weight=0.0,
            access_weight=0.2,
            cluster_size=8,
            object_size=128,
        ),
        SyntheticPhase(
            name="serve",
            operations=_scaled(3000, scale),
            create_weight=0.5,
            delete_weight=1.0,
            access_weight=3.0,
            cluster_size=8,
            object_size=128,
        ),
    ]


PRESETS = {
    "steady-churn": steady_churn,
    "garbage-burst": garbage_burst,
    "daily-cycle": daily_cycle,
    "bulk-load-then-serve": bulk_load_then_serve,
}


class PresetWorkload(SyntheticWorkload):
    """A named preset as a full workload (the unified-protocol form).

    This is what :func:`make_preset` now returns. It *is* a
    :class:`~repro.workload.synthetic.SyntheticWorkload` — same ``events()``,
    same canonical material, so a preset and the equivalent hand-built
    synthetic workload share one trace fingerprint and cache entry.

    For compatibility with the historical ``make_preset`` contract (a bare
    ``list[SyntheticPhase]``), the instance also supports iteration,
    indexing and ``len`` over its phases — each such use emits a
    :class:`DeprecationWarning`; pass the workload itself (or read
    ``.phases``) instead.
    """

    def __init__(
        self,
        name: str,
        scale: float = 1.0,
        seed: int = 0,
        initial_clusters: int = 16,
    ) -> None:
        try:
            factory = PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
            ) from None
        super().__init__(
            factory(scale=scale), seed=seed, initial_clusters=initial_clusters
        )
        self.preset_name = name
        self.scale = scale

    # ------------------------------------------------- deprecated list shim

    def _warn_list_use(self) -> None:
        warnings.warn(
            "treating make_preset(...) as a bare list of phases is "
            "deprecated; it now returns a PresetWorkload — use it directly "
            "or read its .phases attribute",
            DeprecationWarning,
            stacklevel=3,
        )

    def __iter__(self) -> Iterator[SyntheticPhase]:
        self._warn_list_use()
        return iter(self.phases)

    def __len__(self) -> int:
        self._warn_list_use()
        return len(self.phases)

    def __getitem__(self, index):
        self._warn_list_use()
        return self.phases[index]


def make_preset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    initial_clusters: int = 16,
) -> PresetWorkload:
    """Instantiate a preset by name.

    Returns a :class:`PresetWorkload` (a real workload conforming to
    :class:`repro.workload.base.WorkloadSpec`). Code that treated the old
    bare ``list[SyntheticPhase]`` return as a list keeps working through a
    ``DeprecationWarning`` shim.

    Raises:
        ValueError: on an unknown name, listing the valid preset names.
    """
    return PresetWorkload(
        name, scale=scale, seed=seed, initial_clusters=initial_clusters
    )
