"""Transactional synthetic workloads.

Wraps the linked-cluster operations of
:class:`~repro.workload.synthetic.SyntheticWorkload` in transactions with a
configurable abort rate. The generator keeps its own cluster bookkeeping
transactional too: when it decides a transaction will abort, it snapshots
its logical state at ``begin`` and restores it at ``abort``, so the trace
remains consistent with the (rolled-back) database.

This is the workload the transaction substrate is evaluated with: aborted
deletions *resurrect* objects (their garbage never existed), aborted
creations vanish, and garbage collection only runs between transactions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.events import (
    AbortTransactionEvent,
    BeginTransactionEvent,
    CommitTransactionEvent,
    CreateEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    TraceEvent,
)
from repro.storage.object_model import ObjectId, ObjectKind


@dataclass(frozen=True)
class TransactionalSpec:
    """Shape of a transactional churn workload.

    Attributes:
        transactions: Number of transactions to run.
        ops_per_transaction: Cluster operations per transaction.
        abort_probability: Chance a transaction ends in abort.
        cluster_size: Members per cluster.
        object_size: Bytes per member object.
    """

    transactions: int = 100
    ops_per_transaction: int = 4
    abort_probability: float = 0.2
    cluster_size: int = 6
    object_size: int = 120

    def __post_init__(self) -> None:
        if self.transactions < 1:
            raise ValueError("transactions must be >= 1")
        if self.ops_per_transaction < 1:
            raise ValueError("ops_per_transaction must be >= 1")
        if not 0.0 <= self.abort_probability <= 1.0:
            raise ValueError("abort_probability must be in [0, 1]")
        if self.cluster_size < 1 or self.object_size < 1:
            raise ValueError("cluster_size and object_size must be >= 1")


@dataclass(eq=False)
class _Cluster:
    slot: str
    members: tuple[ObjectId, ...]


class TransactionalWorkload:
    """Generates a transactional churn trace over linked clusters."""

    def __init__(
        self,
        spec: TransactionalSpec,
        seed: int = 0,
        initial_clusters: int = 40,
    ) -> None:
        if initial_clusters < 0:
            raise ValueError("initial_clusters must be non-negative")
        self.spec = spec
        self.seed = seed
        self.rng = random.Random(seed)
        self.initial_clusters = initial_clusters
        self._next_oid: ObjectId = 1
        self._next_slot = 0
        self.registry_oid: Optional[ObjectId] = None
        self.clusters: list[_Cluster] = []
        self.aborted_transactions = 0
        self.committed_transactions = 0

    def canonical_material(self) -> dict:
        """Content-addressing material (:class:`repro.workload.base.WorkloadSpec`)."""
        return {
            "workload": "transactional",
            "spec": self.spec,
            "initial_clusters": self.initial_clusters,
            "seed": self.seed,
        }

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------

    def events(self) -> Iterator[TraceEvent]:
        yield PhaseMarkerEvent("tx-setup")
        self.registry_oid = self._new_oid()
        yield CreateEvent(self.registry_oid, 64, ObjectKind.GENERIC)
        yield RootEvent(self.registry_oid)
        for _ in range(self.initial_clusters):
            yield from self._create_cluster()

        yield PhaseMarkerEvent("tx-churn")
        for txid in range(1, self.spec.transactions + 1):
            will_abort = self.rng.random() < self.spec.abort_probability
            snapshot = self._snapshot() if will_abort else None

            yield BeginTransactionEvent(txid)
            for _ in range(self.spec.ops_per_transaction):
                if self.clusters and self.rng.random() < 0.5:
                    yield from self._delete_cluster()
                else:
                    yield from self._create_cluster()
            if will_abort:
                yield AbortTransactionEvent(txid)
                self._restore(snapshot)
                self.aborted_transactions += 1
            else:
                yield CommitTransactionEvent(txid)
                self.committed_transactions += 1

    # ------------------------------------------------------------------
    # Cluster operations (same shapes as SyntheticWorkload)
    # ------------------------------------------------------------------

    def _new_oid(self) -> ObjectId:
        oid = self._next_oid
        self._next_oid += 1
        return oid

    def _create_cluster(self) -> Iterator[TraceEvent]:
        members: list[ObjectId] = []
        successor: Optional[ObjectId] = None
        for _ in range(self.spec.cluster_size):
            oid = self._new_oid()
            pointers = (("next", successor),) if successor is not None else ()
            yield CreateEvent(oid, self.spec.object_size, ObjectKind.GENERIC, pointers=pointers)
            members.append(oid)
            successor = oid
        members.reverse()
        slot = f"cluster{self._next_slot}"
        self._next_slot += 1
        yield PointerWriteEvent(self.registry_oid, slot, members[0])
        self.clusters.append(_Cluster(slot=slot, members=tuple(members)))

    def _delete_cluster(self) -> Iterator[TraceEvent]:
        cluster = self.clusters.pop(self.rng.randrange(len(self.clusters)))
        yield PointerWriteEvent(
            self.registry_oid, cluster.slot, None, dies=cluster.members
        )

    # ------------------------------------------------------------------
    # Logical-state snapshots for aborted transactions
    # ------------------------------------------------------------------

    def _snapshot(self):
        return (list(self.clusters), self._next_oid, self._next_slot)

    def _restore(self, snapshot) -> None:
        clusters, next_oid, next_slot = snapshot
        self.clusters = clusters
        # Oids and slots of rolled-back objects are NOT reused: the store
        # forbids recreating an existing oid, and within one run fresh ids
        # keep the trace unambiguous.
        self._next_oid = max(self._next_oid, next_oid)
        self._next_slot = max(self._next_slot, next_slot)
