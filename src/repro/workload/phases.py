"""The four phases of the test application (§3.4, after [YNY94]).

Figure 2: **GenDB → Reorg1 → Traverse → Reorg2**.

* **GenDB** generates the initial database (delegated to
  :meth:`repro.oo7.schema.Oo7Graph.generate`).
* **Reorg1** deletes half the (deletable) atomic parts and reinserts them,
  composite by composite — re-inserted parts of one composite are allocated
  together, preserving clustering.
* **Traverse** is a read-only depth-first traversal over all atomic parts;
  it performs no pointer overwrites, so overwrite-based "time" stands still
  (§4.1.2).
* **Reorg2** again deletes half the atomic parts, but reinserts them
  round-robin *across* composites so that the parts of any one composite
  scatter over many partitions — "breaking any clustering of atomic parts
  for a given composite part".

The paper deviates from [YNY94] in two ways we reproduce: the traversal sits
*between* the reorganisations (to sharpen the phase transition), and Reorg2
deletes half rather than all parts (so both reorganisations do comparable
work).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.oo7.schema import AtomicPartNode, CompositeNode, Oo7Graph
from repro.events import AccessEvent, PhaseMarkerEvent, TraceEvent

#: Canonical phase names, in application order.
PHASE_GENDB = "GenDB"
PHASE_REORG1 = "Reorg1"
PHASE_TRAVERSE = "Traverse"
PHASE_REORG2 = "Reorg2"
PHASE_ORDER = (PHASE_GENDB, PHASE_REORG1, PHASE_TRAVERSE, PHASE_REORG2)


def gen_db_phase(graph: Oo7Graph) -> Iterator[TraceEvent]:
    """Phase 1: generate the initial database."""
    yield PhaseMarkerEvent(PHASE_GENDB)
    yield from graph.generate()


def _pick_victims(
    composite: CompositeNode, rng: random.Random, fraction: float
) -> list[AtomicPartNode]:
    """A random ``fraction`` of the composite's deletable parts."""
    candidates = composite.deletable_parts()
    count = int(len(candidates) * fraction)
    return rng.sample(candidates, count)


def reorg1_phase(
    graph: Oo7Graph, rng: random.Random, delete_fraction: float = 0.5
) -> Iterator[TraceEvent]:
    """Phase 2: clustered reorganisation.

    For each composite in turn: delete a random half of its deletable parts,
    then immediately reinsert the same number. Because each composite's new
    parts are created consecutively, the heap's sequential placement keeps
    them clustered with each other.
    """
    yield PhaseMarkerEvent(PHASE_REORG1)
    for composite in graph.composites:
        victims = _pick_victims(composite, rng, delete_fraction)
        for part in victims:
            yield from graph.delete_part(part)
        for _ in victims:
            _part, events = graph.insert_part(composite)
            yield from events


def traverse_phase(graph: Oo7Graph) -> Iterator[TraceEvent]:
    """Phase 3: read-only depth-first traversal over all atomic parts.

    Walks the assembly hierarchy to each composite, then DFS over the
    connection graph from the composite's root part; parts unreachable
    through connections are visited directly via the composite's references.
    Every alive part and every traversed connection is accessed exactly once
    per composite visit.
    """
    yield PhaseMarkerEvent(PHASE_TRAVERSE)
    visited_composites: set[int] = set()
    for module in graph.modules:
        yield AccessEvent(module.oid)
        # Walk the module's assembly tree depth-first.
        stack = [module.root_assembly]
        while stack:
            assembly = stack.pop()
            yield AccessEvent(assembly.oid)
            stack.extend(reversed(assembly.children))
            for composite in assembly.composites:
                # Shared composites are traversed once (first encounter).
                if composite.oid in visited_composites:
                    continue
                visited_composites.add(composite.oid)
                yield from _traverse_composite(composite)


def _traverse_composite(composite: CompositeNode) -> Iterator[TraceEvent]:
    yield AccessEvent(composite.oid)
    seen: set[int] = set()
    root = composite.root_part
    stack = [root]
    seen.add(root.oid)
    while stack:
        part = stack.pop()
        yield AccessEvent(part.oid)
        for conn in part.alive_out_conns():
            yield AccessEvent(conn.oid)
            if conn.dst.oid not in seen and not conn.dst.dead:
                seen.add(conn.dst.oid)
                stack.append(conn.dst)
    # Parts not reachable through connections are still held by the composite.
    for part in composite.alive_parts():
        if part.oid not in seen:
            seen.add(part.oid)
            yield AccessEvent(part.oid)


def doc_churn_phase(
    graph: Oo7Graph, rng: random.Random, fraction: float = 0.5, name: str = "DocChurn"
) -> Iterator[TraceEvent]:
    """Optional phase: rewrite the documents of a fraction of composites.

    Not part of the paper's four-phase application, but a direct
    realisation of §2.1's observation that "a single overwrite may
    disconnect very large objects from the database, such as OO7 document
    nodes": each replacement is one overwrite that kills ``DocumentSize``
    bytes, an order of magnitude more garbage per overwrite than atomic-part
    deletion. Mixing this phase into a workload stresses the FGS/HB
    estimator with a bimodal garbage-per-overwrite distribution.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    yield PhaseMarkerEvent(name)
    count = max(1, int(len(graph.composites) * fraction))
    for composite in rng.sample(graph.composites, count):
        yield from graph.replace_document(composite)


def reorg2_phase(
    graph: Oo7Graph, rng: random.Random, delete_fraction: float = 0.5
) -> Iterator[TraceEvent]:
    """Phase 4: de-clustering reorganisation.

    Deletions proceed round-robin across composites (one victim of
    composite 0, one of composite 1, ...), and each deletion is followed by
    one reinsertion into a *different* composite (the round-robin insertion
    cursor runs half the composite list ahead). Work is therefore as steady
    as Reorg1's, but because consecutive insertions always target different
    composites, sequential heap placement scatters each composite's new
    parts across many partitions — "breaking any clustering of atomic parts
    for a given composite part".
    """
    yield PhaseMarkerEvent(PHASE_REORG2)
    composites = graph.composites
    victims_by_composite = {
        composite.oid: _pick_victims(composite, rng, delete_fraction)
        for composite in composites
    }
    insert_quota = {
        composite.oid: len(victims_by_composite[composite.oid])
        for composite in composites
    }

    offset = max(1, len(composites) // 2)
    deleted = 0
    inserted = 0
    rounds = max((len(v) for v in victims_by_composite.values()), default=0)
    for round_index in range(rounds):
        for position, composite in enumerate(composites):
            victims = victims_by_composite[composite.oid]
            if round_index < len(victims):
                yield from graph.delete_part(victims[round_index])
                deleted += 1
            # Insert into a composite half the ring away, if it still has quota.
            target = composites[(position + offset) % len(composites)]
            if insert_quota[target.oid] > 0 and inserted < deleted:
                insert_quota[target.oid] -= 1
                inserted += 1
                _part, events = graph.insert_part(target)
                yield from events
    # Flush any remaining insertions (quota not consumed in the main sweep).
    for composite in composites:
        while insert_quota[composite.oid] > 0:
            insert_quota[composite.oid] -= 1
            _part, events = graph.insert_part(composite)
            yield from events
