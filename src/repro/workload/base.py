"""The unified workload protocol: every workload speaks one surface.

Historically each workload class had its own construction idiom —
:class:`~repro.workload.application.Oo7Application` was a dataclass,
:class:`~repro.workload.synthetic.SyntheticWorkload` took a phase list,
presets returned bare phase lists — and only workloads named by registry
key could be fingerprinted for the trace cache. The :class:`WorkloadSpec`
protocol collapses that: a workload is anything that exposes

* ``seed`` — the seed all of its randomised behaviour derives from,
* ``events()`` — the trace, a one-shot iterator of
  :class:`~repro.events.TraceEvent` values, and
* ``canonical_material()`` — a plain-data description of *what the
  workload is* (not how it is implemented), digestible by
  :func:`repro.canonical.canonical_value`.

:func:`repro.workload.trace_cache.trace_fingerprint` and
:class:`~repro.workload.trace_cache.TraceCache` consume exactly this
surface, so any conforming workload — OO7, synthetic, transactional,
grammar-driven, multi-tenant — caches and replays identically through the
engine.

Naming note: :class:`repro.sim.spec.WorkloadSpec` is the *declarative*
counterpart — it names a workload by registry key plus kwargs so the spec
can travel to worker processes as plain data. The protocol here describes
the *instantiated* workload objects those registry builders construct.
The two forms canonicalise differently (a registry spec digests its kind +
kwargs, an instance digests its ``canonical_material()``), so they address
separate cache entries; within either form, equal description + equal seed
⇒ equal fingerprint.
"""

from __future__ import annotations

from typing import Any, Iterator, Protocol, runtime_checkable

from repro.events import TraceEvent


@runtime_checkable
class WorkloadSpec(Protocol):
    """Anything that generates a deterministic, fingerprintable trace.

    ``events()`` is a one-shot generator by convention: most workloads
    mutate internal bookkeeping (cluster registries, OO7 graphs) while
    generating, so a second call on the same instance is undefined.
    Construct a fresh instance — same constructor arguments, same seed,
    byte-identical trace — to replay.
    """

    #: Seed every randomised choice derives from; two instances constructed
    #: with equal canonical material and equal seeds generate equal traces.
    seed: int

    def events(self) -> Iterator[TraceEvent]:
        """Generate the trace (one-shot)."""
        ...

    def canonical_material(self) -> dict[str, Any]:
        """Plain-data description of the workload, for content addressing.

        The returned structure must be digestible by
        :func:`repro.canonical.canonical_value` (nested dataclasses, enums,
        mappings, sequences and scalars) and must determine the generated
        trace together with ``seed``: equal material + equal seed ⇒ equal
        trace.
        """
        ...
