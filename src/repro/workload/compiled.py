"""Compiled traces: columnar event streams that replay and load fast.

The paper's entire evaluation is trace-driven replay — the same OO7 trace
is replayed once per policy setting per seed. Regenerating the trace from
the OO7 builder for every policy cell wastes most of a sweep's wall time,
and parsing the line-JSON trace files of :mod:`repro.workload.tracefile`
is not much better. This module provides the capture-once / replay-many
representation the original system used ([CWZ93]-style trace files):

* :func:`compile_trace` materialises any event stream into a
  :class:`CompiledTrace` — a compact columnar form (typed ``array`` columns
  for opcodes / object ids / sizes, one interned string table for slot
  names and phase names, flattened pointer and death lists with offset
  tables);
* replaying a compiled trace yields exactly the same
  :class:`~repro.events.TraceEvent` dataclasses the generator produced, so
  simulations driven from a compiled trace are **byte-identical** to
  generator-driven runs;
* :meth:`CompiledTrace.save` / :meth:`CompiledTrace.load` give the trace a
  versioned, checksummed binary on-disk format that loads orders of
  magnitude faster than re-running the OO7 builder.

The representation is immutable once compiled, so one compiled trace can
drive any number of concurrent or sequential simulation runs
(:meth:`CompiledTrace.materialize` memoises the decoded event tuple for
repeat replays in the same process).
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional, Union

from repro.events import (
    AbortTransactionEvent,
    AccessEvent,
    BeginTransactionEvent,
    CommitTransactionEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    TraceEvent,
    UpdateEvent,
)
from repro.storage.object_model import ObjectKind

#: Bump when the columnar layout or the binary encoding changes; loaders
#: reject other versions and trace caches key on it.
TRACE_FORMAT_VERSION = 1

_MAGIC = b"RPTC"
#: ``None`` pointer targets are encoded as the most negative int64 — a value
#: no generator can produce as a real object id.
_NONE = -(2**63)

# Opcodes (the ``ops`` column).
_OP_CREATE = 0
_OP_ACCESS = 1
_OP_UPDATE = 2
_OP_WRITE = 3
_OP_ROOT = 4
_OP_PHASE = 5
_OP_IDLE = 6
_OP_BEGIN = 7
_OP_COMMIT = 8
_OP_ABORT = 9


class CompiledTraceError(Exception):
    """Raised when a compiled trace file is malformed, truncated or of an
    unsupported format version."""


class CompiledTrace:
    """A columnar, immutable, replayable representation of one trace.

    Column layout (all ``array`` typecode ``'q'`` unless noted):

    * ``ops`` (``'b'``)   — one opcode per event;
    * ``arg0``            — primary operand: oid / src / txid / ticks /
      string index (phase markers);
    * ``arg1``            — secondary operand: size (creates) or pointer
      target (writes, ``_NONE`` encodes null);
    * ``strings``         — one interned table for slot names, phase names
      and kind tags;
    * creates: ``create_kind`` (string index) plus a pointer-list
      offset table ``create_ptr_start`` over the flattened
      ``ptr_slots`` / ``ptr_targets`` columns;
    * writes: ``write_slot`` (string index) plus a death-list offset table
      ``write_dies_start`` over the flattened ``dies`` column.

    Construct via :func:`compile_trace` or :meth:`load`.
    """

    __slots__ = (
        "ops", "arg0", "arg1", "strings",
        "create_kind", "create_ptr_start", "ptr_slots", "ptr_targets",
        "write_slot", "write_dies_start", "dies",
        "_materialized", "_batch_cache",
    )

    def __init__(
        self,
        ops: array,
        arg0: array,
        arg1: array,
        strings: list[str],
        create_kind: array,
        create_ptr_start: array,
        ptr_slots: array,
        ptr_targets: array,
        write_slot: array,
        write_dies_start: array,
        dies: array,
    ) -> None:
        self.ops = ops
        self.arg0 = arg0
        self.arg1 = arg1
        self.strings = strings
        self.create_kind = create_kind
        self.create_ptr_start = create_ptr_start
        self.ptr_slots = ptr_slots
        self.ptr_targets = ptr_targets
        self.write_slot = write_slot
        self.write_dies_start = write_dies_start
        self.dies = dies
        self._materialized: Optional[tuple[TraceEvent, ...]] = None
        # Memoised column views + run index for the batched interpreter
        # (repro.sim.batch); built on first batched replay of this trace.
        self._batch_cache = None

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[TraceEvent]:
        if self._materialized is not None:
            return iter(self._materialized)
        return self.replay()

    def materialize(self) -> tuple[TraceEvent, ...]:
        """Decode the whole trace once and memoise the event tuple.

        Events are frozen dataclasses, so sharing one decoded tuple across
        any number of replays in the same process is safe; subsequent
        iteration skips decoding entirely.
        """
        if self._materialized is None:
            self._materialized = tuple(self.replay())
        return self._materialized

    def replay(self, start_index: int = 0) -> Iterator[TraceEvent]:
        """Stream the events back, optionally skipping a prefix.

        ``start_index`` positions the replay without decoding the skipped
        events (crash-recovery drills resume mid-trace); indices stay
        absolute with respect to the original stream.
        """
        ops = self.ops
        arg0 = self.arg0
        arg1 = self.arg1
        strings = self.strings
        create_kind = self.create_kind
        create_ptr_start = self.create_ptr_start
        ptr_slots = self.ptr_slots
        ptr_targets = self.ptr_targets
        write_slot = self.write_slot
        write_dies_start = self.write_dies_start
        dies = self.dies

        if start_index < 0:
            raise ValueError(f"start_index must be >= 0, got {start_index}")
        if start_index:
            prefix = ops[:start_index]
            if not isinstance(prefix, array):
                # Zero-copy traces hold memoryviews, which slice to
                # memoryviews and lack ``count``.
                prefix = array("b", prefix.tobytes())
            ci = prefix.count(_OP_CREATE)
            wi = prefix.count(_OP_WRITE)
        else:
            ci = wi = 0

        # Decode ObjectKind values once per distinct string index.
        kinds: dict[int, ObjectKind] = {}
        none = _NONE

        for i in range(start_index, len(ops)):
            op = ops[i]
            a = arg0[i]
            if op == _OP_ACCESS:
                yield AccessEvent(oid=a)
            elif op == _OP_WRITE:
                target = arg1[i]
                lo = write_dies_start[wi]
                hi = write_dies_start[wi + 1]
                yield PointerWriteEvent(
                    src=a,
                    slot=strings[write_slot[wi]],
                    target=None if target == none else target,
                    dies=tuple(dies[lo:hi]),
                )
                wi += 1
            elif op == _OP_CREATE:
                ki = create_kind[ci]
                kind = kinds.get(ki)
                if kind is None:
                    kind = kinds.setdefault(ki, ObjectKind(strings[ki]))
                lo = create_ptr_start[ci]
                hi = create_ptr_start[ci + 1]
                yield CreateEvent(
                    oid=a,
                    size=arg1[i],
                    kind=kind,
                    pointers=tuple(
                        (
                            strings[ptr_slots[j]],
                            None if ptr_targets[j] == none else ptr_targets[j],
                        )
                        for j in range(lo, hi)
                    ),
                )
                ci += 1
            elif op == _OP_UPDATE:
                yield UpdateEvent(oid=a)
            elif op == _OP_ROOT:
                yield RootEvent(oid=a)
            elif op == _OP_PHASE:
                yield PhaseMarkerEvent(name=strings[a])
            elif op == _OP_IDLE:
                yield IdleEvent(ticks=a)
            elif op == _OP_BEGIN:
                yield BeginTransactionEvent(txid=a)
            elif op == _OP_COMMIT:
                yield CommitTransactionEvent(txid=a)
            elif op == _OP_ABORT:
                yield AbortTransactionEvent(txid=a)
            else:  # pragma: no cover - compile_trace never emits other ops
                raise CompiledTraceError(f"unknown opcode {op} at event {i}")

    # ------------------------------------------------------------------
    # Binary on-disk format
    # ------------------------------------------------------------------
    #
    # Layout (all integers little-endian):
    #
    #   magic "RPTC" | u16 version | u32 crc32-of-body | u64 body-length
    #   body:
    #     u32 n_strings, then per string: u32 utf8-length + bytes
    #     10 columns, each: u8 typecode-ord + u64 byte-length + raw items
    #
    # The CRC makes torn or truncated writes detectable; loaders raise
    # CompiledTraceError (callers such as TraceCache treat that as a miss).

    _COLUMNS = (
        "ops", "arg0", "arg1",
        "create_kind", "create_ptr_start", "ptr_slots", "ptr_targets",
        "write_slot", "write_dies_start", "dies",
    )

    def save(self, target: Union[str, Path, IO[bytes]]) -> None:
        """Write the trace to its versioned binary format."""
        if isinstance(target, (str, Path)):
            with open(target, "wb") as handle:
                self.save(handle)
            return
        body = bytearray()
        body += struct.pack("<I", len(self.strings))
        for text in self.strings:
            raw = text.encode("utf-8")
            body += struct.pack("<I", len(raw))
            body += raw
        for name in self._COLUMNS:
            column = getattr(self, name)
            # Zero-copy traces hold memoryviews (``format``) rather than
            # arrays (``typecode``); both serialise identically.
            typecode = getattr(column, "typecode", None) or column.format
            if sys.byteorder != "little":  # pragma: no cover - exotic hosts
                column = array(typecode, column)
                column.byteswap()
            raw = column.tobytes()
            body += struct.pack("<BQ", ord(typecode), len(raw))
            body += raw
        target.write(_MAGIC)
        target.write(
            struct.pack(
                "<HIQ", TRACE_FORMAT_VERSION, zlib.crc32(bytes(body)), len(body)
            )
        )
        target.write(bytes(body))

    @classmethod
    def load(cls, source: Union[str, Path, IO[bytes]]) -> "CompiledTrace":
        """Read a trace back; raises :class:`CompiledTraceError` on any
        malformed, truncated, corrupt or version-mismatched input."""
        if isinstance(source, (str, Path)):
            with open(source, "rb") as handle:
                return cls.load(handle)
        return cls.from_bytes(source.read())

    @classmethod
    def from_bytes(
        cls,
        data: Union[bytes, bytearray, memoryview],
        *,
        verify: bool = True,
        zero_copy: bool = False,
    ) -> "CompiledTrace":
        """Decode a trace from an in-memory buffer.

        Args:
            data: The full binary encoding (:meth:`save`'s output). Trailing
                bytes beyond the declared body length are tolerated —
                shared-memory segments are page-size-rounded, so a mapped
                buffer is usually slightly longer than the trace.
            verify: Check the body CRC. Publishers validate before sharing a
                segment, so workers attaching to one may skip the extra pass.
            zero_copy: Build the numeric columns as ``memoryview`` casts
                into ``data`` instead of copying into fresh ``array``
                objects — the shared-memory handoff path, where every worker
                reads one mapped copy of the columns. The caller must keep
                ``data``'s buffer alive for the lifetime of the trace.
                (Big-endian hosts fall back to copying: the on-disk format
                is little-endian and a cast cannot byteswap.)
        """
        view = memoryview(data)
        header_size = len(_MAGIC) + struct.calcsize("<HIQ")
        if len(view) < header_size:
            raise CompiledTraceError("truncated compiled-trace header")
        if bytes(view[: len(_MAGIC)]) != _MAGIC:
            raise CompiledTraceError("not a compiled trace (bad magic)")
        version, crc, body_len = struct.unpack_from("<HIQ", view, len(_MAGIC))
        if version != TRACE_FORMAT_VERSION:
            raise CompiledTraceError(
                f"unsupported compiled-trace format version {version} "
                f"(this build reads version {TRACE_FORMAT_VERSION})"
            )
        if len(view) - header_size < body_len:
            raise CompiledTraceError("compiled trace body is truncated or corrupt")
        body = view[header_size : header_size + body_len]
        if verify and zlib.crc32(body) != crc:
            raise CompiledTraceError("compiled trace body is truncated or corrupt")
        if zero_copy and sys.byteorder != "little":  # pragma: no cover
            zero_copy = False

        offset = 0

        def take(count: int) -> memoryview:
            nonlocal offset
            chunk = body[offset : offset + count]
            if len(chunk) != count:
                raise CompiledTraceError("compiled trace body ended unexpectedly")
            offset += count
            return chunk

        (n_strings,) = struct.unpack("<I", take(4))
        strings = []
        for _ in range(n_strings):
            (length,) = struct.unpack("<I", take(4))
            strings.append(bytes(take(length)).decode("utf-8"))
        columns = []
        for name in cls._COLUMNS:
            typecode_ord, raw_len = struct.unpack("<BQ", bytes(take(9)))
            typecode = chr(typecode_ord)
            itemsize = array(typecode).itemsize
            raw = take(raw_len)
            if raw_len % itemsize:
                raise CompiledTraceError(
                    f"column {name!r} has a partial trailing item"
                )
            if zero_copy:
                columns.append(raw.cast(typecode))
            else:
                column = array(typecode)
                column.frombytes(raw)
                if sys.byteorder != "little":  # pragma: no cover - exotic hosts
                    column.byteswap()
                columns.append(column)
        ops, arg0, arg1 = columns[0], columns[1], columns[2]
        if not (len(ops) == len(arg0) == len(arg1)):
            raise CompiledTraceError("event columns disagree on length")
        return cls(ops, arg0, arg1, strings, *columns[3:])

    def byte_size(self) -> int:
        """Approximate in-memory footprint of the columns, in bytes."""
        total = sum(len(s.encode("utf-8")) for s in self.strings)
        for name in self._COLUMNS:
            column = getattr(self, name)
            total += len(column) * column.itemsize
        return total


def compile_trace(events: Iterable[TraceEvent]) -> CompiledTrace:
    """Materialise an event stream into a :class:`CompiledTrace`.

    Consumes the iterable once. Replaying the result is event-for-event
    equal to the original stream (tests assert this property under
    Hypothesis-generated traces).
    """
    ops = array("b")
    arg0 = array("q")
    arg1 = array("q")
    strings: list[str] = []
    intern: dict[str, int] = {}
    create_kind = array("q")
    create_ptr_start = array("q", [0])
    ptr_slots = array("q")
    ptr_targets = array("q")
    write_slot = array("q")
    write_dies_start = array("q", [0])
    dies = array("q")

    def intern_string(text: str) -> int:
        index = intern.get(text)
        if index is None:
            index = len(strings)
            intern[text] = index
            strings.append(text)
        return index

    for event in events:
        cls = type(event)
        if cls is AccessEvent:
            ops.append(_OP_ACCESS)
            arg0.append(event.oid)
            arg1.append(0)
        elif cls is PointerWriteEvent:
            ops.append(_OP_WRITE)
            arg0.append(event.src)
            arg1.append(_NONE if event.target is None else event.target)
            write_slot.append(intern_string(event.slot))
            dies.extend(event.dies)
            write_dies_start.append(len(dies))
        elif cls is CreateEvent:
            ops.append(_OP_CREATE)
            arg0.append(event.oid)
            arg1.append(event.size)
            create_kind.append(intern_string(event.kind.value))
            for slot, target in event.pointers:
                ptr_slots.append(intern_string(slot))
                ptr_targets.append(_NONE if target is None else target)
            create_ptr_start.append(len(ptr_slots))
        elif cls is UpdateEvent:
            ops.append(_OP_UPDATE)
            arg0.append(event.oid)
            arg1.append(0)
        elif cls is RootEvent:
            ops.append(_OP_ROOT)
            arg0.append(event.oid)
            arg1.append(0)
        elif cls is PhaseMarkerEvent:
            ops.append(_OP_PHASE)
            arg0.append(intern_string(event.name))
            arg1.append(0)
        elif cls is IdleEvent:
            ops.append(_OP_IDLE)
            arg0.append(event.ticks)
            arg1.append(0)
        elif cls is BeginTransactionEvent:
            ops.append(_OP_BEGIN)
            arg0.append(event.txid)
            arg1.append(0)
        elif cls is CommitTransactionEvent:
            ops.append(_OP_COMMIT)
            arg0.append(event.txid)
            arg1.append(0)
        elif cls is AbortTransactionEvent:
            ops.append(_OP_ABORT)
            arg0.append(event.txid)
            arg1.append(0)
        else:
            raise TypeError(f"cannot compile unknown trace event {event!r}")

    return CompiledTrace(
        ops, arg0, arg1, strings,
        create_kind, create_ptr_start, ptr_slots, ptr_targets,
        write_slot, write_dies_start, dies,
    )
