"""Synthetic application traces with configurable phase behaviour.

The paper's traces come from one OO7 application; the authors note their
policies should adapt to *any* mix of behaviours. This module generates
controlled synthetic traces for studying responsiveness and accuracy outside
OO7 — and stands in for the authors' unavailable raw trace files (see the
substitution note in DESIGN.md).

The synthetic database is a registry of linked clusters: the registry object
holds one pointer per cluster head, and each cluster is a singly linked chain
of member objects. This shape makes garbage-per-overwrite directly tunable:

* deleting a whole cluster costs **one** overwrite and frees
  ``cluster_size × object_size`` bytes (the §2.1 "large connected structure
  detached by a single overwrite"),
* trimming a chain suffix costs one overwrite for a configurable fraction of
  the cluster.

A workload is a sequence of :class:`SyntheticPhase` specs; each phase runs a
number of *operations* drawn from its behaviour mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.storage.object_model import ObjectId, ObjectKind
from repro.events import (
    AccessEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    TraceEvent,
)


@dataclass(frozen=True)
class SyntheticPhase:
    """One phase of a synthetic application.

    Attributes:
        name: Phase label (emitted as a phase marker).
        operations: Number of operations to perform.
        create_weight / delete_weight / trim_weight / access_weight /
        idle_weight: Relative likelihood of each operation kind.
        cluster_size: Members per newly created cluster in this phase.
        object_size: Bytes per member object created in this phase.
        trim_fraction: Fraction of a cluster a trim operation cuts off.
    """

    name: str
    operations: int
    create_weight: float = 1.0
    delete_weight: float = 1.0
    trim_weight: float = 0.0
    access_weight: float = 2.0
    idle_weight: float = 0.0
    cluster_size: int = 8
    object_size: int = 128
    trim_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.operations < 0:
            raise ValueError(f"operations must be non-negative, got {self.operations}")
        weights = (
            self.create_weight,
            self.delete_weight,
            self.trim_weight,
            self.access_weight,
            self.idle_weight,
        )
        if any(w < 0 for w in weights):
            raise ValueError("operation weights must be non-negative")
        if sum(weights) <= 0:
            raise ValueError("at least one operation weight must be positive")
        if self.cluster_size < 1:
            raise ValueError(f"cluster_size must be >= 1, got {self.cluster_size}")
        if self.object_size < 1:
            raise ValueError(f"object_size must be >= 1, got {self.object_size}")
        if not 0.0 < self.trim_fraction < 1.0:
            raise ValueError(f"trim_fraction must be in (0, 1), got {self.trim_fraction}")


@dataclass(eq=False)
class _Cluster:
    """Generator-side bookkeeping for one linked cluster."""

    slot: str
    members: list[ObjectId] = field(default_factory=list)  # head first
    member_size: int = 0


_OPERATIONS = ("create", "delete", "trim", "access", "idle")


class SyntheticWorkload:
    """Generates a synthetic trace from a sequence of phase specs.

    Args:
        phases: Phase specifications, run in order.
        seed: Seed for all randomised choices.
        initial_clusters: Clusters created up front (before the first phase)
            so delete/access operations have material to work on immediately.
    """

    def __init__(
        self,
        phases: list[SyntheticPhase],
        seed: int = 0,
        initial_clusters: int = 16,
    ) -> None:
        if not phases:
            raise ValueError("at least one phase is required")
        if initial_clusters < 0:
            raise ValueError(f"initial_clusters must be non-negative, got {initial_clusters}")
        self.phases = list(phases)
        self.seed = seed
        self.rng = random.Random(seed)
        self.initial_clusters = initial_clusters
        self._next_oid: ObjectId = 1
        self._next_slot = 0
        self.registry_oid: Optional[ObjectId] = None
        self.clusters: list[_Cluster] = []
        #: Object sizes by oid, for trace statistics and tests.
        self.object_sizes: dict[ObjectId, int] = {}

    def canonical_material(self) -> dict:
        """Content-addressing material (:class:`repro.workload.base.WorkloadSpec`)."""
        return {
            "workload": "synthetic",
            "phases": self.phases,
            "initial_clusters": self.initial_clusters,
            "seed": self.seed,
        }

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------

    def events(self) -> Iterator[TraceEvent]:
        """The full synthetic trace."""
        yield from self._setup()
        for phase in self.phases:
            yield PhaseMarkerEvent(phase.name)
            yield from self._run_phase(phase)

    def _setup(self) -> Iterator[TraceEvent]:
        self.registry_oid = self._new_oid(64)
        yield CreateEvent(self.registry_oid, 64, ObjectKind.GENERIC)
        yield RootEvent(self.registry_oid)
        first = self.phases[0]
        for _ in range(self.initial_clusters):
            yield from self._create_cluster(first.cluster_size, first.object_size)

    def _run_phase(self, phase: SyntheticPhase) -> Iterator[TraceEvent]:
        weights = [
            phase.create_weight,
            phase.delete_weight,
            phase.trim_weight,
            phase.access_weight,
            phase.idle_weight,
        ]
        for _ in range(phase.operations):
            op = self.rng.choices(_OPERATIONS, weights=weights)[0]
            if op == "create":
                yield from self._create_cluster(phase.cluster_size, phase.object_size)
            elif op == "delete":
                yield from self._delete_cluster()
            elif op == "trim":
                yield from self._trim_cluster(phase.trim_fraction)
            elif op == "access":
                yield from self._access_cluster()
            else:
                yield IdleEvent()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _new_oid(self, size: int) -> ObjectId:
        oid = self._next_oid
        self._next_oid += 1
        self.object_sizes[oid] = size
        return oid

    def _create_cluster(self, cluster_size: int, object_size: int) -> Iterator[TraceEvent]:
        """Create a chain tail-first, then root its head in the registry.

        Tail-first creation means every member's successor already exists
        when the member is created, so only the not-yet-linked frontier
        object ever depends on the store's allocation pinning.
        """
        members: list[ObjectId] = []
        successor: Optional[ObjectId] = None
        for _ in range(cluster_size):
            oid = self._new_oid(object_size)
            pointers = (("next", successor),) if successor is not None else ()
            yield CreateEvent(oid, object_size, ObjectKind.GENERIC, pointers=pointers)
            members.append(oid)
            successor = oid
        members.reverse()  # head first

        slot = f"cluster{self._next_slot}"
        self._next_slot += 1
        yield PointerWriteEvent(self.registry_oid, slot, members[0])
        self.clusters.append(_Cluster(slot=slot, members=members, member_size=object_size))

    def _delete_cluster(self) -> Iterator[TraceEvent]:
        """Detach an entire cluster with a single overwrite."""
        if not self.clusters:
            return
        cluster = self.clusters.pop(self.rng.randrange(len(self.clusters)))
        yield PointerWriteEvent(
            self.registry_oid, cluster.slot, None, dies=tuple(cluster.members)
        )

    def _trim_cluster(self, fraction: float) -> Iterator[TraceEvent]:
        """Cut off a suffix of a cluster with a single overwrite."""
        candidates = [c for c in self.clusters if len(c.members) >= 2]
        if not candidates:
            return
        cluster = self.rng.choice(candidates)
        keep = max(1, int(len(cluster.members) * (1.0 - fraction)))
        dead = cluster.members[keep:]
        if not dead:
            return
        yield PointerWriteEvent(cluster.members[keep - 1], "next", None, dies=tuple(dead))
        del cluster.members[keep:]

    def _access_cluster(self) -> Iterator[TraceEvent]:
        """Read every member of a random cluster, head to tail."""
        if not self.clusters:
            return
        cluster = self.rng.choice(self.clusters)
        for oid in cluster.members:
            yield AccessEvent(oid)
