"""Workloads: trace events, the OO7 test application, synthetic generators."""

from repro.workload.application import Oo7Application
from repro.events import (
    AccessEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    TraceEvent,
    TraceStats,
    UpdateEvent,
    iterate_trace,
    trace_stats,
)
from repro.workload.phases import (
    PHASE_GENDB,
    PHASE_ORDER,
    PHASE_REORG1,
    PHASE_REORG2,
    PHASE_TRAVERSE,
    doc_churn_phase,
    gen_db_phase,
    reorg1_phase,
    reorg2_phase,
    traverse_phase,
)
from repro.workload.presets import PRESETS, make_preset
from repro.workload.synthetic import SyntheticPhase, SyntheticWorkload
from repro.workload.transactional import TransactionalSpec, TransactionalWorkload
from repro.workload.tracefile import (
    TraceFormatError,
    read_trace,
    write_trace,
)
from repro.workload.compiled import (
    TRACE_FORMAT_VERSION,
    CompiledTrace,
    CompiledTraceError,
    compile_trace,
)
from repro.workload.trace_cache import TraceCache, TraceCacheStats, trace_fingerprint

__all__ = [
    "AccessEvent",
    "CompiledTrace",
    "CompiledTraceError",
    "CreateEvent",
    "IdleEvent",
    "TRACE_FORMAT_VERSION",
    "TraceCache",
    "TraceCacheStats",
    "Oo7Application",
    "PHASE_GENDB",
    "PHASE_ORDER",
    "PHASE_REORG1",
    "PHASE_REORG2",
    "PHASE_TRAVERSE",
    "PRESETS",
    "PhaseMarkerEvent",
    "PointerWriteEvent",
    "RootEvent",
    "SyntheticPhase",
    "SyntheticWorkload",
    "TraceEvent",
    "TraceFormatError",
    "TransactionalSpec",
    "TransactionalWorkload",
    "TraceStats",
    "UpdateEvent",
    "compile_trace",
    "doc_churn_phase",
    "gen_db_phase",
    "iterate_trace",
    "make_preset",
    "reorg1_phase",
    "reorg2_phase",
    "read_trace",
    "trace_fingerprint",
    "trace_stats",
    "traverse_phase",
    "write_trace",
]
