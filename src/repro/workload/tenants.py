"""Multi-tenant traffic: deterministic interleaving of client streams.

The ROADMAP's north star is heavy traffic from many concurrent clients; the
paper's traces are single-application. This module models N *tenants* —
each a grammar workload (:mod:`repro.workload.grammar`) with its own
behaviour mix, pacing and seed — and merges their event streams into one
trace a single simulated store serves:

* **Interleaved** (:class:`TenantMix`): one heap, one trace. Each step a
  seeded weighted draw picks the tenant that emits next; object ids are
  stride-remapped (``oid * n_tenants + index``) so tenant id spaces never
  collide, and phase markers are prefixed ``tenant/phase`` so results
  remain attributable. Transactions, if a tenant emits them, stay atomic:
  once a tenant opens a transaction it keeps the floor until commit/abort.
* **Sharded** (:meth:`TenantMix.shards`): one heap per tenant. The same
  derived per-tenant seeds are used, so a sharded run is the interleaved
  run's traffic split across stores — the fleet driver sweeps both.

Per-tenant seeds derive from the mix seed as ``seed * 7919 + index``
(7919 = the 1000th prime — any odd multiplier works; it just keeps nearby
mix seeds from producing overlapping tenant seeds), so one mix seed pins
the whole scenario.

The bundled :data:`TENANT_PROFILES` library provides the scenario
vocabulary the ISSUE names — OLTP churn, bulk load, read-mostly browse,
diurnal bursts, hot-key skew — as ready grammar configs scaled by one
knob.
"""

from __future__ import annotations

import json
import random
from bisect import bisect
from dataclasses import dataclass
from itertools import accumulate
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.events import (
    AbortTransactionEvent,
    AccessEvent,
    BeginTransactionEvent,
    CommitTransactionEvent,
    CreateEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    TraceEvent,
    UpdateEvent,
)
from repro.workload.grammar import (
    Choice,
    Fixed,
    GrammarError,
    GrammarWorkload,
    OpMix,
    PhaseBlock,
    Uniform,
    WorkloadConfig,
)

#: Bump when the tenant-mix schema changes shape.
TENANT_FORMAT_VERSION = 1

#: Multiplier for deriving per-tenant seeds from the mix seed.
TENANT_SEED_STRIDE = 7919


def tenant_seed(seed: int, index: int) -> int:
    """The seed tenant ``index`` derives from mix seed ``seed``."""
    return seed * TENANT_SEED_STRIDE + index


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a named grammar workload with an interleave weight."""

    name: str
    config: WorkloadConfig
    weight: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "weight", float(self.weight))
        if not self.name:
            raise GrammarError("tenant name must be non-empty")
        if "/" in self.name:
            raise GrammarError(
                f"tenant name {self.name!r} must not contain '/' "
                "(reserved for the tenant/phase marker prefix)"
            )
        if self.weight <= 0:
            raise GrammarError(f"tenant weight must be > 0, got {self.weight}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "weight": self.weight,
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "TenantSpec":
        if not isinstance(payload, dict):
            raise GrammarError(f"tenant must be a dict, got {payload!r}")
        unknown = set(payload) - {"name", "weight", "config"}
        if unknown:
            raise GrammarError(f"tenant got unknown keys {sorted(unknown)}")
        return cls(
            name=payload.get("name", ""),
            config=WorkloadConfig.from_dict(payload.get("config")),
            weight=float(payload.get("weight", 1.0)),
        )


@dataclass(frozen=True)
class TenantMixConfig:
    """A complete multi-tenant scenario: tenants plus interleave weights."""

    name: str
    tenants: tuple[TenantSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if not self.name:
            raise GrammarError("tenant mix name must be non-empty")
        if not self.tenants:
            raise GrammarError("at least one tenant is required")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise GrammarError(f"tenant names must be unique, got {names}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": TENANT_FORMAT_VERSION,
            "name": self.name,
            "tenants": [t.to_dict() for t in self.tenants],
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "TenantMixConfig":
        if not isinstance(payload, dict):
            raise GrammarError(f"tenant mix must be a dict, got {payload!r}")
        version = payload.get("format", TENANT_FORMAT_VERSION)
        if version != TENANT_FORMAT_VERSION:
            raise GrammarError(
                f"unsupported tenant-mix format {version!r} "
                f"(this build reads version {TENANT_FORMAT_VERSION})"
            )
        unknown = set(payload) - {"format", "name", "tenants"}
        if unknown:
            raise GrammarError(f"tenant mix got unknown keys {sorted(unknown)}")
        tenants = payload.get("tenants")
        if not isinstance(tenants, list):
            raise GrammarError("tenant mix needs a 'tenants' list")
        return cls(
            name=payload.get("name", ""),
            tenants=tuple(TenantSpec.from_dict(t) for t in tenants),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TenantMixConfig":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise GrammarError(f"invalid JSON tenant mix: {exc}") from None
        return cls.from_dict(payload)


# ----------------------------------------------------------------------
# The interleaver
# ----------------------------------------------------------------------


def _remap_event(event: TraceEvent, stride: int, offset: int, prefix: str) -> TraceEvent:
    """Remap one tenant event into the shared id/marker space.

    Object ids map ``oid → oid * stride + offset`` (disjoint residue
    classes per tenant); transaction ids likewise; phase markers gain the
    ``tenant/`` prefix. Events without ids (idle) pass through unchanged.
    """

    def oid(value):
        return value * stride + offset

    if isinstance(event, CreateEvent):
        pointers = tuple(
            (slot, None if target is None else oid(target))
            for slot, target in event.pointers
        )
        return CreateEvent(oid(event.oid), event.size, event.kind, pointers=pointers)
    if isinstance(event, AccessEvent):
        return AccessEvent(oid(event.oid))
    if isinstance(event, UpdateEvent):
        return UpdateEvent(oid(event.oid))
    if isinstance(event, PointerWriteEvent):
        return PointerWriteEvent(
            oid(event.src),
            event.slot,
            None if event.target is None else oid(event.target),
            dies=tuple(oid(d) for d in event.dies),
        )
    if isinstance(event, RootEvent):
        return RootEvent(oid(event.oid))
    if isinstance(event, PhaseMarkerEvent):
        return PhaseMarkerEvent(f"{prefix}/{event.name}")
    if isinstance(event, BeginTransactionEvent):
        return BeginTransactionEvent(oid(event.txid))
    if isinstance(event, CommitTransactionEvent):
        return CommitTransactionEvent(oid(event.txid))
    if isinstance(event, AbortTransactionEvent):
        return AbortTransactionEvent(oid(event.txid))
    return event  # IdleEvent


#: Valid ``TenantMix`` merge implementations.
MERGE_MODES = ("bisect", "choices")


class TenantMix:
    """Interleaves N tenant streams into one deterministic trace.

    Conforms to :class:`repro.workload.base.WorkloadSpec`: the merged
    stream is a function of (config, seed) only, so it fingerprints and
    caches like any single-tenant workload.

    Args:
        config: The multi-tenant scenario.
        seed: Seed for the interleave draws *and* (via
            :func:`tenant_seed`) every tenant's own generator.
        merge_mode: How the weighted tenant draw is implemented.
            ``"bisect"`` (default) keeps the cumulative-weight table cached
            across steps and draws in O(log k) per merge step, rebuilding
            the table only when a tenant exhausts; ``"choices"`` is the
            original O(k)-per-step ``random.choices`` path, kept for A/B
            verification. Both consume exactly one ``random()`` per draw
            over float-identical cumulative sums, so the merged traces are
            **byte-identical** (property-tested) — which is why the mode
            is deliberately excluded from ``canonical_material``: it can
            never change the trace, so it must not split cache entries.
    """

    def __init__(
        self,
        config: TenantMixConfig,
        seed: int = 0,
        merge_mode: str = "bisect",
    ) -> None:
        if merge_mode not in MERGE_MODES:
            raise GrammarError(
                f"merge_mode must be one of {MERGE_MODES}, got {merge_mode!r}"
            )
        self.config = config
        self.seed = seed
        self.merge_mode = merge_mode

    def canonical_material(self) -> dict[str, Any]:
        return {"workload": "tenant-mix", "config": self.config, "seed": self.seed}

    def tenant_workloads(self) -> list[GrammarWorkload]:
        """Fresh per-tenant generators with their derived seeds (un-remapped)."""
        return [
            GrammarWorkload(tenant.config, seed=tenant_seed(self.seed, index))
            for index, tenant in enumerate(self.config.tenants)
        ]

    def shards(self) -> list[tuple[TenantSpec, GrammarWorkload]]:
        """One workload per tenant, for sharding across separate heaps.

        Shard traffic uses the same derived seeds as the interleaved trace,
        so a sharded sweep is the same scenario split across stores.
        """
        return list(zip(self.config.tenants, self.tenant_workloads()))

    def events(self) -> Iterator[TraceEvent]:
        """The merged trace (one-shot).

        Each step draws a live tenant (seeded, weighted by
        ``TenantSpec.weight``) and emits its next event, remapped into the
        shared id space. A tenant inside a transaction keeps emitting until
        it commits or aborts, so transaction blocks stay contiguous.
        Exhausted tenants leave the draw; the trace ends when all are done.
        """
        streams: list[Iterator[TraceEvent]] = [
            workload.events() for workload in self.tenant_workloads()
        ]
        if self.merge_mode == "choices":
            return self._merge_choices(streams)
        return self._merge_bisect(streams)

    def stream(self, max_live_clusters: int = 512) -> Iterator[TraceEvent]:
        """The merged **unbounded** stream (one-shot, bounded memory).

        Every tenant runs its :meth:`~repro.workload.grammar.
        GrammarWorkload.stream` — cycling phases forever with at most
        ``max_live_clusters`` live clusters each — and the draw table is
        built exactly once (no tenant ever exhausts). Like the finite
        trace, the stream is a pure function of (config, seed, cap):
        re-instantiating the mix and islicing reproduces any suffix, which
        is what lets a recovered service resume mid-stream.
        """
        tenants = self.config.tenants
        stride = len(tenants)
        rng = random.Random(self.seed)
        streams = [
            workload.stream(max_live_clusters)
            for workload in self.tenant_workloads()
        ]
        weights = [tenant.weight for tenant in tenants]
        cum_weights = list(accumulate(weights))
        total = cum_weights[-1] + 0.0
        hi = stride - 1
        random_ = rng.random
        while True:
            index = bisect(cum_weights, random_() * total, 0, hi)
            in_transaction = False
            while True:
                event = next(streams[index])
                yield _remap_event(event, stride, index, tenants[index].name)
                if isinstance(event, BeginTransactionEvent):
                    in_transaction = True
                elif isinstance(event, (CommitTransactionEvent, AbortTransactionEvent)):
                    in_transaction = False
                if not in_transaction:
                    break

    def _merge_bisect(
        self, streams: list[Iterator[TraceEvent]]
    ) -> Iterator[TraceEvent]:
        """K-way merge with a cached cumulative-weight table.

        ``random.choices`` rebuilds its cumulative sums on every call —
        O(k) per merge step. This path computes the identical table once
        (``itertools.accumulate`` over the same weights list, so every
        float sum is bit-equal), draws with one ``rng.random()`` through
        the same ``bisect(cum, u * total, 0, hi)`` the stdlib uses, and
        rebuilds only when a tenant exhausts — O(log k) per step, at most
        k rebuilds per trace, byte-identical output.
        """
        tenants = self.config.tenants
        stride = len(tenants)
        rng = random.Random(self.seed)
        live = list(range(stride))
        weights = [tenants[i].weight for i in live]
        cum_weights = list(accumulate(weights))
        total = cum_weights[-1] + 0.0
        hi = len(cum_weights) - 1
        random_ = rng.random
        while live:
            pick = bisect(cum_weights, random_() * total, 0, hi)
            index = live[pick]
            in_transaction = False
            while True:
                event = next(streams[index], None)
                if event is None:
                    del live[pick]
                    del weights[pick]
                    if live:
                        cum_weights = list(accumulate(weights))
                        total = cum_weights[-1] + 0.0
                        hi = len(cum_weights) - 1
                    break
                yield _remap_event(event, stride, index, tenants[index].name)
                if isinstance(event, BeginTransactionEvent):
                    in_transaction = True
                elif isinstance(event, (CommitTransactionEvent, AbortTransactionEvent)):
                    in_transaction = False
                if not in_transaction:
                    break

    def _merge_choices(
        self, streams: list[Iterator[TraceEvent]]
    ) -> Iterator[TraceEvent]:
        """The original ``random.choices`` merge (A/B reference path)."""
        tenants = self.config.tenants
        stride = len(tenants)
        rng = random.Random(self.seed)
        live = list(range(stride))
        weights = [tenants[i].weight for i in live]
        while live:
            pick = rng.choices(range(len(live)), weights=weights)[0]
            index = live[pick]
            in_transaction = False
            while True:
                event = next(streams[index], None)
                if event is None:
                    del live[pick]
                    del weights[pick]
                    break
                yield _remap_event(event, stride, index, tenants[index].name)
                if isinstance(event, BeginTransactionEvent):
                    in_transaction = True
                elif isinstance(event, (CommitTransactionEvent, AbortTransactionEvent)):
                    in_transaction = False
                if not in_transaction:
                    break


# ----------------------------------------------------------------------
# The bundled tenant-profile library
# ----------------------------------------------------------------------


def _oltp_churn(scale: float) -> WorkloadConfig:
    """Short transactions, heavy create/delete/update churn, mild skew."""
    ops = max(1, int(600 * scale))
    return WorkloadConfig(
        name="oltp-churn",
        phases=(
            PhaseBlock(
                name="churn",
                operations=ops,
                mix=OpMix(create=3, delete=3, trim=1, access=4, update=3),
                cluster_size=Uniform(2, 6),
                object_size=Choice((64, 128, 256), weights=(4, 2, 1)),
                hot_key_skew=0.3,
            ),
        ),
        ops_per_second=400.0,
        initial_clusters=24,
    )


def _bulk_load(scale: float) -> WorkloadConfig:
    """Create-dominated load of large objects, then a short verify scan."""
    ops = max(1, int(400 * scale))
    return WorkloadConfig(
        name="bulk-load",
        phases=(
            PhaseBlock(
                name="load",
                operations=ops,
                mix=OpMix(create=10, delete=0, access=1),
                cluster_size=Fixed(12),
                object_size=Fixed(512),
            ),
            PhaseBlock(
                name="verify",
                operations=max(1, ops // 4),
                mix=OpMix(create=0, delete=0, access=1),
            ),
        ),
        initial_clusters=0,
    )


def _read_browse(scale: float) -> WorkloadConfig:
    """Read-mostly browsing with occasional small writes."""
    ops = max(1, int(800 * scale))
    return WorkloadConfig(
        name="read-browse",
        phases=(
            PhaseBlock(
                name="browse",
                operations=ops,
                mix=OpMix(create=1, delete=1, access=12, update=2),
                cluster_size=Uniform(3, 8),
                object_size=Fixed(128),
                hot_key_skew=0.5,
            ),
        ),
        ops_per_second=250.0,
        initial_clusters=32,
    )


def _diurnal(scale: float) -> WorkloadConfig:
    """Three day/night cycles — busy days, idle-heavy nights (diurnal bursts)."""
    day_ops = max(1, int(300 * scale))
    return WorkloadConfig(
        name="diurnal",
        phases=(
            PhaseBlock(
                name="day",
                operations=day_ops,
                mix=OpMix(create=3, delete=2, access=5, update=1),
                cluster_size=Uniform(4, 10),
                repeat=3,
            ),
            PhaseBlock(
                name="night",
                operations=max(1, day_ops // 3),
                mix=OpMix(create=0.5, delete=0.5, access=1, idle=8),
                repeat=3,
            ),
        ),
        initial_clusters=16,
    )


def _hot_key_skew(scale: float) -> WorkloadConfig:
    """Near-Zipfian targeting: churn concentrated on a few hot clusters."""
    ops = max(1, int(500 * scale))
    return WorkloadConfig(
        name="hot-key-skew",
        phases=(
            PhaseBlock(
                name="skewed",
                operations=ops,
                mix=OpMix(create=2, delete=2, trim=1, access=6, update=2,
                          pointer_churn=2),
                cluster_size=Uniform(2, 10),
                object_size=Choice((64, 256, 1024), weights=(6, 3, 1)),
                hot_key_skew=0.8,
            ),
        ),
        initial_clusters=40,
    )


#: The bundled tenant-profile library: name → factory(scale) → config.
TENANT_PROFILES: dict[str, Callable[[float], WorkloadConfig]] = {
    "oltp-churn": _oltp_churn,
    "bulk-load": _bulk_load,
    "read-browse": _read_browse,
    "diurnal": _diurnal,
    "hot-key-skew": _hot_key_skew,
}


def make_profile(name: str, scale: float = 1.0) -> WorkloadConfig:
    """Build one bundled tenant profile by name (scaled)."""
    try:
        factory = TENANT_PROFILES[name]
    except KeyError:
        raise GrammarError(
            f"unknown tenant profile {name!r}; choose from {sorted(TENANT_PROFILES)}"
        ) from None
    return factory(scale)


def tenant_mix(
    profiles: Sequence[str],
    scale: float = 1.0,
    weights: Optional[Sequence[float]] = None,
    name: Optional[str] = None,
) -> TenantMixConfig:
    """Assemble a :class:`TenantMixConfig` from bundled profile names.

    Duplicate profile names get ``-2``, ``-3`` ... suffixes so tenant
    names stay unique (``["oltp-churn", "oltp-churn"]`` is a valid fleet
    of two independent churn clients).
    """
    if not profiles:
        raise GrammarError("at least one tenant profile is required")
    if weights is not None and len(weights) != len(profiles):
        raise GrammarError(
            f"got {len(profiles)} profiles but {len(weights)} weights"
        )
    counts: dict[str, int] = {}
    tenants = []
    for index, profile in enumerate(profiles):
        config = make_profile(profile, scale)
        counts[profile] = counts.get(profile, 0) + 1
        label = profile if counts[profile] == 1 else f"{profile}-{counts[profile]}"
        weight = float(weights[index]) if weights is not None else 1.0
        tenants.append(TenantSpec(name=label, config=config, weight=weight))
    return TenantMixConfig(
        name=name or "+".join(profiles),
        tenants=tuple(tenants),
    )
