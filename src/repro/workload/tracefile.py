"""Trace serialization: write and replay event streams as files.

The original system was driven by traces of database application events
captured to files [CWZ93]. This module provides the equivalent: a compact
line-oriented JSON format so traces can be generated once, inspected,
shipped, and replayed many times (or fed to other tools).

Format: one JSON object per line with a ``t`` type tag::

    {"t": "phase", "name": "GenDB"}
    {"t": "create", "oid": 1, "size": 80, "kind": "module", "ptrs": [["doc", 7]]}
    {"t": "root", "oid": 1}
    {"t": "access", "oid": 12}
    {"t": "update", "oid": 12}
    {"t": "write", "src": 3, "slot": "part0", "target": null, "dies": [9, 10]}
    {"t": "idle", "ticks": 1}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from repro.events import (
    AbortTransactionEvent,
    AccessEvent,
    BeginTransactionEvent,
    CommitTransactionEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    TraceEvent,
    UpdateEvent,
)
from repro.storage.object_model import ObjectKind


class TraceFormatError(Exception):
    """Raised when a trace file contains malformed or unknown records."""


def event_to_record(event: TraceEvent) -> dict:
    """Convert one event to its JSON-serialisable record."""
    if isinstance(event, CreateEvent):
        return {
            "t": "create",
            "oid": event.oid,
            "size": event.size,
            "kind": event.kind.value,
            "ptrs": [[slot, target] for slot, target in event.pointers],
        }
    if isinstance(event, AccessEvent):
        return {"t": "access", "oid": event.oid}
    if isinstance(event, UpdateEvent):
        return {"t": "update", "oid": event.oid}
    if isinstance(event, PointerWriteEvent):
        return {
            "t": "write",
            "src": event.src,
            "slot": event.slot,
            "target": event.target,
            "dies": list(event.dies),
        }
    if isinstance(event, RootEvent):
        return {"t": "root", "oid": event.oid}
    if isinstance(event, PhaseMarkerEvent):
        return {"t": "phase", "name": event.name}
    if isinstance(event, IdleEvent):
        return {"t": "idle", "ticks": event.ticks}
    if isinstance(event, BeginTransactionEvent):
        return {"t": "begin", "txid": event.txid}
    if isinstance(event, CommitTransactionEvent):
        return {"t": "commit", "txid": event.txid}
    if isinstance(event, AbortTransactionEvent):
        return {"t": "abort", "txid": event.txid}
    raise TraceFormatError(f"cannot serialise event {event!r}")


def record_to_event(record: dict) -> TraceEvent:
    """Convert one JSON record back to an event."""
    try:
        tag = record["t"]
        if tag == "create":
            return CreateEvent(
                oid=record["oid"],
                size=record["size"],
                kind=ObjectKind(record.get("kind", "generic")),
                pointers=tuple(
                    (slot, target) for slot, target in record.get("ptrs", [])
                ),
            )
        if tag == "access":
            return AccessEvent(oid=record["oid"])
        if tag == "update":
            return UpdateEvent(oid=record["oid"])
        if tag == "write":
            return PointerWriteEvent(
                src=record["src"],
                slot=record["slot"],
                target=record["target"],
                dies=tuple(record.get("dies", [])),
            )
        if tag == "root":
            return RootEvent(oid=record["oid"])
        if tag == "phase":
            return PhaseMarkerEvent(name=record["name"])
        if tag == "idle":
            return IdleEvent(ticks=record.get("ticks", 1))
        if tag == "begin":
            return BeginTransactionEvent(txid=record["txid"])
        if tag == "commit":
            return CommitTransactionEvent(txid=record["txid"])
        if tag == "abort":
            return AbortTransactionEvent(txid=record["txid"])
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceFormatError(f"malformed trace record {record!r}: {exc}") from exc
    raise TraceFormatError(f"unknown trace record type {tag!r}")


def write_trace(events: Iterable[TraceEvent], target: Union[str, Path, IO[str]]) -> int:
    """Write an event stream to a trace file; returns the event count."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            return write_trace(events, handle)
    count = 0
    for event in events:
        target.write(json.dumps(event_to_record(event), separators=(",", ":")))
        target.write("\n")
        count += 1
    return count


def read_trace(source: Union[str, Path, IO[str]]) -> Iterator[TraceEvent]:
    """Lazily read events back from a trace file."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            yield from read_trace(handle)
            return
    for line_number, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"line {line_number}: invalid JSON: {exc}"
            ) from exc
        yield record_to_event(record)
