"""Trace serialization: write and replay event streams as files.

The original system was driven by traces of database application events
captured to files [CWZ93]. This module provides the equivalent: a compact
line-oriented JSON format so traces can be generated once, inspected,
shipped, and replayed many times (or fed to other tools).

Format: one JSON object per line with a ``t`` type tag::

    {"t": "phase", "name": "GenDB"}
    {"t": "create", "oid": 1, "size": 80, "kind": "module", "ptrs": [["doc", 7]]}
    {"t": "root", "oid": 1}
    {"t": "access", "oid": 12}
    {"t": "update", "oid": 12}
    {"t": "write", "src": 3, "slot": "part0", "target": null, "dies": [9, 10]}
    {"t": "idle", "ticks": 1}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from repro.events import (
    AbortTransactionEvent,
    AccessEvent,
    BeginTransactionEvent,
    CommitTransactionEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    TraceEvent,
    UpdateEvent,
)
from repro.storage.object_model import ObjectKind


class TraceFormatError(Exception):
    """Raised when a trace file contains malformed or unknown records."""


def event_to_record(event: TraceEvent) -> dict:
    """Convert one event to its JSON-serialisable record."""
    if isinstance(event, CreateEvent):
        return {
            "t": "create",
            "oid": event.oid,
            "size": event.size,
            "kind": event.kind.value,
            "ptrs": [[slot, target] for slot, target in event.pointers],
        }
    if isinstance(event, AccessEvent):
        return {"t": "access", "oid": event.oid}
    if isinstance(event, UpdateEvent):
        return {"t": "update", "oid": event.oid}
    if isinstance(event, PointerWriteEvent):
        return {
            "t": "write",
            "src": event.src,
            "slot": event.slot,
            "target": event.target,
            "dies": list(event.dies),
        }
    if isinstance(event, RootEvent):
        return {"t": "root", "oid": event.oid}
    if isinstance(event, PhaseMarkerEvent):
        return {"t": "phase", "name": event.name}
    if isinstance(event, IdleEvent):
        return {"t": "idle", "ticks": event.ticks}
    if isinstance(event, BeginTransactionEvent):
        return {"t": "begin", "txid": event.txid}
    if isinstance(event, CommitTransactionEvent):
        return {"t": "commit", "txid": event.txid}
    if isinstance(event, AbortTransactionEvent):
        return {"t": "abort", "txid": event.txid}
    raise TraceFormatError(f"cannot serialise event {event!r}")


# ----------------------------------------------------------------------
# Single-pass decoding: one table lookup on the type tag, then one
# decoder that unpacks every field of that record shape. Decoders raise
# KeyError/ValueError/TypeError on malformed input; record_to_event and
# read_trace wrap those into TraceFormatError (read_trace names the
# offending line number).
# ----------------------------------------------------------------------


def _dec_create(record: dict) -> CreateEvent:
    return CreateEvent(
        oid=record["oid"],
        size=record["size"],
        kind=ObjectKind(record.get("kind", "generic")),
        pointers=tuple((slot, target) for slot, target in record.get("ptrs", [])),
    )


def _dec_access(record: dict) -> AccessEvent:
    return AccessEvent(oid=record["oid"])


def _dec_update(record: dict) -> UpdateEvent:
    return UpdateEvent(oid=record["oid"])


def _dec_write(record: dict) -> PointerWriteEvent:
    return PointerWriteEvent(
        src=record["src"],
        slot=record["slot"],
        target=record["target"],
        dies=tuple(record.get("dies", [])),
    )


def _dec_root(record: dict) -> RootEvent:
    return RootEvent(oid=record["oid"])


def _dec_phase(record: dict) -> PhaseMarkerEvent:
    return PhaseMarkerEvent(name=record["name"])


def _dec_idle(record: dict) -> IdleEvent:
    return IdleEvent(ticks=record.get("ticks", 1))


def _dec_begin(record: dict) -> BeginTransactionEvent:
    return BeginTransactionEvent(txid=record["txid"])


def _dec_commit(record: dict) -> CommitTransactionEvent:
    return CommitTransactionEvent(txid=record["txid"])


def _dec_abort(record: dict) -> AbortTransactionEvent:
    return AbortTransactionEvent(txid=record["txid"])


_DECODERS = {
    "create": _dec_create,
    "access": _dec_access,
    "update": _dec_update,
    "write": _dec_write,
    "root": _dec_root,
    "phase": _dec_phase,
    "idle": _dec_idle,
    "begin": _dec_begin,
    "commit": _dec_commit,
    "abort": _dec_abort,
}


def record_to_event(record: dict) -> TraceEvent:
    """Convert one JSON record back to an event."""
    try:
        tag = record["t"]
    except (KeyError, TypeError) as exc:
        raise TraceFormatError(
            f"malformed trace record {record!r}: missing type tag 't'"
        ) from exc
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise TraceFormatError(f"unknown trace record type {tag!r}")
    try:
        return decoder(record)
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceFormatError(f"malformed trace record {record!r}: {exc}") from exc


def write_trace(events: Iterable[TraceEvent], target: Union[str, Path, IO[str]]) -> int:
    """Write an event stream to a trace file; returns the event count."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            return write_trace(events, handle)
    count = 0
    for event in events:
        target.write(json.dumps(event_to_record(event), separators=(",", ":")))
        target.write("\n")
        count += 1
    return count


def read_trace(source: Union[str, Path, IO[str]]) -> Iterator[TraceEvent]:
    """Lazily read events back from a trace file."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            yield from read_trace(handle)
            return
    loads = json.loads
    decoders = _DECODERS
    for line_number, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"line {line_number}: invalid JSON: {exc}"
            ) from exc
        # Inline single-pass decode so every failure names its line.
        try:
            tag = record["t"]
        except (KeyError, TypeError) as exc:
            raise TraceFormatError(
                f"line {line_number}: malformed trace record {record!r}: "
                "missing type tag 't'"
            ) from exc
        decoder = decoders.get(tag)
        if decoder is None:
            raise TraceFormatError(
                f"line {line_number}: unknown trace record type {tag!r}"
            )
        try:
            yield decoder(record)
        except (KeyError, ValueError, TypeError) as exc:
            raise TraceFormatError(
                f"line {line_number}: malformed trace record {record!r}: {exc}"
            ) from exc
