"""Content-addressed cache of compiled workload traces.

Every sweep in the paper's protocol replays the identical (workload, seed)
trace once per policy cell — Figure 1 alone replays each seed's OO7 trace
once per fixed rate. Rebuilding the trace from the OO7 builder for every
cell is pure waste: the trace is a deterministic function of the workload
spec and the seed. This cache materialises each trace **once per sweep**
into a :class:`~repro.workload.compiled.CompiledTrace` and reuses it
everywhere:

* an **in-process memo** (bounded LRU) answers repeat resolutions in the
  same process — the serial engine path and warm worker processes;
* **on-disk compiled binaries**, content-addressed like
  :mod:`repro.sim.cache` (SHA-256 of the canonical workload-spec material,
  the seed, the compiled-trace format version and the package version),
  shared between worker processes and across runs.

Corrupt or version-mismatched entries quarantine into a ``quarantine/``
sidecar and degrade to a miss, mirroring the result cache's behaviour.

Replaying a compiled trace is event-for-event identical to running the
generator, so caching never changes simulation results — property tests
assert byte-identical summaries.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from repro.canonical import canonical_value
from repro.events import TraceEvent
from repro.workload.compiled import (
    TRACE_FORMAT_VERSION,
    CompiledTrace,
    CompiledTraceError,
    compile_trace,
)

#: Default number of compiled traces the in-process memo retains. One OO7
#: Small' trace is a few hundred KB compiled; sweeps rarely touch more than
#: a handful of (workload, seed) pairs at once.
DEFAULT_MEMO_TRACES = 8


def trace_fingerprint(workload, seed: int) -> str:
    """Stable SHA-256 content address of one (workload, seed) trace.

    ``workload`` is either a declarative :class:`~repro.sim.spec.WorkloadSpec`
    (registry key + kwargs — or anything else the canonicaliser accepts
    directly) or an instantiated workload conforming to the
    :class:`repro.workload.base.WorkloadSpec` protocol, in which case its
    ``canonical_material()`` is digested. The package version is part of the
    material so generator changes invalidate stale traces, exactly as the
    result cache invalidates stale summaries.

    Raises:
        TypeError: when the workload carries values that cannot be
            canonicalised (callers treat that as "uncacheable").
    """
    from repro import __version__

    describe = getattr(workload, "canonical_material", None)
    described = describe() if callable(describe) else workload
    material = {
        "trace_format": TRACE_FORMAT_VERSION,
        "version": __version__,
        "workload": canonical_value(described),
        "seed": seed,
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class TraceCacheStats:
    """Observability counters for one :class:`TraceCache` instance."""

    #: Resolutions answered from the in-process memo.
    memo_hits: int = 0
    #: Resolutions answered by loading a compiled binary from disk.
    disk_hits: int = 0
    #: Resolutions that had to run the workload generator.
    builds: int = 0
    #: Corrupt / incompatible on-disk entries moved aside.
    quarantined: int = 0
    #: Resolutions that bypassed the cache (uncacheable workload spec).
    uncacheable: int = 0
    #: Resolutions answered zero-copy from a shared-memory segment.
    shm_hits: int = 0
    #: Traces this cache published into shared memory (parent side).
    shm_published: int = 0

    @property
    def resolutions(self) -> int:
        return (
            self.memo_hits
            + self.shm_hits
            + self.disk_hits
            + self.builds
            + self.uncacheable
        )

    @property
    def hit_rate(self) -> float:
        """Fraction of resolutions that skipped the workload generator."""
        total = self.resolutions
        if total == 0:
            return 0.0
        return (self.memo_hits + self.shm_hits + self.disk_hits) / total

    def as_metrics(self) -> dict:
        """Flat metric name → value dict (for the observability registry)."""
        return {
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "builds": self.builds,
            "quarantined": self.quarantined,
            "uncacheable": self.uncacheable,
            "shm_hits": self.shm_hits,
            "shm_published": self.shm_published,
            "hit_rate": self.hit_rate,
        }


class TraceCache:
    """Directory-backed, memoised store of compiled workload traces.

    Usage::

        cache = TraceCache(".repro-cache/traces")
        trace = cache.get_or_build(spec.workload, seed)
        Simulation(policy=..., selection=...).run(trace)

    Args:
        root: Cache directory (created on demand). ``None`` disables the
            on-disk layer — the instance still memoises in process, so
            serial sweeps build each trace once without writing any files
            (worker pools install exactly this when no disk cache is
            configured).
        memo_traces: In-process LRU capacity, in traces (0 disables).
    """

    def __init__(
        self,
        root: Union[str, Path, None],
        memo_traces: int = DEFAULT_MEMO_TRACES,
    ) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self.memo_traces = memo_traces
        self._memo: OrderedDict[str, CompiledTrace] = OrderedDict()
        #: Fingerprint → shared-memory segment name (see ``attach_shared``).
        self._shared: dict[str, str] = {}
        self.stats = TraceCacheStats()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def get_or_build(
        self,
        workload,
        seed: int,
        builder: Optional[Callable[[], Iterable[TraceEvent]]] = None,
    ) -> CompiledTrace:
        """Return the compiled trace for ``(workload, seed)``.

        Resolution order: in-process memo → on-disk binary → run the
        generator (``builder``, defaulting to the workload registry) and
        compile, populating both layers. A workload spec that cannot be
        fingerprinted is built directly, uncached.
        """
        try:
            key = trace_fingerprint(workload, seed)
        except TypeError:
            self.stats.uncacheable += 1
            return compile_trace(self._events(workload, seed, builder))

        memo = self._memo
        hit = memo.get(key)
        if hit is not None:
            memo.move_to_end(key)
            self.stats.memo_hits += 1
            return hit

        segment = self._shared.get(key)
        if segment is not None:
            trace = self._attach_shared(key, segment)
            if trace is not None:
                self.stats.shm_hits += 1
                self._remember(key, trace)
                return trace

        trace = self._load(key)
        if trace is not None:
            self.stats.disk_hits += 1
        else:
            trace = compile_trace(self._events(workload, seed, builder))
            self.stats.builds += 1
            self.put(key, trace)
        self._remember(key, trace)
        return trace

    def warm(self, workload, seed: int) -> bool:
        """Ensure the on-disk entry for ``(workload, seed)`` exists.

        Returns True when the trace had to be built (a cold entry). Used by
        the parallel engine to materialise each unique trace exactly once
        per sweep before fanning simulation tasks out.
        """
        before = self.stats.builds
        self.get_or_build(workload, seed)
        return self.stats.builds > before

    @staticmethod
    def _events(workload, seed, builder):
        if builder is not None:
            return builder()
        events = getattr(workload, "events", None)
        if callable(events):
            # An instantiated protocol workload generates its own trace
            # (one-shot — but the compiled result is cached immediately).
            return events()
        # Local import: repro.sim.spec imports repro.workload generators, so
        # a module-scope import here would close an import cycle.
        from repro.sim.spec import build_workload

        return build_workload(workload, seed)

    def _remember(self, key: str, trace: CompiledTrace) -> None:
        if self.memo_traces <= 0:
            return
        memo = self._memo
        memo[key] = trace
        memo.move_to_end(key)
        while len(memo) > self.memo_traces:
            memo.popitem(last=False)

    # ------------------------------------------------------------------
    # Shared-memory layer (worker side)
    # ------------------------------------------------------------------

    def attach_shared(self, mapping: dict[str, str]) -> None:
        """Register published shared-memory segments (fingerprint → name).

        The parallel engine's pool initializer passes the parent's
        :meth:`~repro.workload.shm.SharedTraceArena.plan` here; resolutions
        of a registered fingerprint then decode zero-copy out of the shared
        mapping instead of reading the on-disk entry. Purely an
        optimisation: any attach failure silently degrades to the disk
        layer, which holds an identical trace.
        """
        self._shared.update(mapping)

    def _attach_shared(self, key: str, segment: str) -> Optional[CompiledTrace]:
        from repro.workload.shm import attach_trace

        try:
            return attach_trace(segment)
        except (OSError, CompiledTraceError, ValueError):
            # Publisher gone or payload unusable — stop consulting this
            # segment and fall back to disk.
            del self._shared[key]
            return None

    # ------------------------------------------------------------------
    # On-disk layer
    # ------------------------------------------------------------------

    def entry_path(self, key: str) -> Optional[Path]:
        """Path of the on-disk entry for ``key`` if it exists (else None).

        The parallel engine publishes shared segments straight from these
        files, so the bytes workers map are exactly the bytes they would
        have read.
        """
        if self.root is None:
            return None
        path = self._path(key)
        return path if path.exists() else None

    def _load(self, key: str) -> Optional[CompiledTrace]:
        if self.root is None:
            return None
        path = self._path(key)
        try:
            return CompiledTrace.load(path)
        except FileNotFoundError:
            return None
        except (CompiledTraceError, OSError):
            self._quarantine(path)
            return None

    def put(self, key: str, trace: CompiledTrace) -> None:
        """Store one compiled trace atomically under its fingerprint."""
        if self.root is None:
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        trace.save(tmp)
        os.replace(tmp, path)

    def __contains__(self, key: str) -> bool:
        return self.root is not None and self._path(key).exists()

    def __len__(self) -> int:
        if self.root is None:
            return 0
        return sum(1 for _ in self.root.glob("*/*.trace"))

    def clear(self) -> int:
        """Delete every on-disk entry and the memo; returns entries removed."""
        self._memo.clear()
        if self.root is None:
            return 0
        removed = 0
        for entry in self.root.glob("*/*.trace"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.trace"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry into ``quarantine/`` (best-effort)."""
        target_dir = self.root / "quarantine"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / f"{path.name}.corrupt")
            self.stats.quarantined += 1
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
