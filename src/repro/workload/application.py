"""The complete OO7 test application (Figure 2): GenDB→Reorg1→Traverse→Reorg2."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.oo7.config import OO7Config
from repro.oo7.schema import Oo7Graph
from repro.events import TraceEvent
from repro.workload.phases import (
    PHASE_ORDER,
    doc_churn_phase,
    gen_db_phase,
    reorg1_phase,
    reorg2_phase,
    traverse_phase,
)


@dataclass
class Oo7Application:
    """Generates the paper's four-phase OO7 application trace.

    Args:
        config: OO7 database parameters (Table 1 variants live in
            :mod:`repro.oo7.config`).
        seed: Seed for all randomised behaviour (database structure and
            reorganisation victim choices). Simulation repetitions "differ
            only in the initial random number seed" (§3.2).
        delete_fraction: Fraction of deletable parts each reorganisation
            removes (the paper uses one half).
        doc_churn_fraction: When positive, a document-replacement phase runs
            after each reorganisation, rewriting this fraction of composite
            documents (§2.1's "very large objects … such as OO7 document
            nodes" disconnected by single overwrites). Zero (the default)
            gives exactly the paper's four-phase application.

    The application is a one-shot generator: iterate :meth:`events` once. The
    underlying :class:`~repro.oo7.schema.Oo7Graph` stays accessible for
    inspection after (or during) the run.
    """

    config: OO7Config
    seed: int = 0
    delete_fraction: float = 0.5
    doc_churn_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.delete_fraction <= 1.0:
            raise ValueError(
                f"delete_fraction must be in (0, 1], got {self.delete_fraction}"
            )
        if not 0.0 <= self.doc_churn_fraction <= 1.0:
            raise ValueError(
                f"doc_churn_fraction must be in [0, 1], got {self.doc_churn_fraction}"
            )
        self.rng = random.Random(self.seed)
        self.graph = Oo7Graph(self.config, rng=self.rng)

    def canonical_material(self) -> dict:
        """Content-addressing material (:class:`repro.workload.base.WorkloadSpec`)."""
        return {
            "workload": "oo7",
            "config": self.config,
            "delete_fraction": self.delete_fraction,
            "doc_churn_fraction": self.doc_churn_fraction,
            "seed": self.seed,
        }

    @property
    def phase_names(self) -> tuple[str, ...]:
        if self.doc_churn_fraction > 0:
            return (
                PHASE_ORDER[0],
                PHASE_ORDER[1],
                "DocChurn1",
                PHASE_ORDER[2],
                PHASE_ORDER[3],
                "DocChurn2",
            )
        return PHASE_ORDER

    def events(self) -> Iterator[TraceEvent]:
        """The full trace: GenDB, Reorg1[, DocChurn], Traverse, Reorg2[, DocChurn]."""
        yield from gen_db_phase(self.graph)
        yield from reorg1_phase(self.graph, self.rng, self.delete_fraction)
        if self.doc_churn_fraction > 0:
            yield from doc_churn_phase(
                self.graph, self.rng, self.doc_churn_fraction, name="DocChurn1"
            )
        yield from traverse_phase(self.graph)
        yield from reorg2_phase(self.graph, self.rng, self.delete_fraction)
        if self.doc_churn_fraction > 0:
            yield from doc_churn_phase(
                self.graph, self.rng, self.doc_churn_fraction, name="DocChurn2"
            )
