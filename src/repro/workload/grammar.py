"""Grammar-driven workload generation: declarative, composable, round-trippable.

The paper evaluates its policies on one hand-built OO7 trace; the synthetic
presets of :mod:`repro.workload.presets` widen that to a handful of
hand-tuned phase lists. This module replaces hand-tuning with a *grammar*:
a :class:`WorkloadConfig` is plain declarative data — an event budget,
optional ops/sec pacing, and a sequence of composable :class:`PhaseBlock`
values, each with an operation-mix distribution, object-size and
cluster-size distributions, and a hot-key skew parameter — from which
:class:`GrammarWorkload` deterministically generates a trace for any seed.
Scenario *grids* (the ROADMAP's "millions of users" axis) are then just
config values swept by the fleet driver (:mod:`repro.fleet`).

Configs round-trip **losslessly** through JSON and TOML
(:meth:`WorkloadConfig.to_json` / :meth:`WorkloadConfig.from_toml` ...):
the parsed config compares equal to the original, so its canonical
material — and therefore every trace-cache and result-cache fingerprint
derived from it — is byte-identical. A config file checked into a repo
reuses the caches of the config built in code.

The generated database is the linked-cluster shape of
:mod:`repro.workload.synthetic` (registry → cluster chains, so
garbage-per-overwrite is directly tunable), extended with three operation
families the presets lack:

* ``update`` — dirty non-pointer touches (buffer/IO pressure without
  garbage),
* ``pointer_churn`` — pointer overwrites that free nothing (adversarial
  for overwrite-clock policies: the clock advances, no garbage appears),
* hot-key skew — operations target clusters by a power-approximated Zipf
  rank, concentrating churn on a few hot structures.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, fields
from typing import Any, Iterator, Optional, Union

from repro.events import (
    AccessEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    TraceEvent,
    UpdateEvent,
)
from repro.storage.object_model import ObjectId, ObjectKind

#: Bump when the config schema changes shape; ``from_dict`` rejects other
#: versions so stale config files fail loudly instead of silently drifting.
GRAMMAR_FORMAT_VERSION = 1

#: Idle-tick granularity for ``ops_per_second`` pacing: one tick is 1 ms of
#: modelled wall clock, so a tenant at 100 ops/s interleaves ~10 idle ticks
#: per operation. ``ops_per_second=None`` means saturated (no idle time).
TICKS_PER_SECOND = 1000


class GrammarError(ValueError):
    """Raised when a workload config (or its serialised form) is invalid."""


# ----------------------------------------------------------------------
# Value distributions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Fixed:
    """Degenerate distribution: always ``value``."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise GrammarError(f"Fixed value must be >= 0, got {self.value}")

    def sample(self, rng: random.Random) -> float:
        return self.value


@dataclass(frozen=True)
class Uniform:
    """Uniform over ``[low, high]`` (continuous; integer draws round)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise GrammarError(
                f"Uniform needs 0 <= low <= high, got [{self.low}, {self.high}]"
            )

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class Choice:
    """Weighted choice over explicit values (weights default to uniform)."""

    values: tuple[float, ...]
    weights: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        object.__setattr__(self, "weights", tuple(self.weights))
        if not self.values:
            raise GrammarError("Choice needs at least one value")
        if self.weights:
            if len(self.weights) != len(self.values):
                raise GrammarError(
                    f"Choice got {len(self.values)} values but "
                    f"{len(self.weights)} weights"
                )
            if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
                raise GrammarError("Choice weights must be non-negative, sum > 0")

    def sample(self, rng: random.Random) -> float:
        if self.weights:
            return rng.choices(self.values, weights=self.weights)[0]
        return self.values[rng.randrange(len(self.values))]


Distribution = Union[Fixed, Uniform, Choice]

#: kind tag → distribution class, for (de)serialisation.
DISTRIBUTIONS: dict[str, type] = {
    "fixed": Fixed,
    "uniform": Uniform,
    "choice": Choice,
}
_DIST_KINDS = {cls: kind for kind, cls in DISTRIBUTIONS.items()}


def distribution_to_dict(dist: Distribution) -> dict[str, Any]:
    """Serialise a distribution as ``{"kind": ..., <params>}``."""
    kind = _DIST_KINDS.get(type(dist))
    if kind is None:
        raise GrammarError(f"unknown distribution type {type(dist).__name__}")
    payload: dict[str, Any] = {"kind": kind}
    for f in fields(dist):
        value = getattr(dist, f.name)
        payload[f.name] = list(value) if isinstance(value, tuple) else value
    return payload


def distribution_from_dict(payload: Any) -> Distribution:
    """Parse a distribution from its ``{"kind": ..., <params>}`` form."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise GrammarError(f"distribution must be a dict with 'kind', got {payload!r}")
    kind = payload["kind"]
    cls = DISTRIBUTIONS.get(kind)
    if cls is None:
        raise GrammarError(
            f"unknown distribution kind {kind!r}; choose from {sorted(DISTRIBUTIONS)}"
        )
    params = {k: v for k, v in payload.items() if k != "kind"}
    allowed = {f.name for f in fields(cls)}
    unknown = set(params) - allowed
    if unknown:
        raise GrammarError(
            f"distribution {kind!r} got unknown parameters {sorted(unknown)}"
        )
    for name in ("values", "weights"):
        if name in params and isinstance(params[name], list):
            params[name] = tuple(params[name])
    try:
        return cls(**params)
    except TypeError as exc:
        raise GrammarError(f"distribution {kind!r}: {exc}") from None


def _sample_int(dist: Distribution, rng: random.Random, minimum: int = 1) -> int:
    return max(minimum, round(dist.sample(rng)))


# ----------------------------------------------------------------------
# Operation mix
# ----------------------------------------------------------------------

#: Operation families, in the order weights are drawn. The first four match
#: :class:`~repro.workload.synthetic.SyntheticPhase`; ``update`` and
#: ``pointer_churn`` are grammar-only.
OPERATIONS = ("create", "delete", "trim", "access", "update", "pointer_churn", "idle")


@dataclass(frozen=True)
class OpMix:
    """Relative weights over the operation families of :data:`OPERATIONS`."""

    create: float = 1.0
    delete: float = 1.0
    trim: float = 0.0
    access: float = 2.0
    update: float = 0.0
    pointer_churn: float = 0.0
    idle: float = 0.0

    def __post_init__(self) -> None:
        # Coerce to float so a config built with int weights fingerprints
        # identically to the same config after a JSON/TOML round-trip
        # (canonical JSON renders 1 and 1.0 differently).
        for op in OPERATIONS:
            object.__setattr__(self, op, float(getattr(self, op)))
        weights = self.weights()
        if any(w < 0 for w in weights):
            raise GrammarError("operation weights must be non-negative")
        if sum(weights) <= 0:
            raise GrammarError("at least one operation weight must be positive")

    def weights(self) -> tuple[float, ...]:
        return tuple(getattr(self, op) for op in OPERATIONS)

    def to_dict(self) -> dict[str, float]:
        return {op: getattr(self, op) for op in OPERATIONS}

    @classmethod
    def from_dict(cls, payload: Any) -> "OpMix":
        if not isinstance(payload, dict):
            raise GrammarError(f"mix must be a dict, got {payload!r}")
        unknown = set(payload) - set(OPERATIONS)
        if unknown:
            raise GrammarError(
                f"mix got unknown operations {sorted(unknown)}; "
                f"choose from {list(OPERATIONS)}"
            )
        return cls(**{k: float(v) for k, v in payload.items()})


# ----------------------------------------------------------------------
# Phase blocks and the workload config
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PhaseBlock:
    """One composable phase: an operation budget drawn from one behaviour.

    Attributes:
        name: Phase label; emitted as a phase marker (suffixed ``#i`` when
            ``repeat > 1``).
        operations: Operations per repetition.
        mix: Operation-family weights.
        cluster_size: Members per newly created cluster (distribution).
        object_size: Bytes per member object (distribution).
        trim_fraction: Fraction of a cluster a trim operation cuts off.
        hot_key_skew: Skew of cluster targeting in ``[0, 1)``: 0 picks
            uniformly, values near 1 concentrate deletes / accesses /
            updates / churn on the oldest ("hottest") clusters via a
            power-approximated Zipf rank.
        repeat: Number of back-to-back repetitions of this block
            (diurnal cycles are one day block with ``repeat=days``).
    """

    name: str
    operations: int
    mix: OpMix = field(default_factory=OpMix)
    cluster_size: Distribution = Fixed(8)
    object_size: Distribution = Fixed(128)
    trim_fraction: float = 0.5
    hot_key_skew: float = 0.0
    repeat: int = 1

    def __post_init__(self) -> None:
        # Float/int coercion keeps canonical material identical across a
        # JSON/TOML round-trip (see OpMix.__post_init__).
        object.__setattr__(self, "operations", int(self.operations))
        object.__setattr__(self, "trim_fraction", float(self.trim_fraction))
        object.__setattr__(self, "hot_key_skew", float(self.hot_key_skew))
        object.__setattr__(self, "repeat", int(self.repeat))
        if not self.name:
            raise GrammarError("phase name must be non-empty")
        if self.operations < 0:
            raise GrammarError(f"operations must be >= 0, got {self.operations}")
        if not 0.0 < self.trim_fraction < 1.0:
            raise GrammarError(
                f"trim_fraction must be in (0, 1), got {self.trim_fraction}"
            )
        if not 0.0 <= self.hot_key_skew < 1.0:
            raise GrammarError(
                f"hot_key_skew must be in [0, 1), got {self.hot_key_skew}"
            )
        if self.repeat < 1:
            raise GrammarError(f"repeat must be >= 1, got {self.repeat}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "operations": self.operations,
            "mix": self.mix.to_dict(),
            "cluster_size": distribution_to_dict(self.cluster_size),
            "object_size": distribution_to_dict(self.object_size),
            "trim_fraction": self.trim_fraction,
            "hot_key_skew": self.hot_key_skew,
            "repeat": self.repeat,
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "PhaseBlock":
        if not isinstance(payload, dict):
            raise GrammarError(f"phase must be a dict, got {payload!r}")
        known = {
            "name", "operations", "mix", "cluster_size", "object_size",
            "trim_fraction", "hot_key_skew", "repeat",
        }
        unknown = set(payload) - known
        if unknown:
            raise GrammarError(f"phase got unknown keys {sorted(unknown)}")
        kwargs: dict[str, Any] = {
            "name": payload.get("name", ""),
            "operations": int(payload.get("operations", 0)),
        }
        if "mix" in payload:
            kwargs["mix"] = OpMix.from_dict(payload["mix"])
        for key in ("cluster_size", "object_size"):
            if key in payload:
                kwargs[key] = distribution_from_dict(payload[key])
        for key in ("trim_fraction", "hot_key_skew"):
            if key in payload:
                kwargs[key] = float(payload[key])
        if "repeat" in payload:
            kwargs["repeat"] = int(payload["repeat"])
        return cls(**kwargs)


@dataclass(frozen=True)
class WorkloadConfig:
    """A complete declarative workload: the grammar's top-level production.

    Attributes:
        name: Scenario label (display + canonical material).
        phases: Composable phase blocks, run in order.
        ops_per_second: Modelled client rate; operations are interleaved
            with :class:`~repro.events.IdleEvent` ticks so that one
            operation occupies ``TICKS_PER_SECOND / ops_per_second`` ticks.
            ``None`` (default) generates a saturated trace with no idle
            time — the paper's posture.
        initial_clusters: Clusters built before the first phase so deletes
            and accesses have material immediately.
    """

    name: str
    phases: tuple[PhaseBlock, ...]
    ops_per_second: Optional[float] = None
    initial_clusters: int = 16

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(self.phases))
        object.__setattr__(self, "initial_clusters", int(self.initial_clusters))
        if self.ops_per_second is not None:
            object.__setattr__(self, "ops_per_second", float(self.ops_per_second))
        if not self.name:
            raise GrammarError("workload name must be non-empty")
        if not self.phases:
            raise GrammarError("at least one phase is required")
        if self.ops_per_second is not None and self.ops_per_second <= 0:
            raise GrammarError(
                f"ops_per_second must be > 0, got {self.ops_per_second}"
            )
        if self.initial_clusters < 0:
            raise GrammarError(
                f"initial_clusters must be >= 0, got {self.initial_clusters}"
            )

    @property
    def total_operations(self) -> int:
        """The config's event budget, in operations (idle pacing excluded)."""
        return sum(p.operations * p.repeat for p in self.phases)

    # ------------------------------------------------------------------
    # Lossless serialisation (JSON and TOML)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "format": GRAMMAR_FORMAT_VERSION,
            "name": self.name,
            "initial_clusters": self.initial_clusters,
            "phases": [p.to_dict() for p in self.phases],
        }
        if self.ops_per_second is not None:
            payload["ops_per_second"] = self.ops_per_second
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> "WorkloadConfig":
        if not isinstance(payload, dict):
            raise GrammarError(f"workload config must be a dict, got {payload!r}")
        version = payload.get("format", GRAMMAR_FORMAT_VERSION)
        if version != GRAMMAR_FORMAT_VERSION:
            raise GrammarError(
                f"unsupported grammar format {version!r} "
                f"(this build reads version {GRAMMAR_FORMAT_VERSION})"
            )
        known = {"format", "name", "phases", "ops_per_second", "initial_clusters"}
        unknown = set(payload) - known
        if unknown:
            raise GrammarError(f"workload config got unknown keys {sorted(unknown)}")
        phases = payload.get("phases")
        if not isinstance(phases, list):
            raise GrammarError("workload config needs a 'phases' list")
        ops_per_second = payload.get("ops_per_second")
        return cls(
            name=payload.get("name", ""),
            phases=tuple(PhaseBlock.from_dict(p) for p in phases),
            ops_per_second=(
                float(ops_per_second) if ops_per_second is not None else None
            ),
            initial_clusters=int(payload.get("initial_clusters", 16)),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadConfig":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise GrammarError(f"invalid JSON workload config: {exc}") from None
        return cls.from_dict(payload)

    def to_toml(self) -> str:
        """Render the config as TOML (readable back via :meth:`from_toml`).

        The emitter covers exactly the shapes the schema produces — scalars,
        string keys, lists of numbers, and the phases array-of-tables — so
        no third-party TOML writer is needed.
        """
        lines: list[str] = []
        doc = self.to_dict()
        phases = doc.pop("phases")
        for key in sorted(doc):
            lines.append(f"{key} = {_toml_value(doc[key])}")
        for phase in phases:
            lines.append("")
            lines.append("[[phases]]")
            tables = {}
            for key in ("name", "operations", "repeat", "trim_fraction", "hot_key_skew"):
                lines.append(f"{key} = {_toml_value(phase[key])}")
            for key in ("mix", "cluster_size", "object_size"):
                tables[key] = phase[key]
            for key, table in tables.items():
                lines.append(f"[phases.{key}]")
                for sub in sorted(table):
                    lines.append(f"{sub} = {_toml_value(table[sub])}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_toml(cls, text: str) -> "WorkloadConfig":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - Python < 3.11
            raise GrammarError(
                "TOML workload configs need Python >= 3.11 (tomllib); "
                "use the JSON form instead"
            ) from None
        try:
            payload = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise GrammarError(f"invalid TOML workload config: {exc}") from None
        return cls.from_dict(payload)


def _toml_value(value: Any) -> str:
    if isinstance(value, bool):  # pragma: no cover - schema has no bools yet
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # JSON string escaping is valid TOML
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise GrammarError(f"cannot render {value!r} as TOML")


def load_workload_config(path) -> WorkloadConfig:
    """Load a config file, dispatching on extension (.toml vs .json)."""
    from pathlib import Path

    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".toml":
        return WorkloadConfig.from_toml(text)
    return WorkloadConfig.from_json(text)


# ----------------------------------------------------------------------
# The generator
# ----------------------------------------------------------------------


@dataclass(eq=False)
class _Cluster:
    slot: str
    members: list[ObjectId] = field(default_factory=list)  # head first
    member_size: int = 0


def _skewed_index(rng: random.Random, n: int, skew: float) -> int:
    """Pick an index in ``[0, n)``, concentrated near 0 as ``skew`` → 1.

    A power-approximated Zipf: draw u ~ U(0,1) and return
    ``floor(n * u**(1/(1-skew)))``. ``skew=0`` is exactly uniform; higher
    values front-load the oldest (lowest-index) clusters, which act as the
    stable hot keys of the scenario.
    """
    if skew <= 0.0:
        return rng.randrange(n)
    u = rng.random() ** (1.0 / (1.0 - skew))
    return min(n - 1, int(n * u))


class GrammarWorkload:
    """Generates a trace from a :class:`WorkloadConfig` (the grammar's
    interpreter). Conforms to :class:`repro.workload.base.WorkloadSpec`.

    Args:
        config: The declarative workload.
        seed: Seed for every randomised choice.
    """

    def __init__(self, config: WorkloadConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self.rng = random.Random(seed)
        self._next_oid: ObjectId = 1
        self._next_slot = 0
        self._idle_debt = 0.0
        self.registry_oid: Optional[ObjectId] = None
        self.clusters: list[_Cluster] = []
        #: Object sizes by oid, for trace statistics and tests. Streaming
        #: mode turns this off — an unbounded stream must not grow
        #: generator state with the trace.
        self._track_sizes = True
        self.object_sizes: dict[ObjectId, int] = {}
        #: Streaming mode recycles registry slots of deleted clusters so
        #: the registry object's pointer dictionary (in the *store*) stays
        #: O(max_live_clusters) over an unbounded stream instead of
        #: accreting one dead ``clusterN -> None`` entry per churn cycle.
        self._reuse_slots = False
        self._free_slots: list[str] = []

    def canonical_material(self) -> dict[str, Any]:
        return {"workload": "grammar", "config": self.config, "seed": self.seed}

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------

    def events(self) -> Iterator[TraceEvent]:
        """The full trace (one-shot)."""
        yield from self._setup()
        for phase in self.config.phases:
            for repetition in range(phase.repeat):
                name = (
                    phase.name
                    if phase.repeat == 1
                    else f"{phase.name}#{repetition}"
                )
                yield PhaseMarkerEvent(name)
                yield from self._run_phase(phase)

    def stream(self, max_live_clusters: int = 512) -> Iterator[TraceEvent]:
        """An unbounded trace with bounded generator memory (one-shot).

        Cycles the config's phase list forever (phase markers are suffixed
        ``@cycle`` so telemetry stays attributable) while keeping the
        generator's own state O(``max_live_clusters``): per-oid size
        tracking is disabled and whenever a create pushes the live-cluster
        registry past the cap, the oldest-half region immediately sheds one
        cluster (a normal delete, so the emitted trace stays coherent and
        the store's garbage signals behave like steady-state churn).

        The stream is a pure function of (config, seed, max_live_clusters):
        re-instantiating the workload and islicing from any index resumes
        it exactly — the service's crash–recover–continue path relies on
        this the way finite drills rely on ``CompiledTrace.replay``.
        """
        if max_live_clusters < 1:
            raise GrammarError(
                f"max_live_clusters must be >= 1, got {max_live_clusters}"
            )
        self._track_sizes = False
        self._reuse_slots = True
        yield from self._setup()
        cycle = 0
        while True:
            for phase in self.config.phases:
                for repetition in range(phase.repeat):
                    name = (
                        phase.name
                        if phase.repeat == 1
                        else f"{phase.name}#{repetition}"
                    )
                    yield PhaseMarkerEvent(f"{name}@{cycle}")
                    yield from self._run_phase(phase, cap=max_live_clusters)
            cycle += 1

    def _setup(self) -> Iterator[TraceEvent]:
        self.registry_oid = self._new_oid(64)
        yield CreateEvent(self.registry_oid, 64, ObjectKind.GENERIC)
        yield RootEvent(self.registry_oid)
        first = self.config.phases[0]
        for _ in range(self.config.initial_clusters):
            yield from self._create_cluster(first)

    def _run_phase(
        self, phase: PhaseBlock, cap: Optional[int] = None
    ) -> Iterator[TraceEvent]:
        weights = phase.mix.weights()
        rng = self.rng
        for _ in range(phase.operations):
            op = rng.choices(OPERATIONS, weights=weights)[0]
            if op == "create":
                yield from self._create_cluster(phase)
                if cap is not None and len(self.clusters) > cap:
                    # Streaming bound: shed one cluster per overflow so the
                    # registry never exceeds the cap (steady-state churn).
                    yield from self._delete_cluster(phase)
            elif op == "delete":
                yield from self._delete_cluster(phase)
            elif op == "trim":
                yield from self._trim_cluster(phase)
            elif op == "access":
                yield from self._access_cluster(phase)
            elif op == "update":
                yield from self._update_member(phase)
            elif op == "pointer_churn":
                yield from self._churn_pointer(phase)
            else:
                yield IdleEvent()
            yield from self._pace()

    def _pace(self) -> Iterator[TraceEvent]:
        """Interleave idle ticks so the trace models ``ops_per_second``."""
        rate = self.config.ops_per_second
        if rate is None:
            return
        self._idle_debt += TICKS_PER_SECOND / rate
        whole = int(self._idle_debt)
        if whole >= 1:
            self._idle_debt -= whole
            yield IdleEvent(ticks=whole)

    # ------------------------------------------------------------------
    # Operations (linked-cluster shapes, as in SyntheticWorkload)
    # ------------------------------------------------------------------

    def _new_oid(self, size: int) -> ObjectId:
        oid = self._next_oid
        self._next_oid += 1
        if self._track_sizes:
            self.object_sizes[oid] = size
        return oid

    def _pick_cluster(self, phase: PhaseBlock) -> Optional[_Cluster]:
        if not self.clusters:
            return None
        index = _skewed_index(self.rng, len(self.clusters), phase.hot_key_skew)
        return self.clusters[index]

    def _create_cluster(self, phase: PhaseBlock) -> Iterator[TraceEvent]:
        """Create a chain tail-first, then root its head in the registry."""
        rng = self.rng
        cluster_size = _sample_int(phase.cluster_size, rng)
        object_size = _sample_int(phase.object_size, rng)
        members: list[ObjectId] = []
        successor: Optional[ObjectId] = None
        for _ in range(cluster_size):
            oid = self._new_oid(object_size)
            pointers = (("next", successor),) if successor is not None else ()
            yield CreateEvent(oid, object_size, ObjectKind.GENERIC, pointers=pointers)
            members.append(oid)
            successor = oid
        members.reverse()  # head first

        if self._free_slots:
            slot = self._free_slots.pop()  # LIFO: deterministic reuse
        else:
            slot = f"cluster{self._next_slot}"
            self._next_slot += 1
        yield PointerWriteEvent(self.registry_oid, slot, members[0])
        self.clusters.append(
            _Cluster(slot=slot, members=members, member_size=object_size)
        )

    def _delete_cluster(self, phase: PhaseBlock) -> Iterator[TraceEvent]:
        """Detach an entire cluster with a single overwrite."""
        if not self.clusters:
            return
        index = _skewed_index(self.rng, len(self.clusters), phase.hot_key_skew)
        cluster = self.clusters.pop(index)
        yield PointerWriteEvent(
            self.registry_oid, cluster.slot, None, dies=tuple(cluster.members)
        )
        if self._reuse_slots:
            self._free_slots.append(cluster.slot)

    def _trim_cluster(self, phase: PhaseBlock) -> Iterator[TraceEvent]:
        """Cut off a suffix of a cluster with a single overwrite."""
        candidates = [c for c in self.clusters if len(c.members) >= 2]
        if not candidates:
            return
        index = _skewed_index(self.rng, len(candidates), phase.hot_key_skew)
        cluster = candidates[index]
        keep = max(1, int(len(cluster.members) * (1.0 - phase.trim_fraction)))
        dead = cluster.members[keep:]
        if not dead:
            return
        yield PointerWriteEvent(cluster.members[keep - 1], "next", None, dies=tuple(dead))
        del cluster.members[keep:]

    def _access_cluster(self, phase: PhaseBlock) -> Iterator[TraceEvent]:
        """Read every member of a (skew-chosen) cluster, head to tail."""
        cluster = self._pick_cluster(phase)
        if cluster is None:
            return
        for oid in cluster.members:
            yield AccessEvent(oid)

    def _update_member(self, phase: PhaseBlock) -> Iterator[TraceEvent]:
        """Dirty one member of a (skew-chosen) cluster — no garbage."""
        cluster = self._pick_cluster(phase)
        if cluster is None:
            return
        yield UpdateEvent(cluster.members[self.rng.randrange(len(cluster.members))])

    def _churn_pointer(self, phase: PhaseBlock) -> Iterator[TraceEvent]:
        """Overwrite a registry slot with the value it already holds.

        Advances the overwrite clock without creating any garbage — the
        decorrelation stressor: a policy that trusts the overwrite clock
        alone collects eagerly and reclaims nothing.
        """
        cluster = self._pick_cluster(phase)
        if cluster is None:
            return
        yield PointerWriteEvent(self.registry_oid, cluster.slot, cluster.members[0])
