"""Zero-copy trace handoff via POSIX shared memory.

A parallel sweep replays the same few compiled traces in every worker
process. Without sharing, each worker pays a disk read, a CRC pass and a
full columnar decode per trace — and then holds its own private copy of
columns that are immutable by construction. This module maps each trace's
binary encoding (:meth:`repro.workload.compiled.CompiledTrace.save` format)
into a :class:`multiprocessing.shared_memory.SharedMemory` segment **once
per sweep**; workers attach and decode with
:meth:`~repro.workload.compiled.CompiledTrace.from_bytes`'s ``zero_copy``
mode, so the numeric columns are ``memoryview`` casts into the one shared
mapping — no per-worker copy of the column data at all.

Lifecycle:

* the parent builds a :class:`SharedTraceArena`, publishes the traces it
  wants to share, and passes ``arena.plan()`` (fingerprint → segment name)
  to the pool initializer;
* each worker calls :func:`attach_trace` per fingerprint on first use; the
  attached segments are memoised for the life of the worker process;
* the parent calls :meth:`SharedTraceArena.close` after the pool is done —
  as the creator it unlinks every segment (workers' mappings stay valid
  until they exit, per POSIX unlink semantics, but the names disappear).

The handoff is an optimisation only: any failure to publish or attach
falls back to the on-disk trace cache, which produces identical traces.
"""

from __future__ import annotations

import itertools
import os
from multiprocessing import shared_memory
from pathlib import Path
from typing import Optional, Union

from repro.workload.compiled import CompiledTrace, CompiledTraceError

#: Per-process arena sequence — combined with the pid it makes segment names
#: unique across concurrent sweeps, so two arenas never race on a name.
_ARENA_SEQ = itertools.count()


class SharedTraceArena:
    """Parent-side registry of shared-memory trace segments for one sweep.

    Create, :meth:`publish` / :meth:`publish_file` each trace, hand
    :meth:`plan` to the worker-pool initializer, and :meth:`close` when the
    pool is gone. Segment names are namespaced by the arena's ``tag`` plus a
    sequence number; the fingerprint → name mapping travels in the plan, so
    names never need to be guessable.
    """

    def __init__(self, tag: str = "rptc") -> None:
        self._tag = f"{tag}-{os.getpid()}-{next(_ARENA_SEQ)}"
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._names: dict[str, str] = {}
        self._sequence = 0
        self.bytes_shared = 0

    def __len__(self) -> int:
        return len(self._segments)

    def publish(self, fingerprint: str, payload: bytes) -> Optional[str]:
        """Map one trace's binary encoding into shared memory.

        The payload is validated (magic, version, CRC, full decode headers)
        *before* publishing, so workers can attach with ``verify=False``.
        Returns the segment name, or ``None`` when the payload is not a
        valid compiled trace or the platform refuses the allocation —
        callers treat ``None`` as "use the disk path".
        """
        if fingerprint in self._names:
            return self._names[fingerprint]
        try:
            CompiledTrace.from_bytes(payload, zero_copy=True)
        except CompiledTraceError:
            return None
        name = f"{self._tag}-{self._sequence}"
        self._sequence += 1
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=len(payload)
            )
        except OSError:  # pragma: no cover - exhausted /dev/shm, name race
            return None
        segment.buf[: len(payload)] = payload
        self._segments[fingerprint] = segment
        self._names[fingerprint] = name
        self.bytes_shared += len(payload)
        return name

    def publish_file(self, fingerprint: str, path: Union[str, Path]) -> Optional[str]:
        """Publish a trace straight from its on-disk cache entry."""
        try:
            payload = Path(path).read_bytes()
        except OSError:
            return None
        return self.publish(fingerprint, payload)

    def plan(self) -> dict[str, str]:
        """Fingerprint → segment name mapping to ship to workers."""
        return dict(self._names)

    def close(self) -> None:
        """Unlink every published segment (parent-side, after the pool)."""
        for segment in self._segments.values():
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._names.clear()


#: Worker-side memo of attached segments. The SharedMemory objects must stay
#: referenced as long as any zero-copy trace built over their buffers lives;
#: memoising for the worker's lifetime guarantees that (and makes repeat
#: attaches free).
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def attach_trace(name: str) -> CompiledTrace:
    """Attach to a published segment and decode it zero-copy.

    Raises ``OSError`` when the segment does not exist (the publisher died
    or already closed) and :class:`CompiledTraceError` on a malformed
    payload; callers fall back to the disk cache on either.
    """
    segment = _ATTACHED.get(name)
    if segment is None:
        # No resource-tracker unregister dance is needed here: pool workers
        # are children of the publishing parent and inherit its tracker (the
        # tracker fd travels through both fork and spawn), so this attach's
        # registration dedups against the parent's and the parent's unlink
        # balances it exactly once.
        segment = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = segment
    # The segment was CRC-verified at publish time; the buffer may be longer
    # than the trace (page-size rounding), which from_bytes tolerates.
    return CompiledTrace.from_bytes(segment.buf, verify=False, zero_copy=True)


def detach_all() -> None:
    """Close memoised worker-side mappings (test isolation hook).

    A mapping whose zero-copy column views are still alive cannot be closed
    (``BufferError``); it stays memoised so the interpreter never tries to
    unmap memory a live trace still reads.
    """
    for name, segment in list(_ATTACHED.items()):
        try:
            segment.close()
        except BufferError:
            continue
        except OSError:  # pragma: no cover - mapping already gone
            pass
        del _ATTACHED[name]
