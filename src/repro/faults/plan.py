"""Declarative fault plans.

A :class:`FaultPlan` is plain, frozen data — a tuple of :class:`FaultSpec`
entries plus a seed — so it can ride inside an
:class:`~repro.sim.spec.ExperimentSpec` (and therefore into worker
processes and cache fingerprints), round-trip through JSON for the CLI's
``--faults plan.json`` flag, and reproduce the exact same failure sequence
on every replay.

Sites are the named hook points the runtime exposes:

=============  ===============================================================
``io.read``    every page read charged to :class:`~repro.storage.iostats.IOStats`
``io.write``   every page write charged to :class:`IOStats`
``page.write`` every dirty page write-back in the buffer pool (carries the page id)
``tx.begin``   transaction begin, before any state changes
``tx.commit``  transaction commit, *before* the commit record is durable
``tx.abort``   transaction abort, before undo begins
``gc.collect`` immediately before a garbage collection runs
=============  ===============================================================

Effects: ``crash`` raises :class:`~repro.faults.injector.SimulatedCrash`
(the whole process "dies" at that point); ``io-error`` raises
:class:`~repro.faults.injector.InjectedIOError` (one operation fails);
``torn-write`` silently records the written page as torn — the data page is
lost, which recovery from the logical redo log must tolerate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Union

#: Hook points the runtime exposes (see module docstring).
SITES = frozenset(
    {"io.read", "io.write", "page.write", "tx.begin", "tx.commit", "tx.abort", "gc.collect"}
)

#: What happens when a fault fires.
EFFECTS = frozenset({"crash", "io-error", "torn-write"})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Exactly one of ``at`` / ``probability`` selects the firing rule:

    * ``at=n`` fires on the n-th occurrence of ``site`` (1-based);
    * ``probability=p`` flips a seeded coin on every occurrence.

    ``repeat=False`` (the default) retires the fault after its first
    firing; ``repeat=True`` keeps it armed — an ``at``-based repeating
    fault fires on every multiple of ``at``.
    """

    site: str
    effect: str = "crash"
    at: int | None = None
    probability: float | None = None
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; choose from {sorted(SITES)}")
        if self.effect not in EFFECTS:
            raise ValueError(
                f"unknown fault effect {self.effect!r}; choose from {sorted(EFFECTS)}"
            )
        if (self.at is None) == (self.probability is None):
            raise ValueError("exactly one of 'at' and 'probability' must be set")
        if self.at is not None and self.at < 1:
            raise ValueError(f"'at' is a 1-based occurrence count, got {self.at}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.effect == "torn-write" and self.site != "page.write":
            raise ValueError("torn-write faults only apply to the 'page.write' site")


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible failure schedule: fault specs plus the coin seed."""

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Tolerate lists from hand-built plans / JSON round-trips.
        object.__setattr__(self, "faults", tuple(self.faults))

    # ------------------------------------------------------------------
    # JSON round-trip (the CLI's --faults format)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "seed": self.seed,
            "faults": [
                {
                    "site": f.site,
                    "effect": f.effect,
                    "at": f.at,
                    "probability": f.probability,
                    "repeat": f.repeat,
                }
                for f in self.faults
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("a fault plan must be a JSON object")
        faults = tuple(
            FaultSpec(
                site=entry["site"],
                effect=entry.get("effect", "crash"),
                at=entry.get("at"),
                probability=entry.get("probability"),
                repeat=entry.get("repeat", False),
            )
            for entry in payload.get("faults", [])
        )
        return cls(faults=faults, seed=payload.get("seed", 0))


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file (the ``--faults`` flag)."""
    return FaultPlan.from_json(Path(path).read_text())
