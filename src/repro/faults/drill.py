"""Crash–recover–continue drills.

A drill runs one experimental setting twice over the same trace:

1. a **reference** run with no faults, producing the committed logical
   state an unfailing system would reach;
2. a **drilled** run with a :class:`~repro.faults.plan.FaultPlan` attached
   and redo logging enabled. Every injected crash kills the simulated
   process; the drill then rebuilds the committed state from the redo log
   (:func:`repro.tx.recovery.recover`), constructs a fresh simulation
   around the recovered store — rate-policy and selection state rebuilt
   from scratch, oracle garbage accounting replayed from the log's ``dies``
   annotations — and resumes the trace from the crash's ``resume_index``
   (the begin of the transaction that was in flight, so the lost
   transaction is re-executed in full).

The drill's acceptance check is byte-level: the canonical JSON rendering of
the committed reachable state (objects, sizes, kinds, pointer graphs,
roots) of the drilled run must be identical to the reference run's. That is
deliberately GC-invariant — a correct collector only ever removes
unreachable objects, so crash/recovery cycles that shift collection
schedules must not shift the reachable state.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.faults.injector import FaultInjector, SimulatedCrash
from repro.faults.plan import FaultPlan
from repro.storage.heap import ObjectStore
from repro.tx.recovery import RedoLog, recover


def committed_state(store: ObjectStore) -> dict:
    """Canonical JSON-compatible rendering of the committed reachable state.

    Covers exactly what crash recovery guarantees: the objects reachable
    from the persistent roots, with their sizes, kinds and pointer slots,
    plus the root set itself. Unreachable objects are excluded because
    garbage collection may legitimately have removed them in one run and
    not the other.
    """
    reachable = store.reachable_from_roots()
    return {
        "roots": sorted(store.roots),
        "objects": {
            str(oid): {
                "size": store.objects[oid].size,
                "kind": store.objects[oid].kind.value,
                "pointers": {
                    slot: target
                    for slot, target in sorted(store.objects[oid].pointers.items())
                },
            }
            for oid in sorted(reachable)
        },
    }


def state_digest(store: ObjectStore) -> str:
    """SHA-256 of the canonical committed-state bytes (byte-identity check)."""
    blob = json.dumps(committed_state(store), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class DrillReport:
    """Everything one crash–recover–continue drill established."""

    #: Number of injected crashes survived.
    crashes: int
    #: Site of each crash, in order.
    crash_sites: list[str] = field(default_factory=list)
    #: Absolute trace index each resumption restarted from.
    resume_indices: list[int] = field(default_factory=list)
    #: Objects recovered from the redo log at each crash.
    recovered_objects: list[int] = field(default_factory=list)
    #: Digest of the uncrashed reference run's committed state.
    reference_digest: str = ""
    #: Digest of the drilled run's final committed state.
    final_digest: str = ""
    #: The drilled run's fault ledger (site, occurrence, effect) triples.
    fired: list[tuple] = field(default_factory=list)

    @property
    def matches_reference(self) -> bool:
        """True when the drilled run ended byte-identical to the reference."""
        return self.reference_digest == self.final_digest


def run_crash_recovery_drill(
    spec,
    seed: int,
    plan: FaultPlan | None = None,
    max_crashes: int = 16,
    telemetry=None,
) -> DrillReport:
    """Run one crash–recover–continue drill and report the outcome.

    Args:
        spec: An :class:`~repro.sim.spec.ExperimentSpec`; its workload,
            policy and selection are resolved per run exactly as the
            experiment engine would.
        seed: The run seed (workload generation and seeded selection).
        plan: The failure schedule; defaults to ``spec.faults``. Crash
            faults drive the drill; ``torn-write`` faults may ride along
            (logical redo recovery is immune to torn data pages — the
            report's digests prove it).
        max_crashes: Safety valve against a plan that crashes forever
            (e.g. ``repeat=True`` with a tiny period).
        telemetry: A :class:`~repro.obs.telemetry.RunTelemetry` to record
            into, or a path to write a ``kind="drill"`` telemetry file to,
            or ``None``. One telemetry object observes the whole drill —
            its records buffer in this (real) process, so they survive the
            simulated crashes. A path given here is written even though the
            drilled simulation "crashes" mid-run; telemetry never changes
            drill outcomes.

    Raises:
        ValueError: When no plan is given at all.
        RuntimeError: When ``max_crashes`` is exceeded.
    """
    # Local imports: this module is reachable from repro.faults, which the
    # simulation layer imports — importing repro.sim at module scope would
    # close the cycle.
    from repro.sim.simulator import Simulation
    from repro.sim.spec import build_workload

    plan = plan if plan is not None else spec.faults
    if plan is None:
        raise ValueError("a crash-recovery drill needs a FaultPlan (spec.faults or plan=)")

    obs = None
    owns_obs = False
    if telemetry is not None:
        from repro.obs.telemetry import RunTelemetry

        if isinstance(telemetry, RunTelemetry):
            obs = telemetry
        else:
            obs = RunTelemetry(
                telemetry,
                kind="drill",
                label=spec.label or spec.policy.kind,
                seed=seed,
            )
            owns_obs = True

    config = dataclasses.replace(spec.sim, enable_redo_log=True)
    events = list(build_workload(spec.workload, seed))

    def fresh(store=None, faults=None, redo_log=None, observed=False) -> Simulation:
        policy, _, selection = spec.resolve(seed)
        return Simulation(
            policy=policy,
            selection=selection,
            config=config,
            faults=faults,
            store=store,
            redo_log=redo_log,
            obs=obs if observed else None,
        )

    # Reference: same trace, same config (redo logging on, so costs match),
    # no faults. Unobserved — only the drilled run's GC timeline is
    # recorded, so the telemetry file describes one coherent run.
    reference = fresh()
    if obs is not None:
        with obs.span("reference"):
            reference.run(events)
    else:
        reference.run(events)
    report = DrillReport(crashes=0, reference_digest=state_digest(reference.store))

    # Drilled run: one injector for the whole drill, so occurrence counters
    # survive crashes and single-shot faults fire exactly once.
    injector = FaultInjector(plan)
    log = RedoLog()
    sim = fresh(faults=injector, redo_log=log, observed=True)
    start = 0
    while True:
        try:
            if obs is not None:
                with obs.span("drill_segment", start_index=start):
                    sim.run(events, start_index=start)
            else:
                sim.run(events, start_index=start)
            break
        except SimulatedCrash as crash:
            report.crashes += 1
            report.crash_sites.append(crash.site)
            if obs is not None:
                obs.event(
                    "crash",
                    site=crash.site,
                    event_index=crash.event_index,
                    resume_index=crash.resume_index,
                )
            if report.crashes > max_crashes:
                raise RuntimeError(
                    f"drill exceeded max_crashes={max_crashes}; plan {plan} "
                    "appears to crash unboundedly"
                ) from crash
            # The simulated process died: rebuild the committed state from
            # the redo log, drop the lost transaction's orphaned records
            # (it will be re-executed under the same txid), and resume.
            recovered = recover(log, store_config=config.store)
            log.truncate_uncommitted()
            report.recovered_objects.append(len(recovered.objects))
            start = crash.resume_index
            report.resume_indices.append(start)
            if obs is not None:
                obs.event(
                    "recovered",
                    objects=len(recovered.objects),
                    resume_index=start,
                )
                obs.metrics.counter("drill.recoveries").inc()
            sim = fresh(store=recovered, faults=injector, redo_log=log, observed=True)

    report.final_digest = state_digest(sim.store)
    report.fired = [(f.site, f.occurrence, f.effect) for f in injector.fired]
    if obs is not None:
        obs.metrics.gauge("drill.crashes").set(report.crashes)
        obs.event(
            "drill_complete",
            crashes=report.crashes,
            matches_reference=report.matches_reference,
        )
        if owns_obs:
            obs.close()
    return report
