"""The fault-injection runtime.

A :class:`FaultInjector` is instantiated from a :class:`~repro.faults.plan.
FaultPlan` and handed to the storage, transaction and simulation layers as
their fault hook. Each layer calls :meth:`FaultInjector.fire` at its named
sites; the injector counts occurrences per site, consults the plan, and
either returns (no fault due), records a torn write, or raises.

Determinism: occurrence counters advance in the (serial, single-threaded)
order the simulation reaches each site, and probabilistic faults draw from
a :class:`random.Random` seeded purely from ``(plan.seed, fault index,
site)`` — one draw per occurrence, whether or not the fault fires. The
complete firing sequence (the :attr:`fired` ledger) is therefore a pure
function of the plan, and replaying the same (plan, workload seed) pair
reproduces the same failures at the same points.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional

from repro.faults.plan import FaultPlan
from repro.storage.buffer import PageId
from repro.storage.iostats import IOCategory


class InjectedFaultError(Exception):
    """Base class for all injected failures."""


class InjectedIOError(InjectedFaultError):
    """An injected I/O error: one storage operation fails."""


class SimulatedCrash(InjectedFaultError):
    """An injected crash: the simulated process dies at this point.

    The simulator annotates the exception in flight with ``event_index``
    (the trace event being processed when the crash hit) and
    ``resume_index`` (the first event a crash–recover–continue drill must
    re-execute: the begin of the transaction that was in flight, or the
    next unprocessed event when no transaction was open).
    """

    def __init__(self, site: str, occurrence: int) -> None:
        super().__init__(f"injected crash at {site} (occurrence {occurrence})")
        self.site = site
        self.occurrence = occurrence
        self.event_index: Optional[int] = None
        self.resume_index: Optional[int] = None


@dataclass(frozen=True)
class FiredFault:
    """One ledger entry: a fault that fired."""

    site: str
    occurrence: int
    effect: str
    detail: Any = None


class FaultInjector:
    """Deterministically fires the faults of one :class:`FaultPlan`.

    One injector instance is meant to live for one *drill* — across a
    crash–recover–continue cycle the same injector keeps counting, so a
    single-shot crash fault does not re-fire after recovery.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._counts: dict[str, int] = {}
        self._retired = [False] * len(plan.faults)
        self._rngs = [
            random.Random(f"{plan.seed}:{index}:{spec.site}")
            for index, spec in enumerate(plan.faults)
        ]
        #: Every fault that fired, in firing order (the replay ledger).
        self.fired: list[FiredFault] = []
        #: Pages whose write-back was torn (their on-disk image is lost).
        self.torn_pages: set[PageId] = set()

    # ------------------------------------------------------------------
    # Site hooks
    # ------------------------------------------------------------------

    def fire(self, site: str, detail: Any = None) -> None:
        """Register one occurrence of ``site``; raise if a fault is due."""
        occurrence = self._counts.get(site, 0) + 1
        self._counts[site] = occurrence
        for index, spec in enumerate(self.plan.faults):
            if spec.site != site or self._retired[index]:
                continue
            if spec.at is not None:
                due = (
                    occurrence % spec.at == 0 if spec.repeat else occurrence == spec.at
                )
            else:
                # Draw exactly once per occurrence so the coin sequence
                # stays aligned with the occurrence counter.
                due = self._rngs[index].random() < spec.probability
            if not due:
                continue
            if not spec.repeat:
                self._retired[index] = True
            self.fired.append(
                FiredFault(site=site, occurrence=occurrence, effect=spec.effect, detail=detail)
            )
            if spec.effect == "torn-write":
                if detail is not None:
                    self.torn_pages.add(detail)
                continue
            if spec.effect == "io-error":
                raise InjectedIOError(
                    f"injected I/O error at {site} (occurrence {occurrence})"
                )
            raise SimulatedCrash(site, occurrence)

    def fire_io(self, site: str, category: IOCategory) -> None:
        """Hook shape for :class:`~repro.storage.iostats.IOStats`."""
        self.fire(site, detail=category.value)

    def fire_page_write(self, page: PageId, category: IOCategory) -> None:
        """Hook shape for :class:`~repro.storage.buffer.BufferPool`."""
        self.fire("page.write", detail=page)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def occurrences(self, site: str) -> int:
        """How many times ``site`` has been reached so far."""
        return self._counts.get(site, 0)

    @property
    def crashes(self) -> int:
        return sum(1 for f in self.fired if f.effect == "crash")
