"""Deterministic fault injection: failure as a first-class, replayable input.

The paper's simulator "never crashes mid-run" (§3.2); a production ODBMS
cannot make that assumption. This package makes failure an *input* to every
layer of the reproduction instead of an accident:

* :class:`FaultPlan` / :class:`FaultSpec` — a declarative, JSON-serialisable
  schedule of faults (crashes, I/O errors, torn page writes) pinned to
  named sites in the storage, transaction and simulation layers;
* :class:`FaultInjector` — the runtime that fires those faults
  deterministically: the complete firing sequence is a pure function of
  ``(plan, plan.seed)``, so any failing run can be replayed exactly;
* :func:`run_crash_recovery_drill` — the crash–recover–continue harness:
  crash a simulated store at an injected point, :func:`repro.tx.recovery.
  recover` the committed state from the redo log, resume the trace from the
  crash point, and compare the final committed state byte-for-byte against
  an uncrashed reference run.
"""

from repro.faults.injector import (
    FaultInjector,
    FiredFault,
    InjectedFaultError,
    InjectedIOError,
    SimulatedCrash,
)
from repro.faults.plan import (
    EFFECTS,
    SITES,
    FaultPlan,
    FaultSpec,
    load_fault_plan,
)

#: Drill symbols live in repro.faults.drill, which imports the simulation
#: layer (which in turn imports this package's plan/injector modules) — so
#: they are resolved lazily to keep the import graph acyclic.
_DRILL_EXPORTS = frozenset(
    {"DrillReport", "committed_state", "run_crash_recovery_drill", "state_digest"}
)


def __getattr__(name):
    if name in _DRILL_EXPORTS:
        from repro.faults import drill

        return getattr(drill, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DrillReport",
    "EFFECTS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "InjectedFaultError",
    "InjectedIOError",
    "SITES",
    "SimulatedCrash",
    "committed_state",
    "load_fault_plan",
    "run_crash_recovery_drill",
    "state_digest",
]
