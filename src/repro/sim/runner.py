"""Multi-seed experiment runner.

The paper evaluates policies "based on multiple simulation runs that differ
only in the initial random number seed" (§3.2), reporting for each setting
the mean over 10 runs with error bars at the minimum and maximum of the
per-run means (§4.1). This module provides that protocol: build a fresh
workload and policy per seed, run the simulation, and aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.core.rate_policy import RatePolicy
from repro.gc.selection import PartitionSelectionPolicy, UpdatedPointerSelection
from repro.sim.metrics import SimulationSummary
from repro.sim.simulator import Simulation, SimulationConfig, SimulationResult
from repro.events import TraceEvent

#: Builds the trace for a given seed.
TraceFactory = Callable[[int], Iterable[TraceEvent]]
#: Builds a fresh policy instance (policies are stateful; never share them).
PolicyFactory = Callable[[], RatePolicy]
#: Builds a fresh selection policy for a given seed.
SelectionFactory = Callable[[int], PartitionSelectionPolicy]


@dataclass(frozen=True)
class AggregateStat:
    """Mean / min / max of one metric across runs (the paper's error bars)."""

    mean: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "AggregateStat":
        if not values:
            return cls(0.0, 0.0, 0.0)
        return cls(
            mean=sum(values) / len(values),
            minimum=min(values),
            maximum=max(values),
        )

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum


@dataclass
class AggregateResult:
    """Results of one experimental setting across all seeds."""

    summaries: list[SimulationSummary]
    #: Kept only when the caller asks for full results (memory!).
    results: list[SimulationResult] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.summaries)

    @property
    def garbage_fraction(self) -> AggregateStat:
        return AggregateStat.of([s.garbage_fraction_mean for s in self.summaries])

    @property
    def gc_io_fraction(self) -> AggregateStat:
        return AggregateStat.of([s.gc_io_fraction for s in self.summaries])

    @property
    def collections(self) -> AggregateStat:
        return AggregateStat.of([float(s.collections) for s in self.summaries])

    @property
    def total_io(self) -> AggregateStat:
        return AggregateStat.of(
            [float(s.app_io_total + s.gc_io_total) for s in self.summaries]
        )

    @property
    def total_reclaimed(self) -> AggregateStat:
        return AggregateStat.of(
            [float(s.total_reclaimed_bytes) for s in self.summaries]
        )


def run_one(
    policy: RatePolicy,
    trace: Iterable[TraceEvent],
    selection: Optional[PartitionSelectionPolicy] = None,
    config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Run a single simulation (convenience wrapper)."""
    sim = Simulation(policy=policy, selection=selection, config=config)
    return sim.run(trace)


def run_seeds(
    policy_factory: PolicyFactory,
    trace_factory: TraceFactory,
    seeds: Sequence[int],
    selection_factory: Optional[SelectionFactory] = None,
    config: Optional[SimulationConfig] = None,
    keep_results: bool = False,
) -> AggregateResult:
    """Run one experimental setting across several seeds and aggregate.

    Args:
        policy_factory: Called once per seed for a fresh policy.
        trace_factory: Called with each seed for a fresh workload trace.
        seeds: The seeds (the paper uses 10 per data point).
        selection_factory: Partition selection per seed (default
            UPDATEDPOINTER).
        config: Simulation configuration shared by all runs.
        keep_results: Retain full per-run results (series, stores). Off by
            default to bound memory across large sweeps.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    aggregate = AggregateResult(summaries=[])
    for seed in seeds:
        selection = (
            selection_factory(seed) if selection_factory else UpdatedPointerSelection()
        )
        result = run_one(
            policy=policy_factory(),
            trace=trace_factory(seed),
            selection=selection,
            config=config,
        )
        aggregate.summaries.append(result.summary)
        if keep_results:
            aggregate.results.append(result)
    return aggregate
