"""Multi-seed experiment runner.

The paper evaluates policies "based on multiple simulation runs that differ
only in the initial random number seed" (§3.2), reporting for each setting
the mean over 10 runs with error bars at the minimum and maximum of the
per-run means (§4.1). This module provides that protocol: build a fresh
workload and policy per seed, run the simulation, and aggregate.

Two entry points exist:

* :func:`run_seeds` — the in-process, factory-based primitive kept for
  programmatic callers that need arbitrary (non-picklable) factories;
* :func:`repro.sim.engine.run_experiment` — the declarative
  :class:`~repro.sim.spec.ExperimentSpec` entry point, which adds
  multi-process fan-out and on-disk result caching and is what the
  experiment drivers and the CLI use.

All three factory protocols are **seed-aware**: the factory is called with
the run's seed so seed-dependent construction (e.g. randomised selection
policies) stays reproducible. Zero-argument policy factories are still
accepted for backward compatibility, with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import inspect
import warnings
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.core.rate_policy import RatePolicy
from repro.gc.selection import PartitionSelectionPolicy, UpdatedPointerSelection
from repro.sim.metrics import CollectionRecord, SimulationSummary
from repro.sim.simulator import Simulation, SimulationConfig, SimulationResult
from repro.events import TraceEvent

#: Builds the trace for a given seed.
TraceFactory = Callable[[int], Iterable[TraceEvent]]
#: Builds a fresh policy instance for a given seed (policies are stateful;
#: never share them). Zero-argument factories are deprecated but accepted.
PolicyFactory = Callable[[int], RatePolicy]
#: The deprecated zero-argument policy factory protocol.
LegacyPolicyFactory = Callable[[], RatePolicy]
#: Builds a fresh selection policy for a given seed.
SelectionFactory = Callable[[int], PartitionSelectionPolicy]


def _adapt_policy_factory(
    factory: Union[PolicyFactory, LegacyPolicyFactory],
) -> PolicyFactory:
    """Return a seed-aware factory, shimming zero-arg legacy factories.

    A factory is *legacy* exactly when it is callable with no arguments —
    that is how the old protocol invoked it, so factories like
    ``lambda: Policy()`` or ``lambda rate=r: Policy(rate)`` (closure state
    smuggled through argument defaults) keep their old meaning. Anything
    that *requires* an argument is treated as seed-aware.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins / C callables: assume seed-aware
        return factory  # type: ignore[return-value]
    try:
        signature.bind()
    except TypeError:
        return factory  # requires an argument: already seed-aware
    warnings.warn(
        "zero-argument policy factories are deprecated; make the factory "
        "seed-aware (Callable[[int], RatePolicy])",
        DeprecationWarning,
        stacklevel=3,
    )
    return lambda seed: factory()  # type: ignore[call-arg]


@dataclass(frozen=True)
class AggregateStat:
    """Mean / min / max of one metric across runs (the paper's error bars)."""

    mean: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "AggregateStat":
        if not values:
            return cls(0.0, 0.0, 0.0)
        return cls(
            mean=sum(values) / len(values),
            minimum=min(values),
            maximum=max(values),
        )

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum


@dataclass
class RunStats:
    """Observability counters for one aggregated experimental setting."""

    #: Wall-clock seconds spent actually simulating (cache hits cost ~0).
    wall_time: float = 0.0
    #: Runs answered from the on-disk result cache.
    cache_hits: int = 0
    #: Runs that had to be simulated.
    cache_misses: int = 0
    #: Runs that failed even after retries (quarantined, not aggregated).
    failures: int = 0
    #: Extra attempts spent retrying runs that eventually succeeded or failed.
    retries: int = 0
    #: Telemetry files written for this setting's runs (engine-populated,
    #: present only when the engine ran with ``telemetry=``; cache hits
    #: skip simulation and therefore produce no file).
    telemetry_paths: list[str] = field(default_factory=list)

    @property
    def runs(self) -> int:
        """Runs that completed (from cache or simulation); excludes failures."""
        return self.cache_hits + self.cache_misses

    def merge(self, other: "RunStats") -> None:
        self.wall_time += other.wall_time
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.failures += other.failures
        self.retries += other.retries
        self.telemetry_paths.extend(other.telemetry_paths)


@dataclass(frozen=True)
class RunFailure:
    """One quarantined run: it failed every attempt and was excluded.

    The batch survives — the failure is recorded here (and counted in
    :attr:`RunStats.failures`) instead of killing the whole sweep.
    """

    label: str
    seed: int
    #: ``repr`` of the final exception.
    error: str
    #: Total attempts made (1 + retries).
    attempts: int


@dataclass
class AggregateResult:
    """Results of one experimental setting across all seeds."""

    summaries: list[SimulationSummary]
    #: Kept only when the caller asks for full results (memory!).
    results: list[SimulationResult] = field(default_factory=list)
    #: Per-seed collection records, kept only when the caller asks for them
    #: (``keep_records=True`` on the engine entry points).
    records: list[list[CollectionRecord]] = field(default_factory=list)
    #: Wall-time and cache accounting (populated by the engine).
    stats: Optional[RunStats] = None
    #: Runs that failed after exhausting retries (engine-populated). The
    #: aggregate statistics above are computed over successful runs only.
    failures: list[RunFailure] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.summaries)

    @property
    def telemetry_paths(self) -> list[str]:
        """Telemetry files written for this setting (empty when disabled)."""
        if self.stats is None:
            return []
        return self.stats.telemetry_paths

    @property
    def garbage_fraction(self) -> AggregateStat:
        return AggregateStat.of([s.garbage_fraction_mean for s in self.summaries])

    @property
    def gc_io_fraction(self) -> AggregateStat:
        return AggregateStat.of([s.gc_io_fraction for s in self.summaries])

    @property
    def collections(self) -> AggregateStat:
        return AggregateStat.of([float(s.collections) for s in self.summaries])

    @property
    def total_io(self) -> AggregateStat:
        return AggregateStat.of(
            [float(s.app_io_total + s.gc_io_total) for s in self.summaries]
        )

    @property
    def total_reclaimed(self) -> AggregateStat:
        return AggregateStat.of(
            [float(s.total_reclaimed_bytes) for s in self.summaries]
        )


def run_one(
    policy: RatePolicy,
    trace: Iterable[TraceEvent],
    selection: Optional[PartitionSelectionPolicy] = None,
    config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Run a single simulation (convenience wrapper)."""
    sim = Simulation(policy=policy, selection=selection, config=config)
    return sim.run(trace)


def run_seeds(
    policy_factory: Union[PolicyFactory, LegacyPolicyFactory],
    trace_factory: TraceFactory,
    seeds: Sequence[int],
    selection_factory: Optional[SelectionFactory] = None,
    config: Optional[SimulationConfig] = None,
    keep_results: bool = False,
) -> AggregateResult:
    """Run one experimental setting across several seeds and aggregate.

    Args:
        policy_factory: Called with each seed for a fresh policy
            (zero-argument factories still work, with a DeprecationWarning).
        trace_factory: Called with each seed for a fresh workload trace.
        seeds: The seeds (the paper uses 10 per data point).
        selection_factory: Partition selection per seed (default
            UPDATEDPOINTER).
        config: Simulation configuration shared by all runs.
        keep_results: Retain full per-run results (series, stores). Off by
            default to bound memory across large sweeps.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    make_policy = _adapt_policy_factory(policy_factory)
    aggregate = AggregateResult(summaries=[])
    for seed in seeds:
        selection = (
            selection_factory(seed) if selection_factory else UpdatedPointerSelection()
        )
        result = run_one(
            policy=make_policy(seed),
            trace=trace_factory(seed),
            selection=selection,
            config=config,
        )
        aggregate.summaries.append(result.summary)
        if keep_results:
            aggregate.results.append(result)
    return aggregate
