"""Batched trace replay: a vectorized interpreter over compiled columns.

The scalar loop in :mod:`repro.sim.simulator` decodes one
:class:`~repro.events.TraceEvent` dataclass per event and dispatches it
through the store's public methods. At trace scale (hundreds of thousands
of events per policy cell) the per-event overhead — event allocation,
handler dispatch, attribute traffic on the store/sampler/buffer objects —
dominates wall time. This module replays a
:class:`~repro.workload.compiled.CompiledTrace` directly from its columnar
form instead, in one of two modes:

* **fast mode** (:func:`_replay_fast`) — a fused interpreter that hoists
  every piece of hot mutable state (I/O ledgers, buffer LRU, sampler
  accumulators, garbage totals, the trigger clock) into plain locals,
  applies events with inlined copies of the store's kernels, and only
  *flushes* the locals back to the real objects at **run boundaries**: a
  GC trigger firing, a transaction span, a deadline check, or the end of
  the trace. Homogeneous ACCESS/UPDATE runs (from the precomputed
  run-length index) are applied as bulk operations when the trigger clock
  is provably frozen across the run. Eligibility is conservative
  (:func:`_fast_eligible`): any hook, fault injector, redo log, retained
  event series, or subclassed component routes to guarded mode instead.

* **guarded mode** (:func:`_replay_guarded`) — a per-event loop over the
  same columns that calls the real store/transaction/sampler methods in
  exactly the scalar order. It skips only the event-object decode and
  handler dispatch, so it composes with fault injection, WAL/redo
  logging, opportunistic policies and retained series. Fast mode also
  drops into guarded mode for the span of each explicit transaction.

Both modes are **result-identical to the scalar loop**: summaries are
pickle-equal and final store state matches field for field (property-
tested in ``tests/sim/test_batch_replay.py``). Bitwise float equality
holds because every floating-point operation of the scalar path —
garbage-fraction divisions and the sampler's sequential ``total +=``
folds — is reproduced operation for operation; bulk runs reuse the one
unchanged quotient and fold it sequentially (:func:`_fold_add`, which
uses ``numpy.add.accumulate`` — a documented left fold — never pairwise
``numpy.sum``).

NumPy is optional (the ``[perf]`` extra): when importable it accelerates
the cache-building kernels (run-length index, prefix counts, fold), and
the pure-``array`` fallbacks compute bit-identical results (A/B-tested by
monkeypatching :data:`_HAVE_NUMPY`).

Error paths: a :class:`~repro.storage.heap.StoreError` raised mid-batch
(only malformed traces do this) flushes the mirrored counters before
propagating, so the store is left observationally consistent; page
touches of a partially applied bulk run are the one accepted divergence
from scalar error-state.
"""

from __future__ import annotations

import time
from typing import Optional

try:  # pragma: no cover - exercised via the monkeypatched fallback tests
    import numpy as _np

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    _HAVE_NUMPY = False

from repro.core.extensions import OpportunisticPolicy
from repro.core.rate_policy import TimeBase
from repro.faults.injector import SimulatedCrash
from repro.gc.remembered import RememberedSetIndex
from repro.sim.metrics import Sampler
from repro.storage.buffer import BufferPool
from repro.storage.heap import _OPEN_LIST_STALE_LIMIT, ObjectStore, StoreError
from repro.storage.iostats import IOCategory, IOStats
from repro.storage.object_model import ObjectKind, StoredObject
from repro.storage.objtable import PlacementTable
from repro.storage.partition import Partition
from repro.tx.manager import TransactionManager
from repro.workload.compiled import _NONE, CompiledTrace, CompiledTraceError

_APP = IOCategory.APPLICATION
_BASE_OVERWRITES = TimeBase.OVERWRITES
_BASE_ALLOCATED = TimeBase.ALLOCATED

#: Buffer-pool pop sentinel (hit/miss discrimination without double lookup).
_MISS = object()

#: Deadline checks are amortised over this many events in fast mode; the
#: guarded loop (and the scalar loop) check once per event.
_DEADLINE_STRIDE = 4096

#: Minimum homogeneous ACCESS/UPDATE run length worth taking the bulk path.
_BULK_MIN_RUN = 4


def _timeout():
    # Local import: repro.sim.engine imports the simulator at module scope,
    # and the simulator lazily imports this module — a module-scope import
    # of the engine here would still be safe, but keeping it lazy keeps
    # batch importable without pulling the whole engine/spec stack.
    from repro.sim.engine import RunTimeoutError

    return RunTimeoutError("simulation run exceeded run_timeout")


# ----------------------------------------------------------------------
# Kernels: run index, prefix counts, sequential float fold
#
# Each has a numpy and a pure-python form computing identical results;
# _HAVE_NUMPY selects at call time so tests can flip it.
# ----------------------------------------------------------------------


def _run_ends_python(ops: list) -> list:
    """``run_end[i]`` = end (exclusive) of the homogeneous opcode run at i."""
    n = len(ops)
    ends = [n] * n
    for i in range(n - 2, -1, -1):
        ends[i] = ends[i + 1] if ops[i] == ops[i + 1] else i + 1
    return ends


def _run_ends_numpy(ops: list) -> list:
    n = len(ops)
    if n == 0:
        return []
    a = _np.asarray(ops, dtype=_np.int64)
    starts = _np.flatnonzero(a[1:] != a[:-1]) + 1
    bounds = _np.concatenate((starts, [n]))
    lengths = _np.diff(_np.concatenate(([0], bounds)))
    return _np.repeat(bounds, lengths).tolist()


def _max_create_oid_python(ops: list, arg0: list) -> int:
    best = 0
    for i, op in enumerate(ops):
        if op == 0 and arg0[i] > best:
            best = arg0[i]
    return best


def _max_create_oid_numpy(ops: list, arg0: list) -> int:
    a = _np.asarray(ops, dtype=_np.int64)
    creates = _np.asarray(arg0, dtype=_np.int64)[a == 0]
    return int(creates.max()) if creates.size else 0


def _prefix_counts(ops: list, start: int) -> tuple[int, int]:
    """(creates, writes) among ``ops[:start]`` — the running sub-column
    cursors a mid-trace resume must start from."""
    if start <= 0:
        return 0, 0
    if _HAVE_NUMPY and start >= 4096:
        a = _np.asarray(ops[:start], dtype=_np.int64)
        return int((a == 0).sum()), int((a == 3).sum())
    head = ops[:start]
    return head.count(0), head.count(3)


def _fold_add(total: float, value: float, count: int) -> float:
    """``count`` sequential IEEE-754 additions of ``value`` onto ``total``.

    Must stay a left fold: the scalar sampler adds one ``value`` per event,
    and pairwise summation (``numpy.sum``) rounds differently.
    ``ufunc.accumulate`` is documented to apply the operator sequentially,
    so the numpy form is bitwise-equal to the loop.
    """
    if _HAVE_NUMPY and count >= 32:
        arr = _np.empty(count + 1, dtype=_np.float64)
        arr[0] = total
        arr[1:] = value
        return float(_np.add.accumulate(arr)[-1])
    for _ in range(count):
        total += value
    return total


# ----------------------------------------------------------------------
# Batch cache: plain-list column views + run index, memoised per trace
# ----------------------------------------------------------------------


class _BatchCache:
    """Replay-ready views of one compiled trace's columns.

    Columns are ``.tolist()``-ed once: list indexing returns pre-boxed ints,
    which beats per-access boxing out of ``array``/``memoryview`` columns in
    the interpreter loops. Shared across every replay of the trace (the
    trace is immutable), including the decoded :class:`ObjectKind` memo.
    """

    __slots__ = (
        "ops", "arg0", "arg1",
        "create_kind", "create_ptr_start", "ptr_slots", "ptr_targets",
        "write_slot", "write_dies_start", "dies",
        "run_end", "max_oid", "kinds",
    )


def _as_list(column) -> list:
    return column.tolist()


def _ensure_cache(trace: CompiledTrace) -> _BatchCache:
    cache = trace._batch_cache
    if cache is None:
        cache = _BatchCache()
        cache.ops = _as_list(trace.ops)
        cache.arg0 = _as_list(trace.arg0)
        cache.arg1 = _as_list(trace.arg1)
        cache.create_kind = _as_list(trace.create_kind)
        cache.create_ptr_start = _as_list(trace.create_ptr_start)
        cache.ptr_slots = _as_list(trace.ptr_slots)
        cache.ptr_targets = _as_list(trace.ptr_targets)
        cache.write_slot = _as_list(trace.write_slot)
        cache.write_dies_start = _as_list(trace.write_dies_start)
        cache.dies = _as_list(trace.dies)
        if _HAVE_NUMPY:
            cache.run_end = _run_ends_numpy(cache.ops)
            cache.max_oid = _max_create_oid_numpy(cache.ops, cache.arg0)
        else:
            cache.run_end = _run_ends_python(cache.ops)
            cache.max_oid = _max_create_oid_python(cache.ops, cache.arg0)
        cache.kinds = {}
        trace._batch_cache = cache
    return cache


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_batched(sim, trace: CompiledTrace, start_index: int = 0,
                deadline: Optional[float] = None):
    """Replay ``trace`` on ``sim`` through the batched interpreter.

    Drop-in equivalent of the scalar body of
    :meth:`repro.sim.simulator.Simulation.run` — same ``start_index``
    resume semantics, same :class:`SimulatedCrash` annotation, same
    result construction.
    """
    from repro.sim.simulator import SimulationResult

    if start_index < 0:
        raise ValueError(f"start_index must be >= 0, got {start_index}")
    cache = _ensure_cache(trace)
    n = len(cache.ops)
    ci, wi = _prefix_counts(cache.ops, start_index)
    sim._event_index = start_index - 1
    sim._tx_start_index = None
    store = sim.store
    try:
        sim._schedule(sim.policy.first_trigger(store, store.iostats))
        if _fast_eligible(sim):
            _replay_fast(sim, trace, cache, start_index, n, ci, wi, deadline)
        else:
            _replay_guarded(
                sim, trace, cache, start_index, n, ci, wi, deadline, False
            )
    except SimulatedCrash as crash:
        crash.event_index = sim._event_index
        crash.resume_index = (
            sim._tx_start_index
            if sim.tx.in_transaction and sim._tx_start_index is not None
            else sim._event_index + (0 if not sim._event_applied else 1)
        )
        raise
    result = SimulationResult(
        summary=sim.sampler.summary(store, store.iostats),
        sampler=sim.sampler,
        store=store,
        policy=sim.policy,
    )
    if sim.obs is not None:
        sim.obs.on_run_end(sim, result)
    return result


def _fast_eligible(sim) -> bool:
    """Whether the fused fast interpreter reproduces this run exactly.

    Fast mode inlines store/buffer/sampler kernels, so every component it
    bypasses must be the stock implementation with no hooks attached.
    Anything else — fault injection, redo auto-commit, retained event
    series, opportunistic policies, subclassed components — runs guarded.
    (A WAL alone is fine: it only acts inside explicit transactions, which
    fast mode already delegates to guarded spans.)
    """
    store = sim.store
    buffer = store.buffer
    sampler = sim.sampler
    return (
        sim.faults is None
        and sim.redo_log is None
        # Parallel collection pumps speculative traces at the margin point
        # and validates them against store.trace_epochs; fast mode inlines
        # the mutation kernels that maintain those epochs, so parallel-mode
        # runs replay guarded (the guarded path calls the real methods).
        and sim._par is None
        and not sim.config.keep_event_series
        and sampler._series_countdown is None
        and not isinstance(sim.policy, OpportunisticPolicy)
        and type(store) is ObjectStore
        and type(store.iostats) is IOStats
        and type(buffer) is BufferPool
        and type(store.placements) is PlacementTable
        and type(store.remembered) is RememberedSetIndex
        and type(sampler) is Sampler
        and type(sim.tx) is TransactionManager
        and store.iostats.fault_hook is None
        and buffer.write_hook is None
        and buffer._iostats is store.iostats
        and not sim.tx.in_transaction
        and all(type(p) is Partition for p in store.partitions)
    )


# ----------------------------------------------------------------------
# Guarded mode: per-event column interpreter over real methods
# ----------------------------------------------------------------------


def _replay_guarded(sim, trace, cache, i, end, ci, wi, deadline,
                    until_tx_close):
    """Apply events ``[i, end)`` via the store's real methods, in exactly
    the scalar loop's order.

    ``ci``/``wi`` are the running create/write sub-column cursors (passed
    between fast and guarded spans rather than recomputed). With
    ``until_tx_close`` set, returns right after the first event that
    leaves no transaction open (fast mode's transaction-span handoff).
    Returns the advanced ``(i, ci, wi)``.
    """
    ops = cache.ops
    g0 = cache.arg0
    g1 = cache.arg1
    ck = cache.create_kind
    cps = cache.create_ptr_start
    psl = cache.ptr_slots
    ptg = cache.ptr_targets
    wsl = cache.write_slot
    wds = cache.write_dies_start
    dls = cache.dies
    kinds = cache.kinds
    strings = trace.strings
    none = _NONE

    store = sim.store
    iostats = store.iostats
    tx = sim.tx
    sample_event = sim.sampler.on_event
    on_phase = sim.sampler.on_phase
    handle_idle = sim._handle_idle
    clock = sim._clock
    collect = sim._collect
    redo = sim.redo_log
    note_activity = (
        sim.policy.note_activity
        if isinstance(sim.policy, OpportunisticPolicy)
        else None
    )
    monotonic = time.monotonic

    while i < end:
        if deadline is not None and monotonic() >= deadline:
            raise _timeout()
        op = ops[i]
        a = g0[i]
        sim._event_index += 1
        sim._event_applied = False
        if op == 5:  # PHASE
            on_phase(strings[a])
            sim._event_applied = True
            i += 1
            continue
        if op == 6:  # IDLE
            sim._event_applied = True
            handle_idle(a)
            i += 1
            continue
        if op < 5:  # database event: create/access/update/write/root
            auto = redo is not None and op != 1 and not tx.in_transaction
            if auto:
                txid = sim._auto_txid
                sim._auto_txid = txid - 1
                tx.begin(txid)
                sim._tx_start_index = sim._event_index
                sink = tx
            else:
                sink = tx if tx.in_transaction else store
            if op == 1:
                sink.access(a)
            elif op == 3:
                tgt = g1[i]
                lo = wds[wi]
                hi = wds[wi + 1]
                sink.write_pointer(
                    a,
                    strings[wsl[wi]],
                    None if tgt == none else tgt,
                    dies=tuple(dls[lo:hi]),
                )
                wi += 1
            elif op == 0:
                ki = ck[ci]
                kind = kinds.get(ki)
                if kind is None:
                    kind = kinds.setdefault(ki, ObjectKind(strings[ki]))
                lo = cps[ci]
                hi = cps[ci + 1]
                pointers = {}
                for j in range(lo, hi):
                    t = ptg[j]
                    pointers[strings[psl[j]]] = None if t == none else t
                sink.create(size=g1[i], kind=kind, pointers=pointers, oid=a)
                ci += 1
            elif op == 2:
                sink.update(a)
            else:
                sink.register_root(a)
            if auto:
                tx.commit(txid)
        elif op == 7:
            tx.begin(a)
            sim._tx_start_index = sim._event_index
        elif op == 8:
            tx.commit(a)
        elif op == 9:
            tx.abort(a)
        else:  # pragma: no cover - compile_trace never emits other ops
            sim._event_index -= 1
            raise CompiledTraceError(f"unknown opcode {op} at event {i}")
        sim._event_applied = True
        i += 1
        if note_activity is not None:
            note_activity()
        sample_event(store, iostats)
        if tx.in_transaction:
            continue
        while clock() >= sim._due_at:
            collect()
        if until_tx_close:
            return i, ci, wi
    return i, ci, wi


# ----------------------------------------------------------------------
# Fast mode: fused interpreter over flat heap state
# ----------------------------------------------------------------------


def _replay_fast(sim, trace, cache, i, n, ci, wi, deadline):
    """The fused interpreter. See the module docstring for the contract.

    Structure: the outer loop *reloads* every mirrored piece of state into
    locals; the inner loop applies events with inlined kernels; at a run
    boundary (trigger fired / transaction span / deadline / end of trace)
    the locals *flush* back and the boundary is handled with the real
    methods (``sim._collect``, :func:`_replay_guarded`). No closures: the
    hot names must stay plain locals, not cells.
    """
    ops = cache.ops
    g0 = cache.arg0
    g1 = cache.arg1
    ck = cache.create_kind
    cps = cache.create_ptr_start
    psl = cache.ptr_slots
    ptg = cache.ptr_targets
    wsl = cache.write_slot
    wds = cache.write_dies_start
    dls = cache.dies
    run_end = cache.run_end
    kinds = cache.kinds
    strings = trace.strings
    none = _NONE
    miss = _MISS
    monotonic = time.monotonic

    store = sim.store
    sampler = sim.sampler
    iostats = store.iostats
    buffer = store.buffer
    table = store.placements
    rem = store.remembered
    garbage = store.garbage

    # Dense placement columns. reserve() grows the arrays in place (their
    # identity is stable), so pre-sizing for the largest created oid makes
    # every in-range insert a plain indexed store.
    if cache.max_oid >= 0:
        table.reserve(cache.max_oid + 1)
    tparts = table.parts
    toffs = table.offs
    tsizes = table.sizes
    dense = len(tparts)

    objects = store.objects
    objects_get = objects.get
    partitions = store.partitions
    free = store._partition_free          # mutated in place by the store
    open_parts = store._open_partitions   # prune preserves identity
    unlinked = store.unlinked
    roots = store.roots
    dead_bytes = store.dead_bytes
    rem_roots = rem._roots
    rem_pins = rem._pins
    rem_sources = rem._sources

    pages = buffer._pages
    pages_pop = pages.pop
    pop_lru = pages.popitem
    bufcap1 = buffer._capacity - 1
    bstats = buffer.stats
    app_led = iostats._ledgers[_APP]

    page_size = store.config.page_size
    phys_mode = store.config.db_size_mode == "physical"
    preamble = sampler.preamble_collections
    ga = sampler._garbage_all
    g = sampler._garbage
    stale_limit = _OPEN_LIST_STALE_LIMIT
    obj_cls = StoredObject
    obj_new = obj_cls.__new__
    last_ki = -1  # kind-column memo: traces cluster creates by kind
    last_kind = None

    while True:
        # ---- reload: mirror mutable state into locals ----------------
        next_oid = store._next_oid
        alloc_bytes = store._allocated_bytes
        alloc_clock = store.bytes_allocated_total
        po = store.pointer_overwrites
        pstores = store.pointer_stores
        tot_gen = garbage.total_generated
        tot_coll = garbage.total_collected  # only _collect changes this
        tcount = 0                          # dense placement-count delta
        hits = bstats.hits
        misses = bstats.misses
        app_r = app_led.reads
        app_w = app_led.writes
        gc_total = iostats.collector_total  # frozen between collections
        rem_edges = rem.edges
        rem_rem = rem.remembers_total
        rem_forg = rem.forgets_total
        ev_i = sampler.event_index
        collections = sampler.collections   # frozen between collections
        sig = sampler._significant_started
        ga_count = ga.count
        ga_total = ga.total
        ga_min = ga.minimum
        ga_max = ga.maximum
        g_count = g.count
        g_total = g.total
        g_min = g.minimum
        g_max = g.maximum
        trig_base = sim._trigger.base
        if trig_base is _BASE_OVERWRITES:
            base_kind = 0
        elif trig_base is _BASE_ALLOCATED:
            base_kind = 1
        else:
            base_kind = 2
        due = sim._due_at
        dbsz = store._physical_bytes if phys_mode else alloc_bytes
        garb = tot_gen - tot_coll
        gf = garb / dbsz if dbsz else 0.0
        lgf = miss  # last gf folded into min/max; miss forces a compare
        npages = len(pages)
        # Most-recently-used page mirror: a touch of the page that is
        # already at the back of the LRU is order-preserving in the scalar
        # path too (pop + reinsert of the back element), so it collapses to
        # a hit count and, at most, a dirty upgrade. Sequential creates and
        # traversals hit this constantly.
        mru_pid = -1
        mru_page = -1
        mru_dirty = False
        # Bump-allocation cache: partition.fill is mirrored into cur_fill
        # for the partition creates are currently landing in, flushed when
        # the target partition changes and at every run boundary.
        cur_pid = -1
        cur_part = None
        cur_fill = 0
        cur_res_add = None
        cur_pins = None
        cur_pins_add = None

        fired = False
        span = False
        timed_out = False
        budget = _DEADLINE_STRIDE

        try:
            while i < n:
                op = ops[i]
                a = g0[i]
                if op == 3:  # WRITE
                    src = a
                    # Placed-in-the-dense-table is equivalent to existence:
                    # objects and placements share a keyset until reclaim.
                    try:
                        obj = objects[src]
                    except KeyError:
                        raise StoreError(f"unknown object {src}") from None
                    if 0 <= src < dense:
                        sp = tparts[src]
                        soff = toffs[src]
                        ssz = tsizes[src]
                    else:
                        sp, soff, ssz = table.locate(src)
                    tgt = g1[i]
                    if tgt == none:
                        tgt = None
                        tp = -1
                    elif 0 <= tgt < dense and (tp := tparts[tgt]) >= 0:
                        pass
                    elif objects_get(tgt) is None:
                        raise StoreError(f"pointer target {tgt} does not exist")
                    else:
                        tp = table.part_of(tgt)
                    optrs = obj.pointers
                    slot = strings[wsl[wi]]
                    old = optrs.get(slot)
                    optrs[slot] = tgt
                    first = soff // page_size
                    last = (soff + ssz - 1) // page_size
                    while first <= last:
                        if sp == mru_pid and first == mru_page:
                            first += 1
                            hits += 1
                            if not mru_dirty:
                                pages[(sp, mru_page)] = True
                                mru_dirty = True
                            continue
                        pg = (sp, first)
                        mru_pid = sp
                        mru_page = first
                        first += 1
                        wasd = pages_pop(pg, miss)
                        if wasd is not miss:
                            hits += 1
                            pages[pg] = True
                        else:
                            misses += 1
                            while npages > bufcap1:
                                npages -= 1
                                if pop_lru(False)[1]:
                                    app_w += 1
                            app_r += 1
                            npages += 1
                            pages[pg] = True
                        mru_dirty = True
                    if old is not None:
                        po += 1
                        old_pid = (
                            tparts[old] if 0 <= old < dense
                            else table.part_of(old)
                        )
                        if old_pid >= 0:
                            partitions[old_pid].pointer_overwrites += 1
                            if old_pid != sp:
                                # Partition.forget + forget_source, with the
                                # same found/absent branch placements.
                                inc = partitions[old_pid].incoming
                                srcs = inc.get(old)
                                if srcs is not None:
                                    cnt0 = srcs.get(src)
                                    if cnt0 is not None:
                                        if cnt0 <= 1:
                                            del srcs[src]
                                            if not srcs:
                                                del inc[old]
                                        else:
                                            srcs[src] = cnt0 - 1
                                        sdict = rem_sources.get(old_pid)
                                        if sdict is not None:
                                            c2 = sdict.get(src)
                                            if c2 is not None:
                                                if c2 <= 1:
                                                    del sdict[src]
                                                else:
                                                    sdict[src] = c2 - 1
                                                rem_edges -= 1
                                                rem_forg += 1
                    else:
                        pstores += 1
                    if tgt is not None:
                        if tgt in unlinked:
                            unlinked.discard(tgt)
                            pd = rem_pins.get(tp)
                            if pd is not None:
                                pd.discard(tgt)
                        if tp >= 0 and tp != sp:
                            inc2 = partitions[tp].incoming
                            srcs2 = inc2.get(tgt)
                            if srcs2 is None:
                                inc2[tgt] = {src: 1}
                            else:
                                srcs2[src] = srcs2.get(src, 0) + 1
                            pd2 = rem_sources.get(tp)
                            if pd2 is None:
                                rem_sources[tp] = {src: 1}
                            else:
                                pd2[src] = pd2.get(src, 0) + 1
                            rem_edges += 1
                            rem_rem += 1
                    lo = wds[wi]
                    hi = wds[wi + 1]
                    wi += 1
                    if lo != hi:
                        while lo < hi:
                            victim = dls[lo]
                            lo += 1
                            vobj = objects_get(victim)
                            if vobj is None or vobj.dead:
                                continue
                            vobj.dead = True
                            vsz = vobj.size
                            tot_gen += vsz
                            garb += vsz
                            vp = (
                                tparts[victim] if 0 <= victim < dense
                                else table.part_of(victim)
                            )
                            if vp < 0:
                                raise StoreError(
                                    f"object {victim} has no placement"
                                )
                            dead_bytes[vp] = dead_bytes.get(vp, 0) + vsz
                        gf = garb / dbsz if dbsz else 0.0

                elif op == 1 or op == 2:  # ACCESS / UPDATE
                    dirty = op == 2
                    j = run_end[i]
                    if (
                        j - i >= _BULK_MIN_RUN
                        and sig
                        and base_kind != 2
                        and (po < due if base_kind == 0 else alloc_clock < due)
                    ):
                        # Bulk run: the trigger clock (overwrites or
                        # allocation) is frozen across pure reads/updates
                        # and significance already started, so per-event
                        # sampling collapses to one fold of the unchanged
                        # garbage fraction and the trigger cannot fire
                        # mid-run.
                        cnt = j - i
                        k = i
                        while k < j:
                            oidk = g0[k]
                            k += 1
                            if 0 <= oidk < dense and (pk := tparts[oidk]) >= 0:
                                offk = toffs[oidk]
                                szk = tsizes[oidk]
                            else:
                                if objects_get(oidk) is None:
                                    raise StoreError(f"unknown object {oidk}")
                                pk, offk, szk = table.locate(oidk)
                            first = offk // page_size
                            last = (offk + szk - 1) // page_size
                            while first <= last:
                                if pk == mru_pid and first == mru_page:
                                    first += 1
                                    hits += 1
                                    if dirty and not mru_dirty:
                                        pages[(pk, mru_page)] = True
                                        mru_dirty = True
                                    continue
                                pg = (pk, first)
                                mru_pid = pk
                                mru_page = first
                                first += 1
                                wasd = pages_pop(pg, miss)
                                if wasd is not miss:
                                    hits += 1
                                    mru_dirty = wasd or dirty
                                    pages[pg] = mru_dirty
                                else:
                                    misses += 1
                                    while npages > bufcap1:
                                        npages -= 1
                                        if pop_lru(False)[1]:
                                            app_w += 1
                                    app_r += 1
                                    npages += 1
                                    pages[pg] = dirty
                                    mru_dirty = dirty
                        i = j
                        ev_i += cnt
                        ga_count += cnt
                        ga_total = _fold_add(ga_total, gf, cnt)
                        if gf < ga_min:
                            ga_min = gf
                        if gf > ga_max:
                            ga_max = gf
                        g_count += cnt
                        g_total = _fold_add(g_total, gf, cnt)
                        if gf < g_min:
                            g_min = gf
                        if gf > g_max:
                            g_max = gf
                        budget -= cnt
                        if budget <= 0:
                            budget = _DEADLINE_STRIDE
                            if deadline is not None and monotonic() >= deadline:
                                timed_out = True
                                break
                        continue
                    # Scalar access/update: placement lookup + page touch.
                    if 0 <= a < dense and (pk := tparts[a]) >= 0:
                        offk = toffs[a]
                        szk = tsizes[a]
                    else:
                        if objects_get(a) is None:
                            raise StoreError(f"unknown object {a}")
                        pk, offk, szk = table.locate(a)
                    first = offk // page_size
                    last = (offk + szk - 1) // page_size
                    while first <= last:
                        if pk == mru_pid and first == mru_page:
                            first += 1
                            hits += 1
                            if dirty and not mru_dirty:
                                pages[(pk, mru_page)] = True
                                mru_dirty = True
                            continue
                        pg = (pk, first)
                        mru_pid = pk
                        mru_page = first
                        first += 1
                        wasd = pages_pop(pg, miss)
                        if wasd is not miss:
                            hits += 1
                            mru_dirty = wasd or dirty
                            pages[pg] = mru_dirty
                        else:
                            misses += 1
                            while npages > bufcap1:
                                npages -= 1
                                if pop_lru(False)[1]:
                                    app_w += 1
                            app_r += 1
                            npages += 1
                            pages[pg] = dirty
                            mru_dirty = dirty

                elif op == 0:  # CREATE
                    oid = a
                    if oid in objects:
                        raise StoreError(f"object {oid} already exists")
                    size = g1[i]
                    if oid >= next_oid:
                        next_oid = oid + 1
                    ki = ck[ci]
                    if ki != last_ki:
                        last_kind = kinds.get(ki)
                        if last_kind is None:
                            last_kind = kinds.setdefault(
                                ki, ObjectKind(strings[ki])
                            )
                        last_ki = ki
                    kind = last_kind
                    # StoredObject sans constructor: the dataclass __init__
                    # plus __post_init__ cost ~1µs/object, a quarter of the
                    # whole create kernel. Same validation, same message.
                    if size <= 0:
                        raise ValueError(
                            f"object size must be positive, got {size}"
                        )
                    obj = obj_new(obj_cls)
                    obj.oid = oid
                    obj.size = size
                    obj.kind = kind
                    obj.pointers = {}
                    obj.dead = False
                    # _place inline: open-list first fit + bump, with the
                    # current partition's fill mirrored in cur_fill.
                    alloc_bytes += size
                    pid = -1
                    for pp in open_parts:
                        if size <= free[pp]:
                            pid = pp
                            break
                    if pid < 0:
                        if cur_pid >= 0:
                            cur_part.fill = cur_fill
                        cur_part = store._grow_partition(size)
                        cur_pid = pid = cur_part.pid
                        cur_fill = cur_part.fill
                        cur_res_add = cur_part.residents.add
                        cur_pins = rem_pins.get(pid)
                        if cur_pins is not None:
                            cur_pins_add = cur_pins.add
                        if phys_mode:
                            dbsz = store._physical_bytes
                    elif pid != cur_pid:
                        if cur_pid >= 0:
                            cur_part.fill = cur_fill
                        cur_part = partitions[pid]
                        cur_pid = pid
                        cur_fill = cur_part.fill
                        cur_res_add = cur_part.residents.add
                        cur_pins = rem_pins.get(pid)
                        if cur_pins is not None:
                            cur_pins_add = cur_pins.add
                    off = cur_fill
                    cur_fill = off + size
                    cur_res_add(oid)
                    left = free[pid] - size
                    free[pid] = left
                    if left <= 0:
                        store._open_stale += 1
                        if store._open_stale >= stale_limit:
                            store._prune_open_partitions()
                    alloc_clock += size
                    objects[oid] = obj
                    if 0 <= oid < dense:
                        tparts[oid] = pid
                        toffs[oid] = off
                        tsizes[oid] = size
                        tcount += 1
                    else:
                        table.put(oid, pid, off, size)
                    unlinked.add(oid)
                    if cur_pins is None:
                        cur_pins = {oid}
                        rem_pins[pid] = cur_pins
                        cur_pins_add = cur_pins.add
                    else:
                        cur_pins_add(oid)
                    first = off // page_size
                    last = (off + size - 1) // page_size
                    while first <= last:
                        if pid == mru_pid and first == mru_page:
                            first += 1
                            hits += 1
                            if not mru_dirty:
                                pages[(pid, mru_page)] = True
                                mru_dirty = True
                            continue
                        pg = (pid, first)
                        mru_pid = pid
                        mru_page = first
                        first += 1
                        wasd = pages_pop(pg, miss)
                        if wasd is not miss:
                            hits += 1
                            pages[pg] = True
                        else:
                            misses += 1
                            while npages > bufcap1:
                                npages -= 1
                                if pop_lru(False)[1]:
                                    app_w += 1
                            app_r += 1
                            npages += 1
                            pages[pg] = True
                        mru_dirty = True
                    lo = cps[ci]
                    hi = cps[ci + 1]
                    ci += 1
                    if lo != hi:
                        optrs = obj.pointers
                        if hi - lo > 1:
                            # dict(event.pointers) semantics: dedup by slot,
                            # first-occurrence order, last value wins. Slot
                            # strings are interned per trace, so index
                            # equality is string equality.
                            dedup = {}
                            while lo < hi:
                                dedup[psl[lo]] = ptg[lo]
                                lo += 1
                            pairs = dedup.items()
                        else:
                            pairs = ((psl[lo], ptg[lo]),)
                        for sli, traw in pairs:
                            if traw == none:
                                optrs[strings[sli]] = None
                                continue
                            tgt = traw
                            if 0 <= tgt < dense and (tp := tparts[tgt]) >= 0:
                                pass
                            elif objects_get(tgt) is None:
                                raise StoreError(
                                    f"pointer target {tgt} does not exist"
                                )
                            else:
                                tp = table.part_of(tgt)
                            optrs[strings[sli]] = tgt
                            if tgt in unlinked:
                                unlinked.discard(tgt)
                                pd2 = rem_pins.get(tp)
                                if pd2 is not None:
                                    pd2.discard(tgt)
                            if tp >= 0 and tp != pid:
                                inc2 = partitions[tp].incoming
                                srcs2 = inc2.get(tgt)
                                if srcs2 is None:
                                    inc2[tgt] = {oid: 1}
                                else:
                                    srcs2[oid] = srcs2.get(oid, 0) + 1
                                pd3 = rem_sources.get(tp)
                                if pd3 is None:
                                    rem_sources[tp] = {oid: 1}
                                else:
                                    pd3[oid] = pd3.get(oid, 0) + 1
                                rem_edges += 1
                                rem_rem += 1
                    if not phys_mode:
                        dbsz = alloc_bytes
                    gf = garb / dbsz if dbsz else 0.0

                elif op == 4:  # ROOT
                    if objects_get(a) is None:
                        raise StoreError(f"unknown object {a}")
                    roots.add(a)
                    rp = tparts[a] if 0 <= a < dense else table.part_of(a)
                    rr = rem_roots.get(rp)
                    if rr is None:
                        rem_roots[rp] = {a}
                    else:
                        rr.add(a)
                    if a in unlinked:
                        unlinked.discard(a)
                        pd = rem_pins.get(rp)
                        if pd is not None:
                            pd.discard(a)

                elif op == 5:  # PHASE — not sampled, no trigger check
                    sampler.phase = name = strings[a]
                    sampler.phase_boundaries[name] = ev_i
                    i += 1
                    continue

                elif op == 6:  # IDLE — opportunistic policies run guarded
                    i += 1
                    continue

                else:  # BEGIN/COMMIT/ABORT: hand the span to guarded mode
                    span = True
                    break

                # ---- shared per-event tail (database events) ---------
                i += 1
                # Sampler.on_event, inlined; gf was recomputed exactly when
                # an operand changed (create/write-dies/reload). The min/max
                # compares are idempotent, so they only need to run when gf
                # was rebound since the last sampled event (identity check:
                # an unchanged gf is the same float object).
                ev_i += 1
                ga_count += 1
                ga_total += gf
                if sig:
                    g_count += 1
                    g_total += gf
                    if gf is not lgf:
                        lgf = gf
                        if gf < ga_min:
                            ga_min = gf
                        if gf > ga_max:
                            ga_max = gf
                        if gf < g_min:
                            g_min = gf
                        if gf > g_max:
                            g_max = gf
                elif collections >= preamble:
                    sig = True
                    sampler._app_io_at_significant = app_r + app_w
                    sampler._gc_io_at_significant = gc_total
                    g_count += 1
                    g_total += gf
                    lgf = gf
                    if gf < ga_min:
                        ga_min = gf
                    if gf > ga_max:
                        ga_max = gf
                    if gf < g_min:
                        g_min = gf
                    if gf > g_max:
                        g_max = gf
                elif gf is not lgf:
                    lgf = gf
                    if gf < ga_min:
                        ga_min = gf
                    if gf > ga_max:
                        ga_max = gf
                # Trigger check against the mirrored clock.
                if base_kind == 0:
                    if po >= due:
                        fired = True
                        break
                elif base_kind == 1:
                    if alloc_clock >= due:
                        fired = True
                        break
                elif app_r + app_w >= due:
                    fired = True
                    break
                budget -= 1
                if budget <= 0:
                    budget = _DEADLINE_STRIDE
                    if deadline is not None and monotonic() >= deadline:
                        timed_out = True
                        break
        except BaseException:
            # Error flush: event i failed mid-application. Counters are
            # written back so the store stays observationally consistent
            # (scalar error-state parity on everything except page touches
            # of a partially applied bulk run).
            if cur_pid >= 0:
                cur_part.fill = cur_fill
            store._next_oid = next_oid
            store._allocated_bytes = alloc_bytes
            store.bytes_allocated_total = alloc_clock
            store.pointer_overwrites = po
            store.pointer_stores = pstores
            garbage.total_generated = tot_gen
            if tcount:
                table._count += tcount
            bstats.hits = hits
            bstats.misses = misses
            app_led.reads = app_r
            app_led.writes = app_w
            rem.edges = rem_edges
            rem.remembers_total = rem_rem
            rem.forgets_total = rem_forg
            sampler.event_index = ev_i
            sampler._significant_started = sig
            ga.count = ga_count
            ga.total = ga_total
            ga.minimum = ga_min
            ga.maximum = ga_max
            g.count = g_count
            g.total = g_total
            g.minimum = g_min
            g.maximum = g_max
            sim._event_index = i
            sim._event_applied = False
            raise

        # ---- flush: write mirrored locals back -----------------------
        if cur_pid >= 0:
            cur_part.fill = cur_fill
        store._next_oid = next_oid
        store._allocated_bytes = alloc_bytes
        store.bytes_allocated_total = alloc_clock
        store.pointer_overwrites = po
        store.pointer_stores = pstores
        garbage.total_generated = tot_gen
        if tcount:
            table._count += tcount
        bstats.hits = hits
        bstats.misses = misses
        app_led.reads = app_r
        app_led.writes = app_w
        rem.edges = rem_edges
        rem.remembers_total = rem_rem
        rem.forgets_total = rem_forg
        sampler.event_index = ev_i
        sampler._significant_started = sig
        ga.count = ga_count
        ga.total = ga_total
        ga.minimum = ga_min
        ga.maximum = ga_max
        g.count = g_count
        g.total = g_total
        g.minimum = g_min
        g.maximum = g_max
        sim._event_index = i - 1
        sim._event_applied = True

        if timed_out:
            raise _timeout()
        if fired:
            clock = sim._clock
            collect = sim._collect
            while clock() >= sim._due_at:
                collect()
            continue
        if span:
            i, ci, wi = _replay_guarded(
                sim, trace, cache, i, n, ci, wi, deadline, True
            )
            continue
        return
