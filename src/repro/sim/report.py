"""Terminal-friendly report formatting: fixed-width tables and ASCII plots.

Experiment drivers return structured data; this module renders it the way
the paper presents it — accuracy tables (requested vs achieved with min/max
error bars) and time-varying line plots — without any plotting dependency.
"""

from __future__ import annotations

from typing import Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table with right-aligned numeric columns."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))

    def render_row(values: Sequence[str]) -> str:
        return "  ".join(text.rjust(widths[i]) for i, text in enumerate(values))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_percent(value: float, digits: int = 2) -> str:
    """0.1234 → '12.34%'."""
    return f"{value * 100:.{digits}f}%"


def ascii_plot(
    series: dict[str, Sequence[float]],
    width: int = 72,
    height: int = 16,
    title: Optional[str] = None,
    y_label: Optional[str] = None,
) -> str:
    """Plot one or more equally indexed series as ASCII art.

    Each series gets a marker character (in order: ``*+o#@%&``). Series are
    resampled onto ``width`` columns; the y-range spans all series jointly.
    """
    if not series:
        raise ValueError("at least one series is required")
    if width < 8 or height < 4:
        raise ValueError("plot must be at least 8x4")

    markers = "*+o#@%&"
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        raise ValueError("series contain no data")
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (_name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        if not values:
            continue
        for column in range(width):
            position = column * (len(values) - 1) / max(1, width - 1)
            value = values[min(len(values) - 1, round(position))]
            row = height - 1 - round((value - lo) / (hi - lo) * (height - 1))
            row = min(height - 1, max(0, row))
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    label = y_label or "y"
    lines.append(f"{label}: [{lo:.4g} .. {hi:.4g}]")
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compact one-line trend: resample onto width columns of block glyphs."""
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    columns = []
    for column in range(width):
        position = column * (len(values) - 1) / max(1, width - 1)
        value = values[min(len(values) - 1, round(position))]
        level = int((value - lo) / span * (len(glyphs) - 1))
        columns.append(glyphs[level])
    return "".join(columns)
