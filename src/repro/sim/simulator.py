"""The trace-driven simulation engine (§3.2).

A :class:`Simulation` wires together a store, a collector, a
partition-selection policy, a collection-rate policy, and a metrics sampler,
then replays a trace:

1. each event is applied to the store (creates, accesses, pointer writes);
2. after every event the active trigger is checked against its clock —
   pointer overwrites or application I/O operations, depending on the rate
   policy's time base — and a collection runs when the deadline passes;
3. after each collection the rate policy computes the next trigger from what
   just happened (the self-adaptive feedback loop of §2).

Idle events additionally give opportunistic policies (§5) a chance to
volunteer extra collections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.extensions import OpportunisticPolicy
from repro.core.rate_policy import PolicyContext, RatePolicy, TimeBase, Trigger
from repro.gc.collector import CollectionResult, CopyingCollector
from repro.gc.selection import PartitionSelectionPolicy, UpdatedPointerSelection
from repro.sim.metrics import Sampler, SimulationSummary
from repro.storage.heap import ObjectStore, StoreConfig
from repro.events import (
    AbortTransactionEvent,
    AccessEvent,
    BeginTransactionEvent,
    CommitTransactionEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    TraceEvent,
    UpdateEvent,
)
from repro.tx.manager import TransactionManager


@dataclass
class SimulationConfig:
    """Knobs of a simulation run.

    Attributes:
        store: Store geometry (partition/page/buffer sizes).
        preamble_collections: Cold-start collections excluded from means.
        keep_event_series: Retain per-event samples (Figures 6/7 need them).
        series_stride: Sampling stride for retained series.
        max_collections: Safety valve — abort if a policy goes pathological.
        validate_every: Debug mode — audit every store invariant after each
            N-th collection (0 disables). Expensive; meant for tests and
            debugging, not measurement runs.
        enable_wal: Attach a write-ahead log to the transaction manager;
            transactional traces then pay realistic logging I/O (charged as
            application I/O, so it competes with the collector under SAIO).
        wal_page_size: Log page size when the WAL is enabled.
    """

    store: StoreConfig = field(default_factory=StoreConfig)
    preamble_collections: int = 10
    keep_event_series: bool = False
    series_stride: int = 1
    max_collections: int = 100_000
    validate_every: int = 0
    enable_wal: bool = False
    wal_page_size: int = 8 * 1024


@dataclass
class SimulationResult:
    """Everything a run produced."""

    summary: SimulationSummary
    sampler: Sampler
    store: ObjectStore
    policy: RatePolicy

    @property
    def collections(self):
        return self.sampler.collection_records

    @property
    def event_series(self):
        return self.sampler.event_series


class Simulation:
    """One trace-driven simulation run."""

    def __init__(
        self,
        policy: RatePolicy,
        selection: Optional[PartitionSelectionPolicy] = None,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.policy = policy
        self.selection = selection or UpdatedPointerSelection()
        self.store = ObjectStore(self.config.store)
        self.collector = CopyingCollector(self.store)
        self.sampler = Sampler(
            preamble_collections=self.config.preamble_collections,
            keep_event_series=self.config.keep_event_series,
            series_stride=self.config.series_stride,
        )
        wal = None
        if self.config.enable_wal:
            from repro.tx.wal import WriteAheadLog

            wal = WriteAheadLog(self.store.iostats, page_size=self.config.wal_page_size)
        self.tx = TransactionManager(self.store, wal=wal)
        self._trigger: Optional[Trigger] = None
        self._due_at: float = float("inf")

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, trace: Iterable[TraceEvent]) -> SimulationResult:
        """Replay a trace to completion and return the results."""
        self._schedule(self.policy.first_trigger(self.store, self.store.iostats))
        for event in trace:
            self._apply(event)
            if isinstance(event, PhaseMarkerEvent):
                continue
            if isinstance(event, IdleEvent):
                self._handle_idle(event.ticks)
                continue
            self._note_activity()
            self.sampler.on_event(self.store, self.store.iostats)
            if self.tx.in_transaction:
                # The database is never collected mid-transaction (§3.2's
                # whole-database-lock model); triggers fire at commit/abort.
                continue
            while self._clock() >= self._due_at:
                self._collect()
        return SimulationResult(
            summary=self.sampler.summary(self.store, self.store.iostats),
            sampler=self.sampler,
            store=self.store,
            policy=self.policy,
        )

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------

    def _apply(self, event: TraceEvent) -> None:
        # Mutations route through the transaction manager while a
        # transaction is open, so aborts can physically undo them.
        sink = self.tx if self.tx.in_transaction else self.store
        if isinstance(event, PointerWriteEvent):
            sink.write_pointer(event.src, event.slot, event.target, dies=event.dies)
        elif isinstance(event, CreateEvent):
            sink.create(
                size=event.size,
                kind=event.kind,
                pointers=dict(event.pointers),
                oid=event.oid,
            )
        elif isinstance(event, AccessEvent):
            sink.access(event.oid)
        elif isinstance(event, UpdateEvent):
            sink.update(event.oid)
        elif isinstance(event, RootEvent):
            sink.register_root(event.oid)
        elif isinstance(event, BeginTransactionEvent):
            self.tx.begin(event.txid)
        elif isinstance(event, CommitTransactionEvent):
            self.tx.commit(event.txid)
        elif isinstance(event, AbortTransactionEvent):
            self.tx.abort(event.txid)
        elif isinstance(event, PhaseMarkerEvent):
            self.sampler.on_phase(event.name)
        elif isinstance(event, IdleEvent):
            pass  # Quiescence: no store activity.
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown trace event {event!r}")

    # ------------------------------------------------------------------
    # Collection triggering
    # ------------------------------------------------------------------

    def _clock(self) -> float:
        if self._trigger is None:
            return 0.0
        return self._read_clock(self._trigger.base)

    def _read_clock(self, base: TimeBase) -> float:
        if base is TimeBase.OVERWRITES:
            return float(self.store.pointer_overwrites)
        if base is TimeBase.ALLOCATED:
            return float(self.store.bytes_allocated_total)
        return float(self.store.iostats.application_total)

    def _schedule(self, trigger: Trigger) -> None:
        self._trigger = trigger
        self._due_at = self._read_clock(trigger.base) + trigger.interval

    def _collect(self) -> None:
        if self.collector.collections_performed >= self.config.max_collections:
            raise RuntimeError(
                f"exceeded max_collections={self.config.max_collections}; "
                f"policy {self.policy.describe()} appears pathological"
            )
        pid = self.selection.select(self.store)
        if pid is None:
            # Nothing collectable; push the deadline forward by re-arming.
            self._schedule(self._trigger)
            return
        result = self.collector.collect(pid)
        self.store.iostats.mark_collection()
        ctx = PolicyContext(result=result, store=self.store, iostats=self.store.iostats)
        trigger = self.policy.next_trigger(ctx)
        self._record_collection(result, trigger)
        self._schedule(trigger)
        if (
            self.config.validate_every
            and self.collector.collections_performed % self.config.validate_every == 0
        ):
            from repro.storage.validation import validate_store

            validate_store(self.store, strict=True)

    def _record_collection(self, result: CollectionResult, trigger: Trigger) -> None:
        estimator = getattr(self.policy, "estimator", None)
        estimated = estimator.estimate(self.store) if estimator is not None else None
        target = getattr(self.policy, "garbage_fraction", None)
        self.sampler.on_collection(
            result,
            self.store,
            interval_next=trigger.interval,
            estimated_garbage_bytes=estimated,
            target_garbage_fraction=target,
        )

    # ------------------------------------------------------------------
    # Quiescence / opportunism
    # ------------------------------------------------------------------

    def _note_activity(self) -> None:
        if isinstance(self.policy, OpportunisticPolicy):
            self.policy.note_activity()

    def _handle_idle(self, ticks: int = 1) -> None:
        if not isinstance(self.policy, OpportunisticPolicy):
            return
        for _tick in range(ticks):
            if self.policy.note_idle(self.store):
                self._collect()
