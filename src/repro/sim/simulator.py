"""The trace-driven simulation engine (§3.2).

A :class:`Simulation` wires together a store, a collector, a
partition-selection policy, a collection-rate policy, and a metrics sampler,
then replays a trace:

1. each event is applied to the store (creates, accesses, pointer writes);
2. after every event the active trigger is checked against its clock —
   pointer overwrites or application I/O operations, depending on the rate
   policy's time base — and a collection runs when the deadline passes;
3. after each collection the rate policy computes the next trigger from what
   just happened (the self-adaptive feedback loop of §2).

Idle events additionally give opportunistic policies (§5) a chance to
volunteer extra collections.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.core.extensions import OpportunisticPolicy
from repro.core.rate_policy import PolicyContext, RatePolicy, TimeBase, Trigger
from repro.faults.injector import FaultInjector, SimulatedCrash
from repro.faults.plan import FaultPlan
from repro.gc.collector import CollectionResult, CopyingCollector
from repro.gc.selection import PartitionSelectionPolicy, UpdatedPointerSelection
from repro.sim.metrics import Sampler, SimulationSummary
from repro.storage.heap import ObjectStore, StoreConfig
from repro.tx.recovery import RedoLog
from repro.events import (
    AbortTransactionEvent,
    AccessEvent,
    BeginTransactionEvent,
    CommitTransactionEvent,
    CreateEvent,
    IdleEvent,
    PhaseMarkerEvent,
    PointerWriteEvent,
    RootEvent,
    TraceEvent,
    UpdateEvent,
)
from repro.tx.manager import TransactionManager

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.telemetry import RunTelemetry


# ----------------------------------------------------------------------
# Event dispatch (hot path)
#
# The replay loop applies one handler per trace event; with tens of
# thousands of events per run an isinstance chain is measurable. Handlers
# are keyed by *exact* event class; unknown subclasses resolve through the
# original isinstance order once and are memoised, so behaviour is
# unchanged for exotic event hierarchies.
# ----------------------------------------------------------------------


def _h_pointer_write(sim: "Simulation", event, sink) -> None:
    sink.write_pointer(event.src, event.slot, event.target, dies=event.dies)


def _h_create(sim: "Simulation", event, sink) -> None:
    sink.create(
        size=event.size,
        kind=event.kind,
        pointers=dict(event.pointers),
        oid=event.oid,
    )


def _h_access(sim: "Simulation", event, sink) -> None:
    sink.access(event.oid)


def _h_update(sim: "Simulation", event, sink) -> None:
    sink.update(event.oid)


def _h_root(sim: "Simulation", event, sink) -> None:
    sink.register_root(event.oid)


def _h_begin(sim: "Simulation", event, sink) -> None:
    sim.tx.begin(event.txid)
    sim._tx_start_index = sim._event_index


def _h_commit(sim: "Simulation", event, sink) -> None:
    sim.tx.commit(event.txid)


def _h_abort(sim: "Simulation", event, sink) -> None:
    sim.tx.abort(event.txid)


def _h_phase(sim: "Simulation", event, sink) -> None:
    sim.sampler.on_phase(event.name)


def _h_idle(sim: "Simulation", event, sink) -> None:
    pass  # Quiescence: no store activity.


#: Exact-class handler table; extended lazily for subclasses.
_EVENT_HANDLERS = {
    PointerWriteEvent: _h_pointer_write,
    CreateEvent: _h_create,
    AccessEvent: _h_access,
    UpdateEvent: _h_update,
    RootEvent: _h_root,
    BeginTransactionEvent: _h_begin,
    CommitTransactionEvent: _h_commit,
    AbortTransactionEvent: _h_abort,
    PhaseMarkerEvent: _h_phase,
    IdleEvent: _h_idle,
}

#: isinstance resolution order for event subclasses — matches the original
#: dispatch chain exactly.
_HANDLER_ORDER = (
    (PointerWriteEvent, _h_pointer_write),
    (CreateEvent, _h_create),
    (AccessEvent, _h_access),
    (UpdateEvent, _h_update),
    (RootEvent, _h_root),
    (BeginTransactionEvent, _h_begin),
    (CommitTransactionEvent, _h_commit),
    (AbortTransactionEvent, _h_abort),
    (PhaseMarkerEvent, _h_phase),
    (IdleEvent, _h_idle),
)


#: Cap on memoised event classes per dispatch table. The memo keys are class
#: objects, so an unbounded table would pin every event subclass ever seen
#: (and grow without limit) for the life of the process — a real leak for
#: long-lived processes and test suites that mint event classes dynamically.
#: Ordinary traces only use the ten builtin classes and never hit the cap.
_DYNAMIC_CLASS_LIMIT = 256

#: The statically registered event classes; never evicted from any memo.
_BUILTIN_EVENT_CLASSES = frozenset(_EVENT_HANDLERS)


def _bounded_memo(table: dict, cls: type, value):
    """Insert ``table[cls] = value``, evicting dynamic entries at the cap.

    The hit path stays a plain dict ``get``; the eviction sweep runs only
    when a *new* dynamic (non-builtin) class is inserted past the cap.
    """
    if cls not in _BUILTIN_EVENT_CLASSES and len(table) >= _DYNAMIC_CLASS_LIMIT:
        for key in [k for k in table if k not in _BUILTIN_EVENT_CLASSES]:
            del table[key]
    table[cls] = value
    return value


def _resolve_handler(cls: type):
    """Memoise the handler for an event subclass (original chain order)."""
    for base, handler in _HANDLER_ORDER:
        if issubclass(cls, base):
            return _bounded_memo(_EVENT_HANDLERS, cls, handler)
    raise TypeError(f"unknown trace event class {cls!r}")


#: Event kinds the run loop special-cases, memoised per class.
#: 0 = normal database event, 1 = phase marker, 2 = idle.
_RUN_KINDS = {cls: 0 for cls in _EVENT_HANDLERS}
_RUN_KINDS[PhaseMarkerEvent] = 1
_RUN_KINDS[IdleEvent] = 2

#: Per-class memo of "mutates durable logical state" (redo-log auto-commit).
_MUTATING_MEMO: dict[type, bool] = {}


def _deadline_guard(trace, deadline: float):
    """Yield ``trace``'s events until the monotonic ``deadline`` passes.

    The portable timeout mechanism for the scalar replay loop: one clock
    read per event, no signals — works on every platform (SIGALRM does not
    exist on Windows), in worker threads (``signal.signal`` is
    main-thread-only), and composes with any number of concurrent runs.
    Granularity is one event, which is the simulation's natural unit of
    forward progress. The batched interpreter enforces the same deadline
    itself (:mod:`repro.sim.batch`).
    """
    monotonic = time.monotonic
    for event in trace:
        if monotonic() >= deadline:
            from repro.sim.engine import RunTimeoutError

            raise RunTimeoutError("simulation run exceeded run_timeout")
        yield event


@dataclass
class SimulationConfig:
    """Knobs of a simulation run.

    Attributes:
        store: Store geometry (partition/page/buffer sizes).
        preamble_collections: Cold-start collections excluded from means.
        keep_event_series: Retain per-event samples (Figures 6/7 need them).
        series_stride: Sampling stride for retained series.
        max_collections: Safety valve — abort if a policy goes pathological.
        validate_every: Debug mode — audit every store invariant after each
            N-th collection (0 disables). Expensive; meant for tests and
            debugging, not measurement runs.
        enable_wal: Attach a write-ahead log to the transaction manager;
            transactional traces then pay realistic logging I/O (charged as
            application I/O, so it competes with the collector under SAIO).
        wal_page_size: Log page size when the WAL is enabled.
        enable_redo_log: Maintain a logical redo log
            (:class:`~repro.tx.recovery.RedoLog`) sufficient to rebuild the
            committed state after a crash. Mutations outside an explicit
            transaction are auto-committed as singleton transactions so the
            log covers the whole trace. Logical logging charges no I/O, so
            enabling it never changes simulation results — it only makes
            crash–recover–continue drills possible.
        reachability: How the collector derives each collection's frontier
            (conservative roots + external fix-up pages). ``"remembered"``
            (default) reads the store's incrementally maintained
            remembered-set index in O(partition + boundary); ``"full"``
            recomputes it from a whole-heap scan per collection. Results are
            identical in both modes (summaries are pickle-equal,
            property-tested); the switch exists for A/B verification and the
            ``collection_throughput`` benchmark. Excluded from experiment
            fingerprints for the same reason — see
            :mod:`repro.sim.spec`.
        replay: Which replay interpreter drives the run. ``"auto"``
            (default) uses the batched interpreter of :mod:`repro.sim.batch`
            whenever the trace is a
            :class:`~repro.workload.compiled.CompiledTrace` and the
            simulation is the stock :class:`Simulation` class, falling back
            to the scalar per-event loop otherwise; ``"batched"`` compiles
            plain event traces first and then requires the batched path;
            ``"scalar"`` forces the per-event loop. Both interpreters are
            result-identical (summaries pickle-equal, property-tested), so
            this field — like ``reachability`` — is excluded from experiment
            fingerprints.
        collection: How triggered collections execute. ``"serial"``
            (default) traces and reclaims inside the trigger window on the
            replay thread; ``"parallel"`` pre-traces likely victims
            speculatively while replay continues (the scheduler of
            :mod:`repro.gc.parallel`), validates each speculative trace
            against the store's trace epochs at the due point, and applies
            reclamation in the exact serial order. Results are identical
            in both modes at any worker count (pickle-equal summaries,
            property-tested), so this field — and ``gc_workers`` — is
            excluded from experiment fingerprints like ``reachability``
            and ``replay``.
        gc_workers: Fan-out width for ``collection="parallel"``: how many
            candidate partitions are snapshotted per pump, and (when > 1)
            how many tracing threads run them. Affects wall-clock only.
    """

    store: StoreConfig = field(default_factory=StoreConfig)
    preamble_collections: int = 10
    keep_event_series: bool = False
    series_stride: int = 1
    max_collections: int = 100_000
    validate_every: int = 0
    enable_wal: bool = False
    wal_page_size: int = 8 * 1024
    enable_redo_log: bool = False
    reachability: str = "remembered"
    replay: str = "auto"
    collection: str = "serial"
    gc_workers: int = 1


@dataclass
class SimulationResult:
    """Everything a run produced."""

    summary: SimulationSummary
    sampler: Sampler
    store: ObjectStore
    policy: RatePolicy

    @property
    def collections(self):
        return self.sampler.collection_records

    @property
    def event_series(self):
        return self.sampler.event_series


class Simulation:
    """One trace-driven simulation run."""

    def __init__(
        self,
        policy: RatePolicy,
        selection: Optional[PartitionSelectionPolicy] = None,
        config: Optional[SimulationConfig] = None,
        faults: Union[FaultInjector, FaultPlan, None] = None,
        store: Optional[ObjectStore] = None,
        redo_log: Optional[RedoLog] = None,
        obs: Optional["RunTelemetry"] = None,
    ) -> None:
        """Args beyond the policy/selection/config triple:

        faults: A :class:`~repro.faults.plan.FaultPlan` (an injector is
            built from it) or a live :class:`~repro.faults.injector.
            FaultInjector` (shared across crash–recover–continue cycles so
            occurrence counters keep advancing). Wired into the storage,
            transaction and collection layers.
        store: An existing store to run against — a crash-recovery drill
            passes the store :func:`~repro.tx.recovery.recover` rebuilt.
            Must have been built with a geometry matching ``config.store``.
        redo_log: An existing redo log to append to (resumed runs continue
            the pre-crash log); a fresh one is created when
            ``config.enable_redo_log`` is set and no log is given.
        obs: A :class:`~repro.obs.telemetry.RunTelemetry` observer. When
            set, each collection emits a GC-timeline record and the run's
            final stats are snapshot into the telemetry metrics registry.
            Telemetry only observes — results are identical with or
            without it (the ``if obs is not None`` guards mirror the
            ``fault_hook`` idiom, so the disabled path costs nothing).
        """
        self.config = config or SimulationConfig()
        if self.config.replay not in ("auto", "batched", "scalar"):
            raise ValueError(
                f"replay must be 'auto', 'batched' or 'scalar', "
                f"got {self.config.replay!r}"
            )
        self.policy = policy
        self.selection = selection or UpdatedPointerSelection()
        self.store = store if store is not None else ObjectStore(self.config.store)
        self.collector = CopyingCollector(
            self.store, reachability=self.config.reachability
        )
        if self.config.collection not in ("serial", "parallel"):
            raise ValueError(
                f"collection must be 'serial' or 'parallel', "
                f"got {self.config.collection!r}"
            )
        self._par = None
        if self.config.collection == "parallel":
            from repro.gc.parallel import ParallelCollectionScheduler

            self._par = ParallelCollectionScheduler(
                self.store,
                self.collector,
                self.selection,
                workers=self.config.gc_workers,
            )
        elif self.config.gc_workers != 1:
            raise ValueError("gc_workers requires collection='parallel'")
        self.sampler = Sampler(
            preamble_collections=self.config.preamble_collections,
            keep_event_series=self.config.keep_event_series,
            series_stride=self.config.series_stride,
        )
        wal = None
        if self.config.enable_wal:
            from repro.tx.wal import WriteAheadLog

            wal = WriteAheadLog(self.store.iostats, page_size=self.config.wal_page_size)
        self.redo_log = redo_log
        if self.redo_log is None and self.config.enable_redo_log:
            self.redo_log = RedoLog()
        self.tx = TransactionManager(self.store, wal=wal, redo_log=self.redo_log)
        self.obs = obs
        self.faults = FaultInjector(faults) if isinstance(faults, FaultPlan) else faults
        if self.faults is not None:
            self.store.attach_fault_injector(self.faults)
            self.tx.fault_hook = self.faults.fire
        # Auto-commit transactions use negative txids so they can never
        # collide with trace txids; when resuming onto an existing log the
        # counter continues below the log's most negative id.
        self._auto_txid = -1
        if self.redo_log is not None and self.redo_log.records:
            floor = min((r.txid for r in self.redo_log.records), default=0)
            self._auto_txid = min(self._auto_txid, floor - 1)
        self._trigger: Optional[Trigger] = None
        self._clock_read = self._clock_app_io
        self._due_at: float = float("inf")
        # The true trigger deadline. In parallel-collection mode _due_at is
        # pulled earlier to the margin point so the replay loops wake the
        # scheduler to pump speculative traces; collections themselves still
        # happen exactly when the clock reaches _real_due_at.
        self._real_due_at: float = float("inf")
        self._event_index = -1
        self._event_applied = True
        self._tx_start_index: Optional[int] = None

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(
        self,
        trace: Iterable[TraceEvent],
        start_index: int = 0,
        *,
        deadline: Optional[float] = None,
    ) -> SimulationResult:
        """Replay a trace to completion and return the results.

        ``start_index`` skips the first events of the trace while keeping
        event indices absolute — a crash-recovery drill passes the full
        trace together with the crash's ``resume_index`` so the resumed run
        re-executes exactly the events whose effects were lost.

        ``deadline`` is a ``time.monotonic`` instant after which the run
        raises :class:`~repro.sim.engine.RunTimeoutError`; the engine passes
        its per-run timeout this way so the batched interpreter can enforce
        it without the trace being wrapped in a per-event generator (which
        would hide the :class:`~repro.workload.compiled.CompiledTrace`
        columns the batched path reads).

        An injected crash propagates as :class:`~repro.faults.injector.
        SimulatedCrash`, annotated with the current ``event_index`` and the
        ``resume_index`` a continuation must restart from (the begin of the
        transaction in flight, or the next unprocessed event).
        """
        replay = self.config.replay
        # Subclasses may override _apply/_dispatch/_note_activity; the
        # batched interpreter inlines those hooks, so anything other than
        # the stock Simulation class replays scalar.
        if replay != "scalar" and type(self) is Simulation:
            from repro.workload.compiled import CompiledTrace, compile_trace

            if isinstance(trace, CompiledTrace):
                compiled = trace
            elif replay == "batched":
                compiled = compile_trace(trace)
            else:
                compiled = None
            if compiled is not None:
                from repro.sim.batch import run_batched

                return run_batched(self, compiled, start_index, deadline)
        if deadline is not None:
            trace = _deadline_guard(trace, deadline)
        if start_index:
            trace = itertools.islice(iter(trace), start_index, None)
        self._event_index = start_index - 1
        self._tx_start_index = None
        # Hot-loop hoists: bound methods and invariant objects looked up
        # once instead of once per event. Bound lookups still honour
        # subclass overrides of _apply/_handle_idle/sampler.on_event.
        apply_event = self._apply
        handle_idle = self._handle_idle
        sample_event = self.sampler.on_event
        store = self.store
        iostats = store.iostats
        tx = self.tx
        clock = self._clock
        collect = self._collect
        run_kinds = _RUN_KINDS
        note_activity = None
        if type(self)._note_activity is not Simulation._note_activity:
            note_activity = self._note_activity  # subclass hook
        elif isinstance(self.policy, OpportunisticPolicy):
            note_activity = self.policy.note_activity
        try:
            self._schedule(self.policy.first_trigger(store, iostats))
            for event in trace:
                self._event_index += 1
                # Tracks whether the current event's application finished;
                # decides if a crash resumes at this event or the next one.
                self._event_applied = False
                apply_event(event)
                self._event_applied = True
                cls = event.__class__
                kind = run_kinds.get(cls)
                if kind is None:
                    if isinstance(event, PhaseMarkerEvent):
                        kind = 1
                    elif isinstance(event, IdleEvent):
                        kind = 2
                    else:
                        kind = 0
                    _bounded_memo(run_kinds, cls, kind)
                if kind:
                    if kind == 1:
                        continue
                    handle_idle(event.ticks)
                    continue
                if note_activity is not None:
                    note_activity()
                sample_event(store, iostats)
                if tx.in_transaction:
                    # The database is never collected mid-transaction (§3.2's
                    # whole-database-lock model); triggers fire at commit/abort.
                    continue
                while clock() >= self._due_at:
                    collect()
        except SimulatedCrash as crash:
            crash.event_index = self._event_index
            crash.resume_index = (
                self._tx_start_index
                if self.tx.in_transaction and self._tx_start_index is not None
                else self._event_index + (0 if not self._event_applied else 1)
            )
            raise
        result = SimulationResult(
            summary=self.sampler.summary(self.store, self.store.iostats),
            sampler=self.sampler,
            store=self.store,
            policy=self.policy,
        )
        if self.obs is not None:
            self.obs.on_run_end(self, result)
        return result

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------

    #: Events whose application mutates durable logical state.
    _MUTATING = (PointerWriteEvent, CreateEvent, UpdateEvent, RootEvent)

    def _apply(self, event: TraceEvent) -> None:
        # With redo logging enabled, mutations outside an explicit
        # transaction are auto-committed as singleton transactions so the
        # redo log covers the entire trace (recovery would otherwise lose
        # them). Auto-commit txids are negative — they can never collide
        # with trace txids. Logical logging charges no I/O, so results are
        # unchanged.
        tx = self.tx
        if self.redo_log is not None and not tx.in_transaction:
            cls = event.__class__
            mutating = _MUTATING_MEMO.get(cls)
            if mutating is None:
                mutating = _bounded_memo(
                    _MUTATING_MEMO, cls, isinstance(event, self._MUTATING)
                )
            if mutating:
                txid = self._auto_txid
                self._auto_txid -= 1
                tx.begin(txid)
                self._tx_start_index = self._event_index
                self._dispatch(event, tx)
                tx.commit(txid)
                return
        self._dispatch(event, tx if tx.in_transaction else self.store)

    def _dispatch(self, event: TraceEvent, sink) -> None:
        cls = event.__class__
        handler = _EVENT_HANDLERS.get(cls)
        if handler is None:
            handler = _resolve_handler(cls)
        handler(self, event, sink)

    # ------------------------------------------------------------------
    # Collection triggering
    # ------------------------------------------------------------------

    def _clock(self) -> float:
        if self._trigger is None:
            return 0.0
        return self._clock_read()

    def _clock_overwrites(self) -> float:
        return float(self.store.pointer_overwrites)

    def _clock_allocated(self) -> float:
        return float(self.store.bytes_allocated_total)

    def _clock_app_io(self) -> float:
        return float(self.store.iostats.application_total)

    def _clock_reader(self, base: TimeBase):
        """Bound zero-argument reader for one time base (hot-loop form)."""
        if base is TimeBase.OVERWRITES:
            return self._clock_overwrites
        if base is TimeBase.ALLOCATED:
            return self._clock_allocated
        return self._clock_app_io

    def _read_clock(self, base: TimeBase) -> float:
        return self._clock_reader(base)()

    def _schedule(self, trigger: Trigger) -> None:
        self._trigger = trigger
        # Rebinding the reader here keeps _clock() a single indirect call
        # per event instead of an enum comparison chain.
        self._clock_read = self._clock_reader(trigger.base)
        now = self._clock_read()
        due = now + trigger.interval
        self._real_due_at = due
        par = self._par
        if par is not None and par.margin > 0.0 and math.isfinite(due):
            # Wake early at the margin point to pump speculative traces;
            # the pump is read-only and the loops re-check against the
            # real deadline, so collection timing is unchanged.
            self._due_at = max(now, due - trigger.interval * par.margin)
        else:
            self._due_at = due

    def _collect(self, force: bool = False) -> None:
        par = self._par
        if par is not None and not force and self._clock() < self._real_due_at:
            # Margin window: the trigger has not fired yet. Snapshot and
            # trace likely victims while replay continues, refreshing any
            # snapshot the mutator invalidated, then wake again at the
            # next clock tick (staleness at apply is thereby bounded by
            # the final tick's mutations). Pumps are read-only, so the
            # extra wake-ups can never change what the run computes.
            par.pump()
            self._due_at = min(self._real_due_at, self._clock() + 1.0)
            return
        if self.collector.collections_performed >= self.config.max_collections:
            raise RuntimeError(
                f"exceeded max_collections={self.config.max_collections}; "
                f"policy {self.policy.describe()} appears pathological"
            )
        pid = self.selection.select(self.store)
        if pid is None:
            # Nothing collectable; push the deadline forward by re-arming.
            self._schedule(self._trigger)
            return
        if self.faults is not None:
            # Crash point between partition selection and the collection
            # itself — the model's "mid-collection" crash (collection is
            # atomic here, and it is never logged, so a crash at any point
            # inside it is equivalent to a crash just before it).
            self.faults.fire("gc.collect")
        obs = self.obs
        started = time.perf_counter() if obs is not None else 0.0
        result = par.collect(pid) if par is not None else self.collector.collect(pid)
        self.store.iostats.mark_collection()
        ctx = PolicyContext(result=result, store=self.store, iostats=self.store.iostats)
        trigger = self.policy.next_trigger(ctx)
        self._record_collection(result, trigger)
        if obs is not None and self.sampler.collection_records:
            obs.on_collection(
                result,
                self.sampler.collection_records[-1],
                time.perf_counter() - started,
            )
            # Remembered-set health: current set sizes, lifetime boundary
            # churn, and how much of the heap each collection actually
            # traces. Pure functions of simulation state, so the telemetry
            # determinism contract holds.
            collector = self.collector
            remembered = self.store.remembered.stats()
            remembered["traced_objects_total"] = collector.traced_objects_total
            remembered["heap_objects_total"] = collector.heap_objects_total
            remembered["traced_vs_heap"] = (
                collector.traced_objects_total / collector.heap_objects_total
                if collector.heap_objects_total
                else 0.0
            )
            obs.metrics.set_many(remembered, prefix="gc.remembered.")
            if par is not None:
                obs.metrics.set_many(par.stats(), prefix="gc.parallel.")
        self._schedule(trigger)
        if (
            self.config.validate_every
            and self.collector.collections_performed % self.config.validate_every == 0
        ):
            from repro.storage.validation import validate_store

            validate_store(self.store, strict=True)

    def _record_collection(self, result: CollectionResult, trigger: Trigger) -> None:
        estimator = getattr(self.policy, "estimator", None)
        estimated = estimator.estimate(self.store) if estimator is not None else None
        target = getattr(self.policy, "garbage_fraction", None)
        self.sampler.on_collection(
            result,
            self.store,
            interval_next=trigger.interval,
            estimated_garbage_bytes=estimated,
            target_garbage_fraction=target,
        )

    # ------------------------------------------------------------------
    # Quiescence / opportunism
    # ------------------------------------------------------------------

    def _note_activity(self) -> None:
        if isinstance(self.policy, OpportunisticPolicy):
            self.policy.note_activity()

    def _handle_idle(self, ticks: int = 1) -> None:
        if not isinstance(self.policy, OpportunisticPolicy):
            return
        for _tick in range(ticks):
            if self.policy.note_idle(self.store):
                # Opportunistic collections happen now regardless of the
                # trigger deadline — bypass the parallel pump phase.
                self._collect(force=True)
