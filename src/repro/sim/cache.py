"""Content-addressed on-disk cache for simulation results.

Every data point in the paper's protocol is the outcome of a deterministic
simulation: the same (policy, workload, selection, simulation config, seed)
always produces the same :class:`~repro.sim.metrics.SimulationSummary`.
That makes results safe to memoise on disk, keyed by a stable SHA-256
fingerprint of the declarative :class:`~repro.sim.spec.ExperimentSpec`
material plus the seed and the package version — so re-running
``repro-experiments all`` after an unrelated edit is near-instant, while
any change to a policy parameter, workload knob, store geometry, or the
package itself naturally misses.

Entries are small JSON files (summary plus, optionally, the per-collection
records Figures 6/7 need), sharded two-hex-deep to keep directories
shallow, and written atomically (temp file + rename) so concurrent sweeps
sharing a cache directory never observe torn entries.

Corrupt entries (truncated JSON, incompatible schema) are never silently
deleted: they are moved into a ``quarantine/`` sidecar directory under the
cache root — renamed ``<key>.json.corrupt`` so they are invisible to the
entry glob — where they stay available for post-mortems while the lookup
itself degrades to a plain miss.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.sim.metrics import CollectionRecord, SimulationSummary
from repro.sim.spec import ExperimentSpec, spec_material

#: Bump to invalidate every existing cache entry on a format change.
_FORMAT = 1


def spec_fingerprint(spec: ExperimentSpec, seed: int) -> str:
    """Stable SHA-256 content address of one (spec, seed) simulation run."""
    from repro import __version__

    material = {
        "format": _FORMAT,
        "version": __version__,
        **spec_material(spec, seed=seed),
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CachedRun:
    """One memoised simulation run."""

    summary: SimulationSummary
    records: Optional[list[CollectionRecord]] = None


class ResultCache:
    """Directory-backed store of memoised simulation runs.

    Usage::

        cache = ResultCache("results/.cache")
        key = spec_fingerprint(spec, seed)
        hit = cache.get(key)
        if hit is None:
            ...run the simulation...
            cache.put(key, summary, records)

    Args:
        root: Cache directory (created on demand).
        metrics: Optional :class:`~repro.obs.registry.MetricsRegistry`;
            when given, lookups and stores increment ``result_cache.hits``
            / ``.misses`` / ``.puts`` / ``.quarantined`` counters.
            Observability only — never affects cache behaviour.
    """

    def __init__(self, root: Union[str, Path], metrics=None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Corrupt entries moved aside by this cache instance.
        self.quarantined = 0
        self.metrics = metrics

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, key: str, want_records: bool = False) -> Optional[CachedRun]:
        """Return the cached run for ``key``, or None on a miss.

        With ``want_records=True`` an entry that was stored without
        per-collection records counts as a miss (the caller needs data the
        cache does not have); the re-run will overwrite the entry with one
        that includes them.
        """
        hit = self._read(key, want_records)
        self._count("hits" if hit is not None else "misses")
        return hit

    def _read(self, key: str, want_records: bool) -> Optional[CachedRun]:
        """The lookup itself, without hit/miss accounting."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A torn or corrupt entry is a miss, but the bytes may matter
            # for a post-mortem: quarantine them instead of deleting.
            self._quarantine(path)
            return None
        try:
            summary = SimulationSummary(**payload["summary"])
            raw_records = payload.get("records")
            records = (
                [CollectionRecord(**record) for record in raw_records]
                if raw_records is not None
                else None
            )
        except (KeyError, TypeError):
            # Entry written by an incompatible summary/record schema.
            self._quarantine(path)
            return None
        if want_records and records is None:
            return None
        return CachedRun(summary=summary, records=records)

    def put(
        self,
        key: str,
        summary: SimulationSummary,
        records: Optional[list[CollectionRecord]] = None,
    ) -> None:
        """Store one run atomically under its fingerprint.

        A record-less write never *downgrades* an existing entry that has
        per-collection records: a later ``keep_records=False`` sweep would
        otherwise strip records that a ``keep_records=True`` caller paid to
        compute, re-poisoning the entry for the next records-needing run.
        """
        path = self._path(key)
        if records is None:
            # _read, not get: this internal probe is bookkeeping and must
            # not pollute the hit/miss counters.
            if self._read(key, want_records=True) is not None:
                return
        self._count("puts")
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "summary": dataclasses.asdict(summary),
            "records": (
                [dataclasses.asdict(record) for record in records]
                if records is not None
                else None
            ),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(blob)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for entry in self.root.glob("*/*.json"):
            self._discard(entry)
            removed += 1
        return removed

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry into the sidecar directory (best-effort).

        The ``.corrupt`` suffix keeps quarantined files out of the
        ``*/*.json`` entry glob used by ``__len__`` and ``clear``.
        """
        target_dir = self.root / "quarantine"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / f"{path.name}.corrupt")
            self.quarantined += 1
            self._count("quarantined")
        except OSError:
            self._discard(path)

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"result_cache.{name}").inc()

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
