"""Clustering-quality analytics.

The paper's workload is built around *reclustering behaviour*: Reorg1
reinserts atomic parts clustered by composite, Reorg2 deliberately scatters
them ("break any clustering of atomic parts for a given composite part"),
and the copying collector compacts live objects to win back locality. This
module measures those effects directly:

* :func:`composite_spread` — across how many partitions a composite's parts
  are scattered (1.0 = perfectly clustered);
* :func:`traverse_hit_rate` — buffer hit rate of a read-only depth-first
  traversal, the I/O-visible consequence of (de)clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events import AccessEvent
from repro.oo7.schema import Oo7Graph
from repro.storage.buffer import BufferPool
from repro.storage.heap import ObjectStore
from repro.storage.iostats import IOCategory, IOStats
from repro.workload.phases import traverse_phase


@dataclass(frozen=True)
class SpreadStats:
    """Partition-spread statistics over all composites."""

    mean_partitions_per_composite: float
    max_partitions_per_composite: int
    clustered_fraction: float
    """Fraction of composites whose parts sit in at most 2 partitions."""


def composite_spread(store: ObjectStore, graph: Oo7Graph) -> SpreadStats:
    """Measure how widely each composite's alive parts are scattered.

    A freshly generated database places each composite's parts contiguously,
    so most composites span one partition (two when straddling a boundary).
    De-clustered reinsertion drives the spread up.
    """
    spreads = []
    for composite in graph.composites:
        partitions = {
            store.partition_of(part.oid) for part in composite.alive_parts()
        }
        spreads.append(len(partitions))
    if not spreads:
        return SpreadStats(0.0, 0, 0.0)
    clustered = sum(1 for s in spreads if s <= 2)
    return SpreadStats(
        mean_partitions_per_composite=sum(spreads) / len(spreads),
        max_partitions_per_composite=max(spreads),
        clustered_fraction=clustered / len(spreads),
    )


def traverse_hit_rate(store: ObjectStore, graph: Oo7Graph) -> float:
    """Buffer hit rate of one full read-only traversal over the database.

    Runs the Traverse phase's access pattern against a *scratch* buffer pool
    with the store's configured capacity, so the measurement neither
    perturbs the store's real buffer nor depends on what it happened to
    cache. Returns hits / accesses.
    """
    scratch_stats = IOStats()
    scratch = BufferPool(store.config.buffer_pages, scratch_stats)
    for event in traverse_phase(graph):
        if not isinstance(event, AccessEvent):
            continue
        for page in store.pages_of(event.oid):
            scratch.touch(page, IOCategory.APPLICATION)
    return scratch.stats.hit_rate


def traverse_page_footprint(store: ObjectStore, graph: Oo7Graph) -> int:
    """Distinct pages one full traversal touches.

    Compaction's storage-side benefit: squeezing garbage out packs the live
    working set onto fewer pages, shrinking the traversal footprint even
    though objects never migrate between partitions.
    """
    pages: set = set()
    for event in traverse_phase(graph):
        if isinstance(event, AccessEvent):
            pages.update(store.pages_of(event.oid))
    return len(pages)
