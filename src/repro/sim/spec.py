"""Declarative, picklable experiment specifications.

The parallel experiment engine (:mod:`repro.sim.engine`) fans simulation
runs out over worker *processes*, which cannot receive the closures the
factory-based :func:`repro.sim.runner.run_seeds` protocol is built around.
This module provides the declarative replacement: an :class:`ExperimentSpec`
names the rate policy, the workload, and the partition-selection policy by
**registry key plus keyword arguments**, and the spec is resolved into live
objects *inside* each worker, once per seed.

Because a spec is plain data (nested frozen dataclasses of strings, numbers
and config dataclasses) it is also *stably hashable*: :func:`spec_material`
renders a spec into a canonical JSON-compatible structure, which the
on-disk result cache (:mod:`repro.sim.cache`) digests into content
addresses.

The three registries are extensible — downstream code can register new
policies/workloads/selections under fresh keys with :func:`register_policy`,
:func:`register_workload` and :func:`register_selection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Union

from repro.canonical import CANONICAL_EXCLUDED_FIELDS, canonical_value
from repro.core.estimators import make_estimator
from repro.core.fixed import (
    AllocationRatePolicy,
    FixedRatePolicy,
    PartitionHeuristicPolicy,
)
from repro.core.rate_policy import RatePolicy
from repro.core.saga import SagaPolicy
from repro.core.saio import SaioPolicy
from repro.events import TraceEvent
from repro.faults.plan import FaultPlan
from repro.gc.selection import PartitionSelectionPolicy, make_selection_policy
from repro.oo7.config import OO7Config
from repro.sim.simulator import SimulationConfig
from repro.workload.application import Oo7Application
from repro.workload.grammar import GrammarWorkload, WorkloadConfig
from repro.workload.tenants import TenantMix, TenantMixConfig
from repro.workload.transactional import TransactionalSpec, TransactionalWorkload

# ----------------------------------------------------------------------
# Spec dataclasses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PolicySpec:
    """Names a collection-rate policy by registry key plus kwargs.

    Built-in kinds: ``fixed``, ``allocation``, ``partition-heuristic``,
    ``saio``, ``saga`` (whose ``estimator`` kwarg is itself a registry key
    resolved through :func:`repro.core.estimators.make_estimator`). Besides
    plain names (``fgs-hb``, ``cgs-cb``, ``oracle``…) the estimator kwarg
    accepts trained-model specs, ``learned:<path>[@<hash-prefix>]``: the
    spec string participates in :func:`canonical_material` like any other
    kwarg, so a content-pinned spec (``python -m repro train`` prints one)
    makes the experiment fingerprint track the model artifact's content.
    """

    kind: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class WorkloadSpec:
    """Names a workload (seed → trace) by registry key plus kwargs.

    The built-in ``oo7`` kind takes ``config`` (an
    :class:`~repro.oo7.config.OO7Config`) plus the optional
    ``delete_fraction`` / ``doc_churn_fraction`` knobs of
    :class:`~repro.workload.application.Oo7Application`.
    """

    kind: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SelectionSpec:
    """Names a partition-selection policy by registry key plus kwargs.

    Built-in kinds mirror :func:`repro.gc.selection.make_selection_policy`:
    ``updated-pointer``, ``random``, ``round-robin``,
    ``most-garbage-oracle``. Seed-dependent policies (``random``) receive
    the run's seed at resolution time.
    """

    kind: str = "updated-pointer"
    kwargs: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experimental setting, as plain picklable data.

    Resolving a spec for a seed (:meth:`resolve`) builds a fresh policy,
    trace and selection policy — nothing stateful is ever shared between
    runs. ``label`` is display-only (progress lines) and deliberately
    excluded from the cache fingerprint.

    ``faults`` optionally attaches a deterministic failure schedule
    (:class:`~repro.faults.plan.FaultPlan`) to every run of the spec; it
    *is* part of the cache fingerprint, since injected faults change what
    the run produces.
    """

    policy: PolicySpec
    workload: WorkloadSpec
    selection: SelectionSpec = field(default_factory=SelectionSpec)
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    label: str = ""
    faults: Optional[FaultPlan] = None

    def resolve(
        self, seed: int
    ) -> tuple[RatePolicy, Iterable[TraceEvent], PartitionSelectionPolicy]:
        """Build the live (policy, trace, selection) triple for one seed."""
        return (
            build_policy(self.policy, seed),
            build_workload(self.workload, seed),
            build_selection(self.selection, seed),
        )


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------

#: A builder receives the run's seed first, then the spec's kwargs.
PolicyBuilder = Callable[..., RatePolicy]
WorkloadBuilder = Callable[..., Iterable[TraceEvent]]
SelectionBuilder = Callable[..., PartitionSelectionPolicy]

_POLICY_REGISTRY: dict[str, PolicyBuilder] = {}
_WORKLOAD_REGISTRY: dict[str, WorkloadBuilder] = {}
_SELECTION_REGISTRY: dict[str, SelectionBuilder] = {}


def register_policy(kind: str, builder: PolicyBuilder) -> None:
    """Register ``builder(seed, **kwargs)`` under a policy registry key."""
    _POLICY_REGISTRY[kind] = builder


def register_workload(kind: str, builder: WorkloadBuilder) -> None:
    """Register ``builder(seed, **kwargs)`` under a workload registry key."""
    _WORKLOAD_REGISTRY[kind] = builder


def register_selection(kind: str, builder: SelectionBuilder) -> None:
    """Register ``builder(seed, **kwargs)`` under a selection registry key."""
    _SELECTION_REGISTRY[kind] = builder


def _lookup(registry: dict, kind: str, what: str):
    try:
        return registry[kind]
    except KeyError:
        raise ValueError(
            f"unknown {what} kind {kind!r}; choose from {sorted(registry)}"
        ) from None


def build_policy(spec: PolicySpec, seed: int) -> RatePolicy:
    """Resolve a :class:`PolicySpec` into a fresh policy instance."""
    return _lookup(_POLICY_REGISTRY, spec.kind, "policy")(seed, **dict(spec.kwargs))


def build_workload(spec: WorkloadSpec, seed: int) -> Iterable[TraceEvent]:
    """Resolve a :class:`WorkloadSpec` into a fresh trace for one seed."""
    return _lookup(_WORKLOAD_REGISTRY, spec.kind, "workload")(
        seed, **dict(spec.kwargs)
    )


def build_selection(spec: SelectionSpec, seed: int) -> PartitionSelectionPolicy:
    """Resolve a :class:`SelectionSpec` into a fresh selection policy."""
    return _lookup(_SELECTION_REGISTRY, spec.kind, "selection")(
        seed, **dict(spec.kwargs)
    )


# ---------------------------------------------------------------- built-ins


def _build_fixed(seed: int, overwrites_per_collection: float) -> RatePolicy:
    return FixedRatePolicy(overwrites_per_collection)


def _build_allocation(seed: int, bytes_per_collection: float) -> RatePolicy:
    return AllocationRatePolicy(bytes_per_collection)


def _build_partition_heuristic(seed: int, **kwargs) -> RatePolicy:
    return PartitionHeuristicPolicy(**kwargs)


def _build_saio(seed: int, **kwargs) -> RatePolicy:
    return SaioPolicy(**kwargs)


def _build_saga(
    seed: int,
    garbage_fraction: float,
    estimator: str = "fgs-hb",
    history: float = 0.8,
    **kwargs,
) -> RatePolicy:
    # ``estimator`` may be a registry name or a ``learned:`` model spec;
    # make_estimator loads (and hash-verifies) the artifact in the worker
    # process, so learned policies parallelise like any other.
    return SagaPolicy(
        garbage_fraction=garbage_fraction,
        estimator=make_estimator(estimator, history=history),
        **kwargs,
    )


register_policy("fixed", _build_fixed)
register_policy("allocation", _build_allocation)
register_policy("partition-heuristic", _build_partition_heuristic)
register_policy("saio", _build_saio)
register_policy("saga", _build_saga)


def _build_oo7(seed: int, config: OO7Config, **kwargs) -> Iterable[TraceEvent]:
    return Oo7Application(config, seed=seed, **kwargs).events()


register_workload("oo7", _build_oo7)


def _build_transactional(
    seed: int, spec: Optional[TransactionalSpec] = None, initial_clusters: int = 40
) -> Iterable[TraceEvent]:
    return TransactionalWorkload(
        spec or TransactionalSpec(), seed=seed, initial_clusters=initial_clusters
    ).events()


register_workload("transactional", _build_transactional)


def _build_grammar(
    seed: int, config: Union[WorkloadConfig, Mapping[str, Any]]
) -> Iterable[TraceEvent]:
    """``grammar``: a declarative :class:`~repro.workload.grammar.WorkloadConfig`.

    ``config`` may be the dataclass or its ``to_dict()`` form (so specs
    loaded from JSON files resolve without reconstruction). Both canonicalise
    to different material — pass the dataclass for fingerprint stability
    against configs built in code.
    """
    if not isinstance(config, WorkloadConfig):
        config = WorkloadConfig.from_dict(dict(config))
    return GrammarWorkload(config, seed=seed).events()


register_workload("grammar", _build_grammar)


def _build_tenant_mix(
    seed: int, config: Union[TenantMixConfig, Mapping[str, Any]]
) -> Iterable[TraceEvent]:
    """``tenant-mix``: an interleaved multi-tenant scenario."""
    if not isinstance(config, TenantMixConfig):
        config = TenantMixConfig.from_dict(dict(config))
    return TenantMix(config, seed=seed).events()


register_workload("tenant-mix", _build_tenant_mix)


def _build_preset(
    seed: int, name: str, scale: float = 1.0, initial_clusters: int = 16
) -> Iterable[TraceEvent]:
    """``preset``: a named synthetic preset from :mod:`repro.workload.presets`."""
    from repro.workload.presets import PresetWorkload

    return PresetWorkload(
        name, scale=scale, seed=seed, initial_clusters=initial_clusters
    ).events()


register_workload("preset", _build_preset)


def _selection_builder(name: str) -> SelectionBuilder:
    def build(seed: int) -> PartitionSelectionPolicy:
        return make_selection_policy(name, seed=seed)

    return build


for _name in ("updated-pointer", "random", "round-robin", "most-garbage-oracle"):
    register_selection(_name, _selection_builder(_name))


# ----------------------------------------------------------------------
# Canonical material for content addressing
# ----------------------------------------------------------------------

# The canonicaliser lives in :mod:`repro.canonical` (it moved there so
# workload modules can use it without importing this module, which imports
# them). These aliases keep the long-standing local names working.
_CANONICAL_EXCLUDED_FIELDS = CANONICAL_EXCLUDED_FIELDS
_canonical = canonical_value


def spec_material(spec: ExperimentSpec, seed: Optional[int] = None) -> dict:
    """Canonical description of (spec, seed) for hashing.

    Excludes the display-only ``label`` so cosmetic relabelling never
    invalidates cached results.
    """
    material = {
        "policy": _canonical(spec.policy),
        "workload": _canonical(spec.workload),
        "selection": _canonical(spec.selection),
        "sim": _canonical(spec.sim),
    }
    # Included only when set, so fingerprints of fault-free specs are
    # unchanged by the existence of the faults feature.
    if spec.faults is not None:
        material["faults"] = _canonical(spec.faults)
    if seed is not None:
        material["seed"] = seed
    return material
