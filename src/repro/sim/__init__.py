"""Trace-driven simulation: engine, metrics, multi-seed runner, reports.

Two ways to run the paper's multi-seed protocol live here:

* :func:`run_seeds` — in-process, factory-based (arbitrary callables);
* :func:`run_experiment` / :func:`run_experiment_batch` — declarative
  :class:`ExperimentSpec`-based, with multi-process fan-out
  (:class:`ParallelRunner`) and on-disk memoisation (:class:`ResultCache`).
"""

from repro.sim.cache import CachedRun, ResultCache, spec_fingerprint
from repro.sim.clustering import (
    SpreadStats,
    composite_spread,
    traverse_hit_rate,
    traverse_page_footprint,
)
from repro.sim.engine import (
    ParallelRunner,
    RunTimeoutError,
    SeedOutcome,
    run_experiment,
    run_experiment_batch,
)
from repro.sim.metrics import (
    CollectionRecord,
    EventSample,
    RunningMean,
    Sampler,
    SimulationSummary,
)
from repro.sim.runner import (
    AggregateResult,
    AggregateStat,
    RunFailure,
    RunStats,
    run_one,
    run_seeds,
)
from repro.sim.simulator import Simulation, SimulationConfig, SimulationResult
from repro.sim.spec import (
    ExperimentSpec,
    PolicySpec,
    SelectionSpec,
    WorkloadSpec,
    register_policy,
    register_selection,
    register_workload,
)

__all__ = [
    "AggregateResult",
    "SpreadStats",
    "composite_spread",
    "traverse_hit_rate",
    "traverse_page_footprint",
    "AggregateStat",
    "CachedRun",
    "CollectionRecord",
    "EventSample",
    "ExperimentSpec",
    "ParallelRunner",
    "PolicySpec",
    "ResultCache",
    "RunFailure",
    "RunStats",
    "RunTimeoutError",
    "RunningMean",
    "Sampler",
    "SeedOutcome",
    "SelectionSpec",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "SimulationSummary",
    "WorkloadSpec",
    "register_policy",
    "register_selection",
    "register_workload",
    "run_experiment",
    "run_experiment_batch",
    "run_one",
    "run_seeds",
    "spec_fingerprint",
]
