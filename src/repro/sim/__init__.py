"""Trace-driven simulation: engine, metrics, multi-seed runner, reports."""

from repro.sim.clustering import (
    SpreadStats,
    composite_spread,
    traverse_hit_rate,
    traverse_page_footprint,
)
from repro.sim.metrics import (
    CollectionRecord,
    EventSample,
    RunningMean,
    Sampler,
    SimulationSummary,
)
from repro.sim.runner import (
    AggregateResult,
    AggregateStat,
    run_one,
    run_seeds,
)
from repro.sim.simulator import Simulation, SimulationConfig, SimulationResult

__all__ = [
    "AggregateResult",
    "SpreadStats",
    "composite_spread",
    "traverse_hit_rate",
    "traverse_page_footprint",
    "AggregateStat",
    "CollectionRecord",
    "EventSample",
    "RunningMean",
    "Sampler",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "SimulationSummary",
    "run_one",
    "run_seeds",
]
