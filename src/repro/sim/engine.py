"""Parallel multi-seed experiment engine.

The paper's measurement protocol is embarrassingly parallel — every data
point is the mean of independent seeded simulation runs — so this engine
fans the (spec, seed) grid out over a :class:`~concurrent.futures.
ProcessPoolExecutor` and memoises each run in an optional on-disk
:class:`~repro.sim.cache.ResultCache`:

* ``jobs=1`` executes in-process on the exact code path a worker would run,
  so determinism tests can compare serial and parallel results directly;
* results are assembled in task order regardless of completion order, so
  formatted experiment output is byte-identical at any ``jobs`` setting;
* cache hits skip simulation entirely and are reported per run through the
  progress callback and in :class:`~repro.sim.runner.RunStats`.

Worker processes cannot unpickle closures, which is why the engine runs on
declarative :class:`~repro.sim.spec.ExperimentSpec` values: the spec
travels to the worker as plain data and is resolved into live policy /
trace / selection objects there, once per seed.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.sim.cache import ResultCache, spec_fingerprint
from repro.sim.metrics import CollectionRecord, SimulationSummary
from repro.sim.runner import AggregateResult, RunStats
from repro.sim.simulator import Simulation
from repro.sim.spec import ExperimentSpec


@dataclass(frozen=True)
class SeedOutcome:
    """One completed run, as reported to progress callbacks."""

    label: str
    seed: int
    #: True when the run was answered from the result cache.
    cached: bool
    #: Wall-clock seconds the simulation took (0 for cache hits).
    wall_time: float
    #: Runs finished so far, including this one.
    completed: int
    #: Total runs in the batch.
    total: int


#: Called once per completed run (cache hit or simulation).
ProgressCallback = Callable[[SeedOutcome], None]

CacheLike = Union[ResultCache, str, Path, None]


def _as_cache(cache: CacheLike) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _simulate(
    spec: ExperimentSpec, seed: int, keep_records: bool
) -> tuple[SimulationSummary, Optional[list[CollectionRecord]], float]:
    """Execute one (spec, seed) run; the unit of work shipped to workers."""
    started = time.perf_counter()
    policy, trace, selection = spec.resolve(seed)
    result = Simulation(policy=policy, selection=selection, config=spec.sim).run(trace)
    elapsed = time.perf_counter() - started
    records = list(result.collections) if keep_records else None
    return result.summary, records, elapsed


class ParallelRunner:
    """Runs (spec, seed) grids across worker processes with caching.

    Args:
        jobs: Worker processes; ``None`` uses ``os.cpu_count()``; ``1``
            runs everything in-process (the deterministic baseline path).
        cache: A :class:`ResultCache`, a directory path to open one in, or
            ``None`` to disable caching.
        progress: Callback invoked once per completed run.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: CacheLike = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.cache = _as_cache(cache)
        self.progress = progress

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(
        self,
        spec: ExperimentSpec,
        seeds: Sequence[int],
        keep_records: bool = False,
    ) -> AggregateResult:
        """Run one spec across several seeds and aggregate."""
        return self.run_batch([spec], seeds, keep_records=keep_records)[0]

    def run_batch(
        self,
        specs: Sequence[ExperimentSpec],
        seeds: Sequence[int],
        keep_records: bool = False,
    ) -> list[AggregateResult]:
        """Run several specs over the same seeds, fanning all runs out at once.

        Batching whole sweeps (every fraction × every seed) into one call
        keeps all workers busy even when a single setting has fewer seeds
        than there are cores. Results come back in spec order, each an
        :class:`AggregateResult` with per-setting cache/wall-time stats.
        """
        specs = list(specs)
        seeds = list(seeds)
        if not specs:
            return []
        if not seeds:
            raise ValueError("at least one seed is required")

        tasks = [(si, seed) for si in range(len(specs)) for seed in seeds]
        outcomes: list[Optional[tuple]] = [None] * len(tasks)
        fingerprints: list[Optional[str]] = [None] * len(tasks)
        self._completed = 0
        self._total = len(tasks)

        pending: list[int] = []
        for index, (si, seed) in enumerate(tasks):
            if self.cache is not None:
                fingerprint = spec_fingerprint(specs[si], seed)
                fingerprints[index] = fingerprint
                hit = self.cache.get(fingerprint, want_records=keep_records)
                if hit is not None:
                    outcomes[index] = (hit.summary, hit.records, True, 0.0)
                    self._emit(specs[si], seed, cached=True, wall_time=0.0)
                    continue
            pending.append(index)

        workers = min(self.jobs, len(pending))
        if workers > 1:
            self._run_pooled(specs, tasks, pending, fingerprints, outcomes, keep_records, workers)
        else:
            self._run_serial(specs, tasks, pending, fingerprints, outcomes, keep_records)

        return self._assemble(specs, seeds, tasks, outcomes, keep_records)

    # ------------------------------------------------------------------
    # Execution paths
    # ------------------------------------------------------------------

    def _run_serial(self, specs, tasks, pending, fingerprints, outcomes, keep_records):
        for index in pending:
            si, seed = tasks[index]
            summary, records, elapsed = _simulate(specs[si], seed, keep_records)
            self._finish(index, specs[si], seed, summary, records, elapsed,
                         fingerprints[index], outcomes)

    def _run_pooled(self, specs, tasks, pending, fingerprints, outcomes,
                    keep_records, workers):
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_simulate, specs[tasks[index][0]], tasks[index][1],
                            keep_records): index
                for index in pending
            }
            for future in as_completed(futures):
                index = futures[future]
                si, seed = tasks[index]
                summary, records, elapsed = future.result()
                self._finish(index, specs[si], seed, summary, records, elapsed,
                             fingerprints[index], outcomes)

    def _finish(self, index, spec, seed, summary, records, elapsed,
                fingerprint, outcomes):
        outcomes[index] = (summary, records, False, elapsed)
        if self.cache is not None and fingerprint is not None:
            self.cache.put(fingerprint, summary, records)
        self._emit(spec, seed, cached=False, wall_time=elapsed)

    def _emit(self, spec, seed, cached, wall_time):
        self._completed += 1
        if self.progress is None:
            return
        self.progress(
            SeedOutcome(
                label=spec.label or spec.policy.kind,
                seed=seed,
                cached=cached,
                wall_time=wall_time,
                completed=self._completed,
                total=self._total,
            )
        )

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    @staticmethod
    def _assemble(specs, seeds, tasks, outcomes, keep_records):
        results = []
        for si in range(len(specs)):
            stats = RunStats()
            aggregate = AggregateResult(summaries=[], stats=stats)
            for j in range(len(seeds)):
                summary, records, cached, elapsed = outcomes[si * len(seeds) + j]
                aggregate.summaries.append(summary)
                if keep_records:
                    aggregate.records.append(records or [])
                if cached:
                    stats.cache_hits += 1
                else:
                    stats.cache_misses += 1
                stats.wall_time += elapsed
            results.append(aggregate)
        return results


def run_experiment(
    spec: ExperimentSpec,
    *,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    cache: CacheLike = None,
    progress: Optional[ProgressCallback] = None,
    keep_records: bool = False,
) -> AggregateResult:
    """Run one experimental setting across seeds, in parallel, with caching.

    The declarative counterpart of :func:`repro.sim.runner.run_seeds`:
    ``spec`` names everything by registry key, so runs can execute in worker
    processes (``jobs``; ``None`` = all cores, ``1`` = in-process) and be
    memoised in ``cache``. ``keep_records=True`` additionally returns each
    run's per-collection records (Figures 6/7 need them).
    """
    runner = ParallelRunner(jobs=jobs, cache=cache, progress=progress)
    return runner.run(spec, seeds, keep_records=keep_records)


def run_experiment_batch(
    specs: Sequence[ExperimentSpec],
    *,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    cache: CacheLike = None,
    progress: Optional[ProgressCallback] = None,
    keep_records: bool = False,
) -> list[AggregateResult]:
    """Run several settings over the same seeds in one parallel fan-out."""
    runner = ParallelRunner(jobs=jobs, cache=cache, progress=progress)
    return runner.run_batch(specs, seeds, keep_records=keep_records)
